#!/usr/bin/env python
"""Automatic SOP for a known failure, and the visualization for an unknown one.

Part 1 -- Figure 2a / §5.1 case 1: a single lossy device whose redundancy
peers are silent matches the isolation rule; the SOP executes against the
simulator and the fault's customer impact ends without human action.

Part 2 -- §7.1: a misbehaving route reflector triggers an incident; the
alert-voting graph makes the uncommon device stand out for the operator.

    python examples/automatic_sop.py
"""

from repro.core import SkyNet
from repro.monitors import AlertStream, build_monitors
from repro.rules import RuleContext, RuleEngine, SOPExecutor, default_rule_library
from repro.simulation import FailureInjector, NetworkState, scenarios
from repro.topology import TopologySpec, build_topology, generate_traffic
from repro.viz import VotingGraph


def known_failure_sop() -> None:
    print("=" * 60)
    print("part 1: automatic SOP for a known failure (Figure 2a)")
    print("=" * 60)
    topology = build_topology(TopologySpec())
    traffic = generate_traffic(topology, n_customers=40)
    state = NetworkState(topology, traffic)
    injector = FailureInjector(state)
    scenario = scenarios.known_device_failure(topology, start=30.0)
    injector.inject(scenario)

    raw = AlertStream(state, build_monitors(state)).collect(420.0)
    skynet = SkyNet(topology, state=state)
    reports = skynet.process(raw)
    incident = reports[0].incident
    print(f"incident detected at {incident.root}")

    engine = RuleEngine(default_rule_library())
    match = engine.match(RuleContext(incident, topology, state, now=state.now))
    if match is None:
        print("no rule matched -- escalate to a human (unknown failure)")
        return
    print(f"matched rule: {match.rule.name}")
    print(match.plan.render())
    record = SOPExecutor(state).execute(match.plan)
    print(f"executed automatically; mitigated conditions: "
          f"{record.mitigated_condition_ids}")


def reflector_visualization() -> None:
    print()
    print("=" * 60)
    print("part 2: alert voting for an unknown failure (§7.1)")
    print("=" * 60)
    topology = build_topology(TopologySpec())
    traffic = generate_traffic(topology, n_customers=40)
    state = NetworkState(topology, traffic)
    injector = FailureInjector(state)
    scenario = scenarios.reflector_failure(topology, start=30.0)
    injector.inject(scenario)

    raw = AlertStream(state, build_monitors(state)).collect(600.0)
    skynet = SkyNet(topology, state=state)
    reports = skynet.process(raw)
    incident = reports[0].incident
    print(f"incident at {incident.root}; voting table:")
    graph = VotingGraph.from_incident(incident, topology)
    print(graph.render_table())
    print(f"\ntop suspect: {graph.top_device()} "
          f"(actual root cause: {scenario.truth.root_cause_targets[0]})")


if __name__ == "__main__":
    known_failure_sop()
    reflector_visualization()
