#!/usr/bin/env python
"""The §2.2 severe failure: half an Internet entrance's cables cut at once.

Reproduces the paper's motivating war story end to end:

* thousands of raw alerts flood in within minutes;
* the persistent packet loss is *congestion on the surviving cables*, not
  dead hardware -- the trap the on-call operators fell into;
* SkyNet groups the flood into one logic-site incident whose report
  surfaces the SNMP congestion root-cause alert that was buried;
* the operator model quantifies the mitigation-time difference.

    python examples/severe_failure_flood.py
"""

from collections import Counter

from repro.core import SkyNet
from repro.monitors import AlertStream, build_monitors
from repro.operators import OperatorModel
from repro.simulation import BackgroundNoise, FailureInjector, NetworkState, scenarios
from repro.topology import TopologySpec, build_topology, generate_traffic


def main() -> None:
    topology = build_topology(TopologySpec())
    traffic = generate_traffic(topology, n_customers=40)
    state = NetworkState(topology, traffic)
    injector = FailureInjector(state)

    scenario = scenarios.internet_entrance_cable_cut(topology, start=60.0)
    injector.inject(scenario)
    injector.inject_noise(BackgroundNoise(topology).generate(900.0))
    print(f"cut the Internet entrance of {scenario.truth.scope}\n")

    raw_alerts = AlertStream(state, build_monitors(state)).collect(900.0)
    by_tool = Counter(a.tool for a in raw_alerts)
    print(f"the flood: {len(raw_alerts)} raw alerts in 15 minutes")
    for tool, count in by_tool.most_common():
        print(f"  {tool:<22}{count:>6}")

    skynet = SkyNet(topology, state=state)
    reports = skynet.process(raw_alerts)
    top = reports[0]
    print(f"\nSkyNet distilled this into {len(reports)} incident(s); the top one:\n")
    print(top.render())

    congestion = [
        r for r in top.incident.records()
        if r.type_key.name == "traffic_congestion"
    ]
    print(
        f"\nthe buried congestion alert is surfaced as a root cause: "
        f"{[str(r.type_key) for r in congestion]}"
    )

    model = OperatorModel()
    manual = model.mitigation_time_raw(
        len(raw_alerts), len(top.incident.devices_involved())
    )
    assisted = model.mitigation_time_skynet(top.incident)
    print(
        f"\nestimated mitigation time: {manual:.0f} s sifting the raw flood "
        f"vs {assisted:.0f} s from the incident report "
        f"({(1 - assisted / manual) * 100:.0f}% faster)"
    )


if __name__ == "__main__":
    main()
