#!/usr/bin/env python
"""Quickstart: build a cloud fabric, break something, watch SkyNet work.

Runs a 10-minute simulation in which a cluster switch develops a hardware
fault, streams the twelve monitoring tools' raw alerts through SkyNet, and
prints the distilled incident report an operator would read.

    python examples/quickstart.py
"""

from repro.core import SkyNet
from repro.monitors import AlertStream, build_monitors
from repro.simulation import FailureInjector, NetworkState, scenarios
from repro.topology import TopologySpec, build_topology, generate_traffic


def main() -> None:
    # 1. a synthetic hierarchical cloud network with customer traffic
    topology = build_topology(TopologySpec())
    traffic = generate_traffic(topology, n_customers=40)
    print(f"built {topology}")

    # 2. inject a failure: one cluster switch starts dropping packets
    state = NetworkState(topology, traffic)
    injector = FailureInjector(state)
    scenario = scenarios.known_device_failure(topology, start=30.0)
    injector.inject(scenario)
    print(f"injected {scenario.name} at {scenario.truth.scope}")

    # 3. run the twelve monitoring tools for ten simulated minutes
    stream = AlertStream(state, build_monitors(state))
    raw_alerts = stream.collect(600.0)
    print(f"monitoring tools produced {len(raw_alerts)} raw alerts")

    # 4. SkyNet: preprocess -> locate -> evaluate
    skynet = SkyNet(topology, state=state)
    reports = skynet.process(raw_alerts)

    stats = skynet.preprocess_stats
    print(
        f"preprocessor: {stats.raw_in} raw -> {stats.emitted} structured "
        f"({stats.reduction_factor:.1f}x reduction)"
    )
    print(f"\nSkyNet found {len(reports)} incident(s):\n")
    for report in reports:
        print(report.render())
        print(f"urgent: {report.urgent}\n")


if __name__ == "__main__":
    main()
