#!/usr/bin/env python
"""Concurrent incidents: multi-scene DDoS detection plus severity ranking.

Combines two §5.1 case studies:

* five clusters in different regions are DDoSed simultaneously -- SkyNet
  must produce five *separate* incidents, not one blob;
* a wide-but-mild link failure runs concurrently with a small failure that
  hits critical customers -- the evaluator must rank the small one first.

    python examples/concurrent_incidents.py
"""

from repro.core import SkyNet
from repro.monitors import AlertStream, build_monitors
from repro.simulation import FailureInjector, NetworkState, scenarios
from repro.topology import TopologySpec, build_topology, generate_traffic


def multi_scene() -> None:
    print("=" * 60)
    print("scene 1: simultaneous DDoS on five locations")
    print("=" * 60)
    topology = build_topology(TopologySpec.benchmark())
    traffic = generate_traffic(topology, n_customers=60)
    state = NetworkState(topology, traffic)
    injector = FailureInjector(state)
    attacks = scenarios.multi_site_ddos(topology, start=30.0, n_sites=5)
    injector.inject_all(attacks)

    raw = AlertStream(state, build_monitors(state)).collect(480.0)
    skynet = SkyNet(topology, state=state)
    reports = skynet.process(raw)
    print(f"{len(raw)} raw alerts -> {len(reports)} incidents")
    for report in reports:
        print(f"  {report.incident.incident_id}: {report.incident.location} "
              f"(score {report.score:.1f})")
    victims = {str(a.truth.scope) for a in attacks}
    covered = {
        str(v) for v in victims
        if any(report.incident.covers(a.truth.scope)
               or a.truth.scope.contains(report.incident.root)
               for report in reports
               for a in attacks if str(a.truth.scope) == v)
    }
    print(f"attacked locations covered: {len(covered)}/5\n")


def scene_ranking() -> None:
    print("=" * 60)
    print("scene 2: severity ranking of concurrent failures")
    print("=" * 60)
    topology = build_topology(TopologySpec())
    traffic = generate_traffic(topology, n_customers=40)
    state = NetworkState(topology, traffic)
    injector = FailureInjector(state)
    big, small = scenarios.ranking_pair(topology, start=30.0)
    injector.inject(big)
    injector.inject(small)
    print(f"big-but-mild failure at   {big.truth.scope}")
    print(f"small-but-critical one at {small.truth.scope}")

    raw = AlertStream(state, build_monitors(state)).collect(600.0)
    skynet = SkyNet(topology, state=state)
    reports = skynet.process(raw)
    print(f"\nranked incident queue ({len(raw)} raw alerts):")
    for rank, report in enumerate(reports, start=1):
        incident = report.incident
        print(
            f"  #{rank} {incident.location}  score={report.score:.1f}  "
            f"alerts={incident.total_alert_count()}"
        )
    print("\noperators work the queue top-down: the critical scene is not"
          "\nburied under the noisier one (§5.1 'Scene ranking')")


if __name__ == "__main__":
    multi_scene()
    scene_ranking()
