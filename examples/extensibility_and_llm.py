#!/usr/bin/env python
"""The paper's §9 future work, running: new data sources and LLM handoff.

Part 1 -- §5.2 extensibility: the user-side telemetry and SRTE label-probe
tools (future work in the paper) plug into SkyNet by registering their
alert-type levels -- nothing else changes.

Part 2 -- §9 LLM integration: SkyNet extracts time/location and truncates
an incident's flood into a bounded context package ready for a diagnosis
model, root-cause alerts first.

    python examples/extensibility_and_llm.py
"""

from repro.core import IncidentContextExporter, SkyNet
from repro.monitors import AlertStream, build_monitors
from repro.simulation import FailureInjector, NetworkState, scenarios
from repro.topology import TopologySpec, build_topology, generate_traffic


def main() -> None:
    topology = build_topology(TopologySpec())
    traffic = generate_traffic(topology, n_customers=40)
    state = NetworkState(topology, traffic)
    injector = FailureInjector(state)
    injector.inject(scenarios.internet_entrance_cable_cut(topology, start=30.0))
    injector.inject(scenarios.known_device_failure(topology, start=45.0))

    # fourteen data sources: the paper's twelve plus the §9 future tools
    monitors = build_monitors(state, future_sources=True)
    print(f"running {len(monitors)} data sources "
          f"(incl. user_telemetry, srte_probe)")
    raw = AlertStream(state, monitors).collect(600.0)

    skynet = SkyNet(topology, state=state)
    reports = skynet.process(raw)
    new_source_types = sorted(
        {
            str(r.type_key)
            for report in reports
            for r in report.incident.records()
            if r.type_key.tool in ("user_telemetry", "srte_probe")
        }
    )
    print(f"{len(raw)} raw alerts -> {len(reports)} incidents")
    print(f"alert types contributed by the new sources: {new_source_types}\n")

    exporter = IncidentContextExporter(topology, max_tokens=600)
    package = exporter.export(reports[0].incident)
    print(f"LLM context package (~{package.approx_tokens} tokens, "
          f"sections: {', '.join(package.sections_included)}"
          f"{', truncated' if package.truncated else ''}):\n")
    print(package.text)


if __name__ == "__main__":
    main()
