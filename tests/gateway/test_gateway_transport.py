"""Wire-level tests: framing codec, loopback, and the socket server.

The loopback transport round-trips every request and reply through the
real frame codec, so the battery's identity gate already exercises the
encoding; this file pins the codec's contract directly (deterministic
bytes, rejection of garbage) and the socket server's concurrency
(parallel clients, per-connection framing errors, clean stop).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List

import pytest

from repro.gateway import (
    GatewayClient,
    GatewayParams,
    GatewaySocketServer,
    LoopbackTransport,
    decode_frame,
    encode_frame,
)
from repro.gateway.transport import Message


def test_frame_codec_round_trip():
    message = {"op": "submit", "nested": {"b": 2, "a": 1}, "n": None, "f": 1.5}
    frame = encode_frame(message)
    assert frame.endswith(b"\n") and frame.count(b"\n") == 1
    assert decode_frame(frame) == message


def test_frame_encoding_is_deterministic():
    a = encode_frame({"b": 1, "a": {"d": 2, "c": 3}})
    b = encode_frame({"a": {"c": 3, "d": 2}, "b": 1})
    assert a == b  # sorted keys: key order never leaks into the bytes


def test_frame_codec_rejects_garbage():
    with pytest.raises(ValueError):
        decode_frame(b"not json\n")
    with pytest.raises(ValueError):
        decode_frame(b"[1, 2, 3]\n")  # frames are objects, not arrays
    with pytest.raises(ValueError):
        encode_frame(["not", "a", "dict"])  # type: ignore[arg-type]


def test_loopback_round_trips_through_the_codec():
    seen: List[Message] = []

    def handler(request: Message) -> Message:
        seen.append(request)
        return {"ok": True, "echo": request.get("x")}

    transport = LoopbackTransport(handler)
    reply = transport.request({"op": "ping", "x": [1, 2.5, "three", None]})
    assert reply == {"ok": True, "echo": [1, 2.5, "three", None]}
    # the handler saw the codec's output, not the caller's object
    assert seen[0] == {"op": "ping", "x": [1, 2.5, "three", None]}


def _echo_server():
    lock = threading.Lock()
    counts: Dict[str, int] = {}

    def handler(request: Message) -> Message:
        with lock:
            client = str(request.get("client"))
            counts[client] = counts.get(client, 0) + 1
            return {"ok": True, "client": client, "count": counts[client]}

    server = GatewaySocketServer(handler, GatewayParams())
    server.start()
    return server, counts


def test_socket_server_serves_concurrent_clients():
    server, counts = _echo_server()
    host, port = server.address
    errors: List[BaseException] = []

    def worker(name: str) -> None:
        try:
            with GatewayClient(host, port, timeout_s=10.0) as client:
                for i in range(20):
                    reply = client.request({"op": "echo", "client": name})
                    assert reply["ok"] and reply["client"] == name
                    assert reply["count"] == i + 1
        except BaseException as exc:  # surfaced in the main thread
            errors.append(exc)

    try:
        threads = [
            threading.Thread(target=worker, args=(f"client-{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors, errors
        assert counts == {f"client-{i}": 20 for i in range(8)}
    finally:
        server.stop()


def test_socket_server_reports_bad_frames_and_keeps_the_connection():
    server, _counts = _echo_server()
    host, port = server.address
    try:
        with GatewayClient(host, port, timeout_s=10.0) as client:
            client._sock.sendall(b"this is not json\n")  # type: ignore[attr-defined]
            reply = decode_frame(client._reader.readline())  # type: ignore[attr-defined]
            assert reply["ok"] is False
            # the connection survives a framing error
            assert client.request({"op": "echo", "client": "after"})["ok"]
    finally:
        server.stop()


def _wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def test_torn_frame_answers_loudly_and_frees_the_accept_loop():
    """A peer that dies mid-line must get a torn-frame error, not wedge
    its serving thread -- and the accept loop must keep taking clients."""
    server, _counts = _echo_server()
    host, port = server.address
    try:
        torn = socket.create_connection((host, port), timeout=5.0)
        try:
            torn.sendall(b'{"op": "echo", "client": "tor')  # no newline
            torn.shutdown(socket.SHUT_WR)  # the peer "dies" mid-frame
            reply = decode_frame(torn.makefile("rb").readline())
            assert reply["ok"] is False
            assert "torn frame" in reply["error"]
        finally:
            torn.close()
        # the torn connection's thread must unwind, not linger blocked
        assert _wait_until(lambda: server.live_connection_threads() == 0)
        # and a fresh client is served as if nothing happened
        with GatewayClient(host, port, timeout_s=5.0) as client:
            assert client.request({"op": "echo", "client": "fresh"})["ok"]
    finally:
        server.stop()


def test_over_cap_frame_is_refused_and_connection_closed():
    server, _counts = _echo_server()
    host, port = server.address
    cap = GatewayParams().max_frame_bytes
    try:
        with GatewayClient(host, port, timeout_s=5.0) as client:
            sock = client._sock  # type: ignore[attr-defined]
            assert sock is not None
            sock.sendall(b"x" * (cap + 10) + b"\n")
            reply = decode_frame(client._reader.readline())  # type: ignore[attr-defined]
            assert reply["ok"] is False and "cap" in reply["error"]
            # the stream past an over-cap line is unframeable: closed
            assert client._reader.readline() == b""  # type: ignore[attr-defined]
        assert _wait_until(lambda: server.live_connection_threads() == 0)
    finally:
        server.stop()


def test_connection_threads_are_reaped_after_clients_close():
    """No thread leak: tracked connection threads return to zero after
    every client disconnects, without waiting for server.stop()."""
    server, _counts = _echo_server()
    host, port = server.address
    try:
        clients = [GatewayClient(host, port, timeout_s=5.0) for _ in range(6)]
        for i, client in enumerate(clients):
            assert client.request({"op": "echo", "client": f"c{i}"})["ok"]
        assert server.live_connection_threads() == 6
        for client in clients:
            client.close()
        assert _wait_until(lambda: server.live_connection_threads() == 0)
    finally:
        server.stop()


def test_server_stop_closes_connections():
    server, _counts = _echo_server()
    host, port = server.address
    client = GatewayClient(host, port, timeout_s=5.0)
    assert client.request({"op": "echo", "client": "x"})["ok"]
    server.stop()
    with pytest.raises((ConnectionError, OSError)):
        client.request({"op": "echo", "client": "x"})
    client.close()
