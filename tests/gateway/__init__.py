"""Tests for :mod:`repro.gateway`: the serving layer over the runtime."""
