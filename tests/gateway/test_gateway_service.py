"""Service-level contract tests: validation, backpressure, subscription.

The battery (``test_gateway_battery.py``) pins the signature identity
property; this file pins everything around it -- the request/reply error
envelope, the per-source bounded queues shedding through the admission
controller's books, heartbeats, the cursor-ordered event log and the
long-poll, and the health/metrics/stats query surfaces.
"""

from __future__ import annotations

import threading
from typing import List

import pytest

from repro.gateway import (
    CANONICAL_SOURCES,
    GatewayParams,
    GatewayService,
    QUEUE_RUNG,
    SOURCE_PRIORITY,
)
from repro.monitors.base import RawAlert
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.journal import raw_to_json
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology


def _alert(tool: str, t: float, device=None, n: int = 0) -> RawAlert:
    return RawAlert(
        tool=tool,
        raw_type=f"test_{tool}_{n}",
        timestamp=t,
        message=f"synthetic {tool} alert",
        device=device,
    )


@pytest.fixture()
def service():
    topo = build_topology(TopologySpec.tiny())
    set_incident_counter(1)
    svc = GatewayService(topo, params=GatewayParams(queue_limit=4))
    yield svc
    svc.shutdown()


# ---------------------------------------------------------------------------
# validation + error envelope


def test_source_registry_covers_table2_and_future_sources():
    assert len(CANONICAL_SOURCES) == len(SOURCE_PRIORITY)
    assert "ping" in SOURCE_PRIORITY and "syslog" in SOURCE_PRIORITY
    # ranks are the canonical order, dense from zero
    assert sorted(SOURCE_PRIORITY.values()) == list(range(len(CANONICAL_SOURCES)))


def test_unknown_source_is_rejected(service):
    reply = service.handle(
        {"op": "submit", "raw": raw_to_json(_alert("not-a-tool", 1.0))}
    )
    assert reply["ok"] is False
    assert reply["kind"] == "UnknownSourceError"


def test_source_tool_mismatch_is_rejected(service):
    reply = service.handle(
        {
            "op": "submit",
            "source": "syslog",
            "raw": raw_to_json(_alert("ping", 1.0)),
        }
    )
    assert reply["ok"] is False
    assert reply["kind"] == "SequenceError"


def test_timestamp_regression_is_rejected(service):
    assert service.handle(
        {"op": "submit", "raw": raw_to_json(_alert("ping", 5.0))}
    )["ok"]
    reply = service.handle(
        {"op": "submit", "raw": raw_to_json(_alert("ping", 4.0))}
    )
    assert reply["ok"] is False and reply["kind"] == "SequenceError"


def test_replayed_seq_is_deduped_not_reingested(service):
    assert service.handle(
        {"op": "submit", "raw": raw_to_json(_alert("ping", 1.0)), "seq": 3}
    )["seq"] == 3
    pending = service.stats()["pending"]
    # a seq at-or-below the consumed frontier is a retry/stale replay:
    # acked as a duplicate (with the authoritative next_seq), never
    # ingested a second time
    reply = service.handle(
        {"op": "submit", "raw": raw_to_json(_alert("ping", 2.0)), "seq": 2}
    )
    assert reply["ok"] is True and reply["duplicate"] is True
    assert reply["next_seq"] == 4
    assert service.stats()["pending"] == pending  # nothing new queued
    counters = service.metrics()["metrics"]["counters"]
    assert counters["gateway_duplicates_total"] == 1
    # the next implicit seq continues after the explicit one
    assert service.handle(
        {"op": "submit", "raw": raw_to_json(_alert("ping", 2.0))}
    )["seq"] == 4


def test_eof_and_finish_are_idempotent(service):
    assert service.handle({"op": "eof", "source": "ping"})["ok"]
    retry = service.handle({"op": "eof", "source": "ping"})
    assert retry["ok"] is True and retry["duplicate"] is True
    for tool in CANONICAL_SOURCES:
        if tool != "ping":
            service.handle({"op": "eof", "source": tool})
    first = service.handle({"op": "finish"})
    again = service.handle({"op": "finish"})
    assert first["ok"] and again["ok"] and again["duplicate"] is True
    assert again["incidents"] == first["incidents"]


def test_submit_after_eof_is_rejected(service):
    service.handle({"op": "eof", "source": "ping"})
    reply = service.handle(
        {"op": "submit", "raw": raw_to_json(_alert("ping", 1.0))}
    )
    assert reply["ok"] is False and reply["kind"] == "SourceClosedError"


def test_unknown_op_and_missing_fields(service):
    assert service.handle({"op": "frobnicate"})["ok"] is False
    assert "missing field" in service.handle({"op": "advance"})["error"]
    assert service.handle({"op": "history", "cursor": -1})["ok"] is False


def test_eof_tracks_all_sources(service):
    for i, tool in enumerate(CANONICAL_SOURCES):
        reply = service.handle({"op": "eof", "source": tool})
        assert reply["ok"]
        assert reply["all_eof"] is (i == len(CANONICAL_SOURCES) - 1)


# ---------------------------------------------------------------------------
# backpressure: bounded queues shed through the admission books


def test_queue_overflow_sheds_and_is_accounted(service):
    # syslog never speaks, so ping's submissions all stay pending
    admitted = 0
    for i in range(7):
        reply = service.submit(_alert("ping", float(i), n=i))
        if reply["admitted"]:
            admitted += 1
        else:
            assert reply["shed"] == QUEUE_RUNG
    assert admitted == 4  # the queue_limit
    stats = service.stats()
    assert stats["pending"] == 4
    assert stats["sheds"].get(QUEUE_RUNG) == 3
    assert stats["offered"] == 3  # sheds are *offered* to the books too
    health = service.health()
    ping = health["sources"]["ping"]
    assert ping["submitted"] == 4 and ping["shed"] == 3 and ping["pending"] == 4
    counters = service.metrics()["metrics"]["counters"]
    assert counters["gateway_queue_shed_total"] == 3
    assert counters["gateway_submitted_total"] == 4


def test_shed_frees_up_after_release(service):
    for i in range(4):
        assert service.submit(_alert("ping", float(i), n=i))["admitted"]
    assert not service.submit(_alert("ping", 4.0, n=4))["admitted"]
    # releasing the backlog (every other source done) reopens the queue
    for tool in CANONICAL_SOURCES:
        if tool != "ping":
            service.eof(tool)
    assert service.stats()["pending"] <= 1  # only ping's frontier item holds
    assert service.submit(_alert("ping", 5.0, n=5))["admitted"]


# ---------------------------------------------------------------------------
# heartbeats


def test_advance_releases_without_submitting(service):
    assert service.submit(_alert("ping", 10.0))["released"] == 0
    for tool in CANONICAL_SOURCES:
        if tool not in ("ping", "syslog"):
            service.eof(tool)
    assert service.advance("syslog", 11.0)["released"] == 0  # ping gates itself
    assert service.advance("ping", 11.0)["released"] == 1
    reply = service.handle({"op": "advance", "source": "ping", "timestamp": 10.5})
    assert reply["ok"] is False and reply["kind"] == "SequenceError"
    health = service.health()
    assert health["sources"]["syslog"]["last_timestamp"] == 11.0


# ---------------------------------------------------------------------------
# event log + long-poll subscription


def _tiny_flood():
    """A small but real simulated flood on the tiny fabric."""
    from ..test_equivalence_flood import _device_down, _stream
    from .test_gateway_battery import _merged

    topo = build_topology(TopologySpec.tiny())
    state = NetworkState(topo)
    for cond in _device_down(sorted(topo.devices)[:3], start=30.0, duration=200.0):
        state.add_condition(cond)
    raws = _stream(topo, state, 300.0, seed=11)
    split, merged = _merged(raws)
    return topo, state, split, merged


def _flood_to_incident(service, split, merged) -> None:
    """Drive a real flood through the service and close out the stream."""
    for tool in CANONICAL_SOURCES:
        if tool not in split:
            service.eof(tool)
    for raw in merged:
        assert service.submit(raw)["admitted"]
    for tool in sorted(split):
        service.eof(tool)
    service.finish()


def test_event_log_cursors_and_history():
    topo, state, split, merged = _tiny_flood()
    set_incident_counter(1)
    service = GatewayService(
        topo, state=state, params=GatewayParams(queue_limit=10**6)
    )
    try:
        _flood_to_incident(service, split, merged)
        full = service.history()
        assert full["finished"] is True
        events = full["events"]
        assert events, "flood produced no incident events"
        assert [e["cursor"] for e in events] == list(range(len(events)))
        assert {e["kind"] for e in events} <= {"opened", "closed"}
        # resume-from-cursor returns exactly the tail
        tail = service.history(cursor=len(events) - 1)
        assert tail["events"] == events[-1:]
        assert tail["cursor"] == len(events)
        assert service.history(cursor=len(events))["events"] == []
        # opened events carry no end_time; closed events do
        for event in events:
            if event["kind"] == "opened":
                assert event["end_time"] is None
    finally:
        service.shutdown()


def test_subscribe_long_poll_wakes_on_events():
    topo, state, split, merged = _tiny_flood()
    set_incident_counter(1)
    service = GatewayService(
        topo, state=state, params=GatewayParams(queue_limit=10**6)
    )
    got: List[dict] = []

    def poller():
        got.append(service.subscribe(cursor=0, timeout_s=30.0))

    thread = threading.Thread(target=poller)
    try:
        thread.start()
        _flood_to_incident(service, split, merged)
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "subscriber never woke"
        assert got and got[0]["events"], "subscriber woke without events"
    finally:
        thread.join(timeout=1.0)
        service.shutdown()


def test_subscribe_timeout_returns_empty(service):
    reply = service.subscribe(cursor=0, timeout_s=0.05)
    assert reply["ok"] and reply["events"] == []
    assert reply["finished"] is False and reply["draining"] is False


def test_shutdown_wakes_subscribers_and_is_idempotent(service):
    woke = threading.Event()

    def poller():
        service.subscribe(cursor=0, timeout_s=30.0)
        woke.set()

    thread = threading.Thread(target=poller)
    thread.start()
    service.shutdown()
    assert woke.wait(timeout=5.0), "drain did not wake the long-poller"
    thread.join(timeout=1.0)
    assert service.shutdown()["ok"]  # second drain is a no-op
    reply = service.handle(
        {"op": "submit", "raw": raw_to_json(_alert("ping", 1.0))}
    )
    assert reply["ok"] is False and reply["kind"] == "SourceClosedError"


# ---------------------------------------------------------------------------
# query surfaces


def test_stats_and_health_shapes(service):
    stats = service.stats()
    assert stats["backend"] in ("inproc", "mp")
    assert stats["shards"] >= 1
    assert stats["finished"] is False and stats["draining"] is False
    service.submit(_alert("ping", 3.0))
    health = service.health()
    ping = health["sources"]["ping"]
    assert ping["watermark"] == 3.0 and ping["next_seq"] == 1
    # idle sources report null watermarks (-inf is not JSON)
    assert health["sources"]["syslog"]["watermark"] is None
    assert service.active()["incidents"] == []
    assert service.reports()["reports"] == []
    assert service.metrics()["ok"]
