"""Lifecycle gate: drain-checkpoint-shutdown, then resume, exactly.

The served incident stream must survive a mid-storm shutdown: a gateway
drained at an arbitrary point and resumed from its run directory must
finish the storm with **exactly** the reports and subscription events an
uninterrupted gateway serves.  The key mechanism under test is that the
sequencer's pending heap rides the checkpoint un-flushed (releasing it
at drain would break the total order against sources that keep
submitting after restart).

Two layers: the in-process test drives :meth:`GatewayService.shutdown` /
:meth:`GatewayService.resume` directly; the ``slow`` test sends a real
``SIGTERM`` to a real ``python -m repro.gateway serve`` process and
resumes it from the same directory (CI runs it).
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import time
from typing import List, Tuple

import pytest

import repro
from repro.gateway import GatewayClient, GatewayParams, GatewayService
from repro.runtime.checkpoint import set_incident_counter
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology

from ..test_equivalence_flood import _device_down, _stream
from .test_gateway_battery import _merged

PARAMS = GatewayParams(queue_limit=10**9)


def _flood():
    topo = build_topology(TopologySpec.tiny())
    state = NetworkState(topo)
    for cond in _device_down(sorted(topo.devices)[:3], start=30.0, duration=200.0):
        state.add_condition(cond)
    raws = _stream(topo, state, 300.0, seed=23)
    return topo, state, _merged(raws)


def _feed(service: GatewayService, split, raws) -> None:
    from repro.gateway.sources import SOURCE_PRIORITY

    for tool in sorted(SOURCE_PRIORITY):
        if tool not in split:
            service.eof(tool)
    for raw in raws:
        assert service.submit(raw)["admitted"]


def _close_out(service: GatewayService, split) -> Tuple[List, List]:
    for tool in sorted(split):
        service.eof(tool)
    service.finish()
    reports = [
        (r.incident.incident_id, r.score, r.urgent, r.render())
        for r in service.runtime.reports()
    ]
    events = [event.to_json() for event in service._events]
    return reports, events


def test_drain_and_resume_serves_the_exact_stream(tmp_path: pathlib.Path):
    topo, state, (split, merged) = _flood()
    cut = len(merged) // 2

    # the uninterrupted reference
    set_incident_counter(1)
    reference = GatewayService(topo, state=state, params=PARAMS)
    try:
        _feed(reference, split, merged)
        ref_reports, ref_events = _close_out(reference, split)
    finally:
        reference.shutdown()
    assert ref_reports, "flood produced no incidents -- not a useful gate"

    # the same storm, drained at 50% and resumed
    run_dir = tmp_path / "run"
    set_incident_counter(1)
    first = GatewayService(topo, state=state, directory=run_dir, params=PARAMS)
    _feed(first, split, merged[:cut])
    pre_stats = first.stats()
    first.shutdown()
    assert pre_stats["pending"] > 0, "drain point held nothing -- weak test"

    resumed = GatewayService.resume(
        topo, run_dir, state=state, params=PARAMS
    )
    try:
        post_stats = resumed.stats()
        assert post_stats["pending"] == pre_stats["pending"]
        assert post_stats["events"] == pre_stats["events"]
        assert post_stats["seq"] == pre_stats["seq"]
        # registry state survived: next submission continues the seq space
        for raw in merged[cut:]:
            assert resumed.submit(raw)["admitted"]
        reports, events = _close_out(resumed, split)
    finally:
        resumed.shutdown()

    assert reports == ref_reports
    assert events == ref_events


def test_resume_requires_a_directory():
    topo = build_topology(TopologySpec.tiny())
    with pytest.raises(ValueError):
        GatewayService(topo, resume=True)


# ---------------------------------------------------------------------------
# the real thing: SIGTERM against a served process, then resume


def _spawn(args: List[str], cwd: pathlib.Path) -> subprocess.Popen:
    src = pathlib.Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.gateway", *args],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _await_port(port_file: pathlib.Path, proc: subprocess.Popen) -> Tuple[str, int]:
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(f"serve died early:\n{proc.stdout.read()}")
        if port_file.exists() and port_file.read_text().strip():
            host, port = port_file.read_text().split()
            return host, int(port)
        time.sleep(0.05)
    raise AssertionError("gateway never wrote its port file")


@pytest.mark.slow
def test_sigterm_mid_storm_then_resume(tmp_path: pathlib.Path):
    run_dir = tmp_path / "run"
    port_file = tmp_path / "port"

    serve = _spawn(
        [
            "serve", "--topology", "tiny", "--dir", str(run_dir),
            "--port-file", str(port_file),
        ],
        cwd=tmp_path,
    )
    try:
        host, port = _await_port(port_file, serve)
        ingest = _spawn(
            [
                "ingest", "--topology", "tiny", "--duration", "300",
                "--port", str(port), "--no-finish",
            ],
            cwd=tmp_path,
        )
        assert ingest.wait(timeout=120) == 0, ingest.stdout.read()
        with GatewayClient(host, port, timeout_s=10.0) as client:
            stats = client.request({"op": "stats"})
            assert stats["ok"]
        assert int(stats["offered"]) > 0 or int(stats["pending"]) > 0

        serve.send_signal(signal.SIGTERM)
        out, _ = serve.communicate(timeout=60)
        assert serve.returncode == 0, out
        assert "gateway drained" in out

        # resume from the drained directory and finish the storm
        port_file.unlink()
        resumed = _spawn(
            [
                "serve", "--topology", "tiny", "--dir", str(run_dir),
                "--resume", "--port-file", str(port_file),
            ],
            cwd=tmp_path,
        )
        host, port = _await_port(port_file, resumed)
        with GatewayClient(host, port, timeout_s=10.0) as client:
            after = client.request({"op": "stats"})
            assert after["ok"]
            assert after["pending"] == stats["pending"]
            assert after["events"] == stats["events"]
            reply = client.request({"op": "finish"})
            assert reply["ok"]
        resumed.send_signal(signal.SIGTERM)
        out, _ = resumed.communicate(timeout=60)
        assert resumed.returncode == 0, out
        assert "gateway drained" in out
    finally:
        for proc in (serve, locals().get("resumed"), locals().get("ingest")):
            if proc is not None and proc.poll() is None:
                proc.kill()
