"""End-to-end fault tolerance gate: chaos on the wire AND in the shards.

The flagship robustness battery: every flood scenario is served through
the *real socket transport* while a seeded
:class:`~repro.gateway.netchaos.ChaosTransport` injects connection
resets, stalled sends, torn frames, stale re-deliveries, duplicated
submissions and dropped replies -- all below the client's retry budget
-- and a :class:`~repro.runtime.faults.ChaosPlan` simultaneously fires a
correlated multi-shard crash that destroys part of the per-shard
recovery snapshots.  The served incident reports must still be
**byte-identical, ids included**, to a fault-free offline replay: the
resilient client retries/reconnects, the service dedupes replays on
per-source seqs, and the runtime rebuilds snapshot-less shards from the
durable checkpoint + journal tail.

Alongside the battery: the empty-plan inertness proof (no chaos
machinery, zero RNG draws, zero counters), the session-resume contract
(a reconnecting ingestor re-offers only what the gateway never took),
and the degraded tier (journal fault-exhausted -> empty heal with
confidence-stamped incidents -- loud, deterministic, still serving).
"""

from __future__ import annotations

import dataclasses
import pathlib
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.core.config import PRODUCTION_CONFIG
from repro.gateway import (
    ChaosTransport,
    GatewayClient,
    GatewayIngestSession,
    GatewayParams,
    GatewayService,
    GatewaySocketServer,
    NetChaosPlan,
    SOURCE_PRIORITY,
    empty_net_plan,
    net_chaos_or_none,
)
from repro.monitors.base import RawAlert
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.faults import ChaosPlan, CorrelatedCrash, IOFault
from repro.runtime.service import RuntimeService
from repro.simulation.state import NetworkState

from ..test_equivalence_flood import SCENARIO_IDS, SCENARIOS, FloodScenario
from .test_gateway_battery import SHARD_COUNTS, Report, _hard_flood, _merged

#: Every wire fault class at once, each below the retry budget: with
#: five attempts per request, even the hard-failure classes (reset,
#: stall, torn, drop_reply; ~8% combined) cannot plausibly exhaust it.
NET_PLAN = NetChaosPlan(
    reset_rate=0.02,
    stall_rate=0.02,
    torn_rate=0.02,
    stale_rate=0.04,
    duplicate_rate=0.04,
    drop_reply_rate=0.02,
    seed=13,
)

#: Unbounded queues (identity needs zero sheds) + near-zero wall-clock
#: backoff so injected faults cost microseconds, not test minutes.
CHAOS_PARAMS = GatewayParams(
    queue_limit=10**9,
    client_backoff_base_s=0.0005,
    client_backoff_max_s=0.005,
)


def _config(shards: int, backend: str):
    return dataclasses.replace(
        PRODUCTION_CONFIG,
        fast_path=True,
        runtime=dataclasses.replace(
            PRODUCTION_CONFIG.runtime,
            shards=shards,
            backend=backend,
            checkpoint_interval_s=120.0,
        ),
    )


def _offline_reference(
    topo, state: NetworkState, merged: Sequence[RawAlert]
) -> List[Report]:
    """Ground truth: unsharded, chaos-free, offline."""
    set_incident_counter(1)
    runtime = RuntimeService(
        topo,
        config=dataclasses.replace(PRODUCTION_CONFIG, fast_path=True),
        state=state,
    )
    for raw in merged:
        runtime.ingest(raw)
    runtime.pipeline.finish()
    return [
        (r.incident.incident_id, r.score, r.urgent, r.render())
        for r in runtime.reports()
    ]


def _correlated_plan(shards: int, at: float) -> ChaosPlan:
    """Kill a majority of the shards together; lose every snapshot."""
    victims = tuple(range(max(1, shards - 1)))
    return ChaosPlan(
        correlated_crashes=(
            CorrelatedCrash(at=at, shards=victims, lose_snapshots=victims),
        )
    )


def _socket_run(
    topo,
    state: Optional[NetworkState],
    split: Dict[str, List[RawAlert]],
    merged: Sequence[RawAlert],
    shards: int,
    backend: str,
    net_plan: Optional[NetChaosPlan] = None,
    chaos: Optional[ChaosPlan] = None,
    directory: Optional[pathlib.Path] = None,
    run_seed: int = 0,
) -> Tuple[List[Report], Dict[str, object]]:
    """Serve one flood over a real socket; return (reports, telemetry)."""
    set_incident_counter(1)
    service = GatewayService(
        topo,
        config=_config(shards, backend),
        state=state,
        directory=directory,
        chaos=chaos,
        run_seed=run_seed,
        params=CHAOS_PARAMS,
    )
    server = GatewaySocketServer(service.handle, CHAOS_PARAMS)
    server.start()
    wire = (
        ChaosTransport(net_plan, run_seed=run_seed)
        if net_chaos_or_none(net_plan) is not None
        else None
    )
    try:
        host, port = server.address
        with GatewayClient(
            host,
            port,
            timeout_s=10.0,
            params=CHAOS_PARAMS,
            run_seed=run_seed,
            net_chaos=wire,
        ) as client:
            session = GatewayIngestSession(client)
            session.resync()
            for tool in sorted(SOURCE_PRIORITY):
                if tool not in split:
                    session.eof(tool)
            for raw in merged:
                reply = session.submit(raw)
                assert reply["ok"] and reply["admitted"], reply
            for tool in sorted(split):
                session.eof(tool)
            session.finish()
            reports = client.request({"op": "reports"})["reports"]
            metrics = client.request({"op": "metrics"})["metrics"]
            telemetry: Dict[str, object] = {
                "retries": client.retries,
                "reconnects": client.reconnects,
                "duplicates_acked": session.duplicates,
                "injected": wire.injected() if wire is not None else 0,
                "counters": metrics["counters"],  # type: ignore[index]
            }
        return (
            [
                (r["incident_id"], r["score"], r["urgent"], r["render"])
                for r in reports  # type: ignore[union-attr]
            ],
            telemetry,
        )
    finally:
        server.stop()
        service.shutdown()


def _check_chaos_battery(scenario: FloodScenario, backend: str) -> None:
    """Net faults on the wire + a correlated crash in the shards, and the
    served reports must still match the fault-free offline reference."""
    topo, state, raws = scenario.build()
    split, merged = _merged(raws)
    reference = _offline_reference(topo, state, merged)
    if scenario.require_incidents:
        assert reference, "scenario produced no incidents -- not a useful gate"
    mid = merged[len(merged) // 2].delivered_at if merged else 0.0
    for shards in SHARD_COUNTS:
        with tempfile.TemporaryDirectory() as tmp:
            reports, telemetry = _socket_run(
                topo,
                state,
                split,
                merged,
                shards,
                backend,
                net_plan=NET_PLAN,
                chaos=_correlated_plan(shards, at=mid),
                directory=pathlib.Path(tmp),
            )
        assert reports == reference, f"backend={backend} shards={shards}"
        counters = telemetry["counters"]
        if merged:
            assert counters.get("runtime_correlated_crashes_total", 0) >= 1  # type: ignore[union-attr]
        if len(merged) > 100:
            # a real flood must actually see faults, or the gate is a
            # placebo; duplicates acked proves the dedupe path fired
            assert telemetry["injected"] > 0  # type: ignore[operator]
        # a degraded heal would mean the rebuild silently failed
        assert not counters.get("runtime_shard_degraded_heals_total")  # type: ignore[union-attr]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIO_IDS)
def test_full_battery_socket_chaos_inproc(scenario: FloodScenario):
    _check_chaos_battery(scenario, "inproc")


@pytest.mark.slow
@pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIO_IDS)
def test_full_battery_socket_chaos_mp(scenario: FloodScenario):
    _check_chaos_battery(scenario, "mp")


def test_hard_flood_socket_chaos_mp():
    """Tier-1 mp coverage: worker processes really die (SIGKILL) and the
    lost shards are rebuilt from checkpoint + journal, under net chaos."""
    topo, state, raws = _hard_flood(seed=7, n_down=3)
    split, merged = _merged(raws)
    reference = _offline_reference(topo, state, merged)
    assert reference
    mid = merged[len(merged) // 2].delivered_at
    for shards in (2, 4):
        with tempfile.TemporaryDirectory() as tmp:
            reports, telemetry = _socket_run(
                topo,
                state,
                split,
                merged,
                shards,
                "mp",
                net_plan=NET_PLAN,
                chaos=_correlated_plan(shards, at=mid),
                directory=pathlib.Path(tmp),
            )
        assert reports == reference, f"mp shards={shards}"
        assert telemetry["injected"] > 0  # type: ignore[operator]


# ---------------------------------------------------------------------------
# empty-plan inertness: no machinery, no draws, no counters


def test_empty_net_plan_normalises_to_none():
    assert empty_net_plan().is_empty()
    assert net_chaos_or_none(empty_net_plan()) is None
    assert net_chaos_or_none(None) is None
    plan = NetChaosPlan(reset_rate=0.1)
    assert net_chaos_or_none(plan) is plan


def test_empty_plan_transport_is_pure_passthrough():
    wire = ChaosTransport(empty_net_plan())
    assert wire._rng is None  # no RNG even exists: zero draws possible
    sent: List[bytes] = []
    reply = wire.exchange(sent.append, lambda: b'{"ok":true}\n', b"frame\n", True)
    assert sent == [b"frame\n"] and reply == b'{"ok":true}\n'
    assert wire.injected() == 0 and all(v == 0 for v in wire.counts.values())


def test_chaos_free_socket_run_touches_no_resilience_paths():
    """Without a net plan the full serving path runs fault-free: zero
    retries, zero reconnects, zero duplicate acks, no chaos counters."""
    topo, state, raws = _hard_flood(seed=7, n_down=3)
    split, merged = _merged(raws)
    reference = _offline_reference(topo, state, merged)
    reports, telemetry = _socket_run(
        topo, state, split, merged, shards=2, backend="inproc"
    )
    assert reports == reference
    assert telemetry["retries"] == 0
    assert telemetry["reconnects"] == 0
    assert telemetry["duplicates_acked"] == 0
    assert "gateway_duplicates_total" not in telemetry["counters"]  # type: ignore[operator]


# ---------------------------------------------------------------------------
# session resume: a restarted ingestor re-offers only what was never taken


@pytest.mark.parametrize("mode", ["resync_skip", "replay_from_start"])
def test_session_resume_never_double_ingests(mode: str):
    """A producer that dies mid-flood and restarts must end byte-identical.

    Two legal resume protocols: ``resync_skip`` learns each source's
    consumed frontier and skips exactly that substream prefix (zero
    duplicates on the wire -- what the ingest CLI does);
    ``replay_from_start`` resends everything with fresh counters and
    relies on the server draining the consumed prefix as duplicate acks.
    """
    topo, state, raws = _hard_flood(seed=7, n_down=3)
    split, merged = _merged(raws)
    reference = _offline_reference(topo, state, merged)
    cut = len(merged) // 2

    set_incident_counter(1)
    service = GatewayService(
        topo, config=_config(2, "inproc"), state=state, params=CHAOS_PARAMS
    )
    server = GatewaySocketServer(service.handle, CHAOS_PARAMS)
    server.start()
    try:
        host, port = server.address
        with GatewayClient(host, port, timeout_s=10.0) as first:
            session = GatewayIngestSession(first)
            for tool in sorted(SOURCE_PRIORITY):
                if tool not in split:
                    session.eof(tool)
            for raw in merged[:cut]:
                assert session.submit(raw)["admitted"]
        # the ingestor dies; a fresh one must finish the flood without
        # double-ingesting the half the gateway already consumed
        with GatewayClient(host, port, timeout_s=10.0) as second:
            session = GatewayIngestSession(second)
            if mode == "resync_skip":
                frontiers = session.resync()
                assert sum(frontiers.values()) == cut
                trimmed = {
                    tool: substream[frontiers.get(tool, 0):]
                    for tool, substream in split.items()
                }
                _split2, replay = _merged(
                    [raw for s in trimmed.values() for raw in s]
                )
            else:
                replay = list(merged)  # fresh counters, full resend
            for raw in replay:
                reply = session.submit(raw)
                assert reply["ok"] and reply["admitted"], reply
            if mode == "resync_skip":
                assert session.duplicates == 0
                assert session.submitted == len(merged) - cut
            else:
                assert session.duplicates == cut
                assert session.submitted == len(merged) - cut
            for tool in sorted(split):
                session.eof(tool)
            session.finish()
            reports = [
                (r["incident_id"], r["score"], r["urgent"], r["render"])
                for r in second.request({"op": "reports"})["reports"]  # type: ignore[union-attr]
            ]
            counters = second.request({"op": "metrics"})["metrics"]["counters"]  # type: ignore[index]
    finally:
        server.stop()
        service.shutdown()
    assert reports == reference
    if mode == "replay_from_start":
        assert counters.get("gateway_duplicates_total", 0) == cut  # type: ignore[union-attr]


# ---------------------------------------------------------------------------
# the degraded tier: journal fault-exhausted -> loud, stamped, serving


def test_degraded_heal_stamps_confidence_and_keeps_serving():
    topo, state, raws = _hard_flood(seed=7, n_down=3)
    split, merged = _merged(raws)
    mid = merged[len(merged) // 2].delivered_at
    chaos = ChaosPlan(
        correlated_crashes=(
            CorrelatedCrash(at=mid, shards=(0, 1), lose_snapshots=(0, 1)),
        ),
        # the rebuild's journal scan is fault-exhausted: recovery must
        # fall through to the admitted-data-loss tier
        io_faults=(
            IOFault(op="journal_read", start=0.0, end=10**9, permanent=True),
        ),
    )
    with tempfile.TemporaryDirectory() as tmp:
        reports, telemetry = _socket_run(
            topo,
            state,
            split,
            merged,
            shards=2,
            backend="inproc",
            chaos=chaos,
            directory=pathlib.Path(tmp),
        )
    counters = telemetry["counters"]
    assert counters.get("runtime_shard_degraded_heals_total") == 2  # type: ignore[union-attr]
    assert counters.get("runtime_data_loss_stamped_incidents_total", 0) >= 1  # type: ignore[union-attr]
    stamped = [r for r in reports if "degraded:" in r[3]]
    assert stamped, "data loss must be visible in the served renders"
    assert any("data-loss" in r[3] for r in stamped)
