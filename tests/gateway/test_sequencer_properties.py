"""Hypothesis battery for the deterministic sequencer.

The gateway's byte-identity guarantee reduces to one claim: the order in
which the sequencer releases alerts is a pure function of the *set* of
submissions, never of their arrival interleaving.  These properties pin
that claim directly, below the service layer:

* any two interleavings of the same per-source substreams release the
  identical total order ``(timestamp, source_priority, seq)``;
* a ``state_dict``/``load_state_dict`` round-trip at an arbitrary point
  mid-stream changes nothing about the remaining releases (the resume
  path's core assumption);
* online releases never outrun the watermark frontier, and the frontier
  is monotone.

Payloads are the key triples themselves, so equality checks compare the
full release order, not just its length.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.gateway.sequencer import DeterministicSequencer
from repro.gateway.sources import (
    SequenceError,
    SourceClosedError,
    UnknownSourceError,
)

PRIORITIES = {"ping": 0, "syslog": 1, "traceroute": 2}

Key = Tuple[int, int, int]


def _expected_order(subs: Dict[str, List[int]]) -> List[Key]:
    return sorted(
        (t, PRIORITIES[s], i) for s, ts in subs.items() for i, t in enumerate(ts)
    )


def _drive(
    subs: Dict[str, List[int]],
    arrival: Sequence[str],
    eof_order: Sequence[str],
) -> Tuple[List[Key], int]:
    """Run one interleaving; return (full release order, #released online)."""
    seq: DeterministicSequencer[Key] = DeterministicSequencer(PRIORITIES)
    cursors = {s: 0 for s in PRIORITIES}
    released: List[Key] = []
    frontier = seq.frontier()
    for source in arrival:
        i = cursors[source]
        cursors[source] += 1
        t = subs[source][i]
        out = seq.submit(source, float(t), i, (t, PRIORITIES[source], i))
        # frontier is monotone, and releases stay strictly below it
        assert seq.frontier() >= frontier
        frontier = seq.frontier()
        assert all(key[0] < frontier for key in out)
        released.extend(out)
    online = len(released)
    for source in eof_order:
        released.extend(seq.eof(source))
    assert seq.pending() == 0
    return released, online


@st.composite
def two_interleavings(draw):
    subs = {
        s: sorted(draw(st.lists(st.integers(0, 30), max_size=8)))
        for s in sorted(PRIORITIES)
    }
    labels = [s for s in sorted(subs) for _ in subs[s]]
    return (
        subs,
        (draw(st.permutations(labels)), draw(st.permutations(sorted(PRIORITIES)))),
        (draw(st.permutations(labels)), draw(st.permutations(sorted(PRIORITIES)))),
    )


@given(two_interleavings())
@settings(max_examples=200, deadline=None)
def test_release_order_is_arrival_invariant(case):
    subs, run_a, run_b = case
    released_a, _ = _drive(subs, *run_a)
    released_b, _ = _drive(subs, *run_b)
    expected = _expected_order(subs)
    assert released_a == expected
    assert released_b == expected


@st.composite
def checkpointed_run(draw):
    subs = {
        s: sorted(draw(st.lists(st.integers(0, 30), max_size=8)))
        for s in sorted(PRIORITIES)
    }
    labels = [s for s in sorted(subs) for _ in subs[s]]
    arrival = draw(st.permutations(labels))
    cut = draw(st.integers(0, len(arrival)))
    return subs, arrival, cut


@given(checkpointed_run())
@settings(max_examples=200, deadline=None)
def test_state_roundtrip_mid_stream_preserves_order(case):
    """Checkpoint + restore at any point is invisible to the release order."""
    subs, arrival, cut = case
    seq: DeterministicSequencer[Key] = DeterministicSequencer(PRIORITIES)
    cursors = {s: 0 for s in PRIORITIES}
    released: List[Key] = []
    for step, source in enumerate(arrival):
        if step == cut:
            clone: DeterministicSequencer[Key] = DeterministicSequencer(PRIORITIES)
            clone.load_state_dict(seq.state_dict())
            assert clone.watermarks() == seq.watermarks()
            assert clone.pending() == seq.pending()
            seq = clone
        i = cursors[source]
        cursors[source] += 1
        t = subs[source][i]
        released.extend(seq.submit(source, float(t), i, (t, PRIORITIES[source], i)))
    # restore once more before the drain, then eof everything
    clone = DeterministicSequencer(PRIORITIES)
    clone.load_state_dict(seq.state_dict())
    for source in sorted(PRIORITIES):
        released.extend(clone.eof(source))
    assert released == _expected_order(subs)


@given(checkpointed_run())
@settings(max_examples=100, deadline=None)
def test_heartbeats_never_change_the_order(case):
    """Interleaving ``advance`` heartbeats anywhere leaves the order alone."""
    subs, arrival, cut = case
    seq: DeterministicSequencer[Key] = DeterministicSequencer(PRIORITIES)
    cursors = {s: 0 for s in PRIORITIES}
    released: List[Key] = []
    for step, source in enumerate(arrival):
        i = cursors[source]
        cursors[source] += 1
        t = subs[source][i]
        released.extend(seq.submit(source, float(t), i, (t, PRIORITIES[source], i)))
        if step == cut:
            # every source re-asserts its current watermark: a no-op
            for s in sorted(PRIORITIES):
                released.extend(seq.advance(s, seq.watermark(s)))
    for source in sorted(PRIORITIES):
        released.extend(seq.eof(source))
    assert released == _expected_order(subs)


# ---------------------------------------------------------------------------
# deterministic edge cases


def test_frontier_is_strict():
    """An item *at* the frontier is withheld: a source sitting exactly at
    the frontier may still submit at that timestamp with a winning rank."""
    seq: DeterministicSequencer[str] = DeterministicSequencer(PRIORITIES)
    seq.eof("traceroute")
    assert seq.submit("ping", 5.0, 0, "ping@5") == []
    assert seq.submit("syslog", 5.0, 0, "syslog@5") == []
    assert seq.pending() == 2  # both sit at the frontier, neither releases
    assert seq.frontier() == 5.0
    # lifting both watermarks past 5 releases both, priority order
    assert seq.advance("ping", 6.0) == []
    assert seq.advance("syslog", 6.0) == ["ping@5", "syslog@5"]


def test_quiet_source_gates_until_heartbeat_or_eof():
    seq: DeterministicSequencer[str] = DeterministicSequencer(PRIORITIES)
    assert seq.submit("ping", 10.0, 0, "a") == []
    assert seq.submit("syslog", 10.0, 0, "b") == []
    assert seq.frontier() == float("-inf")  # traceroute never spoke
    assert seq.advance("traceroute", 11.0) == []  # submitters gate themselves
    assert seq.advance("ping", 11.0) == []
    assert seq.advance("syslog", 11.0) == ["a", "b"]


def test_eof_all_drains_everything_in_key_order():
    seq: DeterministicSequencer[str] = DeterministicSequencer(PRIORITIES)
    seq.submit("syslog", 3.0, 0, "s3")
    seq.submit("ping", 3.0, 0, "p3")
    seq.submit("ping", 7.0, 1, "p7")
    out: List[str] = []
    for source in ("traceroute", "ping", "syslog"):
        out.extend(seq.eof(source))
    assert out == ["p3", "s3", "p7"]
    assert seq.frontier() == float("inf")


def test_flush_drains_in_key_order():
    seq: DeterministicSequencer[str] = DeterministicSequencer(PRIORITIES)
    seq.submit("syslog", 9.0, 0, "s9")
    seq.submit("ping", 9.0, 0, "p9")
    seq.submit("ping", 12.0, 1, "p12")
    assert seq.flush() == ["p9", "s9", "p12"]
    assert seq.pending() == 0
    assert seq.pending_for("ping") == 0


def test_validation_errors():
    seq: DeterministicSequencer[str] = DeterministicSequencer(PRIORITIES)
    with pytest.raises(UnknownSourceError):
        seq.submit("sflow", 1.0, 0, "x")
    with pytest.raises(UnknownSourceError):
        seq.advance("sflow", 1.0)
    with pytest.raises(UnknownSourceError):
        seq.eof("sflow")
    seq.submit("ping", 5.0, 0, "x")
    with pytest.raises(SequenceError):
        seq.submit("ping", 4.0, 1, "y")  # timestamp regression
    with pytest.raises(SequenceError):
        seq.advance("ping", 4.0)  # heartbeat regression
    seq.eof("ping")
    with pytest.raises(SourceClosedError):
        seq.submit("ping", 6.0, 1, "z")
    with pytest.raises(SourceClosedError):
        seq.advance("ping", 6.0)
    with pytest.raises(SourceClosedError):
        seq.eof("ping")
    assert seq.watermark("ping") == float("inf")
