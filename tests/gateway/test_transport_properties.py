"""Property-based gate on the wire codec: whatever JSON object a peer
builds, ``decode_frame(encode_frame(m))`` must hand back the same object,
the encoding must be canonical (byte-stable and order-insensitive), and
the newline framing must survive arbitrary TCP chunking.

Hypothesis drives the message space; the deterministic frame format
(sorted keys, compact separators, utf-8, one line per frame) is what
makes the chaos batteries' byte-identity assertions possible at all.
"""

from __future__ import annotations

import json
from typing import List

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.gateway.transport import decode_frame, encode_frame  # noqa: E402

#: JSON scalars a gateway peer can legally put in a frame.  NaN/inf are
#: excluded: ``json.dumps`` would emit non-standard tokens for them.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)

_messages = st.dictionaries(st.text(max_size=12), _values, max_size=8)


@given(message=_messages)
def test_round_trip_is_identity(message):
    assert decode_frame(encode_frame(message)) == message


@given(message=_messages)
def test_encoding_is_canonical_and_newline_terminated(message):
    frame = encode_frame(message)
    assert frame.endswith(b"\n")
    assert b"\n" not in frame[:-1], "one frame must be exactly one line"
    # canonical: re-encoding the decoded message reproduces the bytes
    assert encode_frame(decode_frame(frame)) == frame


@given(message=st.dictionaries(st.text(max_size=8), _scalars, min_size=2, max_size=6))
def test_encoding_is_key_order_insensitive(message):
    shuffled = dict(reversed(list(message.items())))
    assert encode_frame(message) == encode_frame(shuffled)


@given(
    messages=st.lists(_messages, min_size=1, max_size=5),
    cuts=st.lists(st.integers(min_value=1, max_value=7), max_size=30),
)
def test_framing_survives_arbitrary_tcp_chunking(messages, cuts):
    """Concatenate frames, re-split at arbitrary byte boundaries, and the
    line-per-frame discipline must still recover every message."""
    wire = b"".join(encode_frame(m) for m in messages)
    chunks: List[bytes] = []
    pos = 0
    for cut in cuts:
        if pos >= len(wire):
            break
        chunks.append(wire[pos:pos + cut])
        pos += cut
    chunks.append(wire[pos:])
    buffer = b""
    decoded = []
    for chunk in chunks:
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            decoded.append(decode_frame(line))
    assert buffer == b"", "a terminated stream leaves no partial frame"
    assert decoded == messages


@given(message=_messages, slack=st.integers(min_value=0, max_value=8))
def test_max_bytes_cap_is_exact(message, slack):
    frame = encode_frame(message)
    assert encode_frame(message, max_bytes=len(frame) + slack) == frame
    with pytest.raises(ValueError):
        encode_frame(message, max_bytes=len(frame) - 1)


@given(junk=st.binary(max_size=40))
@settings(max_examples=200)
def test_decode_never_hangs_or_crashes_on_junk(junk):
    """Garbage in -> ValueError out (or a valid object), never a wedge."""
    try:
        decoded = decode_frame(junk)
    except (ValueError, UnicodeDecodeError):
        return
    assert isinstance(decoded, dict)
    assert json.loads(junk.decode("utf-8")) == decoded


@given(payload=st.one_of(_scalars, st.lists(_scalars, max_size=3)))
def test_non_object_frames_are_rejected_both_ways(payload):
    with pytest.raises(ValueError):
        encode_frame(payload)  # type: ignore[arg-type]
    line = json.dumps(payload).encode("utf-8")
    with pytest.raises(ValueError):
        decode_frame(line)
