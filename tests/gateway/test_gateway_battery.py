"""The gateway's flagship differential gate: online == offline, ids included.

Every scenario of the flood battery is pushed through a
:class:`~repro.gateway.service.GatewayService` over the loopback
transport -- so each alert round-trips the real wire encoding -- and the
served incident reports must be **byte-identical, incident ids
included**, to an offline :class:`~repro.runtime.service.RuntimeService`
replay of the same admitted stream.  The comparison runs at shard counts
{1, 2, 4}; the ``inproc`` backend covers the full battery in tier 1 and
the ``mp`` backend covers two hard cross-region floods in tier 1 plus
the full battery under ``-m slow`` (CI runs it).

The gateway-specific half of the claim -- release order is independent
of how source submissions *interleave* -- is pinned here at service
level too: a per-source round-robin arrival produces the same reports
and the same subscription event log as the merged arrival.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core.config import PRODUCTION_CONFIG
from repro.gateway import GatewayParams, GatewayService, LoopbackTransport
from repro.gateway.cli import _substreams
from repro.gateway.sources import SOURCE_PRIORITY
from repro.monitors.base import RawAlert
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.journal import raw_to_json
from repro.runtime.service import RuntimeService
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology

from ..test_equivalence_flood import (
    SCENARIO_IDS,
    SCENARIOS,
    FloodScenario,
    _device_down,
    _stream,
)

SHARD_COUNTS = (1, 2, 4)

#: Identity requires zero queue sheds (a shed alert is absent offline),
#: so the battery runs the gateway effectively unbounded.
UNBOUNDED = GatewayParams(queue_limit=10**9)

Report = Tuple[str, float, bool, str]


def _config(shards: int, backend: str):
    return dataclasses.replace(
        PRODUCTION_CONFIG,
        fast_path=True,
        runtime=dataclasses.replace(
            PRODUCTION_CONFIG.runtime, shards=shards, backend=backend
        ),
    )


def _merged(raws: Sequence[RawAlert]) -> Tuple[Dict[str, List[RawAlert]], List[RawAlert]]:
    """Per-source substreams + their deterministic merged order."""
    split = _substreams(list(raws))
    merged = [
        raw
        for _t, _p, raw in heapq.merge(
            *(
                ((r.timestamp, SOURCE_PRIORITY[tool], r) for r in substream)
                for tool, substream in sorted(split.items())
            )
        )
    ]
    return split, merged


def _offline_reference(topo, state: NetworkState, merged: Sequence[RawAlert]) -> List[Report]:
    """The ground truth: an unsharded offline runtime fed the same order."""
    set_incident_counter(1)
    runtime = RuntimeService(
        topo, config=dataclasses.replace(PRODUCTION_CONFIG, fast_path=True),
        state=state,
    )
    for raw in merged:
        runtime.ingest(raw)
    runtime.pipeline.finish()
    return [
        (r.incident.incident_id, r.score, r.urgent, r.render())
        for r in runtime.reports()
    ]


def _gateway_run(
    topo,
    state: NetworkState,
    split: Dict[str, List[RawAlert]],
    merged: Sequence[RawAlert],
    shards: int,
    backend: str,
) -> Tuple[List[Report], List[Dict[str, object]], int]:
    """Serve the flood through loopback; return (reports, events, #online)."""
    set_incident_counter(1)
    service = GatewayService(
        topo, config=_config(shards, backend), state=state, params=UNBOUNDED
    )
    transport = LoopbackTransport(service.handle)
    try:
        for tool in sorted(SOURCE_PRIORITY):
            if tool not in split:
                assert transport.request({"op": "eof", "source": tool})["ok"]
        online = 0
        for raw in merged:
            reply = transport.request({"op": "submit", "raw": raw_to_json(raw)})
            assert reply["ok"] and reply["admitted"], reply
            online += int(reply["released"])  # type: ignore[arg-type]
        for tool in sorted(split):
            assert transport.request({"op": "eof", "source": tool})["ok"]
        assert transport.request({"op": "finish"})["ok"]
        reports = transport.request({"op": "reports"})["reports"]
        events = transport.request({"op": "history"})["events"]
        return (
            [
                (r["incident_id"], r["score"], r["urgent"], r["render"])
                for r in reports  # type: ignore[union-attr]
            ],
            events,  # type: ignore[return-value]
            online,
        )
    finally:
        service.shutdown()


def _check_battery(scenario: FloodScenario, backend: str) -> None:
    topo, state, raws = scenario.build()
    split, merged = _merged(raws)
    reference = _offline_reference(topo, state, merged)
    if scenario.require_incidents:
        assert reference, "scenario produced no incidents -- not a useful gate"
    events0 = None
    for shards in SHARD_COUNTS:
        reports, events, online = _gateway_run(
            topo, state, split, merged, shards, backend
        )
        assert reports == reference, f"backend={backend} shards={shards}"
        # with >1 live source the watermark frontier streams most of the
        # flood online, before the end-of-stream flush
        if len(split) > 1 and len(merged) > 10:
            assert online > 0, "nothing released before finish"
        if events0 is None:
            events0 = events
        else:
            assert events == events0, f"backend={backend} shards={shards}"


@pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIO_IDS)
def test_full_battery_loopback_inproc(scenario: FloodScenario):
    _check_battery(scenario, "inproc")


@pytest.mark.slow
@pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIO_IDS)
def test_full_battery_loopback_mp(scenario: FloodScenario):
    _check_battery(scenario, "mp")


# ---------------------------------------------------------------------------
# tier-1 mp coverage: the hard cross-region floods through worker processes


def _hard_flood(seed: int, n_down: int):
    import random

    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(seed)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    for cond in _device_down(devices[:n_down], start=40.0, duration=400.0):
        state.add_condition(cond)
    return topo, state, _stream(topo, state, 600.0, seed)


@pytest.mark.parametrize("seed,n_down", [(7, 3), (4, 20)])
def test_hard_flood_loopback_mp(seed, n_down):
    topo, state, raws = _hard_flood(seed, n_down)
    split, merged = _merged(raws)
    reference = _offline_reference(topo, state, merged)
    assert reference
    for shards in SHARD_COUNTS:
        reports, _events, _online = _gateway_run(
            topo, state, split, merged, shards, "mp"
        )
        assert reports == reference, f"mp shards={shards}"


# ---------------------------------------------------------------------------
# arrival-interleaving invariance at service level


def test_round_robin_arrival_matches_merged_arrival():
    """A per-source round-robin arrival (each source submitting its own
    substream in its own clock order) serves the same reports *and* the
    same subscription event log as the merged arrival."""
    topo, state, raws = _hard_flood(seed=7, n_down=3)
    split, merged = _merged(raws)
    ref_reports, ref_events, _ = _gateway_run(
        topo, state, split, merged, shards=2, backend="inproc"
    )

    set_incident_counter(1)
    service = GatewayService(
        topo, config=_config(2, "inproc"), state=state, params=UNBOUNDED
    )
    transport = LoopbackTransport(service.handle)
    try:
        for tool in sorted(SOURCE_PRIORITY):
            if tool not in split:
                transport.request({"op": "eof", "source": tool})
        cursors = {tool: 0 for tool in split}
        remaining = sum(len(s) for s in split.values())
        while remaining:
            for tool in sorted(split):
                i = cursors[tool]
                if i >= len(split[tool]):
                    continue
                cursors[tool] = i + 1
                remaining -= 1
                reply = transport.request(
                    {"op": "submit", "raw": raw_to_json(split[tool][i])}
                )
                assert reply["ok"] and reply["admitted"], reply
        for tool in sorted(split):
            transport.request({"op": "eof", "source": tool})
        transport.request({"op": "finish"})
        reports = [
            (r["incident_id"], r["score"], r["urgent"], r["render"])
            for r in transport.request({"op": "reports"})["reports"]  # type: ignore[union-attr]
        ]
        events = transport.request({"op": "history"})["events"]
    finally:
        service.shutdown()

    assert reports == ref_reports
    assert events == ref_events
