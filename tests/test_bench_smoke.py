"""Smoke-run every evaluation bench on a small fabric.

Each ``benchmarks/bench_*.py`` is executed end to end in a subprocess
with ``SKYNET_BENCH_TINY=1`` (see benchmarks/conftest.py): campaigns run
on the small default fabric with capped sizes, figure-shaped assertions
are relaxed, and everything structural stays checked.  This is what keeps
the benches importable and runnable at all times -- CI's bench-smoke job
relies on it, and a bench that only works at full evaluation scale cannot
hide a bitrotted code path behind a multi-hour runtime.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

#: generous per-bench wall-clock budget; the whole suite must fit CI
BENCH_TIMEOUT_S = 300.0

BENCHES = sorted(path.name for path in BENCH_DIR.glob("bench_*.py"))


def test_all_benches_are_discovered():
    assert len(BENCHES) >= 15, f"bench discovery broke: {BENCHES}"


@pytest.mark.parametrize("bench", BENCHES)
def test_bench_smoke(bench):
    env = dict(os.environ)
    env["SKYNET_BENCH_TINY"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(BENCH_DIR / bench), "-q",
         "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=BENCH_TIMEOUT_S,
    )
    if proc.returncode != 0:
        tail = "\n".join(proc.stdout.splitlines()[-40:])
        pytest.fail(f"{bench} failed in tiny mode:\n{tail}\n{proc.stderr[-2000:]}")
