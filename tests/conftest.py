"""Shared fixtures: small topologies, traffic, and states built once."""

from __future__ import annotations

import pytest

from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.traffic import generate_traffic


@pytest.fixture(scope="session")
def tiny_topology():
    """Smallest complete fabric (1 region, 2 sites, 4 clusters)."""
    return build_topology(TopologySpec.tiny())


@pytest.fixture(scope="session")
def default_topology():
    """The default two-region fabric most tests use."""
    return build_topology(TopologySpec())


@pytest.fixture(scope="session")
def default_traffic(default_topology):
    return generate_traffic(default_topology, n_customers=30, seed=9)


@pytest.fixture()
def default_state(default_topology, default_traffic):
    """Fresh (mutable) state per test over the shared fabric."""
    return NetworkState(default_topology, default_traffic)


@pytest.fixture()
def bare_state(default_topology):
    """State with no traffic wired (tests that don't need loads)."""
    return NetworkState(default_topology)
