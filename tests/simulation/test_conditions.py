"""Tests for failure conditions."""

import pytest

from repro.simulation.conditions import Condition, ConditionKind
from repro.topology.hierarchy import LocationPath


def test_active_window_half_open():
    cond = Condition(ConditionKind.DEVICE_DOWN, "d", start=10.0, end=20.0)
    assert not cond.active_at(9.9)
    assert cond.active_at(10.0)
    assert cond.active_at(19.9)
    assert not cond.active_at(20.0)


def test_open_ended_condition_never_expires():
    cond = Condition(ConditionKind.DEVICE_DOWN, "d", start=0.0)
    assert cond.active_at(1e9)


def test_end_before_start_rejected():
    with pytest.raises(ValueError):
        Condition(ConditionKind.DEVICE_DOWN, "d", start=10.0, end=10.0)


def test_ddos_requires_location_target():
    with pytest.raises(TypeError):
        Condition(ConditionKind.DDOS_ATTACK, "cluster-as-string", start=0.0)


def test_device_kind_requires_string_target():
    with pytest.raises(TypeError):
        Condition(ConditionKind.DEVICE_DOWN, LocationPath(("r",)), start=0.0)


def test_param_lookup_with_default():
    cond = Condition(
        ConditionKind.DEVICE_SILENT_LOSS, "d", start=0.0, params={"loss_rate": 0.2}
    )
    assert cond.param("loss_rate") == 0.2
    assert cond.param("missing", 7.0) == 7.0


def test_age():
    cond = Condition(ConditionKind.DEVICE_DOWN, "d", start=10.0)
    assert cond.age_at(25.0) == 15.0
    assert cond.age_at(5.0) == -5.0


def test_affects_routing_flags():
    assert Condition(ConditionKind.DEVICE_DOWN, "d", 0.0).affects_routing
    assert Condition(ConditionKind.CIRCUIT_BREAK, "cs", 0.0).affects_routing
    assert not Condition(ConditionKind.DEVICE_HIGH_CPU, "d", 0.0).affects_routing


def test_shifted_moves_window_and_renames():
    cond = Condition(ConditionKind.DEVICE_DOWN, "d", start=5.0, end=15.0)
    moved = cond.shifted(100.0)
    assert moved.start == 105.0 and moved.end == 115.0
    assert moved.condition_id != cond.condition_id
    assert moved.kind is cond.kind


def test_condition_ids_unique():
    a = Condition(ConditionKind.DEVICE_DOWN, "d", 0.0)
    b = Condition(ConditionKind.DEVICE_DOWN, "d", 0.0)
    assert a.condition_id != b.condition_id
