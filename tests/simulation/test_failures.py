"""Tests for failure taxonomy and scenario sampling."""

import random

import pytest

from repro.simulation.failures import (
    FIGURE1_PROPORTIONS,
    FailureCategory,
    sample_campaign,
    sample_category,
    sample_failure,
)
from repro.topology.builder import TopologySpec, build_topology


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


def test_figure1_proportions_cover_all_categories():
    assert set(FIGURE1_PROPORTIONS) == set(FailureCategory)


def test_figure1_hardware_dominates():
    top = max(FIGURE1_PROPORTIONS, key=FIGURE1_PROPORTIONS.get)
    assert top is FailureCategory.DEVICE_HARDWARE


def test_sample_category_follows_weights():
    rng = random.Random(1)
    draws = [sample_category(rng) for _ in range(3000)]
    hw = sum(1 for d in draws if d is FailureCategory.DEVICE_HARDWARE)
    route = sum(1 for d in draws if d is FailureCategory.ROUTE)
    assert 0.35 < hw / len(draws) < 0.50
    assert route / len(draws) < 0.06


@pytest.mark.parametrize("category", list(FailureCategory))
@pytest.mark.parametrize("severe", [False, True])
def test_every_category_builds_both_severities(topo, category, severe):
    rng = random.Random(7)
    scenario = sample_failure(topo, rng, start=100.0, category=category, severe=severe)
    assert scenario.truth.category is category
    assert scenario.truth.severe == severe
    assert scenario.conditions
    assert scenario.truth.start == 100.0
    assert scenario.truth.end > scenario.truth.start
    for cond in scenario.conditions:
        assert cond.start >= 100.0
        assert cond.end is None or cond.end <= scenario.truth.end + 1e-6


def test_scope_contains_all_condition_targets(topo):
    rng = random.Random(3)
    for _ in range(30):
        scenario = sample_failure(topo, rng)
        for cond in scenario.conditions:
            if isinstance(cond.target, str) and topo.has_device(cond.target):
                assert scenario.truth.scope.contains(
                    topo.device(cond.target).location
                )


def test_shifted_scenario_moves_everything(topo):
    rng = random.Random(5)
    scenario = sample_failure(topo, rng, start=0.0)
    moved = scenario.shifted(500.0)
    assert moved.truth.start == scenario.truth.start + 500.0
    assert all(
        m.start == o.start + 500.0
        for m, o in zip(moved.conditions, scenario.conditions)
    )


def test_campaign_sorted_and_sized(topo):
    rng = random.Random(11)
    campaign = sample_campaign(topo, rng, 15, 3600.0)
    assert len(campaign) == 15
    starts = [s.truth.start for s in campaign]
    assert starts == sorted(starts)
    assert all(0 <= s < 3600.0 for s in starts)


def test_campaign_rejects_negative(topo):
    with pytest.raises(ValueError):
        sample_campaign(topo, random.Random(0), -1, 100.0)


def test_ground_truth_overlap_window():
    rng = random.Random(2)
    topo = build_topology(TopologySpec.tiny())
    scenario = sample_failure(topo, rng, start=100.0, severe=False)
    truth = scenario.truth
    assert truth.overlaps_window(truth.start - 10, truth.start + 10)
    assert not truth.overlaps_window(truth.end + 1, truth.end + 100)
