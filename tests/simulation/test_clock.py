"""Tests for simulated time and periodic schedules."""

import pytest

from repro.simulation.clock import PeriodicSchedule, SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock(10.0)
        clock.advance(5.0)
        assert clock.now == 15.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(42.0)
        assert clock.now == 42.0

    def test_advance_to_rejects_rewind(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_zero_advance_allowed(self):
        clock = SimClock(1.0)
        clock.advance(0.0)
        assert clock.now == 1.0


class TestPeriodicSchedule:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicSchedule(0.0)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            PeriodicSchedule(1.0, offset=-0.1)

    def test_fires_at_offset_then_period(self):
        sched = PeriodicSchedule(10.0, offset=2.0)
        assert sched.due(25.0) == [2.0, 12.0, 22.0]

    def test_coarse_step_catches_every_firing(self):
        sched = PeriodicSchedule(1.0)
        fired = sched.due(4.5)
        assert fired == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_no_double_fire(self):
        sched = PeriodicSchedule(5.0)
        sched.due(10.0)
        assert sched.due(10.0) == []

    def test_peek_next(self):
        sched = PeriodicSchedule(5.0)
        sched.due(7.0)
        assert sched.peek_next() == 10.0
