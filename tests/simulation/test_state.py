"""Tests for NetworkState: the condition -> observable behaviour mapping."""

import pytest

from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level
from repro.topology.network import INTERNET, DeviceRole
from repro.topology.traffic import generate_traffic


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


@pytest.fixture(scope="module")
def traffic(topo):
    return generate_traffic(topo, n_customers=25, seed=4)


@pytest.fixture()
def state(topo, traffic):
    return NetworkState(topo, traffic)


def any_switch(topo):
    return sorted(
        d.name for d in topo.devices.values() if d.role is DeviceRole.CLUSTER_SWITCH
    )[0]


def any_internal_set(topo):
    return sorted(
        cs.set_id
        for cs in topo.circuit_sets.values()
        if INTERNET not in cs.endpoints
    )[0]


class TestTimeAndConditions:
    def test_time_cannot_rewind(self, state):
        state.set_time(10.0)
        with pytest.raises(ValueError):
            state.set_time(5.0)

    def test_conditions_become_active_on_time(self, state, topo):
        dev = any_switch(topo)
        state.add_condition(Condition(ConditionKind.DEVICE_DOWN, dev, 100.0, 200.0))
        state.set_time(50.0)
        assert state.device_up(dev)
        state.set_time(150.0)
        assert not state.device_up(dev)
        state.set_time(250.0)
        assert state.device_up(dev)

    def test_active_signature_changes_with_set(self, state, topo):
        sig0 = state.active_signature()
        state.add_condition(
            Condition(ConditionKind.DEVICE_HIGH_CPU, any_switch(topo), 0.0)
        )
        assert state.active_signature() != sig0

    def test_end_condition(self, state, topo):
        dev = any_switch(topo)
        cond = Condition(ConditionKind.DEVICE_DOWN, dev, 0.0)
        state.add_condition(cond)
        state.set_time(10.0)
        assert not state.device_up(dev)
        state.end_condition(cond.condition_id)
        state.set_time(10.1)
        assert state.device_up(dev)

    def test_end_unknown_condition_raises(self, state):
        with pytest.raises(KeyError):
            state.end_condition("nope")

    def test_conditions_indexed_by_target(self, state, topo):
        dev = any_switch(topo)
        state.add_condition(Condition(ConditionKind.DEVICE_HIGH_CPU, dev, 0.0))
        state.set_time(1.0)
        assert [c.kind for c in state.conditions_on_device(dev)] == [
            ConditionKind.DEVICE_HIGH_CPU
        ]
        assert state.conditions_on_device("other") == []


class TestCircuitSets:
    def test_break_ratio(self, state, topo):
        set_id = any_internal_set(topo)
        n = len(topo.circuit_set(set_id).circuits)
        state.add_condition(
            Condition(
                ConditionKind.CIRCUIT_BREAK, set_id, 0.0,
                params={"broken_circuits": n // 2},
            )
        )
        state.set_time(1.0)
        assert state.circuit_set_break_ratio(set_id) == pytest.approx(
            (n // 2) / n
        )
        assert state.circuit_set_usable(set_id)

    def test_full_break_unusable(self, state, topo):
        set_id = any_internal_set(topo)
        state.add_condition(Condition(ConditionKind.CIRCUIT_BREAK, set_id, 0.0))
        state.set_time(1.0)
        assert state.circuit_set_break_ratio(set_id) == 1.0
        assert not state.circuit_set_usable(set_id)
        assert state.circuit_set_loss_rate(set_id) == 1.0

    def test_break_ratio_unknown_set(self, state):
        with pytest.raises(KeyError):
            state.circuit_set_break_ratio("ghost")

    def test_capacity_scales_with_breaks(self, state, topo):
        set_id = any_internal_set(topo)
        full = state.available_capacity_gbps(set_id)
        n = len(topo.circuit_set(set_id).circuits)
        state.add_condition(
            Condition(
                ConditionKind.CIRCUIT_BREAK, set_id, 0.0,
                params={"broken_circuits": n / 2},
            )
        )
        state.set_time(1.0)
        assert state.available_capacity_gbps(set_id) == pytest.approx(full / 2)


class TestConvergence:
    def test_routing_lags_actual_state(self, state, topo):
        dev = any_switch(topo)
        state.add_condition(Condition(ConditionKind.DEVICE_DOWN, dev, 0.0))
        state.set_time(1.0)  # before convergence
        assert not state.device_up(dev)
        assert state.routing_health.device_up(dev)
        state.set_time(state.convergence_s + 1.0)
        assert not state.routing_health.device_up(dev)

    def test_pair_loss_through_down_device_preconvergence(self, state, topo):
        # find a pair whose route crosses a specific CSR, then kill it
        servers = sorted(topo.servers)
        route, _ = state.pair_loss(servers[0], servers[-1])
        victim = route.devices[1]
        state.add_condition(Condition(ConditionKind.DEVICE_DOWN, victim, 10.0))
        state.set_time(11.0)
        _, loss = state.pair_loss(servers[0], servers[-1])
        assert loss == 1.0
        state.set_time(11.0 + state.convergence_s + 1)
        route2, loss2 = state.pair_loss(servers[0], servers[-1])
        assert victim not in route2.devices
        assert loss2 < 1.0


class TestLossModel:
    def test_device_loss_from_hardware_error(self, state, topo):
        dev = any_switch(topo)
        state.add_condition(
            Condition(
                ConditionKind.DEVICE_HARDWARE_ERROR, dev, 0.0,
                params={"loss_rate": 0.25},
            )
        )
        state.set_time(1.0)
        assert state.device_loss_rate(dev) == pytest.approx(0.25)

    def test_losses_compose(self, state, topo):
        dev = any_switch(topo)
        state.add_conditions(
            [
                Condition(
                    ConditionKind.DEVICE_HARDWARE_ERROR, dev, 0.0,
                    params={"loss_rate": 0.5},
                ),
                Condition(
                    ConditionKind.DEVICE_SILENT_LOSS, dev, 0.0,
                    params={"loss_rate": 0.5},
                ),
            ]
        )
        state.set_time(1.0)
        assert state.device_loss_rate(dev) == pytest.approx(0.75)

    def test_route_loss_blackholes_internet_only(self, state, topo):
        gw = topo.internet_gateways()[0].name
        state.add_condition(Condition(ConditionKind.ROUTE_LOSS, gw, 0.0))
        state.set_time(1.0)
        assert state.device_loss_rate(gw, internet_bound=True) == 1.0
        assert state.device_loss_rate(gw, internet_bound=False) == 0.0

    def test_corruption_rate(self, state, topo):
        set_id = any_internal_set(topo)
        state.add_condition(
            Condition(
                ConditionKind.LINK_CRC_ERRORS, set_id, 0.0,
                params={"corruption_rate": 0.05},
            )
        )
        state.set_time(1.0)
        assert state.circuit_set_corruption_rate(set_id) == 0.05

    def test_clean_network_has_no_loss(self, state, topo):
        state.set_time(1.0)
        servers = sorted(topo.servers)
        _, loss = state.pair_loss(servers[0], servers[-1])
        assert loss == 0.0


class TestCongestion:
    def test_ddos_congests_entrance(self, state, topo, traffic):
        clusters = [l for l in topo.locations() if l.level is Level.CLUSTER]
        victim = clusters[0]
        state.add_condition(
            Condition(
                ConditionKind.DDOS_ATTACK, victim, 0.0,
                params={"attack_gbps": 10000.0},
            )
        )
        state.set_time(1.0)
        server = topo.servers_in(victim)[0].name
        _, loss = state.internet_loss(server)
        assert loss > 0.5

    def test_congestion_loss_formula(self, state, topo):
        set_id = any_internal_set(topo)
        assert state.congestion_loss(set_id) == 0.0

    def test_delivered_rate_capped_by_congestion(self, state, topo):
        clusters = [l for l in topo.locations() if l.level is Level.CLUSTER]
        state.add_condition(
            Condition(
                ConditionKind.DDOS_ATTACK, clusters[0], 0.0,
                params={"attack_gbps": 10000.0},
            )
        )
        state.set_time(1.0)
        server = topo.servers_in(clusters[0])[0]
        route = state.router.route_to_internet(server, state.routing_health)
        entrance = route.circuit_sets[-1]
        assert state.delivered_rate_gbps(entrance) <= (
            state.available_capacity_gbps(entrance) * 1.0001
        )

    def test_latency_rises_with_utilization(self, state, topo):
        servers = sorted(topo.servers)
        route, _ = state.pair_loss(servers[0], servers[-1])
        base = state.route_latency_ms(route)
        clusters = [l for l in topo.locations() if l.level is Level.CLUSTER]
        state.add_condition(
            Condition(
                ConditionKind.DDOS_ATTACK, clusters[0], 0.0,
                params={"attack_gbps": 5000.0},
            )
        )
        state.set_time(1.0)
        server = topo.servers_in(clusters[0])[0]
        route2 = state.router.route_to_internet(server, state.routing_health)
        assert state.route_latency_ms(route2) > base

    def test_unreachable_route_latency_infinite(self, state):
        from repro.topology.routing import RoutePath

        route = RoutePath("a", "b", (), (), False, "down")
        assert state.route_latency_ms(route) == float("inf")


class TestBaseline:
    def test_baseline_loads_precomputed(self, state, topo):
        loads = [state.baseline_load_gbps(s) for s in list(topo.circuit_sets)[:10]]
        assert any(l > 0 for l in loads)

    def test_stateless_network_baseline_zero(self, topo):
        state = NetworkState(topo)
        assert state.baseline_load_gbps(any_internal_set(topo)) == 0.0
        assert state.placement() is None
