"""Tests for the failure injector's ground-truth ledger."""

import random

import pytest

from repro.simulation import scenarios as sc
from repro.simulation.failures import sample_failure
from repro.simulation.injector import FailureInjector
from repro.simulation.noise import BackgroundNoise
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import LocationPath


@pytest.fixture()
def setup():
    topo = build_topology(TopologySpec.tiny())
    state = NetworkState(topo)
    return topo, state, FailureInjector(state)


def test_inject_applies_conditions(setup):
    topo, state, injector = setup
    scenario = sc.known_device_failure(topo, start=0.0)
    injector.inject(scenario)
    state.set_time(1.0)
    assert state.active_conditions()
    assert injector.ground_truths == [scenario.truth]


def test_noise_has_no_ground_truth(setup):
    topo, state, injector = setup
    injector.inject_noise(BackgroundNoise(topo).generate(600))
    assert injector.ground_truths == []
    assert injector.noise_conditions


def test_matching_truth_by_location_and_time(setup):
    topo, state, injector = setup
    scenario = sc.known_device_failure(topo, start=100.0)
    injector.inject(scenario)
    scope = scenario.truth.scope
    assert injector.matching_truth(scope, 120.0, 130.0) is scenario.truth
    # ancestor location also matches (incident grouped wide)
    assert injector.matching_truth(LocationPath.root(), 120.0, 130.0) is not None
    # wrong time window does not
    assert injector.matching_truth(scope, 10_000.0, 10_010.0) is None


def test_matching_truth_impacting_filter(setup):
    topo, state, injector = setup
    rng = random.Random(0)
    from repro.simulation.failures import FailureCategory

    scenario = sample_failure(
        topo, rng, start=0.0, category=FailureCategory.LINK, severe=False
    )
    assert not scenario.truth.customer_impacting
    injector.inject(scenario)
    scope = scenario.truth.scope
    assert injector.matching_truth(scope, 0.0, 10.0) is not None
    assert injector.matching_truth(scope, 0.0, 10.0, impacting_only=True) is None


def test_truths_in_window(setup):
    topo, state, injector = setup
    injector.inject(sc.known_device_failure(topo, start=100.0, duration=50.0))
    assert injector.truths_in_window(0.0, 99.0) == []
    assert len(injector.truths_in_window(120.0, 130.0)) == 1
