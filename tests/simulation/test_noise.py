"""Tests for background noise generation."""

import pytest

from repro.simulation.conditions import ConditionKind
from repro.simulation.noise import BackgroundNoise, NoiseProfile
from repro.topology.builder import TopologySpec, build_topology


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec.tiny())


def test_deterministic_for_seed(topo):
    a = BackgroundNoise(topo, seed=5).generate(3600)
    b = BackgroundNoise(topo, seed=5).generate(3600)
    assert [(c.kind, c.target, c.start) for c in a] == [
        (c.kind, c.target, c.start) for c in b
    ]


def test_sorted_by_start(topo):
    conds = BackgroundNoise(topo).generate(7200)
    starts = [c.start for c in conds]
    assert starts == sorted(starts)


def test_all_within_horizon(topo):
    conds = BackgroundNoise(topo).generate(1800, start=100.0)
    assert all(100.0 <= c.start < 1900.0 for c in conds)


def test_rates_scale_with_profile(topo):
    quiet = BackgroundNoise(topo, NoiseProfile.quiet(), seed=1).generate(7200)
    noisy = BackgroundNoise(topo, NoiseProfile.noisy(), seed=1).generate(7200)
    assert len(noisy) > len(quiet)


def test_negative_horizon_rejected(topo):
    with pytest.raises(ValueError):
        BackgroundNoise(topo).generate(-1)


def test_zero_horizon_empty(topo):
    assert BackgroundNoise(topo).generate(0) == []


def test_noise_kinds_are_benign(topo):
    severe_kinds = {ConditionKind.DEVICE_DOWN, ConditionKind.CIRCUIT_BREAK}
    conds = BackgroundNoise(topo, NoiseProfile.noisy(), seed=2).generate(7200)
    assert not any(c.kind in severe_kinds for c in conds)


def test_noise_conditions_are_short(topo):
    conds = BackgroundNoise(topo, NoiseProfile.noisy(), seed=3).generate(7200)
    for cond in conds:
        assert cond.end is not None
        assert cond.end - cond.start <= 600.0
