"""Tests for the canned paper scenarios."""

import pytest

from repro.simulation import scenarios as sc
from repro.simulation.conditions import ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level
from repro.topology.network import DeviceRole
from repro.topology.traffic import generate_traffic


@pytest.fixture()
def topo():
    # function-scoped: reflector_failure mutates the topology
    return build_topology(TopologySpec())


class TestCableCut:
    def test_cuts_every_gateway_entrance(self, topo):
        scenario = sc.internet_entrance_cable_cut(topo)
        gw_count = TopologySpec().internet_gateways_per_logic_site
        assert len(scenario.conditions) == gw_count
        assert scenario.truth.severe
        assert scenario.truth.scope.level is Level.LOGIC_SITE

    def test_first_gateway_fully_cut(self, topo):
        scenario = sc.internet_entrance_cable_cut(topo)
        first = scenario.conditions[0]
        cs = topo.circuit_set(str(first.target))
        assert first.param("broken_circuits") == len(cs.circuits)

    def test_survivors_congest_not_unreachable(self, topo):
        traffic = generate_traffic(topo, n_customers=40)
        state = NetworkState(topo, traffic)
        scenario = sc.internet_entrance_cable_cut(topo, start=0.0)
        state.add_conditions(scenario.conditions)
        state.set_time(state.convergence_s + 10)
        server = topo.servers_in(
            next(
                l
                for l in topo.locations()
                if l.level is Level.CLUSTER and scenario.truth.scope.contains(l)
            )
        )[0]
        _, loss = state.internet_loss(server.name)
        assert 0.05 < loss < 1.0  # congested, not dead: the §2.2 trap


class TestKnownDeviceFailure:
    def test_targets_single_cluster_switch(self, topo):
        scenario = sc.known_device_failure(topo)
        device = topo.device(scenario.truth.root_cause_targets[0])
        assert device.role is DeviceRole.CLUSTER_SWITCH
        assert not scenario.truth.severe

    def test_peers_unaffected(self, topo):
        scenario = sc.known_device_failure(topo)
        victim = scenario.truth.root_cause_targets[0]
        targeted = {
            c.target for c in scenario.conditions if isinstance(c.target, str)
        }
        peers = {
            d.name
            for d in topo.devices_in_group(topo.device(victim).group)
            if d.name != victim
        }
        assert not (targeted & peers)


class TestMultiSiteDdos:
    def test_five_distinct_victims(self, topo):
        scenarios = sc.multi_site_ddos(topo, n_sites=5)
        victims = {s.truth.scope for s in scenarios}
        assert len(victims) == 5
        for s in scenarios:
            assert s.conditions[0].kind is ConditionKind.DDOS_ATTACK

    def test_too_many_sites_rejected(self, topo):
        with pytest.raises(ValueError):
            sc.multi_site_ddos(topo, n_sites=10_000)


class TestRankingPair:
    def test_big_and_small_disjoint(self, topo):
        big, small = sc.ranking_pair(topo)
        assert not big.truth.scope.contains(small.truth.scope)
        assert not small.truth.scope.contains(big.truth.scope)

    def test_big_is_wide_but_mild(self, topo):
        big, small = sc.ranking_pair(topo)
        # many partial breaks, never a full one: redundancy holds
        breaks = [c for c in big.conditions if c.kind is ConditionKind.CIRCUIT_BREAK]
        assert len(breaks) >= 4
        for cond in breaks:
            cs = topo.circuit_set(str(cond.target))
            assert cond.param("broken_circuits") < len(cs.circuits)
        # the small scene blackholes heavily
        assert small.conditions[0].param("loss_rate") >= 0.5


class TestReflector:
    def test_adds_reflector_device_once(self, topo):
        scenario = sc.reflector_failure(topo)
        name = scenario.truth.root_cause_targets[0]
        assert topo.device(name).role is DeviceRole.REFLECTOR
        # idempotent: building again reuses the device
        sc.reflector_failure(topo)
        assert sum(1 for d in topo.devices if d == name) == 1


class TestDelayedRootCause:
    def test_hardware_syslog_delayed(self, topo):
        scenario = sc.delayed_root_cause(topo)
        hw = next(
            c
            for c in scenario.conditions
            if c.kind is ConditionKind.DEVICE_HARDWARE_ERROR
        )
        assert hw.param("syslog_delay_s") >= 120.0
        jitter = next(
            c
            for c in scenario.conditions
            if c.kind is ConditionKind.DEVICE_UNBALANCED_HASH
        )
        assert jitter.param("syslog_delay_s", 0.0) == 0.0
