"""Tests for the three baselines."""

import pytest

from repro.baselines.heuristic_only import HeuristicOnlySystem
from repro.baselines.single_source import SingleSourceDetector, coverage_by_tool
from repro.baselines.window_grouping import WindowGroupingDetector
from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.monitors.base import RawAlert
from repro.monitors.registry import build_monitors
from repro.monitors.stream import AlertStream
from repro.simulation import scenarios as sc
from repro.simulation.injector import FailureInjector
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level, LocationPath
from repro.topology.traffic import generate_traffic


@pytest.fixture(scope="module")
def campaign():
    topo = build_topology(TopologySpec())
    traffic = generate_traffic(topo, n_customers=25, seed=7)
    state = NetworkState(topo, traffic)
    injector = FailureInjector(state)
    injector.inject(sc.known_device_failure(topo, start=20.0))
    alerts = AlertStream(state, build_monitors(state)).collect(420.0)
    return topo, state, injector, alerts


class TestSingleSource:
    def test_syslog_detects_hardware_failure(self, campaign):
        topo, _, injector, alerts = campaign
        detector = SingleSourceDetector(topo, "syslog")
        assert detector.detects(alerts, injector.ground_truths[0])

    def test_route_monitoring_blind_to_hardware(self, campaign):
        topo, _, injector, alerts = campaign
        detector = SingleSourceDetector(topo, "route_monitoring")
        assert not detector.detects(alerts, injector.ground_truths[0])

    def test_benign_syslog_not_actionable(self, campaign):
        topo, _, _, _ = campaign
        detector = SingleSourceDetector(topo, "syslog")
        chatter = RawAlert(
            tool="syslog", raw_type="log", timestamp=0.0,
            message="%SEC_LOGIN-6-LOGIN_SUCCESS: Login Success [user: ops3] at vty0",
            device=sorted(topo.devices)[0],
        )
        assert not detector.actionable(chatter)

    def test_coverage_by_tool_fractions(self, campaign):
        topo, _, injector, alerts = campaign
        coverage = coverage_by_tool(
            topo, alerts, injector.ground_truths, ["syslog", "ptp"]
        )
        assert coverage["syslog"] == 1.0
        assert coverage["ptp"] == 0.0

    def test_coverage_requires_truths(self, campaign):
        topo, _, _, alerts = campaign
        with pytest.raises(ValueError):
            coverage_by_tool(topo, alerts, [], ["syslog"])


class TestWindowGrouping:
    def alert_at(self, loc, t, name="x"):
        return StructuredAlert(
            type_key=AlertTypeKey("snmp", name),
            level=AlertLevel.ABNORMAL,
            location=loc,
            first_seen=t,
            last_seen=t,
        )

    def test_groups_by_label_and_window(self):
        detector = WindowGroupingDetector(window_s=300.0, group_level=Level.SITE)
        site_a = LocationPath(("r", "c", "l", "s1", "cl"))
        site_b = LocationPath(("r", "c", "l", "s2", "cl"))
        groups = detector.group(
            [
                self.alert_at(site_a, 10.0),
                self.alert_at(site_a, 20.0, name="y"),
                self.alert_at(site_b, 10.0),
                self.alert_at(site_a, 400.0),  # next window
            ]
        )
        assert len(groups) == 3

    def test_shallow_location_kept_whole(self):
        detector = WindowGroupingDetector(group_level=Level.SITE)
        region = LocationPath(("r",))
        groups = detector.group([self.alert_at(region, 5.0)])
        assert groups[0].location == region

    def test_min_alerts_filter(self):
        detector = WindowGroupingDetector(min_alerts=2)
        loc = LocationPath(("r", "c", "l", "s", "cl"))
        assert detector.group([self.alert_at(loc, 1.0)]) == []

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowGroupingDetector(window_s=0)

    def test_group_size_counts_raw(self):
        detector = WindowGroupingDetector()
        loc = LocationPath(("r", "c", "l", "s", "cl"))
        a = self.alert_at(loc, 1.0)
        b = StructuredAlert(
            type_key=AlertTypeKey("snmp", "z"), level=AlertLevel.ABNORMAL,
            location=loc, first_seen=2.0, last_seen=2.0, count=4,
        )
        groups = detector.group([a, b])
        assert groups[0].size == 5


class TestHeuristicOnly:
    def test_known_failure_handled(self, campaign):
        topo, state, injector, alerts = campaign
        system = HeuristicOnlySystem(topo, state)
        outcomes = system.run(alerts, now=400.0)
        handled = [o for o in outcomes if o.handled]
        assert handled
        truth = injector.ground_truths[0]
        assert any(
            truth.scope.contains(o.location) or o.location.contains(truth.scope)
            for o in handled
        )

    def test_unknown_severe_failure_unhandled(self):
        topo = build_topology(TopologySpec())
        traffic = generate_traffic(topo, n_customers=25, seed=8)
        state = NetworkState(topo, traffic)
        injector = FailureInjector(state)
        injector.inject(sc.internet_entrance_cable_cut(topo, start=20.0))
        alerts = AlertStream(state, build_monitors(state)).collect(300.0)
        system = HeuristicOnlySystem(topo, state)
        outcomes = system.run(alerts, now=300.0)
        truth = injector.ground_truths[0]
        # the gateway buckets affected by the entrance cut match no rule
        for outcome in outcomes:
            if truth.scope.contains(outcome.location):
                related = [
                    a for a in outcome.alerts
                    if a.type_key.name in ("link_down", "port_down",
                                            "internet_unreachable")
                ]
                if related:
                    assert not outcome.handled
