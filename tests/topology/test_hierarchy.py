"""Unit tests for the location hierarchy (LocationPath and Level)."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.hierarchy import (
    Level,
    LocationPath,
    lowest_common_ancestor,
)


def path(*segments, device=False):
    return LocationPath(segments, is_device=device)


class TestLevel:
    def test_values_match_depth(self):
        assert Level.ROOT.value == 0
        assert Level.REGION.value == 1
        assert Level.CLUSTER.value == 5
        assert Level.DEVICE.value == 6

    def test_child_of_region_is_city(self):
        assert Level.REGION.child is Level.CITY

    def test_parent_of_city_is_region(self):
        assert Level.CITY.parent is Level.REGION

    def test_device_has_no_child(self):
        with pytest.raises(ValueError):
            Level.DEVICE.child

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            Level.ROOT.parent


class TestConstruction:
    def test_root_is_empty(self):
        assert LocationPath.root().is_root
        assert LocationPath.root().depth == 0

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            path("a", "")

    def test_separator_in_segment_rejected(self):
        with pytest.raises(ValueError):
            path("a|b")

    def test_device_needs_segments(self):
        with pytest.raises(ValueError):
            LocationPath((), is_device=True)

    def test_too_deep_structural_path_rejected(self):
        with pytest.raises(ValueError):
            path("a", "b", "c", "d", "e", "f")

    def test_device_at_max_depth_allowed(self):
        p = path("a", "b", "c", "d", "e", "dev", device=True)
        assert p.level is Level.DEVICE

    def test_parse_round_trips(self):
        p = LocationPath.parse("Region A|City a|Logic site 2")
        assert p.segments == ("Region A", "City a", "Logic site 2")
        assert str(p) == "Region A|City a|Logic site 2"

    def test_parse_empty_gives_root(self):
        assert LocationPath.parse("") == LocationPath.root()


class TestNavigation:
    def test_level_of_structural_path(self):
        assert path("r").level is Level.REGION
        assert path("r", "c").level is Level.CITY
        assert path("r", "c", "l", "s", "cl").level is Level.CLUSTER

    def test_device_level_is_device_regardless_of_depth(self):
        assert path("r", "dev", device=True).level is Level.DEVICE
        assert path("r", "c", "l", "dev", device=True).level is Level.DEVICE

    def test_structural_level_of_device(self):
        assert path("r", "c", "dev", device=True).structural_level is Level.CITY

    def test_parent(self):
        assert path("r", "c").parent == path("r")
        assert path("r", "c", "dev", device=True).parent == path("r", "c")

    def test_root_parent_is_itself(self):
        assert LocationPath.root().parent == LocationPath.root()

    def test_ancestors_order(self):
        p = path("r", "c", "l")
        assert list(p.ancestors()) == [LocationPath.root(), path("r"), path("r", "c")]

    def test_ancestors_include_self(self):
        p = path("r", "c")
        assert list(p.ancestors(include_self=True))[-1] == p

    def test_child_extends(self):
        assert path("r").child("c") == path("r", "c")

    def test_device_has_no_children(self):
        with pytest.raises(ValueError):
            path("r", "dev", device=True).child("x")

    def test_truncate(self):
        p = path("r", "c", "l", "s")
        assert p.truncate(Level.CITY) == path("r", "c")
        assert p.truncate(Level.SITE) == p

    def test_truncate_below_raises(self):
        with pytest.raises(ValueError):
            path("r").truncate(Level.CITY)

    def test_truncate_device_to_parent_levels(self):
        p = path("r", "c", "dev", device=True)
        assert p.truncate(Level.CITY) == path("r", "c")


class TestContainment:
    def test_contains_self(self):
        p = path("r", "c")
        assert p.contains(p)

    def test_contains_descendant(self):
        assert path("r").contains(path("r", "c", "l"))

    def test_not_contains_sibling(self):
        assert not path("r", "c1").contains(path("r", "c2"))

    def test_root_contains_everything(self):
        assert LocationPath.root().contains(path("x", "y"))

    def test_device_contains_only_itself(self):
        d = path("r", "dev", device=True)
        assert d.contains(d)
        assert not d.contains(path("r", "dev"))

    def test_structural_contains_device_inside(self):
        assert path("r").contains(path("r", "dev", device=True))

    def test_common_ancestor(self):
        a = path("r", "c", "l1")
        b = path("r", "c", "l2")
        assert a.common_ancestor(b) == path("r", "c")

    def test_common_ancestor_disjoint_is_root(self):
        assert path("r1").common_ancestor(path("r2")).is_root

    def test_common_ancestor_of_devices_is_structural(self):
        a = path("r", "c", "d1", device=True)
        b = path("r", "c", "d2", device=True)
        assert a.common_ancestor(b) == path("r", "c")

    def test_lowest_common_ancestor_multi(self):
        paths = [path("r", "c", "l1"), path("r", "c", "l2"), path("r", "c")]
        assert lowest_common_ancestor(paths) == path("r", "c")

    def test_lowest_common_ancestor_single(self):
        assert lowest_common_ancestor([path("r", "c")]) == path("r", "c")

    def test_lowest_common_ancestor_empty_raises(self):
        with pytest.raises(ValueError):
            lowest_common_ancestor([])


class TestDunder:
    def test_equality_and_hash(self):
        assert path("r", "c") == path("r", "c")
        assert hash(path("r", "c")) == hash(path("r", "c"))

    def test_device_flag_distinguishes(self):
        assert path("r", "x") != path("r", "x", device=True)

    def test_ordering(self):
        assert path("a") < path("b")
        assert path("a") < path("a", "b")

    def test_len_is_depth(self):
        assert len(path("a", "b")) == 2

    def test_repr_mentions_kind(self):
        assert "device" in repr(path("r", "d", device=True))


# -- property-based ---------------------------------------------------------

segment = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127),
    min_size=1,
    max_size=8,
)
segments = st.lists(segment, min_size=0, max_size=5)


@given(segments)
def test_prop_ancestors_all_contain(segs):
    p = LocationPath(segs)
    for anc in p.ancestors(include_self=True):
        assert anc.contains(p)


@given(segments, segments)
def test_prop_common_ancestor_contains_both(a, b):
    pa, pb = LocationPath(a), LocationPath(b)
    ca = pa.common_ancestor(pb)
    assert ca.contains(pa) and ca.contains(pb)


@given(segments, segments)
def test_prop_common_ancestor_commutes(a, b):
    pa, pb = LocationPath(a), LocationPath(b)
    assert pa.common_ancestor(pb) == pb.common_ancestor(pa)


@given(segments)
def test_prop_truncate_to_own_level_is_identity(segs):
    p = LocationPath(segs)
    assert p.truncate(p.level if not p.is_device else p.structural_level) == p


@given(segments, segments)
def test_prop_containment_antisymmetric_unless_equal(a, b):
    pa, pb = LocationPath(a), LocationPath(b)
    if pa.contains(pb) and pb.contains(pa):
        assert pa == pb
