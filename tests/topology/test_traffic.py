"""Tests for customers, flows and traffic placement."""

import pytest

from repro.topology.builder import TopologySpec, build_topology
from repro.topology.network import INTERNET
from repro.topology.routing import HealthView
from repro.topology.traffic import (
    IMPORTANCE_CRITICAL,
    IMPORTANCE_STANDARD,
    Customer,
    Flow,
    TrafficModel,
    generate_traffic,
)


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec.tiny())


def make_model(topo, flows=None):
    servers = sorted(topo.servers)
    customers = [
        Customer("c1", IMPORTANCE_CRITICAL),
        Customer("c2", IMPORTANCE_STANDARD),
    ]
    flows = flows or [
        Flow("f1", "c1", servers[0], servers[-1], rate_gbps=1.0, sla_limit_gbps=0.8),
        Flow("f2", "c2", servers[1], INTERNET, rate_gbps=2.0),
    ]
    return TrafficModel(topo, customers, flows)


class TestValidation:
    def test_duplicate_customers_rejected(self, topo):
        with pytest.raises(ValueError):
            TrafficModel(topo, [Customer("c"), Customer("c")], [])

    def test_flow_unknown_customer(self, topo):
        servers = sorted(topo.servers)
        with pytest.raises(KeyError):
            TrafficModel(
                topo,
                [Customer("c1")],
                [Flow("f", "ghost", servers[0], servers[1], 1.0)],
            )

    def test_flow_unknown_server(self, topo):
        with pytest.raises(KeyError):
            TrafficModel(
                topo,
                [Customer("c1")],
                [Flow("f", "c1", "nope", INTERNET, 1.0)],
            )

    def test_importance_tiers(self):
        assert Customer("x", IMPORTANCE_CRITICAL).is_important
        assert not Customer("x", IMPORTANCE_STANDARD).is_important

    def test_sla_flag(self):
        assert Flow("f", "c", "s", "d", 1.0, sla_limit_gbps=0.5).has_sla
        assert not Flow("f", "c", "s", "d", 1.0).has_sla


class TestPlacement:
    def test_all_flows_routable_when_healthy(self, topo):
        model = make_model(topo)
        placement = model.place_flows()
        assert placement.unroutable == []
        assert len(placement.routes) == 2

    def test_flows_indexed_by_circuit_set(self, topo):
        model = make_model(topo)
        placement = model.place_flows()
        route = placement.routes["f1"]
        for set_id in route.circuit_sets:
            assert "f1" in placement.flows_on(set_id)

    def test_unroutable_reported(self, topo):
        model = make_model(topo)

        class AllDown(HealthView):
            def device_up(self, name):
                return False

        placement = model.place_flows(AllDown())
        assert set(placement.unroutable) == {"f1", "f2"}

    def test_offered_load_sums_rates(self, topo):
        model = make_model(topo)
        placement = model.place_flows()
        set_id = placement.routes["f1"].circuit_sets[0]
        load = model.offered_load_gbps(set_id, placement)
        assert load >= 1.0

    def test_customers_on_circuit_set(self, topo):
        model = make_model(topo)
        placement = model.place_flows()
        set_id = placement.routes["f1"].circuit_sets[0]
        ids = {c.customer_id for c in model.customers_on_circuit_set(set_id, placement)}
        assert "c1" in ids

    def test_importance_factor_is_mean(self, topo):
        model = make_model(topo)
        placement = model.place_flows()
        set_id = placement.routes["f1"].circuit_sets[0]
        g = model.importance_factor(set_id, placement)
        assert g >= IMPORTANCE_STANDARD

    def test_important_customers_in_scope(self, topo):
        model = make_model(topo)
        placement = model.place_flows()
        from repro.topology.hierarchy import LocationPath

        important = model.important_customers_in(LocationPath.root(), placement)
        assert important == {"c1"}


class TestGenerator:
    def test_generates_requested_population(self, topo):
        model = generate_traffic(topo, n_customers=12, flows_per_customer=2)
        assert len(model.customers) == 12
        assert len(model.flows) == 24

    def test_deterministic_for_seed(self, topo):
        a = generate_traffic(topo, n_customers=8, seed=3)
        b = generate_traffic(topo, n_customers=8, seed=3)
        assert sorted(a.flows) == sorted(b.flows)
        assert [c.importance for c in a.customers.values()] == [
            c.importance for c in b.customers.values()
        ]

    def test_rejects_empty_population(self, topo):
        with pytest.raises(ValueError):
            generate_traffic(topo, n_customers=0)

    def test_internet_fraction_produces_internet_flows(self, topo):
        model = generate_traffic(topo, n_customers=20, internet_fraction=1.0)
        assert all(f.dst == INTERNET for f in model.flows.values())

    def test_all_flows_have_positive_rate(self, topo):
        model = generate_traffic(topo, n_customers=10)
        assert all(f.rate_gbps > 0 for f in model.flows.values())
