"""Tests for hierarchy-aware routing and failover."""

import pytest

from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level
from repro.topology.network import INTERNET, DeviceRole
from repro.topology.routing import (
    ALL_HEALTHY,
    HealthView,
    HierarchicalRouter,
    RoutePath,
)


class DenyList(HealthView):
    def __init__(self, devices=(), circuit_sets=()):
        self.devices = set(devices)
        self.circuit_sets = set(circuit_sets)

    def device_up(self, name):
        return name not in self.devices

    def circuit_set_usable(self, set_id):
        return set_id not in self.circuit_sets


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


@pytest.fixture(scope="module")
def router(topo):
    return HierarchicalRouter(topo)


def servers_in_different(topo, level):
    """Two servers whose lowest common ancestor is exactly `level`."""
    servers = sorted(topo.servers.values(), key=lambda s: s.name)
    for a in servers:
        for b in servers:
            if a.name >= b.name:
                continue
            if a.cluster.common_ancestor(b.cluster).level is level:
                return a, b
    raise AssertionError(f"no pair meets at {level}")


class TestBasicRoutes:
    def test_same_switch_route_is_one_hop(self, topo, router):
        by_switch = {}
        for server in topo.servers.values():
            by_switch.setdefault(server.attached_switch, []).append(server)
        pair = next(v for v in by_switch.values() if len(v) >= 2)
        route = router.route_servers(pair[0], pair[1])
        assert route.reachable
        assert route.devices == (pair[0].attached_switch,)
        assert route.circuit_sets == ()

    def test_same_server_rejected(self, topo, router):
        server = next(iter(topo.servers.values()))
        with pytest.raises(ValueError):
            router.route_servers(server, server)

    @pytest.mark.parametrize(
        "level", [Level.SITE, Level.LOGIC_SITE, Level.CITY]
    )
    def test_route_meets_at_common_ancestor_level(self, topo, router, level):
        a, b = servers_in_different(topo, level)
        route = router.route_servers(a, b)
        assert route.reachable
        # consecutive devices are joined by the named circuit sets
        for i, set_id in enumerate(route.circuit_sets):
            cs = topo.circuit_set(set_id)
            assert {route.devices[i], route.devices[i + 1]} == set(cs.endpoints)

    def test_cross_region_route_uses_wan(self, topo, router):
        a, b = servers_in_different(topo, Level.ROOT)
        route = router.route_servers(a, b)
        assert route.reachable
        backbones = [
            d
            for d in route.devices
            if topo.device(d).role is DeviceRole.REGION_BACKBONE
        ]
        assert len(backbones) == 2

    def test_internet_route_ends_at_gateway(self, topo, router):
        server = next(iter(topo.servers.values()))
        route = router.route_to_internet(server)
        assert route.reachable
        assert route.dst == INTERNET
        last = topo.device(route.devices[-1])
        assert last.role is DeviceRole.INTERNET_GATEWAY
        assert len(route.circuit_sets) == len(route.devices)

    def test_route_clusters_uses_representatives(self, topo, router):
        clusters = [l for l in topo.locations() if l.level is Level.CLUSTER]
        route = router.route_clusters(clusters[0], clusters[1])
        assert route is not None and route.reachable

    def test_route_clusters_none_for_empty(self, topo, router):
        clusters = [l for l in topo.locations() if l.level is Level.CLUSTER]
        fake = clusters[0].parent.child("empty-cluster")
        assert router.route_clusters(fake, clusters[1]) is None


class TestFailover:
    def test_down_transit_device_is_avoided(self, topo, router):
        a, b = servers_in_different(topo, Level.SITE)
        route = router.route_servers(a, b)
        transit = route.devices[1]  # a CSR
        rerouted = router.route_servers(a, b, DenyList(devices={transit}))
        assert rerouted.reachable
        assert transit not in rerouted.devices

    def test_unusable_circuit_set_is_avoided(self, topo, router):
        a, b = servers_in_different(topo, Level.SITE)
        route = router.route_servers(a, b)
        blocked = route.circuit_sets[0]
        rerouted = router.route_servers(a, b, DenyList(circuit_sets={blocked}))
        assert rerouted.reachable
        assert blocked not in rerouted.circuit_sets

    def test_all_transit_down_is_unreachable(self, topo, router):
        a, b = servers_in_different(topo, Level.SITE)
        site = a.cluster.truncate(Level.SITE)
        csrs = {
            d.name
            for d in topo.devices_at(site)
            if d.role is DeviceRole.SITE_AGGREGATION
        }
        route = router.route_servers(a, b, DenyList(devices=csrs))
        assert not route.reachable
        assert route.failure_reason

    def test_source_switch_down_is_unreachable(self, topo, router):
        a, b = servers_in_different(topo, Level.SITE)
        route = router.route_servers(a, b, DenyList(devices={a.attached_switch}))
        assert not route.reachable

    def test_internet_fails_when_all_gateways_down(self, topo, router):
        server = next(iter(topo.servers.values()))
        gws = {d.name for d in topo.internet_gateways()}
        route = router.route_to_internet(server, DenyList(devices=gws))
        assert not route.reachable

    def test_wan_survives_one_backbone_loss(self, topo, router):
        a, b = servers_in_different(topo, Level.ROOT)
        route = router.route_servers(a, b)
        backbone = next(
            d
            for d in route.devices
            if topo.device(d).role is DeviceRole.REGION_BACKBONE
        )
        rerouted = router.route_servers(a, b, DenyList(devices={backbone}))
        assert rerouted.reachable
        assert backbone not in rerouted.devices


class TestRoutePathInvariants:
    def test_consistency_check_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            RoutePath("a", "b", ("d1", "d2"), ("cs1", "cs2"), True)

    def test_unreachable_route_has_no_elements(self, topo, router):
        a, b = servers_in_different(topo, Level.SITE)
        route = router.route_servers(a, b, DenyList(devices={a.attached_switch}))
        assert route.devices == () and route.circuit_sets == ()

    def test_deterministic_routing(self, topo, router):
        a, b = servers_in_different(topo, Level.CITY)
        r1 = router.route_servers(a, b)
        r2 = router.route_servers(a, b)
        assert r1.devices == r2.devices
        assert r1.circuit_sets == r2.circuit_sets

    def test_traversal_queries(self, topo, router):
        a, b = servers_in_different(topo, Level.SITE)
        route = router.route_servers(a, b)
        assert route.traverses_device(route.devices[0])
        assert route.traverses_circuit_set(route.circuit_sets[0])
        assert not route.traverses_device("ghost")
