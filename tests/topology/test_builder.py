"""Tests for the synthetic topology generator."""

import pytest

from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level
from repro.topology.network import INTERNET, DeviceRole


class TestSpecValidation:
    def test_rejects_zero_regions(self):
        with pytest.raises(ValueError):
            TopologySpec(regions=0)

    def test_rejects_negative_servers(self):
        with pytest.raises(ValueError):
            TopologySpec(servers_per_cluster=-1)

    def test_tiny_and_benchmark_build(self):
        assert build_topology(TopologySpec.tiny()).stats()["devices"] > 0
        assert build_topology(TopologySpec.benchmark()).stats()["devices"] > 100


class TestStructure:
    @pytest.fixture(scope="class")
    def topo(self):
        return build_topology(TopologySpec())

    def test_location_counts(self, topo):
        spec = TopologySpec()
        regions = [l for l in topo.locations() if l.level is Level.REGION]
        clusters = [l for l in topo.locations() if l.level is Level.CLUSTER]
        assert len(regions) == spec.regions
        expected_clusters = (
            spec.regions
            * spec.cities_per_region
            * spec.logic_sites_per_city
            * spec.sites_per_logic_site
            * spec.clusters_per_site
        )
        assert len(clusters) == expected_clusters

    def test_redundant_devices_per_level(self, topo):
        spec = TopologySpec()
        for loc in topo.locations():
            if loc.level is Level.SITE:
                csrs = [
                    d
                    for d in topo.devices_at(loc)
                    if d.role is DeviceRole.SITE_AGGREGATION
                ]
                assert len(csrs) == spec.router_redundancy

    def test_every_cluster_has_servers_and_switches(self, topo):
        spec = TopologySpec()
        for loc in topo.locations():
            if loc.level is Level.CLUSTER:
                assert len(topo.servers_in(loc)) == spec.servers_per_cluster
                switches = [
                    d
                    for d in topo.devices_at(loc)
                    if d.role is DeviceRole.CLUSTER_SWITCH
                ]
                assert len(switches) == spec.switches_per_cluster

    def test_internet_entrances_per_logic_site(self, topo):
        spec = TopologySpec()
        logic_sites = [l for l in topo.locations() if l.level is Level.LOGIC_SITE]
        gateways = topo.internet_gateways()
        assert len(gateways) == len(logic_sites) * spec.internet_gateways_per_logic_site

    def test_internet_circuit_sizing(self, topo):
        spec = TopologySpec()
        for cs in topo.circuit_sets.values():
            if INTERNET in cs.endpoints:
                assert len(cs.circuits) == spec.internet_circuits_per_gateway
                assert cs.circuits[0].capacity_gbps == spec.internet_circuit_capacity_gbps
            else:
                assert cs.circuits[0].capacity_gbps == spec.circuit_capacity_gbps

    def test_wan_mesh_connects_all_region_pairs(self, topo):
        backbones = {
            d.name: d.parent_location
            for d in topo.devices.values()
            if d.role is DeviceRole.REGION_BACKBONE
        }
        region_pairs = set()
        for cs in topo.circuit_sets.values():
            ends = sorted(cs.endpoints)
            if all(e in backbones for e in ends):
                ra, rb = backbones[ends[0]], backbones[ends[1]]
                if ra != rb:
                    region_pairs.add(frozenset((ra, rb)))
        regions = sorted(set(backbones.values()), key=str)
        expected = {
            frozenset((a, b))
            for i, a in enumerate(regions)
            for b in regions[i + 1 :]
        }
        assert region_pairs == expected

    def test_device_graph_is_connected(self, topo):
        import networkx as nx

        assert nx.is_connected(topo.device_graph())

    def test_deterministic_for_same_spec(self):
        a = build_topology(TopologySpec())
        b = build_topology(TopologySpec())
        assert sorted(a.devices) == sorted(b.devices)
        assert sorted(a.circuit_sets) == sorted(b.circuit_sets)

    def test_devices_grouped_for_redundancy(self, topo):
        for device in topo.devices.values():
            peers = topo.devices_in_group(device.group)
            assert device in peers
            for peer in peers:
                assert peer.role is device.role
                assert peer.parent_location == device.parent_location
