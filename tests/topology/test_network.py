"""Unit tests for devices, circuit sets and the Topology container."""

import pytest

from repro.topology.hierarchy import Level, LocationPath
from repro.topology.network import (
    INTERNET,
    Circuit,
    CircuitSet,
    Device,
    DeviceRole,
    Server,
    Topology,
)


def loc(*segs):
    return LocationPath(segs)


def make_device(name, parent, role=DeviceRole.CLUSTER_SWITCH, group="g"):
    return Device(
        name=name, role=role, location=parent.child(name, is_device=True), group=group
    )


@pytest.fixture()
def small_topo():
    topo = Topology()
    cluster = loc("r", "c", "l", "s", "cl")
    site = loc("r", "c", "l", "s")
    topo.add_device(make_device("sw1", cluster))
    topo.add_device(make_device("sw2", cluster))
    topo.add_device(make_device("agg1", site, role=DeviceRole.SITE_AGGREGATION))
    topo.add_circuit_set(
        CircuitSet("cs1", "sw1", "agg1", [Circuit("cs1/c1"), Circuit("cs1/c2")])
    )
    topo.add_circuit_set(CircuitSet("cs2", "sw2", "agg1", [Circuit("cs2/c1")]))
    topo.add_circuit_set(CircuitSet("inet", "agg1", INTERNET, [Circuit("inet/c1")]))
    topo.add_server(Server("srv1", cluster, "sw1"))
    return topo


class TestDevice:
    def test_requires_device_flagged_path(self):
        with pytest.raises(ValueError):
            Device("d", DeviceRole.CLUSTER_SWITCH, loc("r", "d"))

    def test_path_must_end_with_name(self):
        with pytest.raises(ValueError):
            Device(
                "d",
                DeviceRole.CLUSTER_SWITCH,
                loc("r").child("other", is_device=True),
            )

    def test_parent_location(self, small_topo):
        assert small_topo.device("sw1").parent_location == loc("r", "c", "l", "s", "cl")

    def test_role_levels(self):
        assert DeviceRole.REGION_BACKBONE.level is Level.REGION
        assert DeviceRole.CLUSTER_SWITCH.level is Level.CLUSTER


class TestServer:
    def test_server_must_live_in_cluster(self):
        with pytest.raises(ValueError):
            Server("s", loc("r", "c"), "sw1")

    def test_server_switch_must_exist(self, small_topo):
        with pytest.raises(KeyError):
            small_topo.add_server(Server("s2", loc("r", "c", "l", "s", "cl"), "nope"))


class TestCircuitSet:
    def test_needs_circuits(self):
        with pytest.raises(ValueError):
            CircuitSet("x", "a", "b", [])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            CircuitSet("x", "a", "a", [Circuit("c")])

    def test_total_capacity(self):
        cs = CircuitSet(
            "x", "a", "b", [Circuit("c1", 10.0), Circuit("c2", 30.0)]
        )
        assert cs.total_capacity_gbps == 40.0

    def test_other_end(self, small_topo):
        cs = small_topo.circuit_set("cs1")
        assert cs.other_end("sw1") == "agg1"
        assert cs.other_end("agg1") == "sw1"
        with pytest.raises(KeyError):
            cs.other_end("zzz")


class TestTopology:
    def test_duplicate_device_rejected(self, small_topo):
        with pytest.raises(ValueError):
            small_topo.add_device(make_device("sw1", loc("r", "c", "l", "s", "cl")))

    def test_internet_name_reserved(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.add_device(make_device(INTERNET, loc("r")))

    def test_circuit_set_unknown_endpoint(self, small_topo):
        with pytest.raises(KeyError):
            small_topo.add_circuit_set(
                CircuitSet("bad", "sw1", "ghost", [Circuit("b/c1")])
            )

    def test_devices_at_exact_location(self, small_topo):
        names = {d.name for d in small_topo.devices_at(loc("r", "c", "l", "s", "cl"))}
        assert names == {"sw1", "sw2"}

    def test_devices_under_subtree(self, small_topo):
        names = {d.name for d in small_topo.devices_under(loc("r", "c", "l", "s"))}
        assert names == {"sw1", "sw2", "agg1"}

    def test_devices_under_device_path(self, small_topo):
        dev = small_topo.device("sw1")
        assert [d.name for d in small_topo.devices_under(dev.location)] == ["sw1"]

    def test_neighbors_skip_internet(self, small_topo):
        assert set(small_topo.neighbors("agg1")) == {"sw1", "sw2"}

    def test_internet_gateways(self, small_topo):
        assert [d.name for d in small_topo.internet_gateways()] == ["agg1"]

    def test_circuit_sets_under(self, small_topo):
        ids = {cs.set_id for cs in small_topo.circuit_sets_under(loc("r"))}
        assert ids == {"cs1", "cs2", "inet"}

    def test_locations_iterates_top_down(self, small_topo):
        locations = list(small_topo.locations())
        assert locations[0].is_root
        seen = set()
        for location in locations:
            if not location.is_root:
                assert location.parent in seen
            seen.add(location)

    def test_servers_in(self, small_topo):
        assert [s.name for s in small_topo.servers_in(loc("r", "c", "l", "s", "cl"))] == [
            "srv1"
        ]

    def test_device_graph_excludes_internet(self, small_topo):
        graph = small_topo.device_graph()
        assert INTERNET not in graph.nodes
        assert graph.has_edge("sw1", "agg1")

    def test_stats(self, small_topo):
        stats = small_topo.stats()
        assert stats["devices"] == 3
        assert stats["circuit_sets"] == 3
        assert stats["circuits"] == 4


class TestConnectedComponents:
    def test_adjacent_devices_group(self, small_topo):
        groups = small_topo.connected_device_components(["sw1", "agg1"])
        assert groups == [frozenset({"sw1", "agg1"})]

    def test_two_hop_devices_group(self, small_topo):
        # sw1 -- agg1 -- sw2: two hops
        groups = small_topo.connected_device_components(["sw1", "sw2"], max_hops=2)
        assert groups == [frozenset({"sw1", "sw2"})]

    def test_one_hop_limit_splits(self, small_topo):
        groups = small_topo.connected_device_components(["sw1", "sw2"], max_hops=1)
        assert len(groups) == 2

    def test_unknown_devices_ignored(self, small_topo):
        groups = small_topo.connected_device_components(["sw1", "ghost"])
        assert groups == [frozenset({"sw1"})]

    def test_isolated_device_in_real_fabric(self, default_topology):
        # a cluster switch in one region vs one in another: never connected
        switches = sorted(
            d.name
            for d in default_topology.devices.values()
            if d.role is DeviceRole.CLUSTER_SWITCH
        )
        a, b = switches[0], switches[-1]
        groups = default_topology.connected_device_components([a, b])
        assert len(groups) == 2
