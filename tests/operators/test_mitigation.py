"""Tests for the operator mitigation-time model."""

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.incident import Incident, SeverityBreakdown
from repro.operators.mitigation import OperatorModel, OperatorParams
from repro.topology.hierarchy import LocationPath


def incident_with(types, root=("r", "c"), devices=()):
    incident = Incident(root=LocationPath(root), created_at=0.0, seed_nodes={})
    for i, (tool, name, level) in enumerate(types):
        incident.add(
            StructuredAlert(
                type_key=AlertTypeKey(tool, name),
                level=level,
                location=LocationPath(root),
                first_seen=0.0,
                last_seen=100.0,
                device=devices[i % len(devices)] if devices else None,
            )
        )
    return incident


def with_severity(incident, score):
    incident.severity = SeverityBreakdown(
        impact_factor=1.0, time_factor=score, score=score, capped_score=score,
        ping_loss_rate=0.1, sla_excess_rate=0.0, duration_s=100.0,
        important_customers=0, circuit_sets_considered=1,
    )
    return incident


class TestRawWorkflow:
    def test_triage_scales_with_alert_count_to_cap(self):
        model = OperatorModel()
        small = model.mitigation_time_raw(100, 3)
        large = model.mitigation_time_raw(1000, 3)
        assert large > small
        capped = model.mitigation_time_raw(10**6, 3, rootcause_alert_buried=False)
        more = model.mitigation_time_raw(2 * 10**6, 3, rootcause_alert_buried=False)
        assert capped == more  # attention cap

    def test_flood_pays_wrong_hypothesis_penalty(self):
        model = OperatorModel()
        quiet = model.mitigation_time_raw(1999, 3)
        flood = model.mitigation_time_raw(2001, 3)
        assert flood - quiet > model.params.wrong_hypothesis_s / 2

    def test_more_candidate_devices_slower(self):
        model = OperatorModel()
        assert model.mitigation_time_raw(100, 20) > model.mitigation_time_raw(100, 2)


class TestSkyNetWorkflow:
    def test_root_cause_alert_speeds_diagnosis(self):
        model = OperatorModel()
        with_rc = incident_with(
            [("ping", "loss", AlertLevel.FAILURE),
             ("syslog", "hardware_error", AlertLevel.ROOT_CAUSE)]
        )
        without_rc = incident_with(
            [("ping", "loss", AlertLevel.FAILURE)],
            devices=["d1", "d2", "d3", "d4"],
        )
        assert model.mitigation_time_skynet(with_rc) < model.mitigation_time_skynet(
            without_rc
        )

    def test_distilled_messages_beat_raw_flood(self):
        model = OperatorModel()
        incident = incident_with(
            [("ping", "loss", AlertLevel.FAILURE),
             ("snmp", "congestion", AlertLevel.ROOT_CAUSE),
             ("snmp", "link_down", AlertLevel.ROOT_CAUSE)]
        )
        skynet_time = model.mitigation_time_skynet(incident)
        raw_time = model.mitigation_time_raw(5000, 25)
        assert skynet_time < raw_time * 0.2  # >80% reduction

    def test_custom_params_respected(self):
        params = OperatorParams(message_read_s=100.0)
        model = OperatorModel(params)
        incident = incident_with([("ping", "loss", AlertLevel.FAILURE)])
        assert model.mitigation_time_skynet(incident) >= 100.0


class TestQueueing:
    def test_ranked_queue_reaches_severe_first(self):
        model = OperatorModel()
        big_mild = with_severity(
            incident_with([("snmp", f"t{i}", AlertLevel.ABNORMAL) for i in range(8)]),
            score=2.0,
        )
        small_critical = with_severity(
            incident_with([("ping", "loss", AlertLevel.FAILURE)]), score=50.0
        )
        incidents = [big_mild, small_critical]
        assert model.queue_delay(incidents, small_critical, ranked=True) == 0.0
        assert model.queue_delay(incidents, small_critical, ranked=False) > 0.0

    def test_delay_sums_prior_work(self):
        model = OperatorModel()
        first = with_severity(incident_with([("a", "x", AlertLevel.FAILURE)]), 30.0)
        second = with_severity(incident_with([("b", "y", AlertLevel.FAILURE)]), 20.0)
        third = with_severity(incident_with([("c", "z", AlertLevel.FAILURE)]), 10.0)
        delay = model.queue_delay([first, second, third], third, ranked=True)
        assert delay == pytest.approx(
            model.mitigation_time_skynet(first) + model.mitigation_time_skynet(second)
        )
