"""End-to-end integration tests for paper behaviours beyond the case studies."""

import pytest

from repro.analysis.experiments import run_campaign
from repro.analysis.metrics import score_incidents
from repro.baselines.single_source import coverage_by_tool
from repro.monitors.registry import DATA_SOURCES
from repro.simulation import scenarios as sc
from repro.simulation.noise import NoiseProfile
from repro.topology.builder import TopologySpec, build_topology
from repro.viz.voting import VotingGraph


@pytest.fixture(scope="module")
def mixed_campaign():
    return run_campaign(
        900.0,
        n_random_failures=4,
        noise=NoiseProfile(),
        seed=31,
        severe_fraction=0.5,
    )


class TestAccuracy:
    def test_zero_false_negatives_at_production_thresholds(self, mixed_campaign):
        report = score_incidents(
            mixed_campaign.incidents, mixed_campaign.injector
        )
        assert report.false_negative_ratio == 0.0

    def test_low_false_positives(self, mixed_campaign):
        report = score_incidents(
            mixed_campaign.incidents, mixed_campaign.injector
        )
        assert report.false_positive_ratio <= 0.35


class TestCoverage:
    def test_no_single_tool_covers_everything_but_union_does(self):
        result = run_campaign(
            900.0, n_random_failures=8, noise=None, seed=33, severe_fraction=0.4
        )
        truths = result.injector.ground_truths
        coverage = coverage_by_tool(
            result.topology, result.raw_alerts, truths, list(DATA_SOURCES)
        )
        assert max(coverage.values()) < 1.0 or min(coverage.values()) < 1.0
        # the union of all tools detects every failure (SkyNet's premise)
        report = score_incidents(result.incidents, result.injector)
        assert report.false_negative_ratio == 0.0


class TestDelayedRootCause:
    """§7.3: the root-cause syslog arrives minutes after the effects, yet
    must land inside the same incident (the 5-minute node timeout at work)."""

    def test_late_hardware_error_joins_incident(self):
        topo = build_topology(TopologySpec())
        scenario = sc.delayed_root_cause(topo, start=30.0)
        result = run_campaign(900.0, scenarios=[scenario], topology=topo,
                              noise=None, seed=34)
        matching = [
            r for r in result.reports
            if scenario.truth.scope.contains(r.incident.root)
            or r.incident.root.contains(scenario.truth.scope)
        ]
        assert matching
        types = {str(rec.type_key) for rec in matching[0].incident.records()}
        assert "syslog/hardware_error" in types, (
            "the delayed root cause must be grouped despite arriving late"
        )
        assert "syslog/bgp_link_jitter" in types
        # and the effects genuinely preceded the cause in the record
        records = {str(r.type_key): r for r in matching[0].incident.records()}
        assert (
            records["syslog/bgp_link_jitter"].first_seen
            < records["syslog/hardware_error"].first_seen
        )


class TestReflectorVoting:
    """§7.1: the voting view makes the misbehaving reflector stand out."""

    def test_reflector_among_top_voted(self):
        topo = build_topology(TopologySpec())
        scenario = sc.reflector_failure(topo, start=30.0)
        result = run_campaign(600.0, scenarios=[scenario], topology=topo,
                              noise=None, seed=35)
        matching = [
            r for r in result.reports
            if scenario.truth.scope.contains(r.incident.root)
            or r.incident.root.contains(scenario.truth.scope)
        ]
        assert matching
        graph = VotingGraph.from_incident(matching[0].incident, topo)
        top = [name for name, _ in graph.top_devices(3)]
        assert scenario.truth.root_cause_targets[0] in top


class TestFloodShape:
    def test_severe_failure_floods_then_skynet_distills(self):
        topo = build_topology(TopologySpec())
        scenario = sc.internet_entrance_cable_cut(topo, start=30.0)
        result = run_campaign(600.0, scenarios=[scenario], topology=topo,
                              n_customers=40, seed=36)
        # the flood: hundreds of raw alerts for one failure
        assert len(result.raw_alerts) > 300
        # the distilled view: an operator reads ~10-20 messages (§2.4)
        top = result.reports[0].incident
        assert top.distinct_type_count() <= 25

    def test_baseline_is_quiet(self):
        result = run_campaign(600.0, noise=None, seed=37)
        # no failures, no noise: nothing but (filtered) chatter
        assert result.reports == []

    def test_noise_alone_rarely_forms_incidents(self):
        result = run_campaign(900.0, noise=NoiseProfile(), seed=38)
        report = score_incidents(result.incidents, result.injector)
        # everything detected here is by definition a false positive
        assert report.incident_count <= 2
