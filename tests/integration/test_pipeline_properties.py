"""Property-style invariants over the whole pipeline."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import run_campaign
from repro.core.alert import AlertLevel
from repro.core.incident import IncidentStatus
from repro.simulation.failures import FailureCategory, sample_failure
from repro.topology.builder import TopologySpec, build_topology


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(600.0, n_random_failures=2, spec=TopologySpec.tiny(),
                        seed=77)


class TestPipelineInvariants:
    def test_no_info_alerts_reach_incidents(self, campaign):
        for incident in campaign.incidents:
            for record in incident.records():
                assert record.level is not AlertLevel.INFO

    def test_incident_windows_are_ordered(self, campaign):
        for incident in campaign.incidents:
            assert incident.start_time <= incident.end_time
            if incident.closed_at is not None:
                assert incident.closed_at >= incident.created_at

    def test_every_record_inside_incident_scope(self, campaign):
        for incident in campaign.incidents:
            for record in incident.records():
                assert incident.root.contains(record.location)

    def test_counts_bounded_by_raw_volume(self, campaign):
        raw = len(campaign.raw_alerts)
        for incident in campaign.incidents:
            assert incident.total_alert_count() <= raw

    def test_open_and_finished_partition(self, campaign):
        locator = campaign.skynet.locator
        finished = locator.finished_incidents
        assert all(not i.is_open for i in finished)
        assert all(i.is_open for i in locator.open_incidents)

    def test_superseded_incidents_have_successor(self, campaign):
        all_incidents = campaign.skynet.incidents(include_superseded=True)
        visible = campaign.skynet.incidents()
        for incident in all_incidents:
            if incident.status is IncidentStatus.SUPERSEDED:
                assert any(
                    other is not incident and other.root.contains(incident.root)
                    for other in all_incidents
                )
        assert set(visible) <= set(all_incidents)

    def test_preprocess_accounting_adds_up(self, campaign):
        stats = campaign.skynet.preprocess_stats
        assert stats.raw_in == len(campaign.raw_alerts)
        assert stats.emitted <= stats.raw_in + stats.merged
        assert stats.filtered_info + stats.unlocatable <= stats.raw_in


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_prop_campaign_deterministic_per_seed(seed):
    def run():
        result = run_campaign(240.0, n_random_failures=1,
                              spec=TopologySpec.tiny(), noise=None, seed=seed)
        return (
            len(result.raw_alerts),
            tuple(str(i.root) for i in result.incidents),
        )

    assert run() == run()


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(list(FailureCategory)), st.booleans(),
       st.integers(min_value=0, max_value=10_000))
def test_prop_scenarios_always_well_formed(category, severe, seed):
    topo = build_topology(TopologySpec.tiny())
    scenario = sample_failure(topo, random.Random(seed), start=50.0,
                              category=category, severe=severe)
    assert scenario.truth.start <= min(c.start for c in scenario.conditions)
    assert all(c.end is None or c.end > c.start for c in scenario.conditions)
    assert scenario.truth.end > scenario.truth.start
