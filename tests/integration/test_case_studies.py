"""Integration tests reproducing the paper's four §5.1 case studies."""

import pytest

from repro.analysis.experiments import run_campaign
from repro.core.alert import AlertLevel
from repro.operators.mitigation import OperatorModel
from repro.rules.engine import RuleContext, RuleEngine
from repro.rules.library import default_rule_library
from repro.rules.sop import SOPExecutor
from repro.simulation import scenarios as sc
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level
from repro.topology.traffic import (
    IMPORTANCE_CRITICAL,
    Customer,
    Flow,
    TrafficModel,
)


class TestAutomaticSOP:
    """Case 1: a known failure is matched and mitigated automatically."""

    def test_known_failure_isolated_by_sop(self):
        topo = build_topology(TopologySpec())
        scenario = sc.known_device_failure(topo, start=30.0)
        result = run_campaign(420.0, scenarios=[scenario], topology=topo,
                              noise=None, seed=21)
        assert result.reports
        incident = result.reports[0].incident
        victim = scenario.truth.root_cause_targets[0]
        assert incident.root.contains(topo.device(victim).location)
        engine = RuleEngine(default_rule_library())
        match = engine.match(
            RuleContext(incident, topo, result.state, now=result.state.now)
        )
        assert match is not None, "the Figure 2a pattern must match a rule"
        assert match.rule.name == "device-packet-loss-isolation"
        executor = SOPExecutor(result.state)
        record = executor.execute(match.plan)
        assert record.mitigated_condition_ids  # the fault's impact ended


class TestMultipleSceneDetection:
    """Case 2: five simultaneous DDoS scenes become five incidents."""

    def test_five_separate_incidents(self):
        topo = build_topology(TopologySpec.benchmark())
        scenarios = sc.multi_site_ddos(topo, start=30.0, n_sites=5)
        result = run_campaign(480.0, scenarios=scenarios, topology=topo,
                              noise=None, n_customers=60, seed=22)
        victims = [s.truth.scope for s in scenarios]
        matched = set()
        for report in result.reports:
            for victim in victims:
                if report.incident.root.contains(victim) or victim.contains(
                    report.incident.root
                ):
                    matched.add(victim)
        assert len(matched) == 5, "every attacked location must be reported"
        # and the attacks must not be merged into one giant incident
        assert len(result.reports) >= 5


class TestSceneRanking:
    """Case 3: the smaller incident with critical customers ranks first."""

    def test_critical_small_incident_outranks_big_mild(self):
        topo = build_topology(TopologySpec())
        big, small = sc.ranking_pair(topo, start=30.0)
        # critical SLA customers live entirely inside the small incident's
        # site; standard customers ride through the big site
        small_site = small.truth.scope.parent
        small_servers = [s.name for s in topo.servers_in(small.truth.scope)]
        small_site_peers = [
            s.name
            for s in topo.servers.values()
            if small_site.contains(s.cluster) and s.cluster != small.truth.scope
        ]
        big_servers = [
            s.name for s in topo.servers.values()
            if big.truth.scope.contains(s.cluster)
        ]
        far_servers = [
            s.name
            for s in topo.servers.values()
            if not big.truth.scope.contains(s.cluster)
            and not small_site.contains(s.cluster)
        ]
        customers = [Customer("vip", IMPORTANCE_CRITICAL), Customer("std")]
        flows = []
        for i, src in enumerate(small_servers):
            flows.append(
                Flow(f"vip/f{i}", "vip", src,
                     small_site_peers[i % len(small_site_peers)],
                     rate_gbps=3.0, sla_limit_gbps=2.5)
            )
        for i, src in enumerate(big_servers):
            flows.append(
                Flow(f"std/f{i}", "std", src, far_servers[i % len(far_servers)],
                     rate_gbps=0.5)
            )
        traffic = TrafficModel(topo, customers, flows)
        result = run_campaign(600.0, scenarios=[big, small], topology=topo,
                              traffic=traffic, noise=None, seed=23)
        # find the report for each scene
        def report_for(scope):
            for report in result.reports:
                if report.incident.root.contains(scope) or scope.contains(
                    report.incident.root
                ):
                    return report
            return None

        small_report = report_for(small.truth.scope)
        big_report = report_for(big.truth.scope)
        assert small_report is not None and big_report is not None
        assert big_report.incident.total_alert_count() > (
            small_report.incident.total_alert_count()
        ), "the big scene generates more alerts"
        assert small_report.score > big_report.score, (
            "severity must rank the critical-customer scene first"
        )


class TestFineGrainedLocalization:
    """Case 4: the entrance-cable failure is grouped into one incident at
    the logic-site entrance with the congestion root cause surfaced."""

    def test_single_incident_with_congestion_root_cause(self):
        topo = build_topology(TopologySpec())
        scenario = sc.internet_entrance_cable_cut(topo, start=30.0)
        result = run_campaign(600.0, scenarios=[scenario], topology=topo,
                              n_customers=40, seed=24)
        matching = [
            r for r in result.reports
            if scenario.truth.scope.contains(r.incident.root)
            or r.incident.root.contains(scenario.truth.scope)
        ]
        assert len(matching) == 1, "the flood must collapse into one incident"
        incident = matching[0].incident
        types = {str(r.type_key) for r in incident.records()}
        assert "snmp/traffic_congestion" in types, (
            "the congestion alert the operators missed in §2.2 must be visible"
        )
        assert any(
            r.level is AlertLevel.FAILURE for r in incident.records()
        )
        assert matching[0].urgent

    def test_mitigation_time_drops_two_orders(self):
        topo = build_topology(TopologySpec())
        scenario = sc.internet_entrance_cable_cut(topo, start=30.0)
        result = run_campaign(600.0, scenarios=[scenario], topology=topo,
                              n_customers=40, seed=24)
        incident = result.reports[0].incident
        model = OperatorModel()
        manual = model.mitigation_time_raw(
            len(result.raw_alerts), len(incident.devices_involved())
        )
        assisted = model.mitigation_time_skynet(incident)
        assert assisted < manual
