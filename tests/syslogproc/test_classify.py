"""Tests for template labelling and the classifier."""

import pytest

from repro.syslogproc.classify import (
    UNCLASSIFIED,
    TemplateClassifier,
    bootstrap_corpus,
    label_template,
)


@pytest.fixture(scope="module")
def clf():
    return TemplateClassifier().fit(bootstrap_corpus())


def test_classify_before_fit_raises():
    with pytest.raises(RuntimeError):
        TemplateClassifier().classify("x")


@pytest.mark.parametrize(
    "line,expected",
    [
        ("%LINK-3-UPDOWN: Interface TenGigE0/3/0/44, changed state to down", "link_down"),
        ("%LINK-3-UPDOWN: Interface TenGigE0/3/0/44, changed state to up", "link_up"),
        ("%LINEPROTO-5-UPDOWN: Line protocol on Interface TenGigE0/0/0/2, changed state to down", "link_down"),
        ("%BGP-5-ADJCHANGE: neighbor 10.99.3.7 Down - holdtimer expired", "bgp_peer_down"),
        ("%PORT-5-IF_DOWN_LINK_FAILURE: Interface TenGigE0/2/0/31 is down (Link failure)", "port_down"),
        ("%PLATFORM-2-HARDWARE_FAULT: ASIC 7 parity error detected, packets may be dropped", "hardware_error"),
        ("%OS-2-PROCESS_CRASH: Process bgpd exited unexpectedly, restart scheduled", "software_error"),
        ("%SYS-2-MALLOCFAIL: Memory allocation of 9999 bytes failed, out of memory", "out_of_memory"),
        ("%BGP-4-SESSION_JITTER: BGP link jitter detected on session eBGP-63", "bgp_link_jitter"),
        ("%PKT_INFRA-3-CRC_ERROR: 377 CRC errors detected on interface TenGigE0/1/0/9", "crc_errors"),
        ("%SEC_LOGIN-6-LOGIN_SUCCESS: Login Success [user: ops88] at vty0", "login"),
        ("%SYS-5-CONFIG_I: Configured from console by ops3 on vty1", "config_session"),
        ("%SSH-6-SESSION: SSH session from 172.16.4.9 established", "ssh_session"),
    ],
)
def test_classification_table(clf, line, expected):
    assert clf.classify(line) == expected


def test_unknown_line_unclassified(clf):
    assert clf.classify("random words with no vendor head") == UNCLASSIFIED


def test_unseen_variant_of_known_family(clf):
    # wildly different variable values still classify via the template
    line = "%BGP-5-ADJCHANGE: neighbor 203.0.113.250 Down - peer closed the session"
    assert clf.classify(line) == "bgp_peer_down"


def test_label_template_rules():
    assert label_template(("%PLATFORM-2-HARDWARE_FAULT:", "ASIC")) == "hardware_error"
    assert label_template(("nothing", "known")) == UNCLASSIFIED


def test_known_types_populated(clf):
    types = set(clf.known_types())
    assert {"link_down", "hardware_error", "login"} <= types


def test_template_count_reasonable(clf):
    assert 10 <= clf.template_count() <= 40
