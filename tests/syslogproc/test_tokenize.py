"""Tests for tokenisation and variable stripping."""

from repro.syslogproc.tokenize import constant_words, is_variable, tokenize


def test_tokenize_splits_on_whitespace_and_commas():
    assert tokenize("a b,c\td ") == ["a", "b", "c", "d"]


def test_empty_line():
    assert tokenize("") == []
    assert constant_words("") == []


def test_ipv4_is_variable():
    assert is_variable("10.1.2.3")
    assert is_variable("192.168.0.1/24")


def test_interface_is_variable():
    assert is_variable("TenGigE0/1/0/25")
    assert is_variable("HundredGigE0/0/0/1")


def test_numbers_and_hex_are_variable():
    assert is_variable("42")
    assert is_variable("3.14")
    assert is_variable("97%")
    assert is_variable("0xdeadbeef")


def test_device_names_are_variable():
    assert is_variable("RG01-CT01-LS01-ISR-G1")


def test_session_and_user_handles_variable():
    assert is_variable("eBGP-17")
    assert is_variable("vty0")
    assert is_variable("ops42")


def test_mnemonic_head_is_constant():
    assert not is_variable("%LINK-3-UPDOWN:")
    assert not is_variable("Interface")
    assert not is_variable("down")


def test_punctuation_stripped_before_matching():
    assert is_variable("(10.0.0.1)")
    assert is_variable("[42]")


def test_constant_words_keep_template_skeleton():
    line = "%LINK-3-UPDOWN: Interface TenGigE0/1/0/25, changed state to down"
    words = constant_words(line)
    assert "%LINK-3-UPDOWN:" in words
    assert "Interface" in words
    assert "down" in words
    assert not any("TenGigE" in w for w in words)


def test_two_instances_share_skeleton():
    a = "%BGP-5-ADJCHANGE: neighbor 10.0.0.1 Down - holdtimer expired"
    b = "%BGP-5-ADJCHANGE: neighbor 172.16.9.7 Down - holdtimer expired"
    assert constant_words(a) == constant_words(b)
