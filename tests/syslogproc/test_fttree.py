"""Tests for FT-tree template extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.syslogproc.fttree import FtTree

CORPUS = [
    "%LINK-3-UPDOWN: Interface TenGigE0/1/0/1, changed state to down",
    "%LINK-3-UPDOWN: Interface TenGigE0/2/0/9, changed state to down",
    "%LINK-3-UPDOWN: Interface TenGigE0/1/0/1, changed state to up",
    "%BGP-5-ADJCHANGE: neighbor 10.0.0.1 Down - holdtimer expired",
    "%BGP-5-ADJCHANGE: neighbor 10.0.0.2 Down - holdtimer expired",
    "%SYS-2-MALLOCFAIL: Memory allocation of 4096 bytes failed, out of memory",
]


def test_match_before_fit_raises():
    with pytest.raises(RuntimeError):
        FtTree().match("x")


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        FtTree(max_children=0)
    with pytest.raises(ValueError):
        FtTree(min_word_count=0)


def test_same_family_shares_template():
    tree = FtTree().fit(CORPUS)
    a = tree.match("%LINK-3-UPDOWN: Interface TenGigE0/9/0/4, changed state to down")
    b = tree.match("%LINK-3-UPDOWN: Interface TenGigE0/3/0/7, changed state to down")
    assert a == b is not None


def test_up_and_down_templates_differ():
    tree = FtTree().fit(CORPUS)
    down = tree.match(CORPUS[0])
    up = tree.match(CORPUS[2])
    assert down != up


def test_template_count_bounded_by_message_families():
    tree = FtTree().fit(CORPUS)
    assert 3 <= tree.template_count() <= len(CORPUS)


def test_unseen_family_returns_none_or_shallow():
    tree = FtTree().fit(CORPUS)
    assert tree.match("completely different words entirely") is None


def test_word_frequency_counts_messages_not_occurrences():
    tree = FtTree().fit(["a a a b", "a c"])
    assert tree.word_frequency("a") == 2


def test_extend_adds_new_templates():
    tree = FtTree().fit(CORPUS)
    before = tree.template_count()
    tree.extend(["%NEW-1-THING: something novel happened badly"] * 2)
    assert tree.template_count() > before
    assert tree.match("%NEW-1-THING: something novel happened badly") is not None


def test_pruning_collapses_high_fanout_positions():
    # 40 messages identical except one pseudo-random word the variable
    # regexes do not catch: that position must prune away
    corpus = [f"alpha beta gamma variantword{i}x" for i in range(40)]
    tree = FtTree(max_children=8).fit(corpus)
    assert tree.template_count() <= 8 + 1


def test_deterministic_fit():
    t1 = FtTree().fit(CORPUS).templates()
    t2 = FtTree().fit(CORPUS).templates()
    assert t1 == t2


# -- property-based -----------------------------------------------------------

words = st.lists(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]),
    min_size=1,
    max_size=6,
)
corpus_strategy = st.lists(words.map(" ".join), min_size=1, max_size=30)


@settings(max_examples=50, deadline=None)
@given(corpus_strategy)
def test_prop_every_training_line_matches_something(corpus):
    tree = FtTree().fit(corpus)
    for line in corpus:
        assert tree.match(line) is not None


@settings(max_examples=50, deadline=None)
@given(corpus_strategy)
def test_prop_template_words_come_from_line(corpus):
    tree = FtTree().fit(corpus)
    for line in corpus:
        template = tree.match(line)
        assert template is not None
        assert set(template) <= set(line.split())


@settings(max_examples=30, deadline=None)
@given(corpus_strategy)
def test_prop_template_count_bounded_by_corpus(corpus):
    tree = FtTree().fit(corpus)
    assert tree.template_count() <= len(set(corpus)) + 1
