"""Tests for the visualization helpers."""

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.alert_tree import AlertTree
from repro.core.incident import Incident
from repro.core.zoom_in import ReachabilityMatrix
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level, LocationPath
from repro.viz.render import (
    render_alert_tree,
    render_incident_tree,
    render_matrix_heatmap,
)
from repro.viz.voting import VotingGraph


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec.tiny())


def alert(location, name="link_down", device=None, count=1):
    return StructuredAlert(
        type_key=AlertTypeKey("snmp", name),
        level=AlertLevel.ROOT_CAUSE,
        location=location,
        first_seen=0.0,
        last_seen=10.0,
        count=count,
        device=device,
    )


class TestVoting:
    def incident(self, topo):
        devices = sorted(topo.devices)[:3]
        root = LocationPath(())
        incident = Incident(root=root, created_at=0.0, seed_nodes={})
        incident.add(alert(topo.device(devices[0]).location, device=devices[0],
                           count=5))
        incident.add(alert(topo.device(devices[1]).location, name="port_down",
                           device=devices[1], count=1))
        return incident, devices

    def test_votes_follow_alert_counts(self, topo):
        incident, devices = self.incident(topo)
        graph = VotingGraph.from_incident(incident, topo)
        assert graph.device_votes[devices[0]] == 5
        assert graph.top_device() == devices[0]

    def test_links_of_voters_receive_votes(self, topo):
        incident, devices = self.incident(topo)
        graph = VotingGraph.from_incident(incident, topo)
        for cs in topo.circuit_sets_of(devices[0]):
            assert graph.edge_votes[cs.set_id] >= 5

    def test_render_table(self, topo):
        incident, devices = self.incident(topo)
        text = VotingGraph.from_incident(incident, topo).render_table()
        assert devices[0] in text

    def test_dot_export_well_formed(self, topo):
        incident, _ = self.incident(topo)
        dot = VotingGraph.from_incident(incident, topo).to_dot(topo)
        assert dot.startswith("graph incident {")
        assert dot.rstrip().endswith("}")

    def test_empty_incident_graph(self, topo):
        incident = Incident(root=LocationPath(()), created_at=0.0, seed_nodes={})
        graph = VotingGraph.from_incident(incident, topo)
        assert graph.top_device() is None


class TestRendering:
    def test_alert_tree_rendering(self, topo):
        tree = AlertTree()
        cluster = next(l for l in topo.locations() if l.level is Level.CLUSTER)
        tree.insert(alert(cluster))
        text = render_alert_tree(tree)
        assert cluster.name in text
        assert "root_cause: 1" in text

    def test_empty_tree_rendering(self):
        assert render_alert_tree(AlertTree()) == "<empty tree>"

    def test_incident_tree_rendering(self, topo):
        cluster = next(l for l in topo.locations() if l.level is Level.CLUSTER)
        incident = Incident(root=cluster.parent, created_at=0.0, seed_nodes={})
        incident.add(alert(cluster))
        text = render_incident_tree(incident)
        assert incident.incident_id in text
        assert "snmp/link_down" in text

    def test_matrix_heatmap_markers(self, topo):
        clusters = [l for l in topo.locations() if l.level is Level.CLUSTER][:3]
        matrix = ReachabilityMatrix(
            clusters,
            {(clusters[0], clusters[1]): 0.5, (clusters[0], clusters[2]): 0.01},
        )
        text = render_matrix_heatmap(matrix)
        assert "#" in text and "+" in text and "." in text
