"""Tests for the remaining monitors: OOB, sFlow, internet, INT, PTP, route,
modification, patrol, traceroute."""

import pytest

from repro.monitors.int_telemetry import IntTelemetryMonitor
from repro.monitors.internet import InternetTelemetryMonitor
from repro.monitors.modification import ModificationMonitor
from repro.monitors.oob import OutOfBandMonitor
from repro.monitors.patrol import PatrolInspectionMonitor
from repro.monitors.ptp import PtpMonitor
from repro.monitors.route import RouteMonitor
from repro.monitors.sflow import SflowMonitor
from repro.monitors.traceroute import TracerouteMonitor
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level
from repro.topology.network import DeviceRole
from repro.topology.traffic import generate_traffic


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


@pytest.fixture()
def state(topo):
    return NetworkState(topo, generate_traffic(topo, n_customers=25, seed=8))


def switch(topo):
    return sorted(
        d.name for d in topo.devices.values() if d.role is DeviceRole.CLUSTER_SWITCH
    )[0]


class TestOutOfBand:
    def test_reports_dead_device(self, topo, state):
        victim = switch(topo)
        state.add_condition(Condition(ConditionKind.DEVICE_DOWN, victim, 0.0))
        state.set_time(1.0)
        alerts = OutOfBandMonitor(state).observe(1.0)
        assert [a.raw_type for a in alerts] == ["inaccessible"]
        assert alerts[0].device == victim

    def test_probe_error_spams_false_downs(self, topo, state):
        victim = switch(topo)
        state.add_condition(Condition(ConditionKind.PROBE_ERROR, victim, 0.0))
        state.set_time(1.0)
        alerts = OutOfBandMonitor(state).observe(1.0)
        assert len(alerts) >= 3
        assert all(a.raw_type == "inaccessible" for a in alerts)

    def test_cpu_and_mem(self, topo, state):
        victim = switch(topo)
        state.add_conditions(
            [
                Condition(ConditionKind.DEVICE_HIGH_CPU, victim, 0.0),
                Condition(ConditionKind.DEVICE_HIGH_MEM, victim, 0.0),
            ]
        )
        state.set_time(1.0)
        types = {a.raw_type for a in OutOfBandMonitor(state).observe(1.0)}
        assert types == {"high_cpu", "high_mem"}


class TestSflow:
    def test_device_loss_attributed(self, topo, state):
        victim = switch(topo)
        state.add_condition(
            Condition(
                ConditionKind.DEVICE_SILENT_LOSS, victim, 0.0,
                params={"loss_rate": 0.2},
            )
        )
        state.set_time(1.0)
        alerts = SflowMonitor(state).observe(1.0)
        loss = [a for a in alerts if a.raw_type == "packet_loss"]
        assert any(a.device == victim for a in loss)

    def test_quiet_when_healthy(self, state):
        state.set_time(0.0)
        assert SflowMonitor(state).observe(0.0) == []


class TestInternetTelemetry:
    def test_unreachable_when_gateways_die(self, topo, state):
        gws = topo.internet_gateways()
        for gw in gws:
            state.add_condition(Condition(ConditionKind.DEVICE_DOWN, gw.name, 0.0))
        state.set_time(state.convergence_s + 1.0)
        alerts = InternetTelemetryMonitor(state).observe(state.now)
        assert any(a.raw_type == "internet_unreachable" for a in alerts)
        assert all(a.location_hint is not None for a in alerts)

    def test_one_probe_per_cluster(self, topo, state):
        monitor = InternetTelemetryMonitor(state)
        clusters = [l for l in topo.locations() if l.level is Level.CLUSTER]
        assert len(monitor._probes) == len(clusters)


class TestIntTelemetry:
    def test_detects_silent_loss_on_supported_device(self, topo, state):
        victim = switch(topo)  # cluster switches support INT
        state.add_condition(
            Condition(
                ConditionKind.DEVICE_SILENT_LOSS, victim, 0.0,
                params={"loss_rate": 0.1},
            )
        )
        state.set_time(1.0)
        alerts = IntTelemetryMonitor(state).observe(1.0)
        assert any(a.device == victim for a in alerts)

    def test_blind_to_core_devices(self, topo, state):
        core = sorted(
            d.name
            for d in topo.devices.values()
            if d.role is DeviceRole.CITY_ROUTER
        )[0]
        state.add_condition(
            Condition(
                ConditionKind.DEVICE_SILENT_LOSS, core, 0.0,
                params={"loss_rate": 0.5},
            )
        )
        state.set_time(1.0)
        alerts = IntTelemetryMonitor(state).observe(1.0)
        assert not any(a.device == core for a in alerts)


class TestPtp:
    def test_drift_alert(self, topo, state):
        victim = switch(topo)
        state.add_condition(
            Condition(
                ConditionKind.DEVICE_CLOCK_DRIFT, victim, 0.0,
                params={"drift_us": 120.0},
            )
        )
        state.set_time(1.0)
        alerts = PtpMonitor(state).observe(1.0)
        assert [a.raw_type for a in alerts] == ["clock_unsync"]

    def test_small_drift_ignored(self, topo, state):
        victim = switch(topo)
        state.add_condition(
            Condition(
                ConditionKind.DEVICE_CLOCK_DRIFT, victim, 0.0,
                params={"drift_us": 5.0},
            )
        )
        state.set_time(1.0)
        assert PtpMonitor(state).observe(1.0) == []


class TestRouteMonitor:
    def test_all_route_fault_kinds(self, topo, state):
        gw = topo.internet_gateways()[0].name
        state.add_conditions(
            [
                Condition(ConditionKind.ROUTE_LOSS, gw, 0.0),
                Condition(ConditionKind.ROUTE_LEAK, gw, 0.0),
                Condition(ConditionKind.ROUTE_HIJACK, gw, 0.0),
            ]
        )
        state.set_time(1.0)
        types = {a.raw_type for a in RouteMonitor(state).observe(1.0)}
        assert types == {"default_route_loss", "route_leak", "route_hijack"}

    def test_reemit_throttled(self, topo, state):
        gw = topo.internet_gateways()[0].name
        state.add_condition(Condition(ConditionKind.ROUTE_LOSS, gw, 0.0))
        state.set_time(1.0)
        monitor = RouteMonitor(state)
        assert monitor.observe(1.0)
        assert monitor.observe(11.0) == []  # within re-emit period
        assert monitor.observe(62.0)


class TestModification:
    def test_failed_and_ok_events_once(self, topo, state):
        victim = switch(topo)
        state.add_conditions(
            [
                Condition(ConditionKind.MODIFICATION_FAILED, victim, 0.0),
                Condition(ConditionKind.MODIFICATION_OK, victim, 0.0),
            ]
        )
        state.set_time(1.0)
        monitor = ModificationMonitor(state)
        types = {a.raw_type for a in monitor.observe(1.0)}
        assert types == {"modification_failed", "modification_event"}
        assert monitor.observe(11.0) == []


class TestPatrol:
    def test_sees_config_errors_other_tools_miss(self, topo, state):
        victim = switch(topo)
        state.add_condition(Condition(ConditionKind.CONFIG_ERROR, victim, 0.0))
        state.set_time(1.0)
        alerts = PatrolInspectionMonitor(state).observe(1.0)
        assert [a.raw_type for a in alerts] == ["patrol_anomaly"]

    def test_slow_period(self):
        assert PatrolInspectionMonitor.period_s == 900.0


class TestTraceroute:
    def test_attributes_hop_within_logic_site(self, topo, state):
        monitor = TracerouteMonitor(state)
        # find an intra-logic-site pair and break a device on its path
        for src, dst in monitor._pairs:
            a = topo.servers[src].cluster.truncate(Level.LOGIC_SITE)
            b = topo.servers[dst].cluster.truncate(Level.LOGIC_SITE)
            if a == b:
                route, _ = state.pair_loss(src, dst)
                if len(route.devices) < 2:
                    continue
                victim = route.devices[1]
                state.add_condition(
                    Condition(
                        ConditionKind.DEVICE_HARDWARE_ERROR, victim, 0.0,
                        params={"loss_rate": 0.5},
                    )
                )
                state.set_time(1.0)
                alerts = monitor.observe(1.0)
                hops = [x for x in alerts if x.raw_type == "hop_loss"]
                assert any(x.device == victim for x in hops)
                return
        pytest.skip("no intra-logic-site pair in mesh")
