"""Tests for the Ping monitor."""

import pytest

from repro.monitors.ping import LOSS_ALERT_THRESHOLD, PingMonitor
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level
from repro.topology.traffic import generate_traffic


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


@pytest.fixture()
def state(topo):
    return NetworkState(topo, generate_traffic(topo, n_customers=20, seed=2))


def test_mesh_covers_every_cluster(topo, state):
    monitor = PingMonitor(state)
    probed = set()
    for src, dst in monitor.probe_pairs:
        probed.add(topo.servers[src].cluster)
        probed.add(topo.servers[dst].cluster)
    clusters = {l for l in topo.locations() if l.level is Level.CLUSTER}
    assert probed == clusters


def test_silent_on_healthy_network(state):
    monitor = PingMonitor(state)
    state.set_time(0.0)
    assert monitor.observe(0.0) == []


def test_alerts_on_lossy_device(topo, state):
    monitor = PingMonitor(state)
    # make every path through one CSR lossy
    victim = sorted(
        d.name for d in topo.devices.values() if d.role.value == "CSR"
    )[0]
    state.add_condition(
        Condition(
            ConditionKind.DEVICE_HARDWARE_ERROR, victim, 0.0,
            params={"loss_rate": 0.5},
        )
    )
    state.set_time(1.0)
    alerts = monitor.observe(1.0)
    assert alerts
    for alert in alerts:
        assert alert.endpoints is not None
        assert alert.metric("loss_rate") >= LOSS_ALERT_THRESHOLD
        assert alert.raw_type.endswith("_loss")


def test_flavours_are_stable_per_pair(state):
    monitor = PingMonitor(state)
    victims = monitor.probe_pairs[:1]
    # raw types derive from the pair hash, so repeated observation agrees
    src, dst = victims[0]
    import zlib

    flavour1 = zlib.crc32(f"{src}|{dst}".encode())
    flavour2 = zlib.crc32(f"{src}|{dst}".encode())
    assert flavour1 == flavour2


def test_period_is_two_seconds():
    assert PingMonitor.period_s == 2.0
