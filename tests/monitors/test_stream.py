"""Tests for the alert stream driver and the registry."""

import pytest

from repro.monitors.registry import (
    COVERAGE_ORDER,
    DATA_SOURCES,
    MONITOR_CLASSES,
    build_monitors,
)
from repro.monitors.stream import AlertStream
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.traffic import generate_traffic


@pytest.fixture()
def state():
    topo = build_topology(TopologySpec.tiny())
    return NetworkState(topo, generate_traffic(topo, n_customers=8, seed=1))


class TestRegistry:
    def test_twelve_data_sources(self):
        assert len(DATA_SOURCES) == 12
        assert set(DATA_SOURCES) == set(MONITOR_CLASSES)

    def test_coverage_order_is_permutation(self):
        assert sorted(COVERAGE_ORDER) == sorted(DATA_SOURCES)

    def test_build_all(self, state):
        monitors = build_monitors(state)
        assert {m.name for m in monitors} == set(DATA_SOURCES)

    def test_build_subset_and_exclude(self, state):
        monitors = build_monitors(state, include=["ping", "syslog"], exclude=["syslog"])
        assert [m.name for m in monitors] == ["ping"]

    def test_unknown_source_rejected(self, state):
        with pytest.raises(KeyError):
            build_monitors(state, include=["nope"])

    def test_class_names_match_registry(self, state):
        for name, cls in MONITOR_CLASSES.items():
            assert cls.name == name


class TestAlertStream:
    def test_requires_monitors(self, state):
        with pytest.raises(ValueError):
            AlertStream(state, [])

    def test_rejects_bad_tick(self, state):
        with pytest.raises(ValueError):
            AlertStream(state, build_monitors(state), tick_s=0)

    def test_alerts_ordered_by_delivery(self, state):
        victim = sorted(state.topology.devices)[0]
        state.add_condition(Condition(ConditionKind.DEVICE_HIGH_CPU, victim, 0.0))
        stream = AlertStream(state, build_monitors(state))
        alerts = stream.collect(120.0)
        times = [a.delivered_at for a in alerts]
        assert times == sorted(times)

    def test_nothing_delivered_after_horizon(self, state):
        stream = AlertStream(state, build_monitors(state))
        alerts = stream.collect(60.0)
        assert all(a.delivered_at < 60.0 for a in alerts)

    def test_negative_duration_rejected(self, state):
        stream = AlertStream(state, build_monitors(state))
        with pytest.raises(ValueError):
            stream.collect(-1.0)

    def test_deterministic_given_seed(self):
        def run():
            topo = build_topology(TopologySpec.tiny())
            st = NetworkState(topo, generate_traffic(topo, n_customers=8, seed=1))
            st.add_condition(
                Condition(
                    ConditionKind.DEVICE_HARDWARE_ERROR,
                    sorted(topo.devices)[0],
                    0.0,
                )
            )
            return [
                (a.tool, a.raw_type, a.timestamp)
                for a in AlertStream(st, build_monitors(st, seed=4)).collect(90.0)
            ]

        assert run() == run()
