"""Tests for the syslog monitor's log production."""

import pytest

from repro.monitors.syslog import SyslogMonitor, interface_name, pseudo_ip
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.network import DeviceRole


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec.tiny())


@pytest.fixture()
def state(topo):
    return NetworkState(topo)


def switch(topo):
    return sorted(
        d.name for d in topo.devices.values() if d.role is DeviceRole.CLUSTER_SWITCH
    )[0]


def test_interface_and_ip_deterministic():
    assert interface_name("a", "b") == interface_name("a", "b")
    assert pseudo_ip("dev") == pseudo_ip("dev")
    assert pseudo_ip("dev1") != pseudo_ip("dev2")


def test_dead_device_logs_come_from_neighbours(topo, state):
    victim = switch(topo)
    state.add_condition(Condition(ConditionKind.DEVICE_DOWN, victim, 0.0))
    state.set_time(1.0)
    monitor = SyslogMonitor(state)
    monitor.chatter_rate = 0.0
    alerts = monitor.observe(1.0)
    assert alerts
    neighbours = set(topo.neighbors(victim))
    assert {a.device for a in alerts} <= neighbours
    assert any("changed state to down" in a.message for a in alerts)
    assert any("BGP-5-ADJCHANGE" in a.message for a in alerts)


def test_down_burst_emitted_once(topo, state):
    victim = switch(topo)
    state.add_condition(Condition(ConditionKind.DEVICE_DOWN, victim, 0.0))
    state.set_time(1.0)
    monitor = SyslogMonitor(state)
    monitor.chatter_rate = 0.0
    assert monitor.observe(1.0)
    assert monitor.observe(6.0) == []


def test_circuit_break_logs_port_down_per_circuit(topo, state):
    cs = next(iter(topo.circuit_sets.values()))
    state.add_condition(
        Condition(
            ConditionKind.CIRCUIT_BREAK, cs.set_id, 0.0,
            params={"broken_circuits": 1},
        )
    )
    state.set_time(1.0)
    monitor = SyslogMonitor(state)
    monitor.chatter_rate = 0.0
    alerts = monitor.observe(1.0)
    port_downs = [a for a in alerts if "IF_DOWN_LINK_FAILURE" in a.message]
    assert len(port_downs) == 2  # one per endpoint, one broken circuit


def test_hardware_error_reemits_on_period(topo, state):
    victim = switch(topo)
    state.add_condition(
        Condition(ConditionKind.DEVICE_HARDWARE_ERROR, victim, 0.0)
    )
    state.set_time(1.0)
    monitor = SyslogMonitor(state)
    monitor.chatter_rate = 0.0
    first = monitor.observe(1.0)
    assert any("HARDWARE_FAULT" in a.message for a in first)
    assert monitor.observe(10.0) == []  # within the 60 s re-emit period
    assert any("HARDWARE_FAULT" in a.message for a in monitor.observe(65.0))


def test_syslog_delay_param_honoured(topo, state):
    victim = switch(topo)
    state.add_condition(
        Condition(
            ConditionKind.DEVICE_HARDWARE_ERROR, victim, 0.0,
            params={"syslog_delay_s": 300.0},
        )
    )
    monitor = SyslogMonitor(state)
    monitor.chatter_rate = 0.0
    state.set_time(100.0)
    assert monitor.observe(100.0) == []
    state.set_time(301.0)
    assert any("HARDWARE_FAULT" in a.message for a in monitor.observe(301.0))


def test_silent_conditions_produce_no_syslog(topo, state):
    victim = switch(topo)
    state.add_conditions(
        [
            Condition(ConditionKind.DEVICE_SILENT_LOSS, victim, 0.0),
            Condition(ConditionKind.CONFIG_ERROR, victim, 0.0),
            Condition(ConditionKind.ROUTE_LEAK, victim, 0.0),
        ]
    )
    state.set_time(1.0)
    monitor = SyslogMonitor(state)
    monitor.chatter_rate = 0.0
    assert monitor.observe(1.0) == []


def test_flapping_reemits_every_poll(topo, state):
    cs = next(iter(topo.circuit_sets.values()))
    state.add_condition(Condition(ConditionKind.LINK_FLAPPING, cs.set_id, 0.0))
    state.set_time(1.0)
    monitor = SyslogMonitor(state)
    monitor.chatter_rate = 0.0
    a1 = monitor.observe(1.0)
    a2 = monitor.observe(6.0)
    assert a1 and a2
    assert any("state to up" in a.message for a in a1)


def test_chatter_produces_benign_lines(topo, state):
    state.set_time(1.0)
    monitor = SyslogMonitor(state)
    monitor.chatter_rate = 1.0  # force chatter
    alerts = monitor.observe(1.0)
    assert alerts
    assert all(a.raw_type == "log" for a in alerts)
