"""Tests for the §9 future-work data sources and §5.2 extensibility."""

import pytest

from repro.core.alert import AlertLevel
from repro.core.alert_types import level_of
from repro.core.pipeline import SkyNet
from repro.monitors.registry import DATA_SOURCES, FUTURE_SOURCES, build_monitors
from repro.monitors.srte_probe import SrteProbeMonitor
from repro.monitors.stream import AlertStream
from repro.monitors.user_telemetry import UserTelemetryMonitor
from repro.simulation import scenarios as sc
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.injector import FailureInjector
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.network import INTERNET
from repro.topology.traffic import generate_traffic


@pytest.fixture()
def state():
    topo = build_topology(TopologySpec())
    return NetworkState(topo, generate_traffic(topo, n_customers=25, seed=9))


class TestRegistry:
    def test_future_sources_not_in_standard_twelve(self):
        assert not set(FUTURE_SOURCES) & set(DATA_SOURCES)

    def test_standard_build_excludes_future(self, state):
        names = {m.name for m in build_monitors(state)}
        assert names == set(DATA_SOURCES)

    def test_future_flag_adds_both(self, state):
        names = {m.name for m in build_monitors(state, future_sources=True)}
        assert names == set(DATA_SOURCES) | set(FUTURE_SOURCES)

    def test_explicit_include_of_future_source(self, state):
        monitors = build_monitors(state, include=["user_telemetry"])
        assert [m.name for m in monitors] == ["user_telemetry"]

    def test_levels_registered(self):
        assert level_of("user_telemetry", "user_unreachable") is AlertLevel.FAILURE
        assert level_of("srte_probe", "label_path_broken") is AlertLevel.ROOT_CAUSE


class TestUserTelemetry:
    def test_quiet_when_healthy(self, state):
        state.set_time(0.0)
        assert UserTelemetryMonitor(state).observe(0.0) == []

    def test_sees_entrance_failure(self, state):
        topo = state.topology
        for gw in topo.internet_gateways():
            for cs in topo.circuit_sets_of(gw.name):
                if INTERNET in cs.endpoints:
                    state.add_condition(
                        Condition(ConditionKind.CIRCUIT_BREAK, cs.set_id, 0.0)
                    )
        state.set_time(state.convergence_s + 1.0)
        alerts = UserTelemetryMonitor(state).observe(state.now)
        assert any(a.raw_type == "user_unreachable" for a in alerts)


class TestSrteProbe:
    def test_quiet_when_healthy(self, state):
        state.set_time(0.0)
        assert SrteProbeMonitor(state).observe(0.0) == []

    def test_names_broken_link_directly(self, state):
        set_id = sorted(
            cs.set_id
            for cs in state.topology.circuit_sets.values()
            if INTERNET not in cs.endpoints
        )[0]
        state.add_condition(Condition(ConditionKind.CIRCUIT_BREAK, set_id, 0.0))
        state.set_time(1.0)
        alerts = SrteProbeMonitor(state).observe(1.0)
        broken = [a for a in alerts if a.raw_type == "label_path_broken"]
        assert len(broken) == 1
        assert set_id in broken[0].message

    def test_reports_flapping_as_loss(self, state):
        set_id = sorted(
            cs.set_id
            for cs in state.topology.circuit_sets.values()
            if INTERNET not in cs.endpoints
        )[0]
        state.add_condition(
            Condition(ConditionKind.LINK_FLAPPING, set_id, 0.0,
                      params={"loss_rate": 0.1})
        )
        state.set_time(1.0)
        alerts = SrteProbeMonitor(state).observe(1.0)
        assert any(a.raw_type == "label_path_loss" for a in alerts)


class TestExtensibilityEndToEnd:
    def test_new_sources_flow_through_skynet_unchanged(self):
        """§5.2: structured alerts from a new tool inject directly."""
        topo = build_topology(TopologySpec())
        traffic = generate_traffic(topo, n_customers=30, seed=10)
        state = NetworkState(topo, traffic)
        injector = FailureInjector(state)
        # entrance cut: seen by user telemetry; device failure with a fully
        # broken uplink: named by the SRTE label probe
        injector.inject(sc.internet_entrance_cable_cut(topo, start=30.0))
        injector.inject(sc.known_device_failure(topo, start=40.0))
        stream = AlertStream(
            state, build_monitors(state, future_sources=True)
        )
        alerts = stream.collect(480.0)
        assert any(a.tool == "user_telemetry" for a in alerts)
        assert any(a.tool == "srte_probe" for a in alerts)
        skynet = SkyNet(topo, state=state)
        reports = skynet.process(alerts)
        assert reports
        all_types = {
            str(r.type_key)
            for report in reports
            for r in report.incident.records()
        }
        assert any(t.startswith("user_telemetry/") for t in all_types)
        assert any(t.startswith("srte_probe/") for t in all_types)
