"""Tests for the SNMP monitor, including legacy-device delivery delay."""

import pytest

from repro.monitors.snmp import (
    MAX_OLD_DEVICE_DELAY_S,
    SnmpMonitor,
    device_delay,
    is_old_device,
)
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.network import INTERNET
from repro.topology.traffic import generate_traffic


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


@pytest.fixture()
def state(topo):
    return NetworkState(topo, generate_traffic(topo, n_customers=25, seed=3))


def internal_set(topo):
    return next(
        cs for cs in topo.circuit_sets.values() if INTERNET not in cs.endpoints
    )


def test_old_device_fraction_reasonable(topo):
    old = sum(1 for name in topo.devices if is_old_device(name))
    assert 0 < old < len(topo.devices)


def test_delay_bounds(topo):
    for name in topo.devices:
        delay = device_delay(name)
        assert 0.0 <= delay <= MAX_OLD_DEVICE_DELAY_S
        if not is_old_device(name):
            assert delay == 0.0


def test_silent_when_healthy(state):
    state.set_time(0.0)
    assert SnmpMonitor(state).observe(0.0) == []


def test_circuit_break_reports_port_down(topo, state):
    cs = internal_set(topo)
    state.add_condition(
        Condition(
            ConditionKind.CIRCUIT_BREAK, cs.set_id, 0.0,
            params={"broken_circuits": 1},
        )
    )
    state.set_time(1.0)
    alerts = SnmpMonitor(state).observe(1.0)
    port = [a for a in alerts if a.raw_type == "port_down"]
    assert {a.device for a in port} == set(cs.endpoints)


def test_full_break_reports_link_down(topo, state):
    cs = internal_set(topo)
    state.add_condition(Condition(ConditionKind.CIRCUIT_BREAK, cs.set_id, 0.0))
    state.set_time(1.0)
    alerts = SnmpMonitor(state).observe(1.0)
    assert any(a.raw_type == "link_down" for a in alerts)


def test_dead_device_times_out_immediately(topo, state):
    victim = sorted(topo.devices)[0]
    state.add_condition(Condition(ConditionKind.DEVICE_DOWN, victim, 0.0))
    state.set_time(1.0)
    alerts = SnmpMonitor(state).observe(1.0)
    timeout = next(a for a in alerts if a.raw_type == "snmp_timeout")
    # the poller itself notices the timeout; no legacy delay applies
    assert timeout.delivered_at == timeout.timestamp


def test_counter_alerts_delayed_on_old_devices(topo, state):
    old = next(name for name in sorted(topo.devices) if is_old_device(name))
    state.add_condition(Condition(ConditionKind.DEVICE_HIGH_CPU, old, 0.0))
    state.set_time(1.0)
    alerts = SnmpMonitor(state).observe(1.0)
    cpu = next(a for a in alerts if a.raw_type == "high_cpu")
    assert cpu.delivered_at - cpu.timestamp == device_delay(old) > 0


def test_crc_errors_report_rx_errors(topo, state):
    cs = internal_set(topo)
    state.add_condition(Condition(ConditionKind.LINK_CRC_ERRORS, cs.set_id, 0.0))
    state.set_time(1.0)
    alerts = SnmpMonitor(state).observe(1.0)
    assert any(a.raw_type == "rx_errors" for a in alerts)


def test_congestion_alert_on_hot_entrance(topo, state):
    from repro.topology.hierarchy import Level

    victim = next(l for l in topo.locations() if l.level is Level.CLUSTER)
    state.add_condition(
        Condition(
            ConditionKind.DDOS_ATTACK, victim, 0.0, params={"attack_gbps": 10000.0}
        )
    )
    state.set_time(1.0)
    alerts = SnmpMonitor(state).observe(1.0)
    assert any(a.raw_type == "traffic_congestion" for a in alerts)
