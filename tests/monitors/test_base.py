"""Tests for RawAlert and the Monitor base class."""

import pytest

from repro.monitors.base import Monitor, RawAlert
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology


def test_delivered_defaults_to_timestamp():
    alert = RawAlert(tool="t", raw_type="x", timestamp=5.0)
    assert alert.delivered_at == 5.0


def test_delivery_before_observation_rejected():
    with pytest.raises(ValueError):
        RawAlert(tool="t", raw_type="x", timestamp=5.0, delivered_at=4.0)


def test_metric_lookup():
    alert = RawAlert(tool="t", raw_type="x", timestamp=0.0, metrics={"a": 1.5})
    assert alert.metric("a") == 1.5
    assert alert.metric("b", 9.0) == 9.0


class CountingMonitor(Monitor):
    name = "counting"
    period_s = 10.0

    def observe(self, t):
        return [self._alert("tick", t)]


@pytest.fixture()
def state():
    return NetworkState(build_topology(TopologySpec.tiny()))


def test_collect_catches_up_all_periods(state):
    monitor = CountingMonitor(state)
    alerts = monitor.collect(35.0)
    # offset < 1s, so 4 firings fit in 35s
    assert len(alerts) == 4
    assert [a.raw_type for a in alerts] == ["tick"] * 4


def test_collect_does_not_refire(state):
    monitor = CountingMonitor(state)
    monitor.collect(35.0)
    assert monitor.collect(35.0) == []


def test_alert_helper_sets_tool_and_delay(state):
    monitor = CountingMonitor(state)
    alert = monitor._alert("x", 10.0, delay_s=5.0, foo=1.0)
    assert alert.tool == "counting"
    assert alert.delivered_at == 15.0
    assert alert.metric("foo") == 1.0


def test_monitor_offsets_differ_across_tools(state):
    class A(CountingMonitor):
        name = "aaa"

    class B(CountingMonitor):
        name = "bbb"

    assert A(state)._schedule.peek_next() != B(state)._schedule.peek_next()
