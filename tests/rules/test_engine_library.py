"""Tests for the rule engine and the representative rule library."""

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.incident import Incident
from repro.rules.engine import HeuristicRule, RuleContext, RuleEngine
from repro.rules.library import default_rule_library
from repro.rules.sop import ActionKind, SOPPlan
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.network import DeviceRole
from repro.topology.traffic import generate_traffic


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


@pytest.fixture()
def state(topo):
    return NetworkState(topo, generate_traffic(topo, n_customers=20, seed=2))


def switch(topo, index=0):
    return sorted(
        d.name for d in topo.devices.values() if d.role is DeviceRole.CLUSTER_SWITCH
    )[index]


def incident_for(topo, records):
    """records: list of (device_name_or_None, location, tool, type, level)."""
    roots = [loc for _, loc, *_ in records]
    from repro.topology.hierarchy import lowest_common_ancestor

    incident = Incident(root=lowest_common_ancestor(roots), created_at=0.0,
                        seed_nodes={})
    for device, loc, tool, name, level in records:
        incident.add(
            StructuredAlert(
                type_key=AlertTypeKey(tool, name),
                level=level,
                location=loc,
                first_seen=0.0,
                last_seen=60.0,
                device=device,
            )
        )
    return incident


def lossy_device_incident(topo, device_name):
    dev = topo.device(device_name)
    return incident_for(
        topo,
        [
            (device_name, dev.location, "traffic_statistics", "packet_loss",
             AlertLevel.FAILURE),
            (device_name, dev.location, "syslog", "hardware_error",
             AlertLevel.ROOT_CAUSE),
        ],
    )


class TestEngine:
    def test_duplicate_rule_names_rejected(self):
        rule = HeuristicRule("x", "", (), lambda ctx: SOPPlan("p", ()))
        with pytest.raises(ValueError):
            RuleEngine([rule, rule])

    def test_first_match_wins(self, topo, state):
        yes = HeuristicRule("always", "", (), lambda ctx: SOPPlan("first", ()))
        other = HeuristicRule("also", "", (), lambda ctx: SOPPlan("second", ()))
        engine = RuleEngine([yes, other])
        ctx = RuleContext(lossy_device_incident(topo, switch(topo)), topo, state)
        match = engine.match(ctx)
        assert match.plan.name == "first"

    def test_no_match_returns_none(self, topo, state):
        never = HeuristicRule("never", "", (lambda ctx: False,),
                              lambda ctx: SOPPlan("p", ()))
        engine = RuleEngine([never])
        ctx = RuleContext(lossy_device_incident(topo, switch(topo)), topo, state)
        assert engine.match(ctx) is None
        assert not engine.is_known_failure(ctx)


class TestLibrary:
    def test_isolation_rule_matches_paper_pattern(self, topo, state):
        """Figure 2a: one lossy device, peers silent, traffic manageable."""
        engine = RuleEngine(default_rule_library())
        ctx = RuleContext(lossy_device_incident(topo, switch(topo)), topo, state)
        match = engine.match(ctx)
        assert match is not None
        assert match.rule.name == "device-packet-loss-isolation"
        kinds = [a.kind for a in match.plan.actions]
        assert ActionKind.ISOLATE_DEVICE in kinds
        assert match.plan.rollback  # §7.2: rollback always prepared

    def test_isolation_blocked_when_peer_also_alerts(self, topo, state):
        engine = RuleEngine(default_rule_library())
        dev = switch(topo)
        peer = next(
            d.name
            for d in topo.devices_in_group(topo.device(dev).group)
            if d.name != dev
        )
        incident = lossy_device_incident(topo, dev)
        incident.add(
            StructuredAlert(
                type_key=AlertTypeKey("traffic_statistics", "packet_loss"),
                level=AlertLevel.FAILURE,
                location=topo.device(peer).location,
                first_seen=0.0,
                last_seen=60.0,
                device=peer,
            )
        )
        match = RuleEngine(default_rule_library()).match(
            RuleContext(incident, topo, state)
        )
        assert match is None or match.rule.name != "device-packet-loss-isolation"

    def test_redundant_circuit_rule(self, topo, state):
        dev = switch(topo)
        location = topo.device(dev).location
        incident = incident_for(
            topo,
            [(dev, location, "snmp", "port_down", AlertLevel.ROOT_CAUSE)],
        )
        match = RuleEngine(default_rule_library()).match(
            RuleContext(incident, topo, state)
        )
        assert match is not None
        assert match.rule.name == "redundant-circuit-repair"

    def test_flapping_rule(self, topo, state):
        dev = switch(topo)
        location = topo.device(dev).location
        incident = incident_for(
            topo,
            [(dev, location, "syslog", "link_flapping", AlertLevel.ABNORMAL)],
        )
        match = RuleEngine(default_rule_library()).match(
            RuleContext(incident, topo, state)
        )
        assert match is not None
        assert match.rule.name == "flapping-interface-disable"

    def test_severe_wide_incident_matches_nothing(self, topo, state):
        """The whole point of SkyNet: unknown/severe failures fall through."""
        from repro.topology.hierarchy import Level, LocationPath

        logic_site = next(
            l for l in topo.locations() if l.level is Level.LOGIC_SITE
        )
        gateways = [
            d for d in topo.devices_at(logic_site)
            if d.role is DeviceRole.INTERNET_GATEWAY
        ]
        records = [
            (gw.name, gw.location, "snmp", "link_down", AlertLevel.ROOT_CAUSE)
            for gw in gateways
        ]
        records.append(
            (None, logic_site, "internet_telemetry", "internet_unreachable",
             AlertLevel.FAILURE)
        )
        incident = incident_for(topo, records)
        assert incident.root == logic_site
        match = RuleEngine(default_rule_library()).match(
            RuleContext(incident, topo, state)
        )
        assert match is None
