"""Tests for SOP plans and execution against the simulator."""

import pytest

from repro.rules.sop import (
    ActionKind,
    SOPAction,
    SOPExecutor,
    SOPPlan,
)
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology


@pytest.fixture()
def state():
    return NetworkState(build_topology(TopologySpec.tiny()))


def plan_for(device):
    return SOPPlan(
        name="isolate",
        actions=(SOPAction(ActionKind.ISOLATE_DEVICE, device),
                 SOPAction(ActionKind.OPEN_REPAIR_TICKET, device)),
        rollback=(SOPAction(ActionKind.ISOLATE_DEVICE, device, note="undo"),),
    )


def test_execute_ends_device_conditions(state):
    device = sorted(state.topology.devices)[0]
    cond = Condition(ConditionKind.DEVICE_HARDWARE_ERROR, device, 0.0)
    state.add_condition(cond)
    state.set_time(10.0)
    executor = SOPExecutor(state)
    record = executor.execute(plan_for(device))
    assert record.mitigated_condition_ids == [cond.condition_id]
    state.set_time(10.1)
    assert state.conditions_on_device(device) == []


def test_ticket_only_actions_mitigate_nothing(state):
    device = sorted(state.topology.devices)[0]
    state.add_condition(Condition(ConditionKind.DEVICE_HARDWARE_ERROR, device, 0.0))
    state.set_time(1.0)
    executor = SOPExecutor(state)
    plan = SOPPlan("ticket", actions=(SOPAction(ActionKind.OPEN_REPAIR_TICKET, device),))
    record = executor.execute(plan)
    assert record.mitigated_condition_ids == []
    state.set_time(1.1)
    assert state.conditions_on_device(device)


def test_circuit_set_target(state):
    set_id = sorted(state.topology.circuit_sets)[0]
    cond = Condition(ConditionKind.LINK_FLAPPING, set_id, 0.0)
    state.add_condition(cond)
    state.set_time(5.0)
    executor = SOPExecutor(state)
    plan = SOPPlan("shut", actions=(SOPAction(ActionKind.DISABLE_INTERFACE, set_id),))
    record = executor.execute(plan)
    assert cond.condition_id in record.mitigated_condition_ids


def test_location_target_for_ddos(state):
    from repro.topology.hierarchy import Level

    victim = next(
        l for l in state.topology.locations() if l.level is Level.CLUSTER
    )
    cond = Condition(ConditionKind.DDOS_ATTACK, victim, 0.0,
                     params={"attack_gbps": 100.0})
    state.add_condition(cond)
    state.set_time(5.0)
    executor = SOPExecutor(state)
    plan = SOPPlan("acl", actions=(SOPAction(ActionKind.BLOCK_TRAFFIC, str(victim)),))
    record = executor.execute(plan)
    assert cond.condition_id in record.mitigated_condition_ids


def test_history_and_rollback_audit(state):
    device = sorted(state.topology.devices)[0]
    executor = SOPExecutor(state)
    record = executor.execute(plan_for(device))
    assert executor.history == [record]
    executor.rollback(record)
    assert record.rolled_back


def test_plan_render_includes_rollback():
    text = plan_for("dev-1").render()
    assert "isolate_device(dev-1)" in text
    assert "rollback:" in text
