"""Chaos battery: injected faults must be survivable, loud, and exact.

Each test runs the same seeded flood through :class:`RuntimeService`
with a :class:`ChaosPlan` and checks the recovery contract the chaos
layer promises:

* an empty plan is inert -- not "roughly the same output", the *same
  list object* through :meth:`ChaosPlan.perturb` and a byte-identical
  incident stream through the service;
* chaos runs are a pure function of (plan, seed): rerunning a faulted
  run reproduces the incident stream *and* the retry/shed counters;
* a shard that crashes mid-storm and is healed from its last snapshot
  plus oplog replay yields exactly the uncrashed incident stream,
  incident ids included;
* I/O faults below the retry budget cost retries, never incidents;
  an exhausted budget sheds visibly (metrics) and degrades to exactly
  the output of a stream that never contained the shed alerts;
* killing and resuming a *faulted* run reproduces the uninterrupted
  faulted run, because fault decisions depend only on sim time;
* silencing sources degrades accuracy monotonically (the Figure 8a
  ablation, run as outages) and stamps surviving incidents with a
  reduced confidence naming the dark sources.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import FrozenSet, List, Sequence, Set, Tuple

import pytest

from repro.monitors.base import RawAlert
from repro.monitors.registry import COVERAGE_ORDER
from repro.runtime import RuntimeService
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.faults import (
    ChaosPlan,
    CorrelatedCrash,
    IOFault,
    ShardCrash,
    SourceBrownout,
    SourceOutage,
    chaos_or_none,
    empty_plan,
)
from repro.runtime.supervisor import ShardSupervision
from repro.runtime.workers import MPSupervisedLocator

from ..test_equivalence_flood import _assert_equal, _device_down, _fingerprint, _stream
from .test_kill_resume import (
    BACKENDS,
    _incident_ids,
    flood_fixture,
    runtime_config,
    uninterrupted_run,
)

RUN_SEED = 7


def chaos_run(
    topo, state, raws, config, chaos, run_seed: int = RUN_SEED, directory=None
) -> RuntimeService:
    set_incident_counter(1)
    service = RuntimeService(
        topo, config=config, state=state, directory=directory,
        chaos=chaos, run_seed=run_seed,
    )
    service.run(raws)
    service.finish()
    return service


# -- inertness ---------------------------------------------------------------


def test_empty_plan_is_inert():
    assert chaos_or_none(None) is None
    assert chaos_or_none(empty_plan()) is None
    assert chaos_or_none(ChaosPlan(seed=99)) is None
    plan = empty_plan()
    raws: List[RawAlert] = []
    result = plan.perturb(raws)
    assert result.raws is raws  # the same object, not a copy
    assert result.counts() == {
        "dropped": 0, "delayed": 0, "duplicated": 0, "skewed": 0,
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_out_of_window_plan_is_byte_identical(shards, backend):
    """A plan whose windows never intersect the run leaves it untouched.

    Stronger than the empty-plan case: here the whole chaos machinery is
    armed (FaultyIO consulted per append, the supervised locator logging
    ops, crash schedule pending) and must still change nothing.
    """
    topo, state, raws = flood_fixture()
    config = runtime_config(shards=shards, backend=backend)
    expected, expected_ids = uninterrupted_run(topo, state, raws, config)

    horizon = max(r.delivered_at for r in raws)
    plan = ChaosPlan(
        shard_crashes=(ShardCrash(at=horizon + 100.0, shard=0),),
        io_faults=(
            IOFault("journal_append", horizon + 100.0, horizon + 200.0),
        ),
    )
    service = chaos_run(topo, state, raws, config, plan)
    assert isinstance(service.pipeline.locator, ShardSupervision)
    _assert_equal(expected, _fingerprint(service.pipeline))
    assert _incident_ids(service) == expected_ids
    assert service.metrics.counter_value("runtime_shard_crashes_total") == 0
    assert service.metrics.counter_value("runtime_io_errors_total") == 0


# -- determinism -------------------------------------------------------------


def _noisy_plan() -> ChaosPlan:
    return ChaosPlan(
        brownouts=(
            SourceBrownout(
                "syslog", 60.0, 400.0,
                delay_s=5.0, delay_jitter_s=20.0,
                duplicate_rate=0.2, drop_rate=0.1,
            ),
        ),
        shard_crashes=(ShardCrash(at=250.0, shard=1),),
        io_faults=(IOFault("journal_append", 100.0, 180.0, fail_count=2),),
        seed=3,
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_chaos_runs_are_seed_deterministic(tmp_path, backend):
    topo, state, raws = flood_fixture()
    config = runtime_config(backend=backend)
    plan = _noisy_plan()

    perturbed = plan.perturb(raws, run_seed=RUN_SEED)
    assert perturbed.dropped > 0 and perturbed.delayed > 0
    assert perturbed.duplicated > 0
    again = plan.perturb(raws, run_seed=RUN_SEED)
    assert [r.delivered_at for r in again.raws] == [
        r.delivered_at for r in perturbed.raws
    ]
    assert again.counts() == perturbed.counts()
    # a different run seed draws a different perturbation
    other = plan.perturb(raws, run_seed=RUN_SEED + 1)
    assert [r.delivered_at for r in other.raws] != [
        r.delivered_at for r in perturbed.raws
    ]

    counters = (
        "runtime_io_errors_total",
        "runtime_io_retries_total",
        "runtime_io_shed_journal_append_total",
        "runtime_shard_crashes_total",
        "runtime_shard_restores_total",
        "runtime_shard_replayed_ops_total",
    )
    runs = []
    for attempt in range(2):
        service = chaos_run(
            topo, state, list(perturbed.raws), config, plan,
            directory=tmp_path / f"run-{attempt}",
        )
        runs.append(
            (
                _fingerprint(service.pipeline),
                _incident_ids(service),
                {c: service.metrics.counter_value(c) for c in counters},
            )
        )
    _assert_equal(runs[0][0], runs[1][0])
    assert runs[0][1] == runs[1][1]
    assert runs[0][2] == runs[1][2]
    assert runs[0][2]["runtime_io_retries_total"] > 0
    assert runs[0][2]["runtime_shard_crashes_total"] == 1


# -- shard crash + restore ---------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shards", [2, 4])
def test_shard_crash_and_restore_mid_storm_is_exact(shards, backend):
    """Under ``mp`` the crash is real: the worker process is SIGKILLed
    and a replacement is re-armed from snapshot + oplog replay."""
    topo, state, raws = flood_fixture()
    config = runtime_config(shards=shards, backend=backend)
    expected, expected_ids = uninterrupted_run(topo, state, raws, config)

    plan = ChaosPlan(
        shard_crashes=(
            ShardCrash(at=200.0, shard=0),
            ShardCrash(at=300.0, shard=shards - 1),
        ),
    )
    service = chaos_run(topo, state, raws, config, plan)
    _assert_equal(expected, _fingerprint(service.pipeline))
    assert _incident_ids(service) == expected_ids
    assert service.metrics.counter_value("runtime_shard_crashes_total") == 2
    assert service.metrics.counter_value("runtime_shard_restores_total") == 2
    assert service.metrics.counter_value("runtime_shard_replayed_ops_total") > 0


@pytest.mark.slow
def test_unplanned_sigkill_of_real_worker_heals_exactly():
    """An *unscheduled* SIGKILL of a live worker process, from outside the
    chaos plan, is detected at the next pipe operation (mid-sweep) and
    healed transparently -- the final incident stream, ids included, must
    equal the run that was never killed.
    """
    topo, state, raws = flood_fixture()
    config = runtime_config(backend="mp")
    expected, expected_ids = uninterrupted_run(topo, state, raws, config)

    # arm supervision with a crash scheduled far beyond the horizon: the
    # plan never fires, so every crash observed below is the real SIGKILL
    horizon = max(r.delivered_at for r in raws)
    plan = ChaosPlan(shard_crashes=(ShardCrash(at=horizon + 1e9, shard=0),))
    set_incident_counter(1)
    service = RuntimeService(
        topo, config=config, state=state, chaos=plan, run_seed=RUN_SEED
    )
    locator = service.pipeline.locator
    assert isinstance(locator, MPSupervisedLocator)

    k = len(raws) // 2
    for raw in raws[:k]:
        service.ingest(raw)

    n_workers = locator.workers_alive()
    victim = locator.worker_pid(0)
    os.kill(victim, signal.SIGKILL)
    deadline = time.monotonic() + 30.0
    while locator.workers_alive() == n_workers:
        assert time.monotonic() < deadline, "worker did not die after SIGKILL"
        time.sleep(0.01)

    for raw in raws[k:]:
        service.ingest(raw)
    service.finish()

    assert locator.worker_pid(0) != victim, "shard 0 must run in a new process"
    assert locator.crashes >= 1
    assert locator.restores >= 1
    assert locator.replayed_ops > 0
    _assert_equal(expected, _fingerprint(service.pipeline))
    assert _incident_ids(service) == expected_ids


# -- I/O faults and the retry budget ----------------------------------------


def test_transient_io_faults_below_budget_lose_nothing(tmp_path):
    topo, state, raws = flood_fixture()
    config = runtime_config()
    expected, expected_ids = uninterrupted_run(topo, state, raws, config)

    plan = ChaosPlan(
        io_faults=(
            IOFault("journal_append", 100.0, 200.0, fail_count=2),
            IOFault("checkpoint_save", 0.0, 600.0, fail_count=1),
        ),
    )
    service = chaos_run(
        topo, state, raws, config, plan, directory=tmp_path / "chaos"
    )
    _assert_equal(expected, _fingerprint(service.pipeline))
    assert _incident_ids(service) == expected_ids
    assert service.metrics.counter_value("runtime_io_retries_total") > 0
    for op in ("journal_append", "journal_sync", "checkpoint_save"):
        assert (
            service.metrics.counter_value(f"runtime_io_shed_{op}_total") == 0
        )


def test_exhausted_io_budget_sheds_loudly_and_exactly(tmp_path):
    """A permanent journal fault degrades to 'those alerts never happened'.

    Admission shedding is the terminal fallback: an alert whose journal
    append cannot be made durable is dropped *before* touching pipeline
    state, so the run must equal a run over the stream with the faulted
    window filtered out -- and the sheds must be visible in metrics, not
    silent.
    """
    topo, state, raws = flood_fixture()
    config = runtime_config()
    window = (100.0, 200.0)
    in_window = [r for r in raws if window[0] <= r.delivered_at < window[1]]
    filtered = [r for r in raws if not window[0] <= r.delivered_at < window[1]]
    assert in_window, "fault window must actually cover part of the flood"

    expected, expected_ids = uninterrupted_run(topo, state, filtered, config)

    plan = ChaosPlan(
        io_faults=(IOFault("journal_append", *window, permanent=True),),
    )
    service = chaos_run(
        topo, state, raws, config, plan, directory=tmp_path / "chaos"
    )
    _assert_equal(expected, _fingerprint(service.pipeline))
    assert _incident_ids(service) == expected_ids
    shed = service.metrics.counter_value("runtime_io_shed_journal_append_total")
    assert shed == len(in_window)


# -- correlated crashes + partial snapshot loss ------------------------------


def test_correlated_crash_validates_its_shape():
    with pytest.raises(ValueError):
        CorrelatedCrash(at=1.0, shards=())
    with pytest.raises(ValueError):
        CorrelatedCrash(at=1.0, shards=(0, 0))
    with pytest.raises(ValueError):
        CorrelatedCrash(at=1.0, shards=(0,), lose_snapshots=(1,))
    plan = ChaosPlan(
        correlated_crashes=(
            CorrelatedCrash(at=1.0, shards=(2, 0), lose_snapshots=(0,)),
        ),
    )
    assert not plan.is_empty()
    assert plan.crashes_shards()
    assert chaos_or_none(plan) is plan


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shards", [2, 4])
def test_correlated_crash_with_snapshot_loss_rebuilds_exactly(
    tmp_path, shards, backend
):
    """A majority of shards die together and their snapshots are gone:
    recovery must rebuild them from durable checkpoint + journal tail and
    end byte-identical, ids included, with zero degraded heals."""
    topo, state, raws = flood_fixture()
    config = runtime_config(shards=shards, backend=backend)
    expected, expected_ids = uninterrupted_run(topo, state, raws, config)

    victims = tuple(range(shards - 1)) or (0,)
    plan = ChaosPlan(
        correlated_crashes=(
            CorrelatedCrash(at=250.0, shards=victims, lose_snapshots=victims),
        ),
    )
    service = chaos_run(
        topo, state, raws, config, plan, directory=tmp_path / "chaos"
    )
    _assert_equal(expected, _fingerprint(service.pipeline))
    assert _incident_ids(service) == expected_ids
    counters = service.metrics
    assert counters.counter_value("runtime_correlated_crashes_total") == 1
    assert counters.counter_value("runtime_shard_crashes_total") == len(victims)
    assert (
        counters.counter_value("runtime_shard_snapshots_lost_total")
        == len(victims)
    )
    assert counters.counter_value("runtime_shard_rebuilds_total") == len(victims)
    assert counters.counter_value("runtime_shard_degraded_heals_total") == 0
    assert counters.counter_value("runtime_data_loss_stamped_incidents_total") == 0


def test_snapshot_loss_without_durability_degrades_loudly(tmp_path):
    """No durable journal to rebuild from (journal_read fault-exhausted):
    the lost shards heal empty, the heal is counted as degraded, and every
    open incident is stamped with the data-loss confidence."""
    topo, state, raws = flood_fixture()
    config = runtime_config(shards=2)
    plan = ChaosPlan(
        correlated_crashes=(
            CorrelatedCrash(at=250.0, shards=(0, 1), lose_snapshots=(0, 1)),
        ),
        io_faults=(
            IOFault("journal_read", 0.0, 10**9, permanent=True),
        ),
    )
    service = chaos_run(
        topo, state, raws, config, plan, directory=tmp_path / "chaos"
    )
    counters = service.metrics
    assert counters.counter_value("runtime_shard_degraded_heals_total") == 2
    assert counters.counter_value("runtime_shard_rebuilds_total") == 0
    assert counters.counter_value("runtime_data_loss_stamped_incidents_total") > 0
    stamped = [
        i
        for i in service.pipeline.incidents(include_superseded=True)
        if any("data-loss" in s for s in i.degraded_sources)
    ]
    assert stamped, "data loss must be stamped on the open incidents"
    for incident in stamped:
        assert incident.confidence is not None
        assert incident.confidence <= 0.5
        assert "degraded: " in incident.render()


def test_snapshot_loss_without_run_directory_degrades_loudly():
    """An ephemeral run (no --dir) has no rebuild tier at all: snapshot
    loss must fall straight through to the degraded heal, never crash."""
    topo, state, raws = flood_fixture()
    config = runtime_config(shards=2)
    plan = ChaosPlan(
        correlated_crashes=(
            CorrelatedCrash(at=250.0, shards=(0,), lose_snapshots=(0,)),
        ),
    )
    service = chaos_run(topo, state, raws, config, plan, directory=None)
    assert service.metrics.counter_value("runtime_shard_degraded_heals_total") == 1
    assert (
        service.metrics.counter_value("runtime_data_loss_stamped_incidents_total")
        > 0
    )


# -- kill/resume under chaos -------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("cut", [0.4, 0.7])
def test_chaos_kill_and_resume_reproduces_faulted_run(tmp_path, cut, backend):
    """Fault decisions depend only on sim time, so resume re-derives them."""
    topo, state, raws = flood_fixture()
    config = runtime_config(backend=backend)
    plan = ChaosPlan(
        shard_crashes=(
            ShardCrash(at=200.0, shard=0),
            ShardCrash(at=300.0, shard=1),
        ),
        io_faults=(IOFault("journal_append", 100.0, 180.0, fail_count=2),),
    )
    reference = chaos_run(topo, state, raws, config, plan)
    expected = _fingerprint(reference.pipeline)
    expected_ids = _incident_ids(reference)

    k = int(len(raws) * cut)
    set_incident_counter(1)
    first = RuntimeService(
        topo, config=config, state=state, directory=tmp_path,
        chaos=plan, run_seed=RUN_SEED,
    )
    for raw in raws[:k]:
        first.ingest(raw)
    del first  # crash: no finish, no graceful shutdown

    set_incident_counter(1)
    resumed = RuntimeService.resume(
        topo, tmp_path, config=config, state=state,
        chaos=plan, run_seed=RUN_SEED,
    )
    assert resumed.recovery is not None
    assert resumed.recovery.corruptions == ()
    for raw in raws[k:]:
        resumed.ingest(raw)
    resumed.finish()

    _assert_equal(expected, _fingerprint(resumed.pipeline))
    assert _incident_ids(resumed) == expected_ids
    assert (
        resumed.metrics.counter_value("runtime_shard_crashes_total")
        + 0  # crashes before the cut happened in the killed process...
        <= 2
    )
    # ...but the full schedule fired exactly once across the two lives
    fired = resumed.metrics.counter_value("runtime_shard_restores_total")
    assert fired == resumed.metrics.counter_value("runtime_shard_crashes_total")


@pytest.mark.parametrize("backend", BACKENDS)
def test_correlated_crash_fires_once_across_kill_and_resume(tmp_path, backend):
    """The fired-correlated set rides the checkpoint: a crash event that
    already fired in the killed process must not refire after resume."""
    topo, state, raws = flood_fixture()
    config = runtime_config(shards=2, backend=backend)
    plan = ChaosPlan(
        correlated_crashes=(
            CorrelatedCrash(at=200.0, shards=(0, 1), lose_snapshots=(0,)),
        ),
    )
    reference = chaos_run(
        topo, state, raws, config, plan, directory=tmp_path / "ref"
    )
    expected = _fingerprint(reference.pipeline)
    expected_ids = _incident_ids(reference)

    # kill well after the crash fired, then resume the same plan
    k = next(
        i for i, raw in enumerate(raws) if raw.delivered_at > 350.0
    )
    rundir = tmp_path / "killed"
    set_incident_counter(1)
    first = RuntimeService(
        topo, config=config, state=state, directory=rundir,
        chaos=plan, run_seed=RUN_SEED,
    )
    for raw in raws[:k]:
        first.ingest(raw)
    assert first.metrics.counter_value("runtime_correlated_crashes_total") == 1
    first.checkpoint()
    del first  # crash: no finish, no graceful shutdown

    set_incident_counter(1)
    resumed = RuntimeService.resume(
        topo, rundir, config=config, state=state,
        chaos=plan, run_seed=RUN_SEED,
    )
    for raw in raws[k:]:
        resumed.ingest(raw)
    resumed.finish()
    _assert_equal(expected, _fingerprint(resumed.pipeline))
    assert _incident_ids(resumed) == expected_ids
    # the metrics registry rides the checkpoint, so the resumed life
    # inherits the first life's count -- and must not add a refire
    assert resumed.metrics.counter_value("runtime_correlated_crashes_total") == 1


# -- source degradation (Figure 8a as outages) -------------------------------


def _down_devices(seed: int = 7, n_down: int = 4) -> List[str]:
    """The same choice ``flood_fixture`` makes, recomputed."""
    from repro.topology.builder import TopologySpec, build_topology

    topo = build_topology(TopologySpec())
    rng = random.Random(seed)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    return devices[:n_down]


def _recall(service: RuntimeService, down: Sequence[str]) -> float:
    detected: Set[str] = set()
    for incident in service.pipeline.incidents(include_superseded=True):
        detected |= set(incident.devices_involved())
    return len(detected & set(down)) / len(down)


def test_source_outage_stamps_confidence(tmp_path):
    topo, state, raws = flood_fixture()
    config = runtime_config()
    plan = ChaosPlan(outages=(SourceOutage("ping", 0.0, 700.0),))
    perturbed = plan.perturb(raws, run_seed=RUN_SEED)
    assert perturbed.dropped > 0
    service = chaos_run(topo, state, perturbed.raws, config, plan)

    incidents = service.pipeline.incidents(include_superseded=True)
    assert incidents
    stamped = [i for i in incidents if i.confidence is not None]
    assert stamped, "ping outage must reduce confidence in some incident"
    for incident in stamped:
        assert 0.0 <= incident.confidence < 1.0
        assert "ping" in incident.degraded_sources
        assert "degraded: " in incident.render()
        assert f"confidence {incident.confidence:.2f}" in incident.render()


def test_source_outages_degrade_accuracy_monotonically():
    """Figure 8a as chaos: silencing sources (low coverage first) can only
    hurt, and silencing everything detects nothing."""
    topo, state, raws = flood_fixture()
    config = runtime_config()
    down = _down_devices()

    recalls = []
    for k in (0, 4, 8, len(COVERAGE_ORDER)):
        silenced = COVERAGE_ORDER[:k]
        plan = chaos_or_none(
            ChaosPlan(
                outages=tuple(
                    SourceOutage(tool, 0.0, 700.0) for tool in silenced
                )
            )
        )
        stream = raws
        if plan is not None:
            stream = plan.perturb(raws, run_seed=RUN_SEED).raws
        service = chaos_run(topo, state, stream, config, plan)
        recalls.append(_recall(service, down))

    assert recalls[0] > 0.0, "the unablated run must detect the failure"
    for better, worse in zip(recalls, recalls[1:]):
        assert worse <= better, f"ablation improved recall: {recalls}"
    assert recalls[-1] == 0.0, "with every source dark nothing is detectable"
