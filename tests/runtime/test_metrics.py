"""Unit coverage for the runtime metrics registry (REP004: clock-free)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.runtime.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_is_monotonic():
    counter = Counter("events_total")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_holds_last_value():
    gauge = Gauge("open_incidents")
    gauge.set(7)
    gauge.set(3.5)
    assert gauge.value == 3.5


def test_histogram_buckets_and_inf_tail():
    hist = Histogram("lag_seconds", buckets=(1.0, 10.0))
    for value in (0.5, 0.9, 5.0, 9999.0):
        hist.observe(value)
    assert hist.bucket_counts == [2, 1, 1]  # <=1, <=10, +inf
    assert hist.count == 4
    assert hist.mean == pytest.approx((0.5 + 0.9 + 5.0 + 9999.0) / 4)
    empty = Histogram("empty")
    assert empty.mean == 0.0
    assert len(empty.bucket_counts) == len(DEFAULT_BUCKETS) + 1


def test_registry_get_or_create_returns_same_handle():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "first registration wins")
    b = registry.counter("x_total", "ignored on re-registration")
    assert a is b
    a.inc()
    assert registry.counter_value("x_total") == 1
    assert registry.counter_value("never_registered") == 0


def test_render_text_is_sorted_and_prometheus_shaped():
    registry = MetricsRegistry()
    registry.counter("z_total", "last alphabetically").inc(2)
    registry.counter("a_total", "first alphabetically").inc(1)
    registry.gauge("live", "a gauge").set(4)
    hist = registry.histogram("lag", "a histogram", buckets=(1.0,))
    hist.observe(0.5)
    hist.observe(99.0)
    text = registry.render_text()
    assert text.index("a_total 1") < text.index("z_total 2")
    assert "# HELP a_total first alphabetically" in text
    assert 'lag_bucket{le="1"} 1' in text
    assert 'lag_bucket{le="+Inf"} 2' in text  # cumulative
    assert "lag_count 2" in text
    # rendering twice is byte-stable
    assert registry.render_text() == text


def test_render_json_parses_and_nests():
    registry = MetricsRegistry()
    registry.counter("c_total").inc(3)
    registry.histogram("h", buckets=(2.0,)).observe(1.0)
    data = json.loads(registry.render_json())
    assert data["counters"]["c_total"] == 3
    assert data["histograms"]["h"]["count"] == 1
    assert data["histograms"]["h"]["buckets"] == {"2": 1, "+Inf": 0}


def test_registry_pickles_with_counts_intact():
    """The registry rides inside runtime checkpoints; pickling is part of
    its contract."""
    registry = MetricsRegistry()
    registry.counter("c_total").inc(9)
    registry.gauge("g").set(2.5)
    registry.histogram("h").observe(42.0)
    clone = pickle.loads(pickle.dumps(registry))
    assert clone.counter_value("c_total") == 9
    assert clone.gauge("g").value == 2.5
    assert clone.histogram("h").count == 1
    # handles from the clone keep working
    clone.counter("c_total").inc()
    assert clone.counter_value("c_total") == 10
