"""Admission-control contract (§4.1 consolidation ladder as backpressure).

Two properties are load-bearing:

* **disabled means invisible** -- with ``backpressure`` off the
  controller is a pure pass-through: zero sheds at every rung and
  byte-identical pipeline output to a service with no controller at all;
* **every shed is counted** -- with backpressure on, each dropped alert
  lands in exactly one ladder-rung counter, offered always equals
  admitted plus sheds, and the counts survive journal replay exactly.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import PRODUCTION_CONFIG
from repro.monitors.base import RawAlert
from repro.runtime import RuntimeService
from repro.runtime.admission import RUNGS, AdmissionController
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.metrics import MetricsRegistry

from ..test_equivalence_flood import _assert_equal, _fingerprint
from .test_kill_resume import flood_fixture, runtime_config


def _params(watermark: int, window_s: float = 10.0, enabled: bool = True):
    return dataclasses.replace(
        PRODUCTION_CONFIG.runtime,
        backpressure=enabled,
        admission_watermark=watermark,
        admission_window_s=window_s,
    )


def _raw(
    t: float,
    tool: str = "syslog",
    raw_type: str = "link_down",
    device: str = "dev-a",
) -> RawAlert:
    return RawAlert(
        tool=tool, raw_type=raw_type, timestamp=t, device=device, delivered_at=t
    )


# ---------------------------------------------------------------------------
# controller unit behaviour


def test_disabled_controller_admits_everything():
    controller = AdmissionController(_params(watermark=1, enabled=False))
    for i in range(500):
        decision = controller.offer(_raw(float(i) / 100, device="dev-a"))
        assert decision.admit and decision.rung is None
    assert controller.offered == controller.admitted == 500
    assert all(count == 0 for count in controller.sheds.values())


def test_ladder_rungs_engage_in_order():
    """watermark=2, window=10s: rung 1 over 2 in-window, rung 2 over 4,
    rung 3 over 8 -- each rung only sheds its own alert class."""
    metrics = MetricsRegistry()
    controller = AdmissionController(_params(watermark=2), metrics=metrics)

    # load 1..2: under the watermark, everything admitted
    assert controller.offer(_raw(0.0, device="d1")).admit
    assert controller.offer(_raw(0.1, device="d2")).admit
    # load 3 (> 2): dedup engages -- but only for an in-window duplicate
    assert controller.offer(_raw(0.2, device="d3")).admit
    duplicate = controller.offer(_raw(0.3, device="d1"))
    assert not duplicate.admit and duplicate.rung == "dedup"
    # load 5 (> 4): sporadic single-source types are suppressed ...
    sporadic = controller.offer(
        _raw(0.4, tool="ping", raw_type="end_to_end_icmp_loss", device="d9")
    )
    assert not sporadic.admit and sporadic.rung == "single_source"
    # ... but conditional types still pass below 4x the watermark
    conditional = controller.offer(
        _raw(0.5, tool="snmp", raw_type="traffic_drop", device="d4")
    )
    assert conditional.admit
    # push past 8 in-window offers, then the cross-source rung engages
    for i in range(3):
        assert controller.offer(_raw(0.6 + i / 10, device=f"d{5 + i}")).admit
    shed = controller.offer(
        _raw(0.9, tool="snmp", raw_type="traffic_drop", device="d-fresh")
    )
    assert not shed.admit and shed.rung == "cross_source"
    # fresh syslog from a new device is never shed: not on any rung
    assert controller.offer(_raw(1.0, device="d-new")).admit

    assert controller.sheds == {
        "dedup": 1, "single_source": 1, "cross_source": 1,
    }
    assert controller.offered == controller.admitted + 3
    for rung in RUNGS:
        assert (
            metrics.counter_value(f"runtime_admission_shed_{rung}_total")
            == controller.sheds[rung]
        )


def test_window_expiry_restores_admission():
    controller = AdmissionController(_params(watermark=2, window_s=10.0))
    for i in range(6):
        controller.offer(_raw(float(i), device="d1"))
    assert controller.sheds["dedup"] > 0
    before = dict(controller.sheds)
    # 11+ seconds later the window has drained; duplicates admit again
    assert controller.offer(_raw(20.0, device="d1")).admit
    assert controller.sheds == before


def test_replay_reapplies_recorded_decisions():
    """Replay must honour the journaled outcome, not re-derive it."""
    params = _params(watermark=2)
    live = AdmissionController(params)
    raws = [_raw(i / 10, device=f"d{i % 3}") for i in range(30)]
    decisions = [live.offer(raw) for raw in raws]
    assert sum(not d.admit for d in decisions) > 0

    recovered = AdmissionController(params)
    for raw, decision in zip(raws, decisions):
        recovered.replay(raw, decision.admit, decision.rung)
    assert recovered.offered == live.offered
    assert recovered.admitted == live.admitted
    assert recovered.sheds == live.sheds


# ---------------------------------------------------------------------------
# service-level properties on a real flood


def test_backpressure_off_is_byte_identical_with_zero_sheds():
    topo, state, raws = flood_fixture()
    config = runtime_config(backpressure=False)

    # baseline: the bare pipeline with no admission controller at all
    from repro.core.pipeline import SkyNet
    from repro.runtime.sharding import ShardedLocator

    set_incident_counter(1)
    bare = SkyNet(
        topo, config=config, state=state,
        locator=ShardedLocator(topo, config),
    )
    bare.process(raws)

    set_incident_counter(1)
    plain = RuntimeService(topo, config=config, state=state)
    plain.run(raws)
    plain.finish()
    _assert_equal(_fingerprint(bare), _fingerprint(plain.pipeline))
    assert plain.shed_counts() == {rung: 0 for rung in RUNGS}
    assert plain.admission.offered == plain.admission.admitted == len(raws)
    assert (
        plain.metrics.counter_value("runtime_admission_admitted_total")
        == len(raws)
    )


def test_backpressure_sheds_are_exactly_counted(tmp_path):
    topo, state, raws = flood_fixture(seed=4, n_down=20)
    config = runtime_config(backpressure=True, watermark=20, checkpoint_every=0.0)

    set_incident_counter(1)
    service = RuntimeService(topo, config=config, state=state, directory=tmp_path)
    service.run(raws)
    service.finish()

    sheds = service.shed_counts()
    total_shed = sum(sheds.values())
    assert total_shed > 0, "flood never tripped the watermark -- weak fixture"
    assert service.admission.offered == len(raws)
    assert service.admission.admitted + total_shed == len(raws)
    for rung in RUNGS:
        assert (
            service.metrics.counter_value(f"runtime_admission_shed_{rung}_total")
            == sheds[rung]
        )
    # the pipeline only ever saw the admitted subset
    assert (
        service.metrics.counter_value("runtime_raw_alerts_total")
        == service.admission.admitted
    )

    # journaled decisions replay to the same counts in a fresh process
    set_incident_counter(1)
    resumed = RuntimeService.resume(topo, tmp_path, config=config, state=state)
    assert resumed.shed_counts() == sheds
    assert resumed.admission.offered == len(raws)
