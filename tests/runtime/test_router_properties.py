"""Hypothesis property tests for :class:`ShardRouter.shard_of`.

The exact cross-shard merge in ``repro.runtime.sharding`` is only sound
if routing is a *partition by Region subtree*: every location maps to
exactly one shard, every location in a region maps with its region, and
the mapping is a pure function of the topology's region set -- not of
the order devices happened to be inserted in.  These properties pin each
of those assumptions directly, so a routing change that silently breaks
one fails here rather than as a flaky byte-identity diff.
"""

from __future__ import annotations

import functools
from types import SimpleNamespace

from hypothesis import given, settings, strategies as st

from repro.runtime.sharding import ROOT_SHARD, ShardRouter
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import LocationPath


@functools.lru_cache(maxsize=1)
def _topo():
    return build_topology(TopologySpec())


def _all_locations():
    topo = _topo()
    locs = set(topo.locations())
    locs.update(device.location for device in topo.devices.values())
    locs.add(LocationPath(()))
    return sorted(locs, key=str)


_SHARDS = st.integers(min_value=1, max_value=8)

_REGION_NAMES = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=10,
    unique=True,
)


@given(shards=_SHARDS)
@settings(max_examples=25, deadline=None)
def test_every_location_routes_to_exactly_one_shard(shards):
    router = ShardRouter(_topo(), shards)
    twin = ShardRouter(_topo(), shards)
    for loc in _all_locations():
        index = router.shard_of(loc)
        # exactly one shard: a single deterministic index, in range
        assert index == router.shard_of(loc) == twin.shard_of(loc)
        if loc.segments:
            assert 0 <= index < shards
        else:
            assert index == ROOT_SHARD


@given(shards=_SHARDS)
@settings(max_examples=25, deadline=None)
def test_routing_is_a_region_subtree_partition(shards):
    router = ShardRouter(_topo(), shards)
    by_shard = {}
    non_root = [loc for loc in _all_locations() if loc.segments]
    for loc in non_root:
        # region-subtree consistency: a location routes with its region,
        # so no containment edge below the root ever crosses shards
        region = LocationPath((loc.segments[0],))
        assert router.shard_of(loc) == router.shard_of(region)
        by_shard.setdefault(router.shard_of(loc), []).append(loc)
    # completeness: the shard sets partition the non-root locations
    assert sum(len(v) for v in by_shard.values()) == len(non_root)
    assert set(by_shard) <= set(range(shards))


@given(regions=_REGION_NAMES, shards=_SHARDS, data=st.data())
@settings(max_examples=50, deadline=None)
def test_routing_stable_under_insertion_order_shuffles(regions, shards, data):
    """The assignment depends on the *set* of regions, never on the
    order devices were added to the topology."""
    shuffled = data.draw(st.permutations(regions))

    def stub_topology(region_order):
        devices = {}
        for i, region in enumerate(region_order):
            loc = LocationPath((region, "city", "site"))
            devices[f"dev-{region}-{i}"] = SimpleNamespace(location=loc)
        return SimpleNamespace(devices=devices)

    router = ShardRouter(stub_topology(regions), shards)
    reordered = ShardRouter(stub_topology(shuffled), shards)
    assert router.assignment == reordered.assignment
    for region in regions:
        loc = LocationPath((region, "city", "site"))
        assert router.shard_of(loc) == reordered.shard_of(loc)


@given(
    # any non-empty segment text except the "|" path separator
    name=st.text(
        alphabet=st.characters(blacklist_characters="|"),
        min_size=1,
        max_size=20,
    ),
    shards=_SHARDS,
)
@settings(max_examples=50, deadline=None)
def test_unknown_regions_route_deterministically_in_range(name, shards):
    router = ShardRouter(_topo(), shards)
    loc = LocationPath((f"zz-{name}", "x"))
    index = router.shard_of(loc)
    assert 0 <= index < shards
    assert index == ShardRouter(_topo(), shards).shard_of(loc)
