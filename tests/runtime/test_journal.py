"""Journal unit coverage plus the corruption contract: a truncated or
garbled record is detected, reported loudly, and recovery proceeds from
the last valid state instead of crashing or silently skipping."""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.monitors.base import RawAlert
from repro.runtime import RuntimeService
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.journal import (
    AlertJournal,
    JournalCorruption,
    raw_from_json,
    raw_to_json,
)
from repro.topology.hierarchy import LocationPath

from ..test_equivalence_flood import _assert_equal, _fingerprint
from .test_kill_resume import flood_fixture, runtime_config, uninterrupted_run


def _raw(i: int, tool: str = "syslog", raw_type: str = "link_down") -> RawAlert:
    return RawAlert(
        tool=tool,
        raw_type=raw_type,
        timestamp=float(i),
        message=f"event {i}",
        device=f"dev-{i % 5}",
        delivered_at=float(i) + 0.5,
    )


# ---------------------------------------------------------------------------
# round-trip and rotation


def test_raw_alert_json_round_trip():
    raw = RawAlert(
        tool="ping",
        raw_type="end_to_end_icmp_loss",
        timestamp=12.5,
        message="loss 40%",
        endpoints=("srv-a", "srv-b"),
        location_hint=LocationPath(("RG01", "AZ01")),
        metrics={"loss_pct": 40.0},
        delivered_at=13.25,
    )
    assert raw_from_json(json.loads(json.dumps(raw_to_json(raw)))) == raw


def test_root_location_round_trips_by_segments():
    """``<root>`` is a display form; the journal must store segments."""
    raw = RawAlert(
        tool="traceroute",
        raw_type="path_loss",
        timestamp=1.0,
        location_hint=LocationPath(()),
    )
    data = raw_to_json(raw)
    assert data["location"] == {"segments": [], "is_device": False}
    assert raw_from_json(data).location_hint == LocationPath(())


def test_segment_rotation_and_replay_order(tmp_path):
    journal = AlertJournal(tmp_path, segment_records=10)
    for i in range(35):
        journal.append(_raw(i), seq=i)
    journal.close()
    assert len(journal.segments()) == 4
    entries = list(AlertJournal(tmp_path, segment_records=10).replay())
    assert [e.seq for e in entries] == list(range(35))
    assert all(e.admitted for e in entries)


def test_replay_after_seq_skips_checkpointed_prefix(tmp_path):
    journal = AlertJournal(tmp_path, segment_records=10)
    for i in range(20):
        journal.append(_raw(i), seq=i, admitted=(i % 3 != 0),
                       rung=None if i % 3 != 0 else "dedup")
    journal.close()
    tail = list(AlertJournal(tmp_path).replay(after_seq=11))
    assert [e.seq for e in tail] == list(range(12, 20))
    assert [e.rung for e in tail if not e.admitted] == ["dedup", "dedup", "dedup"]


# ---------------------------------------------------------------------------
# corruption detection


def _truncate_last_line(path: pathlib.Path, keep_bytes: int = 12) -> None:
    lines = path.read_bytes().splitlines(keepends=True)
    lines[-1] = lines[-1][:keep_bytes]  # torn write: no newline, half a record
    path.write_bytes(b"".join(lines))


def _garble_line(path: pathlib.Path, index: int) -> None:
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    lines[index] = "\x00corrupt!{{{\n"
    path.write_text("".join(lines), encoding="utf-8")


def test_truncated_trailing_record_is_reported_and_skipped(tmp_path):
    journal = AlertJournal(tmp_path, segment_records=100)
    for i in range(8):
        journal.append(_raw(i), seq=i)
    journal.close()
    _truncate_last_line(journal.segments()[-1])

    reader = AlertJournal(tmp_path, segment_records=100)
    entries = list(reader.replay())
    assert [e.seq for e in entries] == list(range(7))
    assert len(reader.corruptions) == 1
    corruption = reader.corruptions[0]
    assert corruption.line_number == 8
    assert corruption.discarded_records == 0
    assert "unparseable JSON" in corruption.reason
    assert "resuming from last valid state" in corruption.render()


def test_garbled_mid_segment_record_counts_discards(tmp_path):
    journal = AlertJournal(tmp_path, segment_records=10)
    for i in range(25):  # 3 segments: 10 + 10 + 5
        journal.append(_raw(i), seq=i)
    journal.close()
    _garble_line(journal.segments()[0], index=6)

    reader = AlertJournal(tmp_path, segment_records=10)
    entries = list(reader.replay())
    assert [e.seq for e in entries] == list(range(6))
    corruption = reader.corruptions[0]
    assert corruption.segment == journal.segments()[0].name
    assert corruption.line_number == 7
    # 3 remaining in this segment + 10 + 5 in the later ones
    assert corruption.discarded_records == 18


@pytest.mark.parametrize(
    "line,reason_part",
    [
        ("", "blank record"),
        ("[1, 2, 3]", "record is not an object"),
        ('{"admitted": true}', "malformed record"),
        ('{"seq": 1, "admitted": true}', "malformed record"),
    ],
)
def test_parse_line_reasons(line, reason_part):
    entry, reason = AlertJournal._parse_line(line)
    assert entry is None
    assert reason_part in reason


# ---------------------------------------------------------------------------
# end-to-end: corruption during service recovery


def test_service_recovers_past_torn_journal_tail(tmp_path):
    """A torn final record costs exactly that record -- the resumed run
    equals an uninterrupted run over the stream minus the torn alert."""
    topo, state, raws = flood_fixture()
    config = runtime_config(checkpoint_every=0.0)  # journal is all we have

    k = len(raws) // 2
    set_incident_counter(1)
    first = RuntimeService(topo, config=config, state=state, directory=tmp_path)
    for raw in raws[:k]:
        first.ingest(raw)
    segments = first.journal.segments()
    del first
    _truncate_last_line(segments[-1])

    set_incident_counter(1)
    resumed = RuntimeService.resume(topo, tmp_path, config=config, state=state)
    assert resumed.recovery is not None
    assert len(resumed.recovery.corruptions) == 1
    assert resumed.recovery.replayed_records == k - 1
    assert (
        resumed.metrics.counter_value("runtime_journal_corruptions_total") == 1
    )
    for raw in raws[k:]:
        resumed.ingest(raw)
    resumed.finish()

    # the comparator never saw the torn alert either
    set_incident_counter(1)
    reference = RuntimeService(topo, config=config, state=state)
    reference.run(raws[: k - 1] + raws[k:])
    reference.finish()
    _assert_equal(_fingerprint(reference.pipeline), _fingerprint(resumed.pipeline))


def test_corrupt_newest_checkpoint_falls_back_to_previous(tmp_path):
    """An unloadable newest snapshot degrades to the previous one plus a
    longer journal replay -- never a crash, never divergence."""
    topo, state, raws = flood_fixture()
    config = runtime_config(checkpoint_every=45.0)

    k = (2 * len(raws)) // 3
    set_incident_counter(1)
    first = RuntimeService(topo, config=config, state=state, directory=tmp_path)
    for raw in raws[:k]:
        first.ingest(raw)
    checkpoints = first.checkpoints.list()
    assert len(checkpoints) >= 2
    del first
    checkpoints[-1].path.write_bytes(b"not a pickle at all")

    set_incident_counter(1)
    resumed = RuntimeService.resume(topo, tmp_path, config=config, state=state)
    assert resumed.recovery is not None
    assert resumed.recovery.checkpoint_seq == checkpoints[-2].seq
    assert resumed.admission.offered == k
    for raw in raws[k:]:
        resumed.ingest(raw)
    resumed.finish()

    set_incident_counter(1)
    reference = RuntimeService(topo, config=config, state=state)
    reference.run(raws)
    reference.finish()
    _assert_equal(_fingerprint(reference.pipeline), _fingerprint(resumed.pipeline))


def test_corruption_dataclass_render_names_segment_and_line():
    corruption = JournalCorruption(
        segment="segment-00000003.jsonl",
        line_number=41,
        reason="unparseable JSON (Expecting value)",
        discarded_records=7,
    )
    text = corruption.render()
    assert "segment-00000003.jsonl:41" in text
    assert "7 later record(s) discarded" in text


# ---------------------------------------------------------------------------
# segment compaction


def test_compact_removes_only_fully_checkpointed_segments(tmp_path):
    journal = AlertJournal(tmp_path, segment_records=10)
    for i in range(35):
        journal.append(_raw(i), seq=i)
    # seqs 0-9 and 10-19 are fully below the horizon; 20-29 is not
    assert journal.compact(before_seq=20) == 2
    assert [e.seq for e in journal.replay()] == list(range(20, 35))
    # the active segment (seqs 30-34) survives even a horizon above it
    assert journal.compact(before_seq=100) == 1
    assert [e.seq for e in journal.replay()] == list(range(30, 35))


def test_compact_spares_unparseable_segments(tmp_path):
    journal = AlertJournal(tmp_path, segment_records=10)
    for i in range(25):
        journal.append(_raw(i), seq=i)
    segments = journal.segments()
    _garble_line(segments[0], index=3)
    # the garbled segment cannot prove its records are checkpointed, so
    # it stays for recovery to report; the clean old segment goes
    assert journal.compact(before_seq=20) == 1
    assert segments[0] in journal.segments()


def test_compaction_bounds_disk_across_kill_and_resume(tmp_path):
    """Long-haul contract: with compaction on, journal disk stays O(one
    checkpoint interval) across repeated kill/resume cycles, and the
    output is still exactly the uninterrupted run's."""
    topo, state, raws = flood_fixture()
    base = runtime_config(checkpoint_every=30.0, segment_records=50)
    config = dataclasses.replace(
        base,
        runtime=dataclasses.replace(base.runtime, journal_compaction=True),
    )
    expected, expected_ids = uninterrupted_run(topo, state, raws, config)

    def segment_count() -> int:
        return len(list(tmp_path.glob("segment-*.jsonl")))

    cuts = [0, len(raws) // 4, len(raws) // 2, 3 * len(raws) // 4, len(raws)]
    max_segments = 0
    service = None
    set_incident_counter(1)
    for start, stop in zip(cuts, cuts[1:]):
        if start == 0:
            service = RuntimeService(
                topo, config=config, state=state, directory=tmp_path
            )
        else:
            del service  # kill: no finish, no graceful shutdown
            set_incident_counter(1)
            service = RuntimeService.resume(
                topo, tmp_path, config=config, state=state
            )
        for raw in raws[start:stop]:
            service.ingest(raw)
            max_segments = max(max_segments, segment_count())
    service.finish()

    _assert_equal(expected, _fingerprint(service.pipeline))
    ids = sorted(
        i.incident_id
        for i in service.pipeline.incidents(include_superseded=True)
    )
    assert ids == expected_ids
    assert (
        service.metrics.counter_value(
            "runtime_journal_segments_compacted_total"
        )
        > 0
    )

    # without compaction the same run keeps every segment ever written
    uncompacted = len(raws) // 50
    assert max_segments <= 12, (
        f"compaction failed to bound disk: {max_segments} segments live "
        f"(uncompacted run would end at ~{uncompacted})"
    )
    assert max_segments * 3 <= uncompacted
