"""Crash-recovery gate: kill the service mid-flood, resume, and the
incident stream must be identical to the uninterrupted run.

The write-ahead journal plus snapshot checkpoints are only worth having
if restore + replay reproduces *exactly* what a never-killed service
would have produced -- same incident scopes, contents, severities,
renders, and (because the global id counter is checkpointed and rewound)
the very same incident ids.  These tests cut the same seeded flood at
several points, abandon the first service without any shutdown grace,
resume from its directory in a simulated fresh process, and diff the
final state against the uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Tuple

import pytest

from repro.core.config import PRODUCTION_CONFIG, SkyNetConfig
from repro.monitors.base import RawAlert
from repro.runtime import RuntimeService
from repro.runtime.checkpoint import set_incident_counter
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.network import Topology

from ..test_equivalence_flood import _assert_equal, _device_down, _fingerprint, _stream


BACKENDS = ("inproc", "mp")


def runtime_config(
    shards: int = 2,
    checkpoint_every: float = 60.0,
    segment_records: int = 100,
    backpressure: bool = False,
    watermark: int = 400,
    backend: str = "inproc",
) -> SkyNetConfig:
    return dataclasses.replace(
        PRODUCTION_CONFIG,
        runtime=dataclasses.replace(
            PRODUCTION_CONFIG.runtime,
            shards=shards,
            checkpoint_interval_s=checkpoint_every,
            journal_segment_records=segment_records,
            backpressure=backpressure,
            admission_watermark=watermark,
            backend=backend,
        ),
    )


def flood_fixture(
    seed: int = 7, n_down: int = 4, duration: float = 600.0
) -> Tuple[Topology, NetworkState, List[RawAlert]]:
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(seed)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    for cond in _device_down(devices[:n_down], start=40.0, duration=400.0):
        state.add_condition(cond)
    raws = _stream(topo, state, duration, seed)
    assert len(raws) > 100, "flood fixture too small to cut meaningfully"
    return topo, state, raws


def uninterrupted_run(topo, state, raws, config) -> Tuple[List[Tuple], List[str]]:
    set_incident_counter(1)
    service = RuntimeService(topo, config=config, state=state)
    service.run(raws)
    service.finish()
    return _fingerprint(service.pipeline), _incident_ids(service)


def _incident_ids(service: RuntimeService) -> List[str]:
    return sorted(
        i.incident_id
        for i in service.pipeline.incidents(include_superseded=True)
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("cut", [0.3, 0.7])
def test_kill_and_resume_reproduces_incident_stream(tmp_path, cut, backend):
    topo, state, raws = flood_fixture()
    config = runtime_config(backend=backend)
    expected, expected_ids = uninterrupted_run(topo, state, raws, config)

    k = int(len(raws) * cut)
    set_incident_counter(1)
    first = RuntimeService(topo, config=config, state=state, directory=tmp_path)
    for raw in raws[:k]:
        first.ingest(raw)
    # crash: no finish(), no graceful shutdown -- just abandon the handle
    del first

    set_incident_counter(1)  # a fresh process starts its counter over
    resumed = RuntimeService.resume(topo, tmp_path, config=config, state=state)
    assert resumed.recovery is not None
    assert resumed.recovery.corruptions == ()
    # every pre-crash alert is accounted for: checkpoint state + journal tail
    assert resumed.admission.offered == k
    assert resumed.metrics.counter_value("runtime_raw_alerts_total") == k

    for raw in raws[k:]:
        resumed.ingest(raw)
    resumed.finish()

    _assert_equal(expected, _fingerprint(resumed.pipeline))
    assert _incident_ids(resumed) == expected_ids
    assert resumed.metrics.counter_value("runtime_raw_alerts_total") == len(raws)


@pytest.mark.parametrize("backend", BACKENDS)
def test_resume_without_any_checkpoint_replays_full_journal(tmp_path, backend):
    """Checkpointing disabled: recovery must rebuild from the journal alone."""
    topo, state, raws = flood_fixture()
    config = runtime_config(checkpoint_every=0.0, backend=backend)
    expected, expected_ids = uninterrupted_run(topo, state, raws, config)

    k = len(raws) // 2
    set_incident_counter(1)
    first = RuntimeService(topo, config=config, state=state, directory=tmp_path)
    for raw in raws[:k]:
        first.ingest(raw)
    del first

    set_incident_counter(1)
    resumed = RuntimeService.resume(topo, tmp_path, config=config, state=state)
    assert resumed.recovery is not None
    assert resumed.recovery.checkpoint_seq is None
    assert resumed.recovery.replayed_records == k

    for raw in raws[k:]:
        resumed.ingest(raw)
    resumed.finish()
    _assert_equal(expected, _fingerprint(resumed.pipeline))
    assert _incident_ids(resumed) == expected_ids


def test_resumed_writer_opens_a_fresh_segment(tmp_path):
    """Append-only discipline: a resumed journal never touches old files."""
    topo, state, raws = flood_fixture()
    config = runtime_config(segment_records=50)

    set_incident_counter(1)
    first = RuntimeService(topo, config=config, state=state, directory=tmp_path)
    k = 120
    for raw in raws[:k]:
        first.ingest(raw)
    segments_before = {
        p.name: p.stat().st_size for p in first.journal.segments()
    }
    del first

    set_incident_counter(1)
    resumed = RuntimeService.resume(topo, tmp_path, config=config, state=state)
    for raw in raws[k : k + 10]:
        resumed.ingest(raw)
    resumed.journal.sync()
    after = {p.name: p.stat().st_size for p in resumed.journal.segments()}
    for name, size in segments_before.items():
        assert after[name] == size, f"pre-crash segment {name} was modified"
    assert len(after) > len(segments_before)


@pytest.mark.parametrize("backend", BACKENDS)
def test_double_kill_still_converges(tmp_path, backend):
    """Two crashes (one mid-replay-tail) still land on the reference run."""
    topo, state, raws = flood_fixture()
    config = runtime_config(checkpoint_every=45.0, backend=backend)
    expected, expected_ids = uninterrupted_run(topo, state, raws, config)

    a, b = len(raws) // 3, (2 * len(raws)) // 3
    set_incident_counter(1)
    first = RuntimeService(topo, config=config, state=state, directory=tmp_path)
    for raw in raws[:a]:
        first.ingest(raw)
    del first

    set_incident_counter(1)
    second = RuntimeService.resume(topo, tmp_path, config=config, state=state)
    for raw in raws[a:b]:
        second.ingest(raw)
    del second

    set_incident_counter(1)
    third = RuntimeService.resume(topo, tmp_path, config=config, state=state)
    assert third.admission.offered == b
    for raw in raws[b:]:
        third.ingest(raw)
    third.finish()
    _assert_equal(expected, _fingerprint(third.pipeline))
    assert _incident_ids(third) == expected_ids


@pytest.mark.parametrize(
    "first_backend,second_backend", [("inproc", "mp"), ("mp", "inproc")]
)
def test_checkpoints_are_backend_portable(tmp_path, first_backend, second_backend):
    """A checkpoint written under one backend resumes under the other.

    Snapshots serialise the locator state as plain (backend-neutral)
    sharded trees, so a deployment can switch between in-process and
    multiprocess execution across restarts without replaying history.
    """
    topo, state, raws = flood_fixture()
    expected, expected_ids = uninterrupted_run(
        topo, state, raws, runtime_config()
    )

    k = len(raws) // 2
    set_incident_counter(1)
    first = RuntimeService(
        topo,
        config=runtime_config(backend=first_backend),
        state=state,
        directory=tmp_path,
    )
    for raw in raws[:k]:
        first.ingest(raw)
    del first  # crash: no finish, no graceful shutdown

    set_incident_counter(1)
    resumed = RuntimeService.resume(
        topo, tmp_path, config=runtime_config(backend=second_backend), state=state
    )
    assert resumed.recovery is not None
    assert resumed.recovery.corruptions == ()
    for raw in raws[k:]:
        resumed.ingest(raw)
    resumed.finish()

    _assert_equal(expected, _fingerprint(resumed.pipeline))
    assert _incident_ids(resumed) == expected_ids
