"""Differential gate: sharded locating must be byte-identical to the
unsharded reference, for every shard count.

This is the contract that lets ``repro.runtime`` shard the alert tree at
all: the same raw stream is run through the unsharded reference pipeline
and through :class:`ShardedLocator` at shard counts {1, 2, 4}, on both
the reference and ``fast_path`` grouping rules, and the complete incident
output (scopes, times, statuses, contents, severities, renders with ids
normalised) must match.  Scenarios reuse the flood battery of
``tests/test_equivalence_flood.py``, including the cross-region and dense
benchmark-fabric floods whose groups genuinely span Region subtrees --
the case naive region sharding gets wrong.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Tuple

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.config import PRODUCTION_CONFIG
from repro.core.locator import Locator
from repro.core.pipeline import SkyNet
from repro.monitors.base import RawAlert
from repro.runtime.sharding import ShardedLocator, ShardRouter, frontier_devices
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import LocationPath

from ..test_equivalence_flood import (
    _assert_equal,
    _device_down,
    _fingerprint,
    _stream,
)

SHARD_COUNTS = (1, 2, 4)


def _sharded_config(shards: int, fast: bool):
    return dataclasses.replace(
        PRODUCTION_CONFIG,
        fast_path=fast,
        runtime=dataclasses.replace(PRODUCTION_CONFIG.runtime, shards=shards),
    )


def _run_reference(topo, state, raws: List[RawAlert]) -> List[Tuple]:
    net = SkyNet(topo, config=PRODUCTION_CONFIG, state=state)
    net.process(raws)
    return _fingerprint(net)


def _run_sharded(
    topo, state, raws: List[RawAlert], shards: int, fast: bool
) -> List[Tuple]:
    config = _sharded_config(shards, fast)
    net = SkyNet(
        topo,
        config=config,
        state=state,
        locator=ShardedLocator(topo, config),
    )
    net.process(raws)
    return _fingerprint(net)


def _check_all_shard_counts(topo, state, raws: List[RawAlert]) -> None:
    reference = _run_reference(topo, state, raws)
    for shards in SHARD_COUNTS:
        for fast in (False, True):
            sharded = _run_sharded(topo, state, raws, shards, fast)
            assert len(sharded) == len(reference), (
                f"shards={shards} fast={fast}: incident count "
                f"{len(sharded)} != reference {len(reference)}"
            )
            _assert_equal(reference, sharded)


# ---------------------------------------------------------------------------
# flood scenarios (the test_equivalence_flood battery, sharded)


@pytest.mark.parametrize("seed,n_down", [(7, 3), (2, 5), (4, 20), (5, 40)])
def test_device_down_flood_shard_invariance(seed, n_down):
    """Seeds 4 and 5 produce ``<root>``-scoped incidents spanning every
    region -- the exact case that breaks naive per-region sharding."""
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(seed)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    for cond in _device_down(devices[:n_down], start=40.0, duration=400.0):
        state.add_condition(cond)
    raws = _stream(topo, state, 600.0, seed)
    _check_all_shard_counts(topo, state, raws)


@pytest.mark.parametrize("seed", [31, 32])
def test_concurrent_cross_region_shard_invariance(seed):
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(seed)
    by_region = {}
    for name in sorted(topo.devices):
        region = topo.device(name).location.segments[0]
        by_region.setdefault(region, []).append(name)
    for names in by_region.values():
        rng.shuffle(names)
        for cond in _device_down(names[:4], start=45.0, duration=380.0):
            state.add_condition(cond)
    raws = _stream(topo, state, 600.0, seed)
    _check_all_shard_counts(topo, state, raws)


def test_circuit_break_shard_invariance():
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(12)
    sets = sorted(topo.circuit_sets)
    rng.shuffle(sets)
    for set_id in sets[:6]:
        state.add_condition(
            Condition(
                kind=ConditionKind.CIRCUIT_BREAK,
                target=set_id,
                start=60.0,
                end=500.0,
                params={"broken_circuits": 4.0},
            )
        )
    raws = _stream(topo, state, 600.0, 12)
    _check_all_shard_counts(topo, state, raws)


def test_benchmark_fabric_dense_flood_shard_invariance():
    """Three-region benchmark fabric under a 50-device failure wave."""
    topo = build_topology(TopologySpec.benchmark())
    state = NetworkState(topo)
    rng = random.Random(61)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    for name in devices[:50]:
        state.add_condition(
            Condition(
                kind=ConditionKind.DEVICE_DOWN,
                target=name,
                start=60.0 + rng.uniform(0.0, 240.0),
                end=700.0,
            )
        )
    raws = _stream(topo, state, 800.0, 61)
    _check_all_shard_counts(topo, state, raws)


# ---------------------------------------------------------------------------
# locator-level: root-located alerts and frontier mechanics


def _alert(
    tool: str,
    name: str,
    location: LocationPath,
    t: float,
    level: AlertLevel = AlertLevel.FAILURE,
    device=None,
) -> StructuredAlert:
    return StructuredAlert(
        type_key=AlertTypeKey(tool, name),
        level=level,
        location=location,
        first_seen=t,
        last_seen=t,
        device=device,
    )


def _locator_prints(locator: Locator) -> List[str]:
    import re

    return sorted(
        re.sub(r"incident-\d+", "incident-N", incident.render())
        for incident in locator.all_incidents()
    )


def test_root_located_alert_merges_all_shards():
    """A live root node joins every component, exactly like the reference
    containment scan (root contains everything)."""
    topo = build_topology(TopologySpec())
    root = LocationPath(())
    regions = sorted(
        {d.location.segments[0] for d in topo.devices.values()}
    )
    feeds = []
    t = 0.0
    for i, region in enumerate(regions):
        dev = next(
            d for d in sorted(topo.devices)
            if topo.device(d).location.segments[0] == region
        )
        loc = topo.device(dev).location
        feeds.append(_alert("ping", f"loss_{i}", loc, 10.0 + i, device=dev))
        feeds.append(
            _alert("syslog", f"err_{i}", loc, 11.0 + i, device=dev)
        )
    feeds.append(_alert("traceroute", "path_loss", root, 12.0))
    feeds.append(
        _alert("internet", "wide_loss", root, 13.0, level=AlertLevel.ABNORMAL)
    )

    prints = []
    for build in (
        lambda: Locator(topo, PRODUCTION_CONFIG),
        lambda: ShardedLocator(topo, _sharded_config(4, False)),
        lambda: ShardedLocator(topo, _sharded_config(2, True)),
    ):
        locator = build()
        for alert in feeds:
            locator.feed(alert)
        locator.sweep(t + 20.0)
        locator.sweep(t + 5000.0)
        prints.append(_locator_prints(locator))
    assert prints[0] == prints[1] == prints[2]
    assert any("<root>" in p for p in prints[0])


def test_router_is_deterministic_and_balanced():
    topo = build_topology(TopologySpec.benchmark())
    router = ShardRouter(topo, 4)
    regions = sorted(
        {d.location.segments[0] for d in topo.devices.values()}
    )
    # round-robin over sorted region names: distinct shards while they last
    assert [router.assignment[r] for r in regions] == [
        i % 4 for i in range(len(regions))
    ]
    # root-located paths go to the dedicated root shard
    assert router.shard_of(LocationPath(())) == -1
    # unknown top-level segments still route deterministically
    ghost = LocationPath(("no-such-region", "x"))
    assert router.shard_of(ghost) == router.shard_of(ghost)
    assert 0 <= router.shard_of(ghost) < 4


def test_frontier_devices_cross_region_neighbours():
    topo = build_topology(TopologySpec())
    frontier = frontier_devices(topo, max_hops=2)
    assert frontier, "expected a non-empty cross-region frontier"
    # every frontier device really has a cross-region neighbour in range
    for name in frontier:
        region = topo.device(name).location.segments[0]
        assert any(
            topo.device(n).location.segments[0] != region
            for n in topo.hop_neighbourhood(name, 2)
            if n in topo.devices
        )
    # and every cross-region pair within range is frontier on both ends
    for name in sorted(topo.devices):
        region = topo.device(name).location.segments[0]
        for other in topo.hop_neighbourhood(name, 2):
            if other in topo.devices and (
                topo.device(other).location.segments[0] != region
            ):
                assert name in frontier and other in frontier
