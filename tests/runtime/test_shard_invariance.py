"""Differential gate: sharded locating must be byte-identical to the
unsharded reference, for every shard count and every execution backend.

This is the contract that lets ``repro.runtime`` shard the alert tree at
all: the same raw stream is run through the unsharded reference pipeline
and through the sharded locator at shard counts {1, 2, 4}, on both the
reference and ``fast_path`` grouping rules, and the complete incident
output (scopes, times, statuses, contents, severities, renders with ids
normalised) must match.  Every scenario runs on both backends:
``inproc`` (:class:`ShardedLocator`, every shard on the caller's thread)
and ``mp`` (:class:`MPShardedLocator`, each shard in a spawned worker
process).

Two layers of coverage:

* the hard scenarios below (cross-region and dense benchmark-fabric
  floods whose groups genuinely span Region subtrees -- the case naive
  region sharding gets wrong) run at every (shards, fast, backend)
  combination;
* the *full* flood battery of ``tests/test_equivalence_flood.py`` --
  every registry scenario -- runs through the ``mp`` backend at 1/2/4
  shards with the incident counter reset before each run, so the
  comparison is byte-identical **including incident ids**, the strongest
  form of the contract.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Tuple

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.config import PRODUCTION_CONFIG
from repro.core.locator import Locator
from repro.core.pipeline import SkyNet
from repro.monitors.base import RawAlert
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.sharding import ShardedLocator, ShardRouter, frontier_devices
from repro.runtime.workers import MPShardedLocator
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import LocationPath

from ..test_equivalence_flood import (
    SCENARIO_IDS,
    SCENARIOS,
    FloodScenario,
    _assert_equal,
    _device_down,
    _fingerprint,
    _stream,
)

SHARD_COUNTS = (1, 2, 4)
BACKENDS = ("inproc", "mp")


def _sharded_config(shards: int, fast: bool, backend: str = "inproc"):
    return dataclasses.replace(
        PRODUCTION_CONFIG,
        fast_path=fast,
        runtime=dataclasses.replace(
            PRODUCTION_CONFIG.runtime, shards=shards, backend=backend
        ),
    )


def _make_locator(topo, config):
    if config.runtime.backend == "mp":
        return MPShardedLocator(topo, config)
    return ShardedLocator(topo, config)


def _run_reference(topo, state, raws: List[RawAlert]) -> List[Tuple]:
    net = SkyNet(topo, config=PRODUCTION_CONFIG, state=state)
    net.process(raws)
    return _fingerprint(net)


def _run_sharded(
    topo, state, raws: List[RawAlert], shards: int, fast: bool, backend: str
) -> List[Tuple]:
    config = _sharded_config(shards, fast, backend)
    locator = _make_locator(topo, config)
    try:
        net = SkyNet(topo, config=config, state=state, locator=locator)
        net.process(raws)
        return _fingerprint(net)
    finally:
        if isinstance(locator, MPShardedLocator):
            locator.close()


def _check_all_shard_counts(topo, state, raws: List[RawAlert], backend: str) -> None:
    reference = _run_reference(topo, state, raws)
    for shards in SHARD_COUNTS:
        for fast in (False, True):
            sharded = _run_sharded(topo, state, raws, shards, fast, backend)
            assert len(sharded) == len(reference), (
                f"backend={backend} shards={shards} fast={fast}: incident "
                f"count {len(sharded)} != reference {len(reference)}"
            )
            _assert_equal(reference, sharded)


# ---------------------------------------------------------------------------
# hard scenarios: every (shards, fast, backend) combination


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed,n_down", [(7, 3), (2, 5), (4, 20), (5, 40)])
def test_device_down_flood_shard_invariance(seed, n_down, backend):
    """Seeds 4 and 5 produce ``<root>``-scoped incidents spanning every
    region -- the exact case that breaks naive per-region sharding."""
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(seed)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    for cond in _device_down(devices[:n_down], start=40.0, duration=400.0):
        state.add_condition(cond)
    raws = _stream(topo, state, 600.0, seed)
    _check_all_shard_counts(topo, state, raws, backend)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [31, 32])
def test_concurrent_cross_region_shard_invariance(seed, backend):
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(seed)
    by_region = {}
    for name in sorted(topo.devices):
        region = topo.device(name).location.segments[0]
        by_region.setdefault(region, []).append(name)
    for names in by_region.values():
        rng.shuffle(names)
        for cond in _device_down(names[:4], start=45.0, duration=380.0):
            state.add_condition(cond)
    raws = _stream(topo, state, 600.0, seed)
    _check_all_shard_counts(topo, state, raws, backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_circuit_break_shard_invariance(backend):
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(12)
    sets = sorted(topo.circuit_sets)
    rng.shuffle(sets)
    for set_id in sets[:6]:
        state.add_condition(
            Condition(
                kind=ConditionKind.CIRCUIT_BREAK,
                target=set_id,
                start=60.0,
                end=500.0,
                params={"broken_circuits": 4.0},
            )
        )
    raws = _stream(topo, state, 600.0, 12)
    _check_all_shard_counts(topo, state, raws, backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_benchmark_fabric_dense_flood_shard_invariance(backend):
    """Three-region benchmark fabric under a 50-device failure wave."""
    topo = build_topology(TopologySpec.benchmark())
    state = NetworkState(topo)
    rng = random.Random(61)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    for name in devices[:50]:
        state.add_condition(
            Condition(
                kind=ConditionKind.DEVICE_DOWN,
                target=name,
                start=60.0 + rng.uniform(0.0, 240.0),
                end=700.0,
            )
        )
    raws = _stream(topo, state, 800.0, 61)
    _check_all_shard_counts(topo, state, raws, backend)


# ---------------------------------------------------------------------------
# the full battery through the mp backend, ids included
#
# Incident ids come from a global counter; resetting it before each run
# makes the id sequence part of the contract.  (Reference fast=False and
# fast=True produce identical ids after a reset -- the fast-path gate in
# tests/test_equivalence_flood.py guarantees identical incident *order* --
# so comparing against the fast reference is comparing against the
# reference.)


def _fingerprint_exact(net: SkyNet) -> List[Tuple]:
    """Like ``_fingerprint`` but with incident ids left intact."""
    out = []
    for incident in sorted(
        net.incidents(include_superseded=True),
        key=lambda i: (i.start_time, str(i.location)),
    ):
        severity = incident.severity
        out.append(
            (
                incident.incident_id,
                str(incident.location),
                incident.status.name,
                incident.start_time,
                incident.end_time,
                incident.total_alert_count(),
                incident.distinct_type_count(),
                sorted(incident.devices_involved()),
                (severity.score, severity.impact_factor, severity.time_factor)
                if severity
                else None,
                incident.render(),
            )
        )
    return out


@pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIO_IDS)
def test_full_battery_mp_exact_ids(scenario: FloodScenario):
    topo, state, raws = scenario.build()

    set_incident_counter(1)
    config = dataclasses.replace(PRODUCTION_CONFIG, fast_path=True)
    reference_net = SkyNet(topo, config=config, state=state)
    reference_net.process(raws)
    reference = _fingerprint_exact(reference_net)
    if scenario.require_incidents:
        assert reference, "scenario produced no incidents -- not a useful gate"

    for shards in SHARD_COUNTS:
        set_incident_counter(1)
        mp_config = _sharded_config(shards, fast=True, backend="mp")
        locator = MPShardedLocator(topo, mp_config)
        try:
            net = SkyNet(topo, config=mp_config, state=state, locator=locator)
            net.process(raws)
            sharded = _fingerprint_exact(net)
        finally:
            locator.close()
        assert len(sharded) == len(reference), (
            f"mp shards={shards}: incident count {len(sharded)} != "
            f"reference {len(reference)}"
        )
        for ref_item, mp_item in zip(reference, sharded):
            assert ref_item == mp_item, f"mp shards={shards}"


# ---------------------------------------------------------------------------
# incremental API equivalence through mp: feed/feed_many/mid-stream reads
# (the two interleaving scenarios of the flood battery, through workers)


def test_incremental_feed_interleavings_mp():
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    for cond in _device_down(sorted(topo.devices)[:6], 40.0, 300.0):
        state.add_condition(cond)
    raws = _stream(topo, state, 420.0, seed=5)

    config = _sharded_config(2, fast=True, backend="mp")
    batch_locator = MPShardedLocator(topo, config)
    feed_locator = MPShardedLocator(topo, config)
    try:
        batch_net = SkyNet(topo, config=config, state=state, locator=batch_locator)
        batch_net.process(raws)

        reference = SkyNet(topo, state=state)
        net = SkyNet(topo, config=config, state=state, locator=feed_locator)
        for i, raw in enumerate(raws):
            net.feed(raw)
            reference.feed(raw)
            if i % 500 == 0:
                # mid-stream reads flush worker outboxes and must neither
                # change eventual output nor diverge from the reference
                assert len(net.incidents()) == len(reference.incidents())
        net.finish()
        reference.finish()
        _assert_equal(_fingerprint(reference), _fingerprint(net))
        _assert_equal(_fingerprint(batch_net), _fingerprint(net))
    finally:
        batch_locator.close()
        feed_locator.close()


# ---------------------------------------------------------------------------
# locator-level: root-located alerts and frontier mechanics


def _alert(
    tool: str,
    name: str,
    location: LocationPath,
    t: float,
    level: AlertLevel = AlertLevel.FAILURE,
    device=None,
) -> StructuredAlert:
    return StructuredAlert(
        type_key=AlertTypeKey(tool, name),
        level=level,
        location=location,
        first_seen=t,
        last_seen=t,
        device=device,
    )


def _locator_prints(locator: Locator) -> List[str]:
    import re

    return sorted(
        re.sub(r"incident-\d+", "incident-N", incident.render())
        for incident in locator.all_incidents()
    )


def test_root_located_alert_merges_all_shards():
    """A live root node joins every component, exactly like the reference
    containment scan (root contains everything)."""
    topo = build_topology(TopologySpec())
    root = LocationPath(())
    regions = sorted(
        {d.location.segments[0] for d in topo.devices.values()}
    )
    feeds = []
    t = 0.0
    for i, region in enumerate(regions):
        dev = next(
            d for d in sorted(topo.devices)
            if topo.device(d).location.segments[0] == region
        )
        loc = topo.device(dev).location
        feeds.append(_alert("ping", f"loss_{i}", loc, 10.0 + i, device=dev))
        feeds.append(
            _alert("syslog", f"err_{i}", loc, 11.0 + i, device=dev)
        )
    feeds.append(_alert("traceroute", "path_loss", root, 12.0))
    feeds.append(
        _alert("internet", "wide_loss", root, 13.0, level=AlertLevel.ABNORMAL)
    )

    prints = []
    for build in (
        lambda: Locator(topo, PRODUCTION_CONFIG),
        lambda: ShardedLocator(topo, _sharded_config(4, False)),
        lambda: ShardedLocator(topo, _sharded_config(2, True)),
        lambda: MPShardedLocator(topo, _sharded_config(4, False, "mp")),
        lambda: MPShardedLocator(topo, _sharded_config(2, True, "mp")),
    ):
        locator = build()
        try:
            for alert in feeds:
                locator.feed(alert)
            locator.sweep(t + 20.0)
            locator.sweep(t + 5000.0)
            prints.append(_locator_prints(locator))
        finally:
            if isinstance(locator, MPShardedLocator):
                locator.close()
    assert all(p == prints[0] for p in prints[1:])
    assert any("<root>" in p for p in prints[0])


def test_router_is_deterministic_and_balanced():
    topo = build_topology(TopologySpec.benchmark())
    router = ShardRouter(topo, 4)
    regions = sorted(
        {d.location.segments[0] for d in topo.devices.values()}
    )
    # round-robin over sorted region names: distinct shards while they last
    assert [router.assignment[r] for r in regions] == [
        i % 4 for i in range(len(regions))
    ]
    # root-located paths go to the dedicated root shard
    assert router.shard_of(LocationPath(())) == -1
    # unknown top-level segments still route deterministically
    ghost = LocationPath(("no-such-region", "x"))
    assert router.shard_of(ghost) == router.shard_of(ghost)
    assert 0 <= router.shard_of(ghost) < 4


def test_frontier_devices_cross_region_neighbours():
    topo = build_topology(TopologySpec())
    frontier = frontier_devices(topo, max_hops=2)
    assert frontier, "expected a non-empty cross-region frontier"
    # every frontier device really has a cross-region neighbour in range
    for name in frontier:
        region = topo.device(name).location.segments[0]
        assert any(
            topo.device(n).location.segments[0] != region
            for n in topo.hop_neighbourhood(name, 2)
            if n in topo.devices
        )
    # and every cross-region pair within range is frontier on both ends
    for name in sorted(topo.devices):
        region = topo.device(name).location.segments[0]
        for other in topo.hop_neighbourhood(name, 2):
            if other in topo.devices and (
                topo.device(other).location.segments[0] != region
            ):
                assert name in frontier and other in frontier
