"""Unit coverage for the multiprocess worker layer (`repro.runtime.workers`).

The differential batteries (``test_shard_invariance``, ``test_chaos``,
``test_kill_resume``) prove end-to-end byte-identity; these tests pin the
mechanics underneath: the long-lived worker pool, the request/reply
protocol's failure modes, parent-side mirrors, and the materialize/load
bridge that makes checkpoints backend-portable.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from typing import List

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.config import PRODUCTION_CONFIG
from repro.runtime.sharding import ShardedAlertTree, ShardRouter
from repro.runtime.workers import (
    MPShardedAlertTree,
    WorkerCrashed,
    WorkerError,
)
from repro.topology.builder import TopologySpec, build_topology

SHARDS = 2


def _config(fast: bool = False):
    return dataclasses.replace(
        PRODUCTION_CONFIG,
        fast_path=fast,
        runtime=dataclasses.replace(
            PRODUCTION_CONFIG.runtime, shards=SHARDS, backend="mp"
        ),
    )


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


def _mp_tree(topo, supervised: bool = False) -> MPShardedAlertTree:
    config = _config()
    return MPShardedAlertTree(
        ShardRouter(topo, SHARDS), topo, config, supervised=supervised
    )


def _alerts(topo, n: int, t0: float = 10.0) -> List[StructuredAlert]:
    out = []
    for i, name in enumerate(sorted(topo.devices)[:n]):
        loc = topo.device(name).location
        out.append(
            StructuredAlert(
                type_key=AlertTypeKey("ping", f"loss_{i}"),
                level=AlertLevel.FAILURE,
                location=loc,
                first_seen=t0 + i,
                last_seen=t0 + i,
                device=name,
            )
        )
    return out


def _wait_dead(tree: MPShardedAlertTree, was_alive: int) -> None:
    deadline = time.monotonic() + 30.0
    while tree.workers_alive() == was_alive:
        assert time.monotonic() < deadline, "worker did not die after SIGKILL"
        time.sleep(0.01)


# -- pool --------------------------------------------------------------------


def test_pool_reuses_processes_and_rearm_isolates_state(topo):
    first = _mp_tree(topo)
    first_pids = {first.worker_pid(i) for i in range(SHARDS)}
    for alert in _alerts(topo, 8):
        first.insert(alert)
    assert first.total_records() == 8
    first.close()

    # the released workers are still running and get leased again ...
    second = _mp_tree(topo)
    try:
        second_pids = {second.worker_pid(i) for i in range(SHARDS)}
        assert second_pids == first_pids, "pool should reuse live processes"
        # ... but the init epoch barrier re-armed them with empty state
        assert second.total_records() == 0
        assert second.locations() == []
        assert len(second) == 0
    finally:
        second.close()


def test_close_is_idempotent(topo):
    tree = _mp_tree(topo)
    tree.close()
    tree.close()


# -- protocol failure modes --------------------------------------------------


def test_unknown_command_raises_worker_error_and_process_survives(topo):
    tree = _mp_tree(topo)
    try:
        pid = tree.worker_pid(0)
        with pytest.raises(WorkerError, match="unknown command"):
            tree._roundtrip(0, ("no-such-op",))
        # a protocol error is the worker *answering*, not dying: the same
        # process keeps serving
        assert tree.worker_pid(0) == pid
        assert tree.workers_alive() == SHARDS
        assert tree.total_records() == 0
    finally:
        tree.close()


@pytest.mark.slow
def test_dead_worker_raises_worker_crashed_when_unsupervised(topo):
    tree = _mp_tree(topo, supervised=False)
    try:
        for alert in _alerts(topo, 6):
            tree.insert(alert)
        assert tree.total_records() == 6
        alive = tree.workers_alive()
        os.kill(tree.worker_pid(0), signal.SIGKILL)
        _wait_dead(tree, alive)
        with pytest.raises(WorkerCrashed):
            tree.total_records()
    finally:
        tree.close()


@pytest.mark.slow
def test_supervised_tree_heals_sigkilled_worker_exactly(topo):
    tree = _mp_tree(topo, supervised=True)
    try:
        alerts = _alerts(topo, 10)
        for alert in alerts[:6]:
            tree.insert(alert)
        before = sorted(str(loc) for loc in tree.locations())
        alive = tree.workers_alive()
        victim = tree.worker_pid(0)
        os.kill(victim, signal.SIGKILL)
        _wait_dead(tree, alive)

        # the next reply-bearing op detects the EOF, replays the op log
        # into a fresh process, and answers as if nothing happened
        assert tree.total_records() == 6
        assert sorted(str(loc) for loc in tree.locations()) == before
        assert tree.worker_pid(0) != victim
        assert tree.crashes == 1 and tree.restores == 1
        assert tree.replayed_ops > 0

        for alert in alerts[6:]:
            tree.insert(alert)
        assert tree.total_records() == 10
    finally:
        tree.close()


# -- mirrors and the backend bridge ------------------------------------------


def test_parent_mirrors_track_worker_state(topo):
    tree = _mp_tree(topo)
    reference = ShardedAlertTree(ShardRouter(topo, SHARDS), fast=False)
    try:
        alerts = _alerts(topo, 12)
        for alert in alerts:
            tree.insert(alert)
            reference.insert(alert)
        assert len(tree) == len(reference)
        assert tree.locations() == reference.locations()
        assert tree.structure_version == reference.structure_version
        assert tree.consume_dirty() == reference.consume_dirty()
        for loc in reference.locations():
            assert loc in tree
            assert [
                (r.type_key, r.level) for r in tree.iter_records_at(loc)
            ] == [(r.type_key, r.level) for r in reference.iter_records_at(loc)]

        # expiry mirrors removals and version bumps exactly
        removed_mp = tree.expire(now=5000.0, timeout_s=300.0)
        removed_ref = reference.expire(now=5000.0, timeout_s=300.0)
        assert removed_mp == removed_ref
        assert tree.locations() == reference.locations()
        assert tree.structure_version == reference.structure_version
    finally:
        tree.close()


def test_materialize_load_round_trip(topo):
    tree = _mp_tree(topo)
    other = _mp_tree(topo)
    try:
        for alert in _alerts(topo, 9):
            tree.insert(alert)
        plain = tree.materialize()
        assert isinstance(plain, ShardedAlertTree)
        assert plain.locations() == tree.locations()
        assert plain.total_records() == tree.total_records()
        assert plain.structure_version == tree.structure_version

        other.load(plain)
        assert other.locations() == tree.locations()
        assert other.total_records() == tree.total_records()
        assert other.structure_version == tree.structure_version
    finally:
        tree.close()
        other.close()


def test_worker_counters_aggregate_at_partition_barrier(topo):
    tree = _mp_tree(topo)
    try:
        for alert in _alerts(topo, 7):
            tree.insert(alert)
        # counters ship with partition replies (the sweep barrier)
        tree.partition_all()
        counters = tree.worker_counters()
        assert counters["inserts_applied"] == 7
        assert counters["ops_applied"] >= 1
        assert counters["partitions_computed"] >= 1
    finally:
        tree.close()
