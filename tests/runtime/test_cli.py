"""Smoke coverage for ``python -m repro.runtime`` (the operator CLI)."""

from __future__ import annotations

import json

import pytest

from repro.runtime import cli
from repro.runtime.checkpoint import set_incident_counter

TINY = ["--topology", "tiny", "--alerts", "250", "--duration", "500"]


def _run(capsys, argv):
    set_incident_counter(1)
    code = cli.main(argv)
    captured = capsys.readouterr()
    return code, captured.out


def test_cli_runs_and_reports(capsys):
    code, out = _run(capsys, TINY + ["--shards", "2", "--metrics", "text"])
    assert code == 0
    assert "2 shard(s)" in out
    assert "incident-" in out
    assert "runtime_raw_alerts_total 250" in out


def test_cli_is_deterministic(capsys):
    argv = TINY + ["--seed", "11", "--metrics", "text"]
    _, first = _run(capsys, argv)
    _, second = _run(capsys, argv)
    assert first == second


def test_cli_json_metrics_parse(capsys):
    code, out = _run(capsys, TINY + ["--metrics", "json", "--top", "0"])
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    assert payload["counters"]["runtime_raw_alerts_total"] == 250


def test_cli_persist_and_resume(tmp_path, capsys):
    rundir = tmp_path / "run"
    code, out = _run(
        capsys,
        TINY + ["--dir", str(rundir), "--checkpoint-every", "120"],
    )
    assert code == 0
    assert (rundir / "journal").is_dir()
    assert (rundir / "checkpoints").is_dir()

    code, resumed_out = _run(
        capsys,
        ["--topology", "tiny", "--alerts", "0", "--duration", "500",
         "--dir", str(rundir), "--resume", "--metrics", "none"],
    )
    assert code == 0
    assert "resumed from checkpoint" in resumed_out
    # the resumed run re-reports the same incidents the first run found
    first_incidents = [l for l in out.splitlines() if l.startswith("incident-")]
    resumed_incidents = [
        l for l in resumed_out.splitlines() if l.startswith("incident-")
    ]
    assert resumed_incidents == first_incidents


def test_cli_backpressure_flag_sheds_loudly(capsys):
    code, out = _run(
        capsys,
        TINY + ["--backpressure", "--watermark", "5", "--metrics", "none",
                "--top", "0"],
    )
    assert code == 0
    assert "load shed per ladder rung" in out


def test_cli_correlated_crash_flag_drives_recovery(tmp_path, capsys):
    rundir = tmp_path / "run"
    code, out = _run(
        capsys,
        TINY + ["--shards", "2", "--dir", str(rundir), "--metrics", "text",
                "--chaos-correlated-crash", "80:0,1:1"],
    )
    assert code == 0
    assert "runtime_correlated_crashes_total 1" in out
    assert "runtime_shard_crashes_total 2" in out
    assert "runtime_shard_snapshots_lost_total 1" in out
    assert "runtime_shard_rebuilds_total 1" in out


def test_cli_correlated_crash_flag_rejects_bad_specs(capsys):
    for spec in ("300", "300:", "300:0:1:2", "300:0:1,2", "300:0,0"):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(TINY + ["--chaos-correlated-crash", spec])
        assert excinfo.value.code not in (0, None), spec
        capsys.readouterr()


def test_cli_resume_requires_dir(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["--resume"])
    assert excinfo.value.code == 2
    assert "--resume requires --dir" in capsys.readouterr().err
