"""Tests for SkyNet configuration and the A/B+C/D thresholds."""

import pytest

from repro.core.config import (
    PRODUCTION_CONFIG,
    IncidentThresholds,
    SeverityParams,
    SkyNetConfig,
)


class TestThresholds:
    def test_production_label(self):
        assert PRODUCTION_CONFIG.thresholds.label() == "2/1+2/5"

    def test_parse_round_trip(self):
        for label in ("2/1+2/5", "0/1+2/5", "2/0+0/5", "2/1+2/0", "1/1+2/4"):
            assert IncidentThresholds.parse(label).label() == label

    def test_parse_garbage_rejected(self):
        with pytest.raises(ValueError):
            IncidentThresholds.parse("nope")

    def test_failure_only_clause(self):
        t = IncidentThresholds(2, 0, 0, 0)
        assert t.triggered(2, 0)
        assert not t.triggered(1, 99)

    def test_combo_clause(self):
        t = IncidentThresholds(0, 1, 2, 0)
        assert t.triggered(1, 2)
        assert not t.triggered(1, 1)
        assert not t.triggered(0, 5)

    def test_any_clause(self):
        t = IncidentThresholds(0, 0, 0, 5)
        assert t.triggered(0, 5)
        assert t.triggered(3, 2)
        assert not t.triggered(2, 2)

    def test_production_semantics(self):
        t = PRODUCTION_CONFIG.thresholds
        assert t.triggered(2, 0)  # two failure alerts
        assert t.triggered(1, 2)  # one failure + two other
        assert t.triggered(0, 5)  # five of any
        assert not t.triggered(1, 1)
        assert not t.triggered(0, 4)

    def test_zero_disables_clause(self):
        t = IncidentThresholds(0, 0, 0, 0)
        assert not t.triggered(10, 10)


class TestSeverityParams:
    def test_defaults_match_paper(self):
        p = SeverityParams()
        assert p.alert_threshold == 10.0
        assert p.score_cap == 100.0

    def test_rate_clamps_ordered(self):
        p = SeverityParams()
        assert 0 < p.min_rate < p.max_rate < 1


class TestConfig:
    def test_paper_timeouts(self):
        cfg = SkyNetConfig()
        assert cfg.node_timeout_s == 300.0
        assert cfg.incident_timeout_s == 900.0

    def test_replace_creates_new(self):
        cfg = SkyNetConfig()
        other = cfg.replace(node_timeout_s=60.0)
        assert other.node_timeout_s == 60.0
        assert cfg.node_timeout_s == 300.0

    def test_count_by_type_default_on(self):
        assert SkyNetConfig().count_by_type
