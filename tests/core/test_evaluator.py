"""Tests for the evaluator: Equations 1-3 and incident ranking."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.config import SeverityParams, SkyNetConfig
from repro.core.evaluator import Evaluator
from repro.core.incident import Incident
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import LocationPath
from repro.topology.traffic import generate_traffic


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


@pytest.fixture()
def evaluator(topo):
    return Evaluator(topo)


def incident_with_loss(loss_rates, duration=300.0, root=("r",)):
    incident = Incident(root=LocationPath(root), created_at=0.0, seed_nodes={})
    for i, rate in enumerate(loss_rates):
        incident.add(
            StructuredAlert(
                type_key=AlertTypeKey("ping", f"loss{i}"),
                level=AlertLevel.FAILURE,
                location=LocationPath(root),
                first_seen=0.0,
                last_seen=duration,
                metrics={"loss_rate": rate},
            )
        )
    return incident


class TestTimeFactorMath:
    def test_r_is_mean_of_failure_loss_metrics(self, evaluator):
        incident = incident_with_loss([0.2, 0.4])
        breakdown = evaluator.evaluate(incident)
        assert breakdown.ping_loss_rate == pytest.approx(0.3)

    def test_abnormal_metrics_ignored_for_r(self, evaluator):
        incident = incident_with_loss([0.2])
        incident.add(
            StructuredAlert(
                type_key=AlertTypeKey("snmp", "traffic_drop"),
                level=AlertLevel.ABNORMAL,
                location=LocationPath(("r",)),
                first_seen=0.0,
                last_seen=10.0,
                metrics={"loss_rate": 0.99},
            )
        )
        assert evaluator.evaluate(incident).ping_loss_rate == pytest.approx(0.2)

    def test_zero_loss_zero_time_factor(self, evaluator):
        incident = incident_with_loss([])
        breakdown = evaluator.evaluate(incident)
        assert breakdown.time_factor == 0.0
        assert breakdown.score == 0.0

    def test_higher_loss_raises_severity(self, evaluator):
        mild = evaluator.evaluate(incident_with_loss([0.05]))
        severe = evaluator.evaluate(incident_with_loss([0.5]))
        assert severe.score > mild.score

    def test_longer_duration_raises_severity(self, evaluator):
        short = evaluator.evaluate(incident_with_loss([0.2], duration=60.0))
        long = evaluator.evaluate(incident_with_loss([0.2], duration=3000.0))
        assert long.score > short.score

    def test_score_capped_for_display(self, evaluator):
        breakdown = evaluator.evaluate(incident_with_loss([0.99], duration=86400.0))
        assert breakdown.capped_score <= evaluator.params.score_cap
        assert breakdown.score >= breakdown.capped_score

    def test_log_base_guard_rates(self, evaluator):
        assert evaluator._log_base_inverse(0.0, 100.0) == 0.0
        assert evaluator._log_base_inverse(0.5, 0.5) == 0.0
        # clamped high rate stays finite
        assert math.isfinite(evaluator._log_base_inverse(1.5, 100.0))

    def test_sigmoid_saturates(self, evaluator):
        p = evaluator.params
        low = evaluator._sigmoid(0)
        mid = evaluator._sigmoid(int(p.sig_midpoint))
        high = evaluator._sigmoid(50)
        assert low < mid < high <= p.sig_scale
        assert high == pytest.approx(p.sig_scale, rel=0.01)


class TestTrafficTerms:
    def test_impact_floor_is_one(self, evaluator):
        # no state wired: impact factor must still be >= 1 (Equation 1 max)
        breakdown = evaluator.evaluate(incident_with_loss([0.2]))
        assert breakdown.impact_factor == 1.0

    def test_breaks_raise_impact(self, topo):
        traffic = generate_traffic(topo, n_customers=30, seed=6)
        state = NetworkState(topo, traffic)
        evaluator = Evaluator(topo, state=state, traffic=traffic)
        incident = incident_with_loss([0.3], root=("RG01",))
        baseline = evaluator.evaluate(incident).impact_factor
        # break circuits under the incident scope
        placement = state.placement()
        busy = max(
            (cs for cs in topo.circuit_sets.values()),
            key=lambda cs: len(placement.flows_on(cs.set_id)),
        )
        state.add_condition(
            Condition(ConditionKind.CIRCUIT_BREAK, busy.set_id, 0.0,
                      params={"broken_circuits": len(busy.circuits) / 2}),
        )
        state.set_time(1.0)
        incident2 = incident_with_loss([0.3], root=("RG01",))
        broken = evaluator.evaluate(incident2).impact_factor
        assert broken > baseline

    def test_important_customers_counted(self, topo):
        traffic = generate_traffic(topo, n_customers=30, seed=6)
        state = NetworkState(topo, traffic)
        evaluator = Evaluator(topo, state=state, traffic=traffic)
        # break everything under the root: all important customers affected
        for cs in list(topo.circuit_sets.values())[:40]:
            state.add_condition(
                Condition(ConditionKind.CIRCUIT_BREAK, cs.set_id, 0.0,
                          params={"broken_circuits": 1}),
            )
        state.set_time(1.0)
        breakdown = evaluator.evaluate(incident_with_loss([0.3], root=()))
        assert breakdown.important_customers > 0


class TestRanking:
    def test_rank_orders_by_score(self, evaluator):
        mild = incident_with_loss([0.02], duration=60.0)
        severe = incident_with_loss([0.6], duration=1000.0)
        ranked = evaluator.rank([mild, severe])
        assert ranked[0] is severe

    def test_urgent_filters_by_threshold(self, topo):
        config = SkyNetConfig(severity=SeverityParams(alert_threshold=10.0))
        evaluator = Evaluator(topo, config)
        mild = incident_with_loss([0.01], duration=30.0)
        severe = incident_with_loss([0.7], duration=3000.0)
        urgent = evaluator.urgent([mild, severe])
        assert severe in urgent
        assert mild not in urgent

    def test_evaluate_attaches_breakdown(self, evaluator):
        incident = incident_with_loss([0.1])
        assert incident.severity is None
        evaluator.evaluate(incident)
        assert incident.severity is not None


# -- property-based monotonicity ------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.01, max_value=0.9),
    st.floats(min_value=0.01, max_value=0.9),
    st.floats(min_value=10.0, max_value=5000.0),
)
def test_prop_severity_monotone_in_loss(r1, r2, duration):
    topo = build_topology(TopologySpec.tiny())
    evaluator = Evaluator(topo)
    lo, hi = sorted((r1, r2))
    s_lo = evaluator.evaluate(incident_with_loss([lo], duration=duration)).score
    s_hi = evaluator.evaluate(incident_with_loss([hi], duration=duration)).score
    assert s_hi >= s_lo - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.05, max_value=0.9),
    st.floats(min_value=10.0, max_value=5000.0),
    st.floats(min_value=10.0, max_value=5000.0),
)
def test_prop_severity_monotone_in_duration(rate, d1, d2):
    topo = build_topology(TopologySpec.tiny())
    evaluator = Evaluator(topo)
    lo, hi = sorted((d1, d2))
    s_lo = evaluator.evaluate(incident_with_loss([rate], duration=lo)).score
    s_hi = evaluator.evaluate(incident_with_loss([rate], duration=hi)).score
    assert s_hi >= s_lo - 1e-9
