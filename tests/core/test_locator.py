"""Tests for the locator: Algorithms 1-3 and connectivity grouping."""

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.config import IncidentThresholds, SkyNetConfig
from repro.core.incident import IncidentStatus
from repro.core.locator import Locator
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level, LocationPath
from repro.topology.network import DeviceRole


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


@pytest.fixture()
def locator(topo):
    return Locator(topo, SkyNetConfig())


def structured(location, name, tool="snmp", level=AlertLevel.ROOT_CAUSE, t=0.0,
               device=None):
    return StructuredAlert(
        type_key=AlertTypeKey(tool, name),
        level=level,
        location=location,
        first_seen=t,
        last_seen=t,
        count=1,
        device=device,
    )


def device_alerts(topo, device_name, names, t=0.0, level=AlertLevel.ROOT_CAUSE):
    location = topo.device(device_name).location
    return [
        structured(location, name, level=level, t=t, device=device_name)
        for name in names
    ]


def a_switch(topo, index=0):
    return sorted(
        d.name for d in topo.devices.values() if d.role is DeviceRole.CLUSTER_SWITCH
    )[index]


class TestThresholdTriggering:
    def test_no_incident_below_threshold(self, topo, locator):
        for alert in device_alerts(topo, a_switch(topo), ["link_down"], t=1.0):
            locator.feed(alert)
        result = locator.sweep(5.0)
        assert result.opened == []

    def test_five_any_types_trigger(self, topo, locator):
        names = ["t1", "t2", "t3", "t4", "t5"]
        for alert in device_alerts(topo, a_switch(topo), names, t=1.0):
            locator.feed(alert)
        result = locator.sweep(5.0)
        assert len(result.opened) == 1
        assert result.opened[0].root == topo.device(a_switch(topo)).location

    def test_two_failures_trigger(self, topo, locator):
        alerts = device_alerts(
            topo, a_switch(topo), ["f1", "f2"], t=1.0, level=AlertLevel.FAILURE
        )
        for alert in alerts:
            locator.feed(alert)
        assert len(locator.sweep(5.0).opened) == 1

    def test_one_failure_two_other_trigger(self, topo, locator):
        dev = a_switch(topo)
        locator.feed(
            device_alerts(topo, dev, ["f1"], t=1.0, level=AlertLevel.FAILURE)[0]
        )
        for alert in device_alerts(topo, dev, ["o1", "o2"], t=1.0):
            locator.feed(alert)
        assert len(locator.sweep(5.0).opened) == 1

    def test_duplicate_types_counted_once(self, topo, locator):
        dev = a_switch(topo)
        # the same type arriving five times is ONE type
        for t in range(5):
            locator.feed(
                device_alerts(topo, dev, ["same"], t=float(t))[0]
            )
        assert locator.sweep(10.0).opened == []

    def test_type_location_ablation_counts_per_location(self, topo):
        config = SkyNetConfig(count_by_type=False)
        locator = Locator(topo, config)
        # same type at five nearby devices: triggers only in ablation mode
        switches = sorted(
            d.name
            for d in topo.devices.values()
            if d.role in (DeviceRole.CLUSTER_SWITCH, DeviceRole.SITE_AGGREGATION)
        )[:5]
        for name in switches:
            locator.feed(device_alerts(topo, name, ["same"], t=1.0)[0])
        assert len(locator.sweep(5.0).opened) >= 1


class TestConnectivitySplit:
    def test_far_apart_groups_make_separate_incidents(self, topo, locator):
        switches = sorted(
            d.name
            for d in topo.devices.values()
            if d.role is DeviceRole.CLUSTER_SWITCH
        )
        near, far = switches[0], switches[-1]  # different regions
        for alert in device_alerts(topo, near, ["a", "b", "c", "d", "e"], t=1.0):
            locator.feed(alert)
        for alert in device_alerts(topo, far, ["a", "b", "c", "d", "e"], t=1.0):
            locator.feed(alert)
        opened = locator.sweep(5.0).opened
        assert len(opened) == 2
        roots = {i.root for i in opened}
        assert topo.device(near).location in roots
        assert topo.device(far).location in roots

    def test_adjacent_devices_group_into_one(self, topo, locator):
        dev = a_switch(topo)
        neighbour = topo.neighbors(dev)[0]
        for alert in device_alerts(topo, dev, ["a", "b", "c"], t=1.0):
            locator.feed(alert)
        for alert in device_alerts(topo, neighbour, ["d", "e"], t=1.0):
            locator.feed(alert)
        opened = locator.sweep(5.0).opened
        assert len(opened) == 1
        root = opened[0].root
        assert root.contains(topo.device(dev).location)
        assert root.contains(topo.device(neighbour).location)

    def test_structural_alerts_glued_by_parent_device(self, topo, locator):
        # internet-telemetry style: structural alerts at two sibling clusters
        # plus a device alert at their logic site -> one incident
        logic_site = next(
            l for l in topo.locations() if l.level is Level.LOGIC_SITE
        )
        clusters = [
            l
            for l in topo.locations()
            if l.level is Level.CLUSTER and logic_site.contains(l)
        ][:2]
        gateway = next(
            d
            for d in topo.devices_at(logic_site)
            if d.role is DeviceRole.INTERNET_GATEWAY
        )
        # two failure types across the clusters (the same type at both
        # clusters would count once, §4.2), plus a root-cause at the gateway
        locator.feed(
            structured(clusters[0], "internet_unreachable", tool="internet_telemetry",
                       level=AlertLevel.FAILURE, t=1.0)
        )
        locator.feed(
            structured(clusters[1], "internet_packet_loss", tool="internet_telemetry",
                       level=AlertLevel.FAILURE, t=1.0)
        )
        locator.feed(
            structured(gateway.location, "link_down", tool="snmp", t=1.0,
                       device=gateway.name)
        )
        opened = locator.sweep(5.0).opened
        assert len(opened) == 1
        assert opened[0].root == logic_site

    def test_disconnected_structural_clusters_stay_separate(self, topo, locator):
        clusters = [l for l in topo.locations() if l.level is Level.CLUSTER]
        a, b = clusters[0], clusters[-1]  # different regions
        for cluster in (a, b):
            for name in ("t1", "t2", "t3", "t4", "t5"):
                locator.feed(structured(cluster, name, t=1.0))
        assert len(locator.sweep(5.0).opened) == 2


class TestIncidentLifecycle:
    def _open_one(self, topo, locator, t=1.0):
        dev = a_switch(topo)
        for alert in device_alerts(topo, dev, ["a", "b", "c", "d", "e"], t=t):
            locator.feed(alert)
        opened = locator.sweep(t + 1).opened
        assert len(opened) == 1
        return opened[0], dev

    def test_followup_alerts_join_open_incident(self, topo, locator):
        incident, dev = self._open_one(topo, locator)
        locator.feed(device_alerts(topo, dev, ["late"], t=30.0)[0])
        assert incident.update_time == 30.0
        assert incident.distinct_type_count() == 6

    def test_no_duplicate_incident_for_same_area(self, topo, locator):
        incident, dev = self._open_one(topo, locator)
        locator.feed(device_alerts(topo, dev, ["x"], t=40.0)[0])
        assert locator.sweep(45.0).opened == []

    def test_incident_closes_after_idle_timeout(self, topo, locator):
        incident, _ = self._open_one(topo, locator)
        timeout = locator.config.incident_timeout_s
        closed = locator.sweep(incident.update_time + timeout + 1).closed
        assert closed == [incident]
        assert incident.status is IncidentStatus.CLOSED

    def test_wider_incident_supersedes_narrow(self, topo, locator):
        incident, dev = self._open_one(topo, locator)
        # now alerts on a device two hops away but same site raise a wider group
        site_peer = next(
            n for n in topo.neighbors(dev)
            if topo.device(n).role is DeviceRole.SITE_AGGREGATION
        )
        for alert in device_alerts(topo, site_peer, ["p1", "p2", "p3", "p4", "p5"],
                                   t=20.0):
            locator.feed(alert)
        opened = locator.sweep(25.0).opened
        assert len(opened) == 1
        wider = opened[0]
        assert wider.root.contains(incident.root)
        assert incident.status is IncidentStatus.SUPERSEDED
        # alerts from the superseded incident were carried over
        assert wider.distinct_type_count() >= 10

    def test_expired_alerts_leave_main_tree(self, topo, locator):
        dev = a_switch(topo)
        locator.feed(device_alerts(topo, dev, ["a"], t=0.0)[0])
        result = locator.sweep(locator.config.node_timeout_s + 1)
        assert result.expired_records == 1
        assert len(locator.main_tree) == 0

    def test_incident_retrigger_after_everything_expires(self, topo, locator):
        incident, dev = self._open_one(topo, locator)
        horizon = incident.update_time + locator.config.incident_timeout_s + 1
        locator.sweep(horizon)
        assert not locator.open_incidents
        # a fresh burst opens a fresh incident
        for alert in device_alerts(topo, dev, ["a", "b", "c", "d", "e"], t=horizon + 10):
            locator.feed(alert)
        assert len(locator.sweep(horizon + 15).opened) == 1
