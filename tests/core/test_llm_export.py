"""Tests for the §9 LLM context exporter."""

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.incident import Incident
from repro.core.llm_export import CHARS_PER_TOKEN, IncidentContextExporter
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import LocationPath


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec.tiny())


def incident_with_everything(topo):
    device = sorted(topo.devices)[0]
    root = topo.device(device).parent_location
    incident = Incident(root=root, created_at=0.0, seed_nodes={})
    data = [
        ("ping", "end_to_end_icmp_loss", AlertLevel.FAILURE, None),
        ("snmp", "traffic_drop", AlertLevel.ABNORMAL, device),
        ("syslog", "hardware_error", AlertLevel.ROOT_CAUSE, device),
        ("snmp", "traffic_congestion", AlertLevel.ROOT_CAUSE, device),
    ]
    for tool, name, level, dev in data:
        incident.add(
            StructuredAlert(
                type_key=AlertTypeKey(tool, name),
                level=level,
                location=topo.device(device).location if dev else root,
                first_seen=10.0,
                last_seen=500.0,
                count=7,
                device=dev,
            )
        )
    return incident


def test_budget_validation(topo):
    with pytest.raises(ValueError):
        IncidentContextExporter(topo, max_tokens=10)


def test_full_export_contains_all_sections(topo):
    incident = incident_with_everything(topo)
    package = IncidentContextExporter(topo, max_tokens=4000).export(incident)
    assert not package.truncated
    assert "header" in package.sections_included
    assert "root_causes" in package.sections_included
    assert "syslog/hardware_error" in package.text
    assert str(incident.location) in package.text


def test_budget_enforced(topo):
    incident = incident_with_everything(topo)
    exporter = IncidentContextExporter(topo, max_tokens=100)
    package = exporter.export(incident)
    assert package.approx_tokens <= 100
    assert package.truncated
    # the header is the last thing to go
    assert "header" in package.sections_included


def test_root_causes_survive_truncation_before_samples(topo):
    incident = incident_with_everything(topo)
    exporter = IncidentContextExporter(topo, max_tokens=260)
    package = exporter.export(incident)
    if "sample_messages" in package.sections_included:
        assert "root_causes" in package.sections_included


def test_gray_failure_notes_missing_root_cause(topo):
    root = LocationPath(("RG01",))
    incident = Incident(root=root, created_at=0.0, seed_nodes={})
    incident.add(
        StructuredAlert(
            type_key=AlertTypeKey("ping", "end_to_end_icmp_loss"),
            level=AlertLevel.FAILURE,
            location=root,
            first_seen=0.0,
            last_seen=60.0,
        )
    )
    package = IncidentContextExporter(topo).export(incident)
    assert "gray failure" in package.text


def test_token_estimate_consistent(topo):
    incident = incident_with_everything(topo)
    package = IncidentContextExporter(topo).export(incident)
    assert package.approx_tokens == len(package.text) // CHARS_PER_TOKEN
