"""Tests for Incident bookkeeping and rendering."""

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.incident import Incident, IncidentStatus
from repro.topology.hierarchy import LocationPath


def alert(loc, name="link_down", tool="snmp", level=AlertLevel.ROOT_CAUSE, t=0.0,
          count=1, device=None, metrics=None):
    return StructuredAlert(
        type_key=AlertTypeKey(tool, name),
        level=level,
        location=LocationPath(loc),
        first_seen=t,
        last_seen=t,
        count=count,
        device=device,
        metrics=metrics or {},
    )


@pytest.fixture()
def incident():
    return Incident(root=LocationPath(("r", "c")), created_at=100.0, seed_nodes={})


def test_add_outside_scope_rejected(incident):
    with pytest.raises(ValueError):
        incident.add(alert(("q",)))


def test_add_updates_time_and_counts(incident):
    incident.add(alert(("r", "c", "l"), t=150.0))
    incident.add(alert(("r", "c", "l"), t=200.0, count=2))
    assert incident.update_time == 200.0
    assert incident.total_alert_count() == 3
    assert incident.distinct_type_count() == 1


def test_start_time_is_earliest_record(incident):
    incident.add(alert(("r", "c"), t=50.0))
    incident.add(alert(("r", "c", "l"), t=150.0, name="port_down"))
    assert incident.start_time == 50.0


def test_counts_by_level(incident):
    incident.add(alert(("r", "c"), name="icmp", tool="ping", level=AlertLevel.FAILURE))
    incident.add(alert(("r", "c"), name="drop", level=AlertLevel.ABNORMAL))
    incident.add(alert(("r", "c"), name="hw", tool="syslog"))
    by_level = incident.alert_counts_by_level()
    assert len(by_level[AlertLevel.FAILURE]) == 1
    assert incident.distinct_type_count(AlertLevel.FAILURE) == 1


def test_devices_involved(incident):
    incident.add(alert(("r", "c"), device="d2"))
    incident.add(alert(("r", "c"), name="x", device="d1"))
    assert incident.devices_involved() == ["d1", "d2"]


def test_metrics_aggregation(incident):
    incident.add(
        alert(("r", "c"), tool="ping", name="icmp", level=AlertLevel.FAILURE,
              metrics={"loss_rate": 0.2})
    )
    incident.add(
        alert(("r", "c", "l"), tool="ping", name="tcp", level=AlertLevel.FAILURE,
              metrics={"loss_rate": 0.4})
    )
    assert incident.max_metric("loss_rate") == 0.4
    assert incident.mean_metric("loss_rate") == pytest.approx(0.3)


def test_close_sets_status(incident):
    incident.close(500.0)
    assert incident.status is IncidentStatus.CLOSED
    assert incident.closed_at == 500.0
    assert not incident.is_open


def test_absorb_incident_takes_max_counts():
    a = Incident(root=LocationPath(("r",)), created_at=0.0, seed_nodes={})
    b = Incident(root=LocationPath(("r", "c")), created_at=10.0, seed_nodes={})
    a.add(alert(("r", "c"), t=5.0, count=4))
    b.add(alert(("r", "c"), t=8.0, count=2))
    a.absorb_incident(b)
    assert a.total_alert_count() == 4  # overlapping views, not summed


def test_absorb_unions_disjoint_nodes():
    a = Incident(root=LocationPath(("r",)), created_at=0.0, seed_nodes={})
    b = Incident(root=LocationPath(("r", "c")), created_at=0.0, seed_nodes={})
    a.add(alert(("r", "x")))
    b.add(alert(("r", "c"), name="other"))
    a.absorb_incident(b)
    assert a.distinct_type_count() == 2


def test_location_prefers_refinement(incident):
    incident.add(alert(("r", "c")))
    assert incident.location == LocationPath(("r", "c"))
    incident.refined_location = LocationPath(("r", "c", "l"))
    assert incident.location == LocationPath(("r", "c", "l"))


def test_render_figure6_layout(incident):
    incident.add(alert(("r", "c"), tool="ping", name="end_to_end_icmp_loss",
                       level=AlertLevel.FAILURE, count=3))
    incident.add(alert(("r", "c"), tool="syslog", name="hardware_error"))
    text = incident.render()
    assert "Failure alerts" in text
    assert "Root cause alerts" in text
    assert "end_to_end_icmp_loss (3)" in text
    assert text.index("Failure alerts") < text.index("Root cause alerts")


def test_incident_ids_unique():
    a = Incident(LocationPath(("r",)), 0.0, {})
    b = Incident(LocationPath(("r",)), 0.0, {})
    assert a.incident_id != b.incident_id
