"""Tests for the main alert tree, including hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.alert_tree import AlertTree, record_from
from repro.topology.hierarchy import LocationPath


def alert(loc=("r", "c"), name="link_down", t=0.0, count=1, level=AlertLevel.ROOT_CAUSE,
          device=None, is_device=False):
    return StructuredAlert(
        type_key=AlertTypeKey("snmp", name),
        level=level,
        location=LocationPath(loc, is_device=is_device),
        first_seen=t,
        last_seen=t,
        count=count,
        device=device,
    )


class TestInsertAndExpire:
    def test_insert_creates_node(self):
        tree = AlertTree()
        tree.insert(alert())
        assert LocationPath(("r", "c")) in tree
        assert len(tree) == 1

    def test_same_type_absorbs(self):
        tree = AlertTree()
        tree.insert(alert(t=0.0))
        record = tree.insert(alert(t=50.0, count=3))
        assert record.count == 4
        assert record.first_seen == 0.0
        assert record.last_seen == 50.0
        assert tree.total_records() == 1

    def test_different_types_coexist(self):
        tree = AlertTree()
        tree.insert(alert(name="link_down"))
        tree.insert(alert(name="port_down"))
        assert tree.total_records() == 2

    def test_expiry_removes_stale_records(self):
        tree = AlertTree()
        tree.insert(alert(t=0.0))
        tree.insert(alert(loc=("r", "x"), t=200.0))
        removed = tree.expire(now=400.0, timeout_s=300.0)
        assert removed == 1
        assert LocationPath(("r", "c")) not in tree
        assert LocationPath(("r", "x")) in tree

    def test_absorbing_refreshes_expiry(self):
        tree = AlertTree()
        tree.insert(alert(t=0.0))
        tree.insert(alert(t=250.0))
        assert tree.expire(now=400.0, timeout_s=300.0) == 0

    def test_empty_nodes_removed(self):
        tree = AlertTree()
        tree.insert(alert(t=0.0))
        tree.expire(now=1000.0, timeout_s=300.0)
        assert len(tree) == 0


class TestQueries:
    def test_records_under_subtree(self):
        tree = AlertTree()
        tree.insert(alert(loc=("r", "c", "l")))
        tree.insert(alert(loc=("r", "c"), name="port_down"))
        tree.insert(alert(loc=("r", "z"), name="rx_errors"))
        under = list(tree.records_under(LocationPath(("r", "c"))))
        assert {r.type_key.name for r in under} == {"link_down", "port_down"}

    def test_locations_under(self):
        tree = AlertTree()
        tree.insert(alert(loc=("r", "c", "l")))
        tree.insert(alert(loc=("r", "z")))
        assert tree.locations_under(LocationPath(("r", "c"))) == [
            LocationPath(("r", "c", "l"))
        ]

    def test_snapshot_is_deep_copy(self):
        tree = AlertTree()
        tree.insert(alert(t=0.0))
        snap = tree.snapshot_under(LocationPath(("r",)))
        tree.insert(alert(t=10.0))  # mutate the original
        record = snap[LocationPath(("r", "c"))][0]
        assert record.count == 1
        assert record.last_seen == 0.0

    def test_record_from_copies_metrics(self):
        a = alert()
        a.metrics["x"] = 1.0
        record = record_from(a)
        a.metrics["x"] = 9.0
        assert record.worst_metrics["x"] == 1.0


# -- property-based -----------------------------------------------------------

type_names = st.sampled_from(["a", "b", "c", "d"])
locs = st.sampled_from(
    [("r",), ("r", "c"), ("r", "c", "l"), ("r", "z"), ("q",)]
)
alerts = st.builds(
    alert,
    loc=locs,
    name=type_names,
    t=st.floats(min_value=0, max_value=1000),
    count=st.integers(min_value=1, max_value=5),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(alerts, max_size=40))
def test_prop_total_count_equals_sum_of_inserted(batch):
    tree = AlertTree()
    for a in batch:
        tree.insert(a)
    total = sum(r.count for loc in tree.locations() for r in tree.records_at(loc))
    assert total == sum(a.count for a in batch)


@settings(max_examples=60, deadline=None)
@given(st.lists(alerts, max_size=40), st.floats(min_value=0, max_value=2000))
def test_prop_expire_keeps_only_fresh(batch, now):
    tree = AlertTree()
    for a in batch:
        tree.insert(a)
    tree.expire(now, timeout_s=300.0)
    for loc in tree.locations():
        for record in tree.records_at(loc):
            assert now <= record.last_seen + 300.0


@settings(max_examples=60, deadline=None)
@given(st.lists(alerts, max_size=40))
def test_prop_records_under_root_is_everything(batch):
    tree = AlertTree()
    for a in batch:
        tree.insert(a)
    assert len(list(tree.records_under(LocationPath.root()))) == tree.total_records()
