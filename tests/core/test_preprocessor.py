"""Tests for the preprocessor: classification, location, consolidation."""

import pytest

from repro.core.config import SkyNetConfig
from repro.core.preprocessor import Preprocessor
from repro.monitors.base import RawAlert
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.network import DeviceRole


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec.tiny())


@pytest.fixture()
def prep(topo):
    return Preprocessor(topo)


def device(topo, role=DeviceRole.CLUSTER_SWITCH):
    return sorted(d.name for d in topo.devices.values() if d.role is role)[0]


def raw(topo, tool="snmp", raw_type="link_down", t=0.0, dev=None, **kw):
    return RawAlert(
        tool=tool,
        raw_type=raw_type,
        timestamp=t,
        device=dev or device(topo),
        **kw,
    )


class TestClassificationAndFiltering:
    def test_device_alert_located_at_device_path(self, topo, prep):
        out = prep.feed(raw(topo, t=1.0))
        assert len(out) == 1
        assert out[0].location == topo.device(device(topo)).location
        assert out[0].type_key.name == "link_down"

    def test_syslog_goes_through_classifier(self, topo, prep):
        line = "%PLATFORM-2-HARDWARE_FAULT: ASIC 3 parity error detected, packets may be dropped"
        out = prep.feed(
            RawAlert(tool="syslog", raw_type="log", timestamp=0.0,
                     message=line, device=device(topo))
        )
        assert out[0].type_key.name == "hardware_error"

    def test_benign_syslog_filtered(self, topo, prep):
        line = "%SEC_LOGIN-6-LOGIN_SUCCESS: Login Success [user: ops9] at vty0"
        out = prep.feed(
            RawAlert(tool="syslog", raw_type="log", timestamp=0.0,
                     message=line, device=device(topo))
        )
        assert out == []
        assert prep.stats.filtered_info == 1

    def test_info_type_filtered(self, topo, prep):
        out = prep.feed(
            RawAlert(tool="modification_events", raw_type="modification_event",
                     timestamp=0.0, device=device(topo))
        )
        assert out == []

    def test_unlocatable_alert_dropped(self, topo, prep):
        out = prep.feed(RawAlert(tool="snmp", raw_type="link_down", timestamp=0.0))
        assert out == []
        assert prep.stats.unlocatable == 1


class TestEndpointSplitting:
    def test_ping_alert_splits_to_both_clusters(self, topo, prep):
        servers = sorted(topo.servers)
        # pick servers in different clusters
        a = topo.servers[servers[0]]
        b = next(
            topo.servers[s] for s in servers if topo.servers[s].cluster != a.cluster
        )
        out = []
        for t in (0.0, 70.0):  # sporadic type needs persistent occurrences
            out = prep.feed(
                RawAlert(tool="ping", raw_type="end_to_end_icmp_loss", timestamp=t,
                         endpoints=(a.name, b.name), metrics={"loss_rate": 0.3})
            )
        locations = {al.location for al in out}
        assert locations == {a.cluster, b.cluster}

    def test_internet_endpoint_skipped(self, topo, prep):
        from repro.topology.network import INTERNET

        server = next(iter(topo.servers.values()))
        for t in (0.0, 70.0):
            out = prep.feed(
                RawAlert(tool="ping", raw_type="end_to_end_icmp_loss", timestamp=t,
                         endpoints=(server.name, INTERNET),
                         metrics={"loss_rate": 0.2})
            )
        assert {al.location for al in out} == {server.cluster}

    def test_location_hint_used(self, topo, prep):
        cluster = next(iter(topo.servers.values())).cluster
        out = prep.feed(
            RawAlert(tool="internet_telemetry", raw_type="internet_unreachable",
                     timestamp=0.0, location_hint=cluster,
                     metrics={"loss_rate": 1.0})
        )
        assert out[0].location == cluster


class TestIdenticalConsolidation:
    def test_duplicates_merge_within_window(self, topo, prep):
        first = prep.feed(raw(topo, t=0.0))
        dup = prep.feed(raw(topo, t=10.0))
        assert len(first) == 1
        assert dup == []  # merged, refresh interval not reached
        assert prep.stats.merged == 1

    def test_refresh_reemits_with_delta_count(self, topo, prep):
        cfg = prep.config
        prep.feed(raw(topo, t=0.0))
        prep.feed(raw(topo, t=10.0))
        out = prep.feed(raw(topo, t=cfg.refresh_interval_s + 1))
        assert len(out) == 1
        assert out[0].count == 2  # the two occurrences since first emission
        assert out[0].first_seen == 0.0

    def test_new_aggregate_after_merge_window(self, topo, prep):
        cfg = prep.config
        prep.feed(raw(topo, t=0.0))
        out = prep.feed(raw(topo, t=cfg.merge_window_s + 61))
        assert len(out) == 1
        assert out[0].first_seen == cfg.merge_window_s + 61


class TestSporadicPersistence:
    def test_single_loss_suppressed(self, topo, prep):
        server = next(iter(topo.servers.values()))
        out = prep.feed(
            RawAlert(tool="internet_telemetry", raw_type="internet_packet_loss",
                     timestamp=0.0, location_hint=server.cluster,
                     metrics={"loss_rate": 0.05})
        )
        assert out == []
        assert prep.stats.suppressed_sporadic == 1

    def test_persistent_loss_released_with_full_count(self, topo, prep):
        server = next(iter(topo.servers.values()))

        def feed(t):
            return prep.feed(
                RawAlert(tool="internet_telemetry", raw_type="internet_packet_loss",
                         timestamp=t, location_hint=server.cluster,
                         metrics={"loss_rate": 0.05})
            )

        assert feed(0.0) == []
        assert feed(10.0) == []  # enough occurrences but too short a span
        out = feed(75.0)
        assert len(out) == 1
        assert out[0].count == 3

    def test_occurrences_outside_window_do_not_accumulate(self, topo, prep):
        cfg = prep.config
        server = next(iter(topo.servers.values()))

        def feed(t):
            return prep.feed(
                RawAlert(tool="internet_telemetry", raw_type="internet_packet_loss",
                         timestamp=t, location_hint=server.cluster,
                         metrics={"loss_rate": 0.05})
            )

        assert feed(0.0) == []
        # second occurrence far outside the correlation window
        assert feed(cfg.correlation_window_s + 50) == []


class TestCrossSourceRule:
    def drop_alert(self, topo, t, dev):
        return RawAlert(tool="snmp", raw_type="traffic_drop", timestamp=t,
                        device=dev, metrics={"rate_gbps": 1.0})

    def test_uncorroborated_drop_suppressed(self, topo, prep):
        out = prep.feed(self.drop_alert(topo, 0.0, device(topo)))
        assert out == []
        assert prep.stats.suppressed_unconfirmed == 1

    def test_corroborated_drop_passes(self, topo, prep):
        dev = device(topo)
        line = "%PLATFORM-2-HARDWARE_FAULT: ASIC 3 parity error detected, packets may be dropped"
        prep.feed(RawAlert(tool="syslog", raw_type="log", timestamp=0.0,
                           message=line, device=dev))
        out = prep.feed(self.drop_alert(topo, 5.0, dev))
        assert len(out) == 1
        assert out[0].type_key.name == "traffic_drop"


class TestRelatedSurgeRule:
    def test_adjacent_surges_fold_into_first(self, topo, prep):
        dev = device(topo)
        neighbour = topo.neighbors(dev)[0]
        # corroborate both with a failure so the cross-source rule passes
        line = "%PLATFORM-2-HARDWARE_FAULT: ASIC 0 parity error detected, packets may be dropped"
        prep.feed(RawAlert(tool="syslog", raw_type="log", timestamp=0.0,
                           message=line, device=dev))
        first = prep.feed(RawAlert(tool="snmp", raw_type="traffic_surge",
                                   timestamp=1.0, device=dev))
        second = prep.feed(RawAlert(tool="snmp", raw_type="traffic_surge",
                                    timestamp=2.0, device=neighbour))
        assert len(first) == 1
        assert second == []
        assert prep.stats.suppressed_related == 1


class TestStats:
    def test_reduction_factor(self, topo, prep):
        for t in range(10):
            prep.feed(raw(topo, t=float(t)))
        stats = prep.stats
        assert stats.raw_in == 10
        assert stats.emitted == 1
        assert stats.reduction_factor == 10.0
