"""Tests for the alert-type registry."""

from repro.core.alert import AlertLevel
from repro.core.alert_types import (
    ALERT_TYPE_LEVELS,
    CONDITIONAL_TYPES,
    SPORADIC_TYPES,
    level_of,
    registered_types,
)
from repro.monitors.registry import DATA_SOURCES


def test_figure6_level_assignments():
    assert level_of("ping", "end_to_end_icmp_loss") is AlertLevel.FAILURE
    assert level_of("out_of_band", "inaccessible") is AlertLevel.ABNORMAL
    assert level_of("snmp", "traffic_congestion") is AlertLevel.ROOT_CAUSE
    assert level_of("snmp", "link_down") is AlertLevel.ROOT_CAUSE
    assert level_of("syslog", "bgp_peer_down") is AlertLevel.ABNORMAL
    assert level_of("syslog", "hardware_error") is AlertLevel.ROOT_CAUSE
    assert level_of("syslog", "bgp_link_jitter") is AlertLevel.ROOT_CAUSE


def test_benign_types_are_info():
    for name in ("link_up", "login", "config_session", "ssh_session", "unclassified"):
        assert level_of("syslog", name) is AlertLevel.INFO


def test_unknown_type_defaults_to_abnormal():
    assert level_of("future_tool", "novel_type") is AlertLevel.ABNORMAL


def test_every_tool_in_registry_is_a_known_source():
    from repro.monitors.registry import FUTURE_SOURCES

    tools = {tool for tool, _ in ALERT_TYPE_LEVELS}
    assert tools <= set(DATA_SOURCES) | set(FUTURE_SOURCES)


def test_every_data_source_has_types():
    tools = {tool for tool, _ in ALERT_TYPE_LEVELS}
    assert set(DATA_SOURCES) <= tools


def test_sporadic_and_conditional_are_registered():
    assert SPORADIC_TYPES <= set(ALERT_TYPE_LEVELS)
    assert CONDITIONAL_TYPES <= set(ALERT_TYPE_LEVELS)


def test_registered_types_filter():
    ping_types = registered_types("ping")
    assert all(tool == "ping" for tool, _ in ping_types)
    assert ("ping", "high_latency") in ping_types


def test_every_level_is_represented():
    levels = set(ALERT_TYPE_LEVELS.values())
    assert levels == set(AlertLevel)
