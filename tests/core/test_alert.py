"""Tests for structured alerts and alert levels."""

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.topology.hierarchy import LocationPath


def make_alert(**overrides):
    defaults = dict(
        type_key=AlertTypeKey("ping", "end_to_end_icmp_loss"),
        level=AlertLevel.FAILURE,
        location=LocationPath(("r", "c")),
        first_seen=10.0,
        last_seen=20.0,
        metrics={"loss_rate": 0.1},
    )
    defaults.update(overrides)
    return StructuredAlert(**defaults)


def test_levels_counting_rules():
    assert AlertLevel.FAILURE.counts_for_incidents
    assert AlertLevel.ABNORMAL.counts_for_incidents
    assert AlertLevel.ROOT_CAUSE.counts_for_incidents
    assert not AlertLevel.INFO.counts_for_incidents


def test_type_key_rendering():
    assert str(AlertTypeKey("snmp", "link_down")) == "snmp/link_down"


def test_invalid_time_order_rejected():
    with pytest.raises(ValueError):
        make_alert(first_seen=10.0, last_seen=5.0)


def test_invalid_count_rejected():
    with pytest.raises(ValueError):
        make_alert(count=0)


def test_duration():
    assert make_alert().duration_s == 10.0


def test_merged_with_extends_window_and_count():
    alert = make_alert()
    merged = alert.merged_with(30.0, {"loss_rate": 0.5})
    assert merged.last_seen == 30.0
    assert merged.count == 2
    assert merged.metrics["loss_rate"] == 0.5
    # the original is untouched
    assert alert.count == 1 and alert.metrics["loss_rate"] == 0.1


def test_merged_with_keeps_worst_metric():
    alert = make_alert()
    merged = alert.merged_with(25.0, {"loss_rate": 0.01})
    assert merged.metrics["loss_rate"] == 0.1


def test_merged_with_does_not_rewind_last_seen():
    alert = make_alert()
    merged = alert.merged_with(15.0)
    assert merged.last_seen == 20.0


def test_metric_default():
    assert make_alert().metric("nope", 3.0) == 3.0


def test_render_mentions_type_and_location():
    text = make_alert().render()
    assert "ping/end_to_end_icmp_loss" in text
    assert "r|c" in text
