"""Tests for the SkyNet pipeline facade."""

import pytest

from repro.core.pipeline import SkyNet
from repro.monitors.base import RawAlert
from repro.simulation import scenarios as sc
from repro.simulation.injector import FailureInjector
from repro.simulation.state import NetworkState
from repro.monitors.registry import build_monitors
from repro.monitors.stream import AlertStream
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.network import DeviceRole
from repro.topology.traffic import generate_traffic


@pytest.fixture(scope="module")
def setup():
    topo = build_topology(TopologySpec())
    traffic = generate_traffic(topo, n_customers=30, seed=12)
    state = NetworkState(topo, traffic)
    injector = FailureInjector(state)
    injector.inject(sc.internet_entrance_cable_cut(topo, start=30.0))
    stream = AlertStream(state, build_monitors(state))
    alerts = stream.collect(600.0)
    return topo, state, injector, alerts


def test_process_produces_scored_incident(setup):
    topo, state, injector, alerts = setup
    skynet = SkyNet(topo, state=state)
    reports = skynet.process(alerts)
    assert reports
    top = reports[0]
    assert top.severity is not None
    assert top.score > 0
    truth = injector.ground_truths[0]
    assert truth.scope.contains(top.incident.root) or top.incident.root.contains(
        truth.scope
    )


def test_reports_ranked_descending(setup):
    topo, state, _, alerts = setup
    skynet = SkyNet(topo, state=state)
    reports = skynet.process(alerts)
    scores = [r.score for r in reports]
    assert scores == sorted(scores, reverse=True)


def test_severe_incident_is_urgent(setup):
    topo, state, _, alerts = setup
    skynet = SkyNet(topo, state=state)
    skynet.process(alerts)
    urgent = skynet.urgent_reports()
    assert urgent
    assert all(r.score >= 10.0 for r in urgent)


def test_preprocessing_reduces_volume(setup):
    topo, state, _, alerts = setup
    skynet = SkyNet(topo, state=state)
    skynet.process(alerts)
    stats = skynet.preprocess_stats
    assert stats.raw_in == len(alerts)
    assert stats.emitted < stats.raw_in


def test_streaming_and_batch_agree(setup):
    topo, state, _, alerts = setup
    batch = SkyNet(topo, state=state)
    batch_reports = batch.process(alerts)

    stream = SkyNet(topo, state=state)
    for raw in alerts:
        stream.feed(raw)
    stream.finish()
    stream_reports = stream.reports()
    assert len(batch_reports) == len(stream_reports)
    assert {r.incident.root for r in batch_reports} == {
        r.incident.root for r in stream_reports
    }


def test_without_state_severity_degrades_gracefully():
    topo = build_topology(TopologySpec.tiny())
    skynet = SkyNet(topo)
    dev = sorted(
        d.name for d in topo.devices.values() if d.role is DeviceRole.CLUSTER_SWITCH
    )[0]
    raws = [
        RawAlert(tool="snmp", raw_type=name, timestamp=1.0, device=dev)
        for name in ("link_down", "port_down", "rx_errors", "high_cpu", "snmp_timeout")
    ]
    reports = skynet.process(raws)
    assert len(reports) == 1
    assert reports[0].severity is not None


def test_incidents_exclude_superseded_by_default(setup):
    topo, state, _, alerts = setup
    skynet = SkyNet(topo, state=state)
    skynet.process(alerts)
    visible = skynet.incidents()
    everything = skynet.incidents(include_superseded=True)
    assert len(everything) >= len(visible)
    from repro.core.incident import IncidentStatus

    assert all(i.status is not IncidentStatus.SUPERSEDED for i in visible)
