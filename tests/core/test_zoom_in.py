"""Tests for reachability-matrix construction and location zoom-in."""

import pytest

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.incident import Incident
from repro.core.zoom_in import (
    LocationZoomIn,
    PingWindow,
    ReachabilityMatrix,
)
from repro.monitors.base import RawAlert
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level, LocationPath


@pytest.fixture(scope="module")
def topo():
    return build_topology(TopologySpec())


def clusters_of(topo, n):
    return [l for l in topo.locations() if l.level is Level.CLUSTER][:n]


def matrix_with_hotspot(locations, hot_index=0, hot_loss=0.15):
    loss = {}
    for i, a in enumerate(locations):
        for b in locations[i + 1 :]:
            value = hot_loss if locations[hot_index] in (a, b) else 0.0
            loss[(a, b)] = value
    return ReachabilityMatrix(list(locations), loss)


class TestReachabilityMatrix:
    def test_cell_symmetric_lookup(self, topo):
        a, b = clusters_of(topo, 2)
        matrix = ReachabilityMatrix([a, b], {(a, b): 0.3})
        assert matrix.cell(a, b) == 0.3
        assert matrix.cell(b, a) == 0.3

    def test_focal_point_found(self, topo):
        locs = clusters_of(topo, 5)
        matrix = matrix_with_hotspot(locs, hot_index=2)
        assert matrix.focal_point() == locs[2]

    def test_no_focal_point_when_uniform(self, topo):
        locs = clusters_of(topo, 4)
        loss = {
            (a, b): 0.2
            for i, a in enumerate(locs)
            for b in locs[i + 1 :]
        }
        matrix = ReachabilityMatrix(locs, loss)
        assert matrix.focal_point() is None

    def test_no_focal_point_when_clean(self, topo):
        locs = clusters_of(topo, 4)
        matrix = ReachabilityMatrix(locs, {})
        assert matrix.focal_point() is None

    def test_single_location_no_focal(self, topo):
        matrix = ReachabilityMatrix(clusters_of(topo, 1), {})
        assert matrix.focal_point() is None

    def test_render_contains_names(self, topo):
        locs = clusters_of(topo, 3)
        matrix = matrix_with_hotspot(locs)
        text = matrix.render()
        for loc in locs:
            assert loc.name in text


class TestPingWindow:
    def ping_alert(self, topo, src, dst, loss, t=0.0):
        return RawAlert(
            tool="ping", raw_type="end_to_end_icmp_loss", timestamp=t,
            endpoints=(src, dst), metrics={"loss_rate": loss},
        )

    def test_observe_and_build(self, topo):
        window = PingWindow(topo)
        servers = sorted(topo.servers)
        a, b = servers[0], servers[-1]
        window.observe(self.ping_alert(topo, a, b, 0.4, t=10.0))
        matrix = window.matrix(now=20.0, level=Level.CLUSTER)
        ca = topo.servers[a].cluster
        cb = topo.servers[b].cluster
        assert matrix.cell(ca, cb) == 0.4

    def test_stale_samples_dropped(self, topo):
        window = PingWindow(topo, window_s=100.0)
        servers = sorted(topo.servers)
        window.observe(self.ping_alert(topo, servers[0], servers[-1], 0.4, t=0.0))
        matrix = window.matrix(now=500.0)
        assert matrix.locations == []

    def test_non_probe_alerts_ignored(self, topo):
        window = PingWindow(topo)
        window.observe(RawAlert(tool="snmp", raw_type="link_down", timestamp=0.0))
        assert window.matrix(now=1.0).locations == []

    def test_coarser_level_aggregation(self, topo):
        window = PingWindow(topo)
        servers = sorted(topo.servers)
        a, b = servers[0], servers[-1]
        window.observe(self.ping_alert(topo, a, b, 0.2, t=0.0))
        matrix = window.matrix(now=1.0, level=Level.REGION)
        assert all(loc.level is Level.REGION for loc in matrix.locations)


class TestLocationZoomIn:
    def incident_at(self, root):
        return Incident(root=root, created_at=0.0, seed_nodes={})

    def add_record(self, incident, tool, name, device, location):
        incident.add(
            StructuredAlert(
                type_key=AlertTypeKey(tool, name),
                level=AlertLevel.FAILURE,
                location=location,
                first_seen=0.0,
                last_seen=10.0,
                device=device,
            )
        )

    def test_sflow_traceback_single_device(self, topo):
        zoom = LocationZoomIn(topo)
        device = sorted(topo.devices)[0]
        dev = topo.device(device)
        incident = self.incident_at(dev.parent_location)
        self.add_record(incident, "traffic_statistics", "packet_loss", device,
                        dev.location)
        refined = zoom.refine(incident, now=20.0)
        assert refined == dev.location
        assert incident.location == dev.location

    def test_int_traceback_when_no_sflow(self, topo):
        zoom = LocationZoomIn(topo)
        device = sorted(topo.devices)[0]
        dev = topo.device(device)
        incident = self.incident_at(dev.parent_location)
        self.add_record(incident, "in_band_telemetry", "rate_mismatch", device,
                        dev.location)
        assert zoom.refine(incident, now=20.0) == dev.location

    def test_no_refinement_when_devices_span_scope(self, topo):
        zoom = LocationZoomIn(topo)
        root = LocationPath(("RG01",))
        incident = self.incident_at(root)
        devices = [d for d in topo.devices.values() if root.contains(d.location)][:2]
        # two devices whose LCA is the incident root itself
        from repro.topology.hierarchy import lowest_common_ancestor

        if lowest_common_ancestor([d.location for d in devices]) != root:
            pytest.skip("fabric layout changed")
        for d in devices:
            self.add_record(incident, "traffic_statistics", "packet_loss", d.name,
                            d.location)
        assert zoom.refine(incident, now=20.0) is None

    def test_matrix_focal_refines_cluster(self, topo):
        zoom = LocationZoomIn(topo)
        site = next(l for l in topo.locations() if l.level is Level.SITE)
        clusters = [
            l for l in topo.locations()
            if l.level is Level.CLUSTER and site.contains(l)
        ]
        victim = clusters[0]
        # dark row+column for the victim cluster via ping samples
        servers = topo.servers_in(victim)
        others = [
            topo.servers_in(c)[0]
            for c in topo.locations()
            if c.level is Level.CLUSTER and c != victim and topo.servers_in(c)
        ]
        for i, other in enumerate(others[:6]):
            zoom.observe(
                RawAlert(tool="ping", raw_type="end_to_end_icmp_loss",
                         timestamp=float(i),
                         endpoints=(servers[0].name, other.name),
                         metrics={"loss_rate": 0.3})
            )
        incident = self.incident_at(site)
        refined = zoom.refine(incident, now=10.0)
        assert refined == victim
