"""Hypothesis property tests for AlertTree and the incident thresholds.

Three families of invariants back the flood fast path:

* **Monotone expiry** -- advancing time only ever removes records, the
  survivor set is exactly ``{r : now <= r.last_seen + timeout}``, and the
  heap-backed fast tree removes the same records as the reference walk.
* **Insert-order invariance** -- the tree state after a batch of alerts
  does not depend on the order the batch arrived in (``device`` excluded:
  it is defined as the *first* reporter of a (location, type) record).
* **Threshold semantics** -- the ``A/B+C/D`` clauses fire iff the counts
  warrant, both at the `IncidentThresholds.triggered` level and end to
  end through a locator sweep, on the reference and fast paths alike.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.alert_tree import AlertTree
from repro.core.config import IncidentThresholds, SkyNetConfig
from repro.core.locator import Locator
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import LocationPath

# ---------------------------------------------------------------------------
# strategies

_LOCATIONS = [
    ("r1",),
    ("r1", "city-a"),
    ("r1", "city-a", "ls-1"),
    ("r1", "city-a", "ls-1", "site-1"),
    ("r1", "city-a", "ls-1", "site-1", "cl-1"),
    ("r1", "city-a", "ls-1", "site-2"),
    ("r2", "city-b"),
    ("r2", "city-b", "ls-2", "site-3"),
]

# a type key always carries one level (the alert_types tables), so the
# strategy fixes level per type -- otherwise record level would be
# first-reporter-defined, like `device`
_TYPES = [
    ("ping", "loss", AlertLevel.FAILURE),
    ("snmp", "link_down", AlertLevel.ABNORMAL),
    ("syslog", "bgp_flap", AlertLevel.ABNORMAL),
    ("oob", "dev_down", AlertLevel.ROOT_CAUSE),
]


@st.composite
def alerts(draw) -> StructuredAlert:
    loc = draw(st.sampled_from(_LOCATIONS))
    tool, name, level = draw(st.sampled_from(_TYPES))
    first = draw(st.floats(min_value=0.0, max_value=900.0))
    span = draw(st.floats(min_value=0.0, max_value=60.0))
    return StructuredAlert(
        type_key=AlertTypeKey(tool, name),
        level=level,
        location=LocationPath(loc),
        first_seen=first,
        last_seen=first + span,
        count=draw(st.integers(min_value=1, max_value=5)),
        metrics={"loss_rate": draw(st.floats(min_value=0.0, max_value=1.0))},
    )


def _state(tree: AlertTree, with_device: bool = True) -> Dict:
    """Canonical tree state for comparisons."""
    out = {}
    for loc in tree.locations():
        for rec in tree.records_at(loc):
            out[(loc.segments, rec.type_key)] = (
                rec.level,
                rec.first_seen,
                rec.last_seen,
                rec.count,
                rec.device if with_device else None,
                tuple(sorted(rec.worst_metrics.items())),
            )
    return out


# ---------------------------------------------------------------------------
# monotone expiry


@settings(max_examples=60, deadline=None)
@given(
    batch=st.lists(alerts(), min_size=1, max_size=40),
    times=st.lists(st.floats(min_value=0.0, max_value=3000.0), min_size=1,
                   max_size=6),
    timeout=st.floats(min_value=10.0, max_value=600.0),
)
def test_expiry_is_monotone_and_exact(batch, times, timeout):
    reference = AlertTree()
    fast = AlertTree(fast=True)
    for alert in batch:
        reference.insert(alert)
    fast.insert_batch(batch)

    previous_keys = None
    for now in sorted(times):
        reference.expire(now, timeout)
        fast.expire(now, timeout)
        ref_state = _state(reference)
        assert ref_state == _state(fast)
        # exactness: survivors are exactly the unexpired records
        for (_, _), (_, _, last_seen, _, _, _) in ref_state.items():
            assert not now > last_seen + timeout
        # monotonicity: no record ever reappears
        keys = set(ref_state)
        if previous_keys is not None:
            assert keys <= previous_keys
        previous_keys = keys


@settings(max_examples=40, deadline=None)
@given(
    batch=st.lists(alerts(), min_size=1, max_size=30),
    refresh_at=st.floats(min_value=100.0, max_value=500.0),
    timeout=st.floats(min_value=50.0, max_value=300.0),
)
def test_refreshed_records_survive_their_old_deadline(batch, refresh_at, timeout):
    """A record re-seen after its entry was heap-pushed must not expire on
    the stale entry's schedule (the lazy-heap re-check)."""
    fast = AlertTree(fast=True)
    reference = AlertTree()
    fast.insert_batch(batch)
    for alert in batch:
        reference.insert(alert)
    refreshed = [
        dataclasses.replace(a, first_seen=refresh_at, last_seen=refresh_at)
        for a in batch[::2]
    ]
    fast.insert_batch(refreshed)
    for alert in refreshed:
        reference.insert(alert)
    for now in (refresh_at + timeout, refresh_at + timeout + 1.0,
                refresh_at + 10 * timeout):
        reference.expire(now, timeout)
        fast.expire(now, timeout)
        assert _state(reference) == _state(fast)


# ---------------------------------------------------------------------------
# insert-order invariance


@settings(max_examples=60, deadline=None)
@given(
    batch=st.lists(alerts(), min_size=2, max_size=25),
    seed=st.randoms(use_true_random=False),
)
def test_tree_state_is_insert_order_invariant(batch, seed):
    shuffled = list(batch)
    seed.shuffle(shuffled)
    in_order = AlertTree()
    reordered = AlertTree(fast=True)
    for alert in batch:
        in_order.insert(alert)
    reordered.insert_batch(shuffled)
    # `device` is by definition the first reporter, so it is the one field
    # allowed to depend on arrival order
    assert _state(in_order, with_device=False) == _state(
        reordered, with_device=False
    )
    assert in_order.total_records() == reordered.total_records()


# ---------------------------------------------------------------------------
# A/B+C/D thresholds


@settings(max_examples=200, deadline=None)
@given(
    failure_types=st.integers(min_value=0, max_value=8),
    other_types=st.integers(min_value=0, max_value=8),
    a=st.integers(min_value=0, max_value=6),
    b=st.integers(min_value=0, max_value=6),
    c=st.integers(min_value=0, max_value=6),
    d=st.integers(min_value=0, max_value=10),
)
def test_triggered_matches_clause_semantics(failure_types, other_types, a, b, c, d):
    thresholds = IncidentThresholds(a, b, c, d)
    expected = (
        (a > 0 and failure_types >= a)
        or (b > 0 and c > 0 and failure_types >= b and other_types >= c)
        or (d > 0 and failure_types + other_types >= d)
    )
    assert thresholds.triggered(failure_types, other_types) is expected


_TOPO = build_topology(TopologySpec.tiny())
_CLUSTER = sorted(
    (loc for loc in _TOPO.locations() if loc.segments and len(loc.segments) >= 5),
    key=str,
)[0]


def _typed_alerts(failure_types: int, other_types: int) -> List[StructuredAlert]:
    out = []
    for i in range(failure_types):
        out.append(
            StructuredAlert(
                type_key=AlertTypeKey("ping", f"fail-{i}"),
                level=AlertLevel.FAILURE,
                location=_CLUSTER,
                first_seen=10.0,
                last_seen=10.0,
            )
        )
    for i in range(other_types):
        out.append(
            StructuredAlert(
                type_key=AlertTypeKey("snmp", f"other-{i}"),
                level=AlertLevel.ABNORMAL,
                location=_CLUSTER,
                first_seen=10.0,
                last_seen=10.0,
            )
        )
    return out


@settings(max_examples=80, deadline=None)
@given(
    failure_types=st.integers(min_value=0, max_value=7),
    other_types=st.integers(min_value=0, max_value=7),
    fast=st.booleans(),
)
def test_sweep_fires_iff_thresholds_warrant(failure_types, other_types, fast):
    """End to end: a single-location candidate group spawns an incident at
    a 2/1+2/5 sweep exactly when the distinct type counts warrant it."""
    config = SkyNetConfig(fast_path=fast)
    assert config.thresholds.label() == "2/1+2/5"
    locator = Locator(_TOPO, config)
    locator.feed_many(_typed_alerts(failure_types, other_types))
    result = locator.sweep(20.0)
    expected = config.thresholds.triggered(failure_types, other_types)
    assert bool(result.opened) is expected
    if expected:
        assert len(result.opened) == 1
        assert result.opened[0].location == _CLUSTER
