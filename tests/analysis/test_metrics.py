"""Tests for accuracy scoring and the percentile helper."""

import pytest

from repro.analysis.metrics import AccuracyReport, percentile, score_incidents
from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.incident import Incident, IncidentStatus
from repro.simulation import scenarios as sc
from repro.simulation.injector import FailureInjector
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import LocationPath


@pytest.fixture()
def setup():
    topo = build_topology(TopologySpec.tiny())
    state = NetworkState(topo)
    injector = FailureInjector(state)
    scenario = sc.known_device_failure(topo, start=100.0, duration=300.0)
    injector.inject(scenario)
    return topo, injector, scenario


def incident_at(location, start, end):
    incident = Incident(root=location, created_at=start, seed_nodes={})
    incident.add(
        StructuredAlert(
            type_key=AlertTypeKey("snmp", "link_down"),
            level=AlertLevel.ROOT_CAUSE,
            location=location,
            first_seen=start,
            last_seen=end,
        )
    )
    return incident


def test_true_positive_matched(setup):
    topo, injector, scenario = setup
    incident = incident_at(scenario.truth.scope, 120.0, 200.0)
    report = score_incidents([incident], injector)
    assert report.true_positive_incidents == [incident]
    assert report.false_positive_ratio == 0.0
    assert report.false_negative_ratio == 0.0


def test_false_positive_from_unrelated_incident(setup):
    topo, injector, scenario = setup
    elsewhere = incident_at(LocationPath(("nowhere",)), 120.0, 200.0)
    report = score_incidents([elsewhere], injector)
    assert report.false_positive_incidents == [elsewhere]
    assert report.false_positive_ratio == 1.0
    # the failure itself went undetected
    assert report.false_negative_ratio == 1.0


def test_false_negative_when_no_incident(setup):
    topo, injector, _ = setup
    report = score_incidents([], injector)
    assert report.missed_truths == injector.ground_truths
    assert report.false_negative_ratio == 1.0
    assert report.false_positive_ratio == 0.0


def test_wrong_time_does_not_match(setup):
    topo, injector, scenario = setup
    incident = incident_at(scenario.truth.scope, 5000.0, 5100.0)
    report = score_incidents([incident], injector)
    assert report.false_positive_incidents == [incident]


def test_superseded_incidents_excluded(setup):
    topo, injector, scenario = setup
    incident = incident_at(scenario.truth.scope, 120.0, 200.0)
    incident.close(300.0, IncidentStatus.SUPERSEDED)
    report = score_incidents([incident], injector)
    assert report.incident_count == 0


def test_non_impacting_truth_not_required(setup):
    topo, injector, scenario = setup
    import dataclasses

    injector._scenarios[0] = dataclasses.replace(
        injector._scenarios[0],
        truth=dataclasses.replace(scenario.truth, customer_impacting=False),
    )
    report = score_incidents([], injector, impacting_only=True)
    assert report.false_negative_ratio == 0.0


def test_summary_text(setup):
    topo, injector, scenario = setup
    incident = incident_at(scenario.truth.scope, 120.0, 200.0)
    text = score_incidents([incident], injector).summary()
    assert "FP=0" in text and "FN=0" in text


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        assert percentile([5, 1, 9], 0) == 1
        assert percentile([5, 1, 9], 100) == 9

    def test_single_value(self):
        assert percentile([7], 90) == 7

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)
