"""Tests for the campaign harness."""

import pytest

from repro.analysis.experiments import replay, run_campaign
from repro.analysis.metrics import score_incidents
from repro.core.config import SkyNetConfig
from repro.simulation import scenarios as sc
from repro.topology.builder import TopologySpec, build_topology


def test_campaign_produces_all_artifacts():
    result = run_campaign(300.0, n_random_failures=2, spec=TopologySpec.tiny(),
                          seed=3)
    assert result.raw_alerts
    assert len(result.injector.ground_truths) == 2
    assert result.skynet.preprocess_stats.raw_in == len(result.raw_alerts)


def test_campaign_with_explicit_scenarios():
    topo = build_topology(TopologySpec())
    scenario = sc.known_device_failure(topo, start=30.0)
    result = run_campaign(300.0, scenarios=[scenario], topology=topo, seed=4)
    assert result.injector.ground_truths == [scenario.truth]
    report = score_incidents(result.incidents, result.injector)
    assert report.false_negative_ratio == 0.0


def test_campaign_deterministic():
    a = run_campaign(240.0, n_random_failures=2, spec=TopologySpec.tiny(), seed=9)
    b = run_campaign(240.0, n_random_failures=2, spec=TopologySpec.tiny(), seed=9)
    assert len(a.raw_alerts) == len(b.raw_alerts)
    assert [i.root for i in a.incidents] == [i.root for i in b.incidents]


def test_campaign_source_subset():
    result = run_campaign(
        240.0, n_random_failures=1, spec=TopologySpec.tiny(),
        sources=["ping", "syslog"], seed=5,
    )
    assert {a.tool for a in result.raw_alerts} <= {"ping", "syslog"}


def test_replay_with_other_config():
    result = run_campaign(300.0, n_random_failures=2, spec=TopologySpec.tiny(),
                          seed=6)
    loose = SkyNetConfig().replace(
        thresholds=SkyNetConfig().thresholds.__class__(0, 0, 0, 1)
    )
    reports = replay(result, loose)
    # a 1-alert threshold can only produce at least as many incidents
    assert len(reports) >= len(result.reports)
