"""CLI contract: exit codes, output formats, rule listing."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.devtools.lint.cli import main

from .conftest import FIXTURES, REPO_ROOT


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Keep each CLI run's default result cache out of the repo tree."""
    monkeypatch.chdir(tmp_path)


def test_clean_tree_exits_zero(capsys):
    code = main([str(FIXTURES / "rep005_good.py")])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one(capsys):
    code = main([str(FIXTURES / "rep005_bad.py")])
    assert code == 1
    out = capsys.readouterr().out
    assert "REP005" in out


def test_bad_rule_id_exits_two(capsys):
    code = main(["--select", "NOPE", str(FIXTURES / "rep005_good.py")])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_json_format(capsys):
    code = main(["--format", "json", "--select", "REP007",
                 str(FIXTURES / "rep007_bad.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert all(f["rule_id"] == "REP007" for f in payload["findings"])


def test_select_limits_rules(capsys):
    code = main(["--select", "REP001", str(FIXTURES / "rep005_bad.py")])
    assert code == 0  # REP005 violations invisible to a REP001-only run


def test_list_rules(capsys):
    code = main(["--list-rules"])
    assert code == 0
    out = capsys.readouterr().out
    for n in range(1, 11):
        assert f"REP{n:03d}" in out


def test_module_entrypoint_runs(tmp_path):
    """``python -m repro.devtools.lint`` works as documented in README."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint",
         str(FIXTURES / "rep003_bad.py")],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )
    assert proc.returncode == 1
    assert "REP003" in proc.stdout
