"""Engine behaviour: discovery, waivers, selection, reports, registry."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.devtools.lint import (
    Finding,
    LintEngine,
    LintRule,
    SourceFile,
    UsageError,
    registered_rules,
)
from repro.devtools.lint.engine import PARSE_ERROR_RULE

from .conftest import FIXTURES


def test_registry_has_the_full_battery():
    ids = [cls.rule_id for cls in registered_rules()]
    assert ids == sorted(ids)
    assert ids == [f"REP{n:03d}" for n in range(1, 20)]
    project_only = [
        cls.rule_id for cls in registered_rules() if cls.project_only
    ]
    assert project_only == [
        "REP012", "REP013", "REP014", "REP015", "REP017", "REP018", "REP019",
    ]


def test_discover_dedupes_and_sorts(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.py").write_text("y = 2\n")
    files = LintEngine.discover([tmp_path, tmp_path / "a.py"])
    assert [f.name for f in files] == ["a.py", "b.py"]


def test_discover_missing_path_is_usage_error():
    with pytest.raises(UsageError):
        LintEngine.discover(["no/such/path.py"])


def test_unknown_rule_id_is_usage_error():
    with pytest.raises(UsageError):
        LintEngine(select=["REP999"])
    with pytest.raises(UsageError):
        LintEngine(ignore=["NOPE"])
    with pytest.raises(UsageError):
        LintEngine(rule_options={"REP999": {}})


def test_unknown_rule_option_is_usage_error():
    with pytest.raises(UsageError):
        LintEngine(rule_options={"REP003": {"tyop": 1}})


def test_line_waiver_suppresses_finding():
    report = LintEngine(select=["REP003"]).run([FIXTURES / "waiver_line.py"])
    assert report.ok, report.render_text()


def test_skip_file_suppresses_everything():
    report = LintEngine().run([FIXTURES / "skipfile.py"])
    assert report.ok, report.render_text()


def test_parse_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = LintEngine().run([bad])
    assert not report.ok
    assert report.findings[0].rule_id == PARSE_ERROR_RULE
    assert "syntax error" in report.findings[0].message


def test_ignore_disables_a_rule():
    engine = LintEngine(ignore=["REP003"])
    report = engine.run([FIXTURES / "rep003_bad.py"])
    assert "REP003" not in report.rules_run
    assert not [f for f in report.findings if f.rule_id == "REP003"]


def test_json_report_round_trips():
    report = LintEngine(select=["REP005"]).run([FIXTURES / "rep005_bad.py"])
    payload = json.loads(report.to_json())
    assert payload["ok"] is False
    assert payload["rules_run"] == ["REP005"]
    assert len(payload["findings"]) == 4
    first = payload["findings"][0]
    assert {"path", "line", "col", "rule_id", "message"} <= set(first)


def test_text_report_has_summary_line():
    report = LintEngine(select=["REP005"]).run([FIXTURES / "rep005_good.py"])
    assert report.render_text().startswith("0 findings")


def test_findings_sorted_by_location():
    report = LintEngine().run([FIXTURES / "rep004_bad.py"])
    keys = [(f.path, f.line, f.col) for f in report.findings]
    assert keys == sorted(keys)


def test_module_name_derivation():
    src = SourceFile(
        pathlib.Path("src/repro/core/config.py").resolve()
    )
    assert src.module == "repro.core.config"
    standalone = SourceFile(FIXTURES / "rep001_bad.py")
    assert standalone.module is None


def test_custom_rule_instances_can_be_injected():
    class AlwaysFires(LintRule):
        rule_id = "REP999"
        title = "test rule"
        paper_ref = "-"

        def check_file(self, source: SourceFile):
            yield source.finding(self.rule_id, source.tree, "hello")

    engine = LintEngine(rules=[AlwaysFires()])
    report = engine.run([FIXTURES / "rep005_good.py"])
    assert [f.message for f in report.findings] == ["hello"]
    assert isinstance(report.findings[0], Finding)
