"""Per-rule fixture tests: every rule fires on its negative fixture and
stays silent on its positive one."""

from __future__ import annotations

import pytest

from repro.devtools.lint import LintEngine, UsageError

from .conftest import FIXTURES, run_project_rule, run_rule

#: rule id -> (bad fixture, expected finding count, good fixture)
FILE_RULE_CASES = {
    "REP001": ("rep001_bad.py", 4, "rep001_good.py"),
    "REP002": ("rep002_bad.py", 2, "rep002_good.py"),
    "REP003": ("rep003_bad.py", 4, "rep003_good.py"),
    "REP004": ("rep004_bad.py", 5, "rep004_good.py"),
    "REP005": ("rep005_bad.py", 4, "rep005_good.py"),
    "REP007": ("rep007_bad.py", 3, "rep007_good.py"),
    "REP008": ("rep008_bad.py", 3, "rep008_good.py"),
    "REP011": ("rep011_bad.py", 4, "rep011_good.py"),
    "REP016": ("rep016_bad.py", 5, "rep016_good.py"),
}


@pytest.mark.parametrize("rule_id", sorted(FILE_RULE_CASES))
def test_rule_fires_on_bad_fixture(rule_id):
    bad, expected, _ = FILE_RULE_CASES[rule_id]
    findings = run_rule(rule_id, FIXTURES / bad)
    assert len(findings) == expected, "\n".join(f.render() for f in findings)
    assert all(f.rule_id == rule_id for f in findings)


@pytest.mark.parametrize("rule_id", sorted(FILE_RULE_CASES))
def test_rule_silent_on_good_fixture(rule_id):
    _, _, good = FILE_RULE_CASES[rule_id]
    findings = run_rule(rule_id, FIXTURES / good)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_rep006_fires_on_bad_project():
    findings = run_rule("REP006", FIXTURES / "rep006_bad_proj")
    messages = [f.message for f in findings]
    assert len(findings) == 4, "\n".join(messages)
    assert any("does not declare" in m for m in messages)
    assert any("mystery_probes" in m for m in messages)
    assert sum("not registered" in m for m in messages) == 2


def test_rep006_silent_on_good_project():
    findings = run_rule("REP006", FIXTURES / "rep006_good_proj")
    assert findings == [], "\n".join(f.render() for f in findings)


def test_rep009_fires_on_bad_project():
    findings = run_rule("REP009", FIXTURES / "rep009_bad_proj")
    messages = [f.message for f in findings]
    assert len(findings) == 4, "\n".join(messages)
    assert any("SPORADIC_TYPES" in m and "high_latency" in m for m in messages)
    assert any("monitor emits" in m and "link_dwon" in m for m in messages)
    assert any(m.startswith("level_of") for m in messages)
    assert any("latency_spike" in m for m in messages)


def test_rep009_silent_on_good_project():
    findings = run_rule("REP009", FIXTURES / "rep009_good_proj")
    assert findings == [], "\n".join(f.render() for f in findings)


def test_rep010_fires_on_bad_project():
    findings = run_rule("REP010", FIXTURES / "rep010_bad_proj")
    messages = [f.message for f in findings]
    assert len(findings) == 4, "\n".join(messages)
    assert any("period_s=5" in m and "SlowPingMonitor" in m for m in messages)
    assert any("no TABLE2_CADENCE entry" in m and "UnchartedMonitor" in m
               for m in messages)
    assert any("MAX_OLD_DEVICE_DELAY_S = 90" in m for m in messages)
    assert any("no matching *_DELAY_S constant" in m for m in messages)


def test_rep010_silent_on_good_project():
    findings = run_rule("REP010", FIXTURES / "rep010_good_proj")
    assert findings == [], "\n".join(f.render() for f in findings)


#: whole-program rule -> (bad fixture dir, expected count, good fixture dir)
PROJECT_RULE_CASES = {
    "REP012": ("rep012_bad_proj", 2, "rep012_good_proj"),
    "REP013": ("rep013_bad_proj", 3, "rep013_good_proj"),
    "REP014": ("rep014_bad_proj", 3, "rep014_good_proj"),
    "REP015": ("rep015_bad_proj", 7, "rep015_good_proj"),
    "REP017": ("rep017_bad_proj", 4, "rep017_good_proj"),
    "REP018": ("rep018_bad_proj", 4, "rep018_good_proj"),
    "REP019": ("rep019_bad_proj", 5, "rep019_good_proj"),
}


@pytest.mark.parametrize("rule_id", sorted(PROJECT_RULE_CASES))
def test_project_rule_fires_on_bad_fixture(rule_id):
    bad, expected, _ = PROJECT_RULE_CASES[rule_id]
    findings = run_project_rule(rule_id, FIXTURES / bad)
    assert len(findings) == expected, "\n".join(f.render() for f in findings)
    assert all(f.rule_id == rule_id for f in findings)


@pytest.mark.parametrize("rule_id", sorted(PROJECT_RULE_CASES))
def test_project_rule_silent_on_good_fixture(rule_id):
    _, _, good = PROJECT_RULE_CASES[rule_id]
    findings = run_project_rule(rule_id, FIXTURES / good)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_rep012_reports_both_directions():
    findings = run_project_rule("REP012", FIXTURES / "rep012_bad_proj")
    messages = [f.message for f in findings]
    assert any("core may not import viz" in m for m in messages)
    assert any("forbidden package repro.tests" in m for m in messages)
    # the illegal import goes through viz/__init__'s re-export, yet the
    # package edge and its via edge report once, not twice
    assert sum("core may not import viz" in m for m in messages) == 1


def test_rep013_reports_at_source_with_witness():
    findings = run_project_rule("REP013", FIXTURES / "rep013_bad_proj")
    clock = [f for f in findings if f.path.endswith("clocks.py")]
    assert len(clock) == 1
    assert "time.time" in clock[0].message
    assert "flows into attribute .created_at" in clock[0].message
    assert "stamp" in clock[0].message  # the cross-function witness
    order = [f for f in findings if "set-order" in f.message]
    assert len(order) == 1
    assert ".incident_id" in order[0].message
    persist = [f for f in findings if f.path.endswith("persist.py")]
    assert len(persist) == 1
    assert "checkpoint write" in persist[0].message


def test_rep014_findings_name_the_entry_point():
    findings = run_project_rule("REP014", FIXTURES / "rep014_bad_proj")
    messages = [f.message for f in findings]
    assert any("mutable global SEEN" in m for m in messages)
    assert any("class attribute ShardedAlertTree.pending" in m
               for m in messages)
    assert any("written after construction" in m for m in messages)
    assert all("[entry " in m and "ShardedLocator" in m for m in messages)


def test_rep015_covers_all_drift_directions():
    findings = run_project_rule("REP015", FIXTURES / "rep015_bad_proj")
    messages = [f.message for f in findings]
    assert any("never read" in m and "dead_knob" in m for m in messages)
    assert any("--ghost" in m and "never read" in m for m in messages)
    assert any("--mystery" in m and "no config field" in m for m in messages)
    assert any("--chaos-fog" in m and "ChaosPlan" in m for m in messages)
    assert sum("cannot be set from the runtime CLI" in m for m in messages) == 2
    assert any("outages" in m and "--chaos-*" in m for m in messages)


def test_rep017_covers_all_asymmetry_directions():
    findings = run_project_rule("REP017", FIXTURES / "rep017_bad_proj")
    messages = [f.message for f in findings]
    assert any("'orphaned'" in m and "never read" in m for m in messages)
    assert any(
        "'heap'" in m and "version-gated" in m and "unguarded" in m
        for m in messages
    )
    assert any(
        "'epoch'" in m and "never writes" in m and "KeyError" in m
        for m in messages
    )
    # both class-method pairs and module-level pairs are analyzed
    assert any("Sequencer.state_dict" in m for m in messages)
    assert any("pipeline_state_dict" in m for m in messages)


def test_rep017_catches_seeded_missing_key(tmp_path):
    """Mutating the clean fixture to drop one written key flips the pair
    from silent to a hard missing-key finding -- the rule is load-bearing,
    not vacuously green."""
    import shutil

    shutil.copytree(FIXTURES / "rep017_good_proj", tmp_path / "proj")
    target = tmp_path / "proj" / "repro" / "runtime" / "checkpoint.py"
    text = target.read_text()
    seeded = text.replace('"watermarks": dict(self.watermarks),\n', "")
    assert seeded != text, "mutation site vanished from the fixture"
    target.write_text(seeded)
    findings = run_project_rule("REP017", tmp_path / "proj")
    assert any(
        "'watermarks'" in f.message and "never writes" in f.message
        for f in findings
    ), "\n".join(f.render() for f in findings)


def test_rep018_covers_all_drift_kinds():
    findings = run_project_rule("REP018", FIXTURES / "rep018_bad_proj")
    messages = [f.message for f in findings]
    assert any("dead metric" in m and "runtime_dead_rows_total" in m
               for m in messages)
    assert any("one name, one kind" in m and "runtime_sweeps_total" in m
               for m in messages)
    assert any("updated with .set()" in m and "counters support .inc()" in m
               for m in messages)
    assert any("stale name" in m and "runtime_ghost_rows_total" in m
               for m in messages)
    # the doc finding points into the doc file, not a python module
    doc = [f for f in findings if "stale name" in f.message]
    assert doc and doc[0].path.endswith("README.md")


def test_rep019_distinguishes_normal_and_exception_leaks():
    findings = run_project_rule("REP019", FIXTURES / "rep019_bad_proj")
    messages = [f.message for f in findings]
    assert sum("early return/branch" in m for m in messages) == 3
    assert sum("exception unwinds" in m for m in messages) == 2
    # every resource kind in the fixture is spotted
    for token in ("file 'fh'", "socket 'sock'", "pipe 'recv_end'",
                  "process 'proc'"):
        assert any(token in m for m in messages), token


def test_rep013_supersedes_rep004_at_the_same_site():
    tree = FIXTURES / "rep013_bad_proj"
    alone = LintEngine(select=["REP004"]).run([tree])
    rep004_sites = {
        (f.path, f.line) for f in alone.findings if f.path.endswith("clocks.py")
    }
    assert rep004_sites, "REP004 should flag the raw time.time() call"
    both = LintEngine(select=["REP004", "REP013"], project_mode=True).run([tree])
    for path, line in rep004_sites:
        at_site = [
            f for f in both.findings if f.path == path and f.line == line
        ]
        assert [f.rule_id for f in at_site] == ["REP013"], at_site


def test_project_rule_selection_requires_project_mode():
    with pytest.raises(UsageError):
        LintEngine(select=["REP013"])


def test_rep003_options_override():
    # with a different constant set, 300/900 are no longer special
    engine = LintEngine(
        select=["REP003"],
        rule_options={"REP003": {"timeout_constants": (1234,)}},
    )
    report = engine.run([FIXTURES / "rep003_bad.py"])
    # the threshold-spec string is still flagged; the numerics are not
    assert len(report.findings) == 1
    assert "2/1+2/5" in report.findings[0].message


def test_rep001_messages_point_at_the_enum():
    findings = run_rule("REP001", FIXTURES / "rep001_bad.py")
    assert any("AlertLevel.FAILURE" in f.message for f in findings)


def test_findings_carry_location():
    findings = run_rule("REP005", FIXTURES / "rep005_bad.py")
    assert all(f.line > 0 and f.col > 0 for f in findings)
    assert all(str(FIXTURES / "rep005_bad.py") in f.path or
               f.path.endswith("rep005_bad.py") for f in findings)
