"""Per-rule fixture tests: every rule fires on its negative fixture and
stays silent on its positive one."""

from __future__ import annotations

import pytest

from repro.devtools.lint import LintEngine

from .conftest import FIXTURES, run_rule

#: rule id -> (bad fixture, expected finding count, good fixture)
FILE_RULE_CASES = {
    "REP001": ("rep001_bad.py", 4, "rep001_good.py"),
    "REP002": ("rep002_bad.py", 2, "rep002_good.py"),
    "REP003": ("rep003_bad.py", 4, "rep003_good.py"),
    "REP004": ("rep004_bad.py", 5, "rep004_good.py"),
    "REP005": ("rep005_bad.py", 4, "rep005_good.py"),
    "REP007": ("rep007_bad.py", 3, "rep007_good.py"),
    "REP008": ("rep008_bad.py", 3, "rep008_good.py"),
    "REP011": ("rep011_bad.py", 4, "rep011_good.py"),
}


@pytest.mark.parametrize("rule_id", sorted(FILE_RULE_CASES))
def test_rule_fires_on_bad_fixture(rule_id):
    bad, expected, _ = FILE_RULE_CASES[rule_id]
    findings = run_rule(rule_id, FIXTURES / bad)
    assert len(findings) == expected, "\n".join(f.render() for f in findings)
    assert all(f.rule_id == rule_id for f in findings)


@pytest.mark.parametrize("rule_id", sorted(FILE_RULE_CASES))
def test_rule_silent_on_good_fixture(rule_id):
    _, _, good = FILE_RULE_CASES[rule_id]
    findings = run_rule(rule_id, FIXTURES / good)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_rep006_fires_on_bad_project():
    findings = run_rule("REP006", FIXTURES / "rep006_bad_proj")
    messages = [f.message for f in findings]
    assert len(findings) == 4, "\n".join(messages)
    assert any("does not declare" in m for m in messages)
    assert any("mystery_probes" in m for m in messages)
    assert sum("not registered" in m for m in messages) == 2


def test_rep006_silent_on_good_project():
    findings = run_rule("REP006", FIXTURES / "rep006_good_proj")
    assert findings == [], "\n".join(f.render() for f in findings)


def test_rep009_fires_on_bad_project():
    findings = run_rule("REP009", FIXTURES / "rep009_bad_proj")
    messages = [f.message for f in findings]
    assert len(findings) == 4, "\n".join(messages)
    assert any("SPORADIC_TYPES" in m and "high_latency" in m for m in messages)
    assert any("monitor emits" in m and "link_dwon" in m for m in messages)
    assert any(m.startswith("level_of") for m in messages)
    assert any("latency_spike" in m for m in messages)


def test_rep009_silent_on_good_project():
    findings = run_rule("REP009", FIXTURES / "rep009_good_proj")
    assert findings == [], "\n".join(f.render() for f in findings)


def test_rep010_fires_on_bad_project():
    findings = run_rule("REP010", FIXTURES / "rep010_bad_proj")
    messages = [f.message for f in findings]
    assert len(findings) == 4, "\n".join(messages)
    assert any("period_s=5" in m and "SlowPingMonitor" in m for m in messages)
    assert any("no TABLE2_CADENCE entry" in m and "UnchartedMonitor" in m
               for m in messages)
    assert any("MAX_OLD_DEVICE_DELAY_S = 90" in m for m in messages)
    assert any("no matching *_DELAY_S constant" in m for m in messages)


def test_rep010_silent_on_good_project():
    findings = run_rule("REP010", FIXTURES / "rep010_good_proj")
    assert findings == [], "\n".join(f.render() for f in findings)


def test_rep003_options_override():
    # with a different constant set, 300/900 are no longer special
    engine = LintEngine(
        select=["REP003"],
        rule_options={"REP003": {"timeout_constants": (1234,)}},
    )
    report = engine.run([FIXTURES / "rep003_bad.py"])
    # the threshold-spec string is still flagged; the numerics are not
    assert len(report.findings) == 1
    assert "2/1+2/5" in report.findings[0].message


def test_rep001_messages_point_at_the_enum():
    findings = run_rule("REP001", FIXTURES / "rep001_bad.py")
    assert any("AlertLevel.FAILURE" in f.message for f in findings)


def test_findings_carry_location():
    findings = run_rule("REP005", FIXTURES / "rep005_bad.py")
    assert all(f.line > 0 and f.col > 0 for f in findings)
    assert all(str(FIXTURES / "rep005_bad.py") in f.path or
               f.path.endswith("rep005_bad.py") for f in findings)
