"""Units for the whole-program analysis layer: import graph, call graph."""

from __future__ import annotations

import pathlib

from repro.devtools.lint import LintEngine, SourceFile
from repro.devtools.lint.engine import Project


def build_project(tmp_path: pathlib.Path, files: dict) -> Project:
    """Materialise ``{relative path: source}`` and wrap it in a Project."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    sources = [SourceFile(p) for p in LintEngine.discover([tmp_path])]
    return Project(sources)


# -- import graph -----------------------------------------------------------


def test_relative_imports_resolve_to_modules(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from .b import helper\n",
        "pkg/b.py": "def helper():\n    return 1\n",
    })
    graph = project.analysis.imports
    assert graph.imports_of("pkg.a") == {"pkg.b"}
    assert graph.importers_of("pkg.b") == {"pkg.a"}


def test_parent_relative_import_resolves(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/base.py": "X = 1\n",
        "pkg/sub/__init__.py": "",
        "pkg/sub/deep.py": "from ..base import X\n",
    })
    graph = project.analysis.imports
    assert graph.imports_of("pkg.sub.deep") == {"pkg.base"}


def test_init_reexport_resolves_to_the_defining_module(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "from .impl import Thing\n",
        "pkg/impl.py": "class Thing:\n    pass\n",
        "user.py": "from pkg import Thing\n",
    })
    graph = project.analysis.imports
    records = [r for r in graph.records if r.raw == "from pkg import Thing"]
    targets = {(r.target, r.via) for r in records}
    # the written edge lands on the package, the via edge on the definer
    assert ("pkg", None) in targets
    assert ("pkg.impl", "pkg") in targets


def test_from_pkg_import_submodule_edges_to_the_submodule(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/mod.py": "Y = 2\n",
        "user.py": "from pkg import mod\n",
    })
    graph = project.analysis.imports
    assert any(r.target == "pkg.mod" for r in graph.records)


def test_cycles_finds_the_scc(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from . import b\n",
        "pkg/b.py": "from . import a\n",
        "pkg/solo.py": "Z = 3\n",
    })
    assert project.analysis.imports.cycles() == [["pkg.a", "pkg.b"]]


def test_dependency_and_dependent_closures(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from .b import f\n",
        "pkg/b.py": "from .c import g\n\n\ndef f():\n    return g()\n",
        "pkg/c.py": "def g():\n    return 1\n",
        "pkg/other.py": "W = 4\n",
    })
    graph = project.analysis.imports
    assert graph.dependency_closure(["pkg.a"]) == {"pkg.a", "pkg.b", "pkg.c"}
    assert graph.dependent_closure(["pkg.c"]) == {"pkg.a", "pkg.b", "pkg.c"}


def test_external_imports_grow_no_edges(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "import json\nfrom os import path\n",
    })
    graph = project.analysis.imports
    assert graph.imports_of("pkg.a") == set()
    assert graph.external["pkg.a"] == {"json": "json", "path": "os.path"}


# -- call graph -------------------------------------------------------------


def test_imported_function_call_is_an_exact_edge(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from .b import helper\n\n\ndef run():\n"
                    "    return helper()\n",
        "pkg/b.py": "def helper():\n    return 1\n",
    })
    edges = project.analysis.callgraph.edges
    exact = [(e.caller, e.callee) for e in edges if e.exact]
    assert ("pkg.a:run", "pkg.b:helper") in exact


def test_constructor_call_edges_to_init(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from .b import Box\n\n\ndef make():\n"
                    "    return Box()\n",
        "pkg/b.py": "class Box:\n    def __init__(self):\n"
                    "        self.items = []\n",
    })
    edges = project.analysis.callgraph.edges
    assert any(
        e.caller == "pkg.a:make" and e.callee == "pkg.b:Box.__init__"
        for e in edges
    )


def test_attribute_call_overapproximates_by_method_name(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "def drive(sink):\n    sink.flush()\n",
        "pkg/b.py": "class Sink:\n    def flush(self):\n        return 0\n",
    })
    edges = project.analysis.callgraph.edges
    inexact = [
        (e.caller, e.callee) for e in edges if not e.exact
    ]
    assert ("pkg.a:drive", "pkg.b:Sink.flush") in inexact


def test_module_body_calls_get_a_pseudo_caller(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from .b import helper\n\nSINGLETON = helper()\n",
        "pkg/b.py": "def helper():\n    return {}\n",
    })
    edges = project.analysis.callgraph.edges
    assert any(
        e.caller == "module-body:pkg.a" and e.callee == "pkg.b:helper"
        for e in edges
    )


def test_reachable_returns_witness_chains(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from .b import middle\n\n\ndef entry():\n"
                    "    return middle()\n",
        "pkg/b.py": "from .c import leaf\n\n\ndef middle():\n"
                    "    return leaf()\n",
        "pkg/c.py": "def leaf():\n    return 1\n\n\ndef unreached():\n"
                    "    return 2\n",
    })
    graph = project.analysis.callgraph
    reach = graph.reachable(["pkg.a:entry"])
    assert reach["pkg.c:leaf"] == ["pkg.a:entry", "pkg.b:middle", "pkg.c:leaf"]
    assert "pkg.c:unreached" not in reach


def test_match_functions_globs_module_and_qualname(tmp_path):
    project = build_project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/service.py": "class Service:\n"
                          "    def start(self):\n        return 1\n"
                          "    def stop(self):\n        return 2\n",
        "pkg/other.py": "def start():\n    return 3\n",
    })
    graph = project.analysis.callgraph
    assert graph.match_functions(["*service:Service.*"]) == [
        "pkg.service:Service.start",
        "pkg.service:Service.stop",
    ]
    assert graph.match_functions(["start"]) == ["pkg.other:start"]
