"""Integration: the repository itself satisfies its own lint battery."""

from __future__ import annotations

import re
import sys

from repro.devtools.lint import LintEngine, registered_rules

from .conftest import REPO_ROOT


def test_repo_is_lint_clean():
    report = LintEngine().run([REPO_ROOT / "src"])
    assert report.ok, "\n" + report.render_text()


def test_repo_is_project_lint_clean():
    """The whole-program battery (REP012-REP015) passes over src/repro."""
    report = LintEngine(project_mode=True).run([REPO_ROOT / "src"])
    assert report.ok, "\n" + report.render_text()


def test_every_rule_ran_on_the_repo():
    report = LintEngine().run([REPO_ROOT / "src"])
    assert report.rules_run == [
        cls.rule_id for cls in registered_rules() if not cls.project_only
    ]
    assert report.files_checked > 60


def test_every_rule_ran_in_project_mode():
    report = LintEngine(project_mode=True).run([REPO_ROOT / "src"])
    assert report.rules_run == [cls.rule_id for cls in registered_rules()]


def test_readme_catalogue_lists_every_rule():
    """The README "Development" rule table must stay in sync with the code."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for cls in registered_rules():
        assert re.search(rf"\b{cls.rule_id}\b", readme), (
            f"{cls.rule_id} missing from the README rule catalogue"
        )


def test_rules_declare_metadata():
    for cls in registered_rules():
        assert cls.title, cls.rule_id
        assert cls.paper_ref, cls.rule_id
        assert sys.modules[cls.__module__].__doc__, cls.rule_id
