"""The skynet-lint result cache: hits, invalidation, equivalence,
corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.devtools.lint import LintEngine, run_with_cache
from repro.devtools.lint import cache as cache_mod

CLEAN = '''"""Clean module."""


def tidy(values=None):
    return values or []
'''

DIRTY = '''"""Module with a REP005 violation."""


def leaky(values=[]):
    return values
'''


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "a.py").write_text(CLEAN)
    (tmp_path / "b.py").write_text(DIRTY)
    return tmp_path


def _engine():
    return LintEngine(select=["REP005", "REP006"])  # one file rule, one project rule


def _cached_run(tree, cache_file):
    return run_with_cache(_engine(), [tree], cache_file)


def test_cached_report_equals_uncached(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    uncached = _engine().run([tree])
    cold = _cached_run(tree, cache_file)
    warm = _cached_run(tree, cache_file)
    for report in (cold, warm):
        assert report.findings == uncached.findings
        assert report.files_checked == uncached.files_checked
        assert report.rules_run == uncached.rules_run
    assert len(uncached.findings) == 1
    assert uncached.findings[0].rule_id == "REP005"


def test_full_hit_skips_parsing(tree, tmp_path, monkeypatch):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)

    def bomb(*args, **kwargs):
        raise AssertionError("SourceFile constructed on a full cache hit")

    monkeypatch.setattr(cache_mod, "SourceFile", bomb)
    warm = _cached_run(tree, cache_file)
    assert len(warm.findings) == 1


def test_edit_invalidates_only_that_file(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)
    # fix the violation; pad so size changes even under coarse mtime
    (tree / "b.py").write_text(CLEAN + "\n# fixed\n")
    warm = _cached_run(tree, cache_file)
    assert warm.findings == []
    assert _engine().run([tree]).findings == []


def test_new_file_invalidates_project_scope(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)
    (tree / "c.py").write_text(DIRTY.replace("leaky", "leakier"))
    warm = _cached_run(tree, cache_file)
    assert len(warm.findings) == 2
    assert sorted(f.path for f in warm.findings) == [
        (tree / "b.py").as_posix(),
        (tree / "c.py").as_posix(),
    ]


def test_ruleset_change_invalidates(tree, tmp_path, monkeypatch):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)

    def bomb(*args, **kwargs):
        raise RuntimeError("re-parse attempted")

    monkeypatch.setattr(cache_mod, "SourceFile", bomb)
    # same rules: full hit, no parsing
    _cached_run(tree, cache_file)
    # different rule selection: fingerprint differs, must re-run cold
    with pytest.raises(RuntimeError):
        run_with_cache(LintEngine(select=["REP005"]), [tree], cache_file)


def test_corrupt_cache_is_rebuilt(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)
    cache_file.write_text("{not json!")
    report = _cached_run(tree, cache_file)
    assert len(report.findings) == 1
    # and the rebuilt cache is valid again
    assert json.loads(cache_file.read_text())["version"] == cache_mod._CACHE_VERSION


def test_wrong_schema_cache_is_rebuilt(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)
    payload = json.loads(cache_file.read_text())
    payload["files"] = {"x": {"stat": "not-a-list"}}
    cache_file.write_text(json.dumps(payload))
    report = _cached_run(tree, cache_file)
    assert len(report.findings) == 1


@pytest.fixture
def monitor_tree(tmp_path):
    """A registry-clean monitors package plus one unrelated module."""
    pkg = tmp_path / "monitors"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "base.py").write_text(
        "class Monitor:\n    pass\n"
    )
    (pkg / "ping.py").write_text(
        'from .base import Monitor\n\n\n'
        'class PingMonitor(Monitor):\n    name = "ping"\n'
    )
    (pkg / "registry.py").write_text(
        'from .ping import PingMonitor\n\n'
        'DATA_SOURCES = {"ping": "active probing"}\n'
        'MONITOR_CLASSES = {"ping": PingMonitor}\n'
    )
    (tmp_path / "unrelated.py").write_text(CLEAN)
    return tmp_path


def test_project_rule_cache_is_keyed_on_its_closure(
    monitor_tree, tmp_path, monkeypatch
):
    """REP006's cached verdict survives edits outside its dependency
    closure and is invalidated by edits inside it."""
    from repro.devtools.lint.rules.rep006_monitor_registry import (
        MonitorRegistryRule,
    )

    cache_file = tmp_path / "closure-cache.json"
    cold = _cached_run(monitor_tree, cache_file)
    assert cold.findings == []

    def bomb(self, project):
        raise AssertionError("REP006 re-ran without a closure change")

    monkeypatch.setattr(MonitorRegistryRule, "check_project", bomb)

    # an edit outside the closure re-lints that file but reuses REP006
    (monitor_tree / "unrelated.py").write_text(CLEAN + "\n# edited\n")
    warm = _cached_run(monitor_tree, cache_file)
    assert warm.findings == []

    # an edit inside the closure must re-run the project rule
    ping = monitor_tree / "monitors" / "ping.py"
    ping.write_text(ping.read_text() + "\n# closure edit\n")
    with pytest.raises(AssertionError, match="closure change"):
        _cached_run(monitor_tree, cache_file)


def test_cli_cache_flags(tree, tmp_path, capsys):
    from repro.devtools.lint.cli import main

    cache_file = tmp_path / "cli-cache.json"
    argv = [str(tree), "--cache-file", str(cache_file)]
    assert main(argv) == 1
    assert cache_file.exists()
    assert main(argv) == 1  # warm run, same verdict
    cache_file.unlink()
    assert main(argv + ["--no-cache"]) == 1
    assert not cache_file.exists()  # --no-cache neither reads nor writes
    capsys.readouterr()


@pytest.mark.parametrize(
    "bad_path",
    [
        ".",  # a directory with no usable file name
        "somedir",  # an existing directory
        "no/such/dir/cache.json",  # parent does not exist
    ],
)
def test_unusable_cache_file_degrades_to_no_cache(
    tree, tmp_path, capsys, monkeypatch, bad_path
):
    """A bad --cache-file is a warning plus a cold run, never a traceback
    (``--cache-file .`` used to raise an unhandled ValueError)."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "somedir").mkdir()
    report = run_with_cache(_engine(), [tree], bad_path)
    assert len(report.findings) == 1  # same verdict as engine.run
    err = capsys.readouterr().err
    assert "warning" in err and "without a cache" in err


def test_unusable_cache_file_cli_exit_codes(tree, tmp_path, capsys):
    from repro.devtools.lint.cli import main

    assert main([str(tree), "--cache-file", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "is a directory" in err


def test_unwritable_parent_degrades(tree, tmp_path, capsys):
    import os

    locked = tmp_path / "locked"
    locked.mkdir()
    locked.chmod(0o500)
    try:
        if os.access(locked, os.W_OK):  # running as root: cannot simulate
            pytest.skip("permissions not enforced for this user")
        report = run_with_cache(_engine(), [tree], locked / "cache.json")
        assert len(report.findings) == 1
        assert "not writable" in capsys.readouterr().err
    finally:
        locked.chmod(0o700)


WAIVED = '''"""Module with a waived REP005 violation."""


def leaky(values=[]):  # lint: allow REP005
    return values
'''


def test_suppressed_findings_survive_cache_revival(tmp_path):
    """Waived findings are cached and revived so SARIF suppressions do
    not vanish on warm runs."""
    (tmp_path / "w.py").write_text(WAIVED)
    cache_file = tmp_path / "cache.json"
    cold = run_with_cache(_engine(), [tmp_path], cache_file)
    warm = run_with_cache(_engine(), [tmp_path], cache_file)
    uncached = _engine().run([tmp_path])
    assert uncached.findings == []
    assert len(uncached.suppressed) == 1
    assert uncached.suppressed[0].rule_id == "REP005"
    for report in (cold, warm):
        assert report.findings == uncached.findings
        assert report.suppressed == uncached.suppressed


def test_sarif_output_marks_waivers_as_suppressions(tmp_path):
    from repro.devtools.lint.sarif import report_to_sarif

    (tmp_path / "w.py").write_text(WAIVED)
    (tmp_path / "b.py").write_text(DIRTY)
    report = _engine().run([tmp_path])
    log = report_to_sarif(report)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert "REP005" in rule_ids and "REP006" in rule_ids
    by_supp = {
        res["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]:
        "suppressions" in res
        for res in run["results"]
    }
    assert len(by_supp) == 2
    assert by_supp[(tmp_path / "w.py").as_posix()] is True
    assert by_supp[(tmp_path / "b.py").as_posix()] is False
    for res in run["results"]:
        region = res["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        idx = res["ruleIndex"]
        assert run["tool"]["driver"]["rules"][idx]["id"] == res["ruleId"]
