"""The skynet-lint result cache: hits, invalidation, equivalence,
corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.devtools.lint import LintEngine, run_with_cache
from repro.devtools.lint import cache as cache_mod

CLEAN = '''"""Clean module."""


def tidy(values=None):
    return values or []
'''

DIRTY = '''"""Module with a REP005 violation."""


def leaky(values=[]):
    return values
'''


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "a.py").write_text(CLEAN)
    (tmp_path / "b.py").write_text(DIRTY)
    return tmp_path


def _engine():
    return LintEngine(select=["REP005", "REP006"])  # one file rule, one project rule


def _cached_run(tree, cache_file):
    return run_with_cache(_engine(), [tree], cache_file)


def test_cached_report_equals_uncached(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    uncached = _engine().run([tree])
    cold = _cached_run(tree, cache_file)
    warm = _cached_run(tree, cache_file)
    for report in (cold, warm):
        assert report.findings == uncached.findings
        assert report.files_checked == uncached.files_checked
        assert report.rules_run == uncached.rules_run
    assert len(uncached.findings) == 1
    assert uncached.findings[0].rule_id == "REP005"


def test_full_hit_skips_parsing(tree, tmp_path, monkeypatch):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)

    def bomb(*args, **kwargs):
        raise AssertionError("SourceFile constructed on a full cache hit")

    monkeypatch.setattr(cache_mod, "SourceFile", bomb)
    warm = _cached_run(tree, cache_file)
    assert len(warm.findings) == 1


def test_edit_invalidates_only_that_file(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)
    # fix the violation; pad so size changes even under coarse mtime
    (tree / "b.py").write_text(CLEAN + "\n# fixed\n")
    warm = _cached_run(tree, cache_file)
    assert warm.findings == []
    assert _engine().run([tree]).findings == []


def test_new_file_invalidates_project_scope(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)
    (tree / "c.py").write_text(DIRTY.replace("leaky", "leakier"))
    warm = _cached_run(tree, cache_file)
    assert len(warm.findings) == 2
    assert sorted(f.path for f in warm.findings) == [
        (tree / "b.py").as_posix(),
        (tree / "c.py").as_posix(),
    ]


def test_ruleset_change_invalidates(tree, tmp_path, monkeypatch):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)

    def bomb(*args, **kwargs):
        raise RuntimeError("re-parse attempted")

    monkeypatch.setattr(cache_mod, "SourceFile", bomb)
    # same rules: full hit, no parsing
    _cached_run(tree, cache_file)
    # different rule selection: fingerprint differs, must re-run cold
    with pytest.raises(RuntimeError):
        run_with_cache(LintEngine(select=["REP005"]), [tree], cache_file)


def test_corrupt_cache_is_rebuilt(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)
    cache_file.write_text("{not json!")
    report = _cached_run(tree, cache_file)
    assert len(report.findings) == 1
    # and the rebuilt cache is valid again
    assert json.loads(cache_file.read_text())["version"] == 1


def test_wrong_schema_cache_is_rebuilt(tree, tmp_path):
    cache_file = tmp_path / "cache.json"
    _cached_run(tree, cache_file)
    payload = json.loads(cache_file.read_text())
    payload["files"] = {"x": {"stat": "not-a-list"}}
    cache_file.write_text(json.dumps(payload))
    report = _cached_run(tree, cache_file)
    assert len(report.findings) == 1


def test_cli_cache_flags(tree, tmp_path, capsys):
    from repro.devtools.lint.cli import main

    cache_file = tmp_path / "cli-cache.json"
    argv = [str(tree), "--cache-file", str(cache_file)]
    assert main(argv) == 1
    assert cache_file.exists()
    assert main(argv) == 1  # warm run, same verdict
    cache_file.unlink()
    assert main(argv + ["--no-cache"]) == 1
    assert not cache_file.exists()  # --no-cache neither reads nor writes
    capsys.readouterr()
