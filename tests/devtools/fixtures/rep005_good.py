"""Positive fixture for REP005: None defaults, factories in the body."""

import dataclasses
from typing import Dict, List, Optional


def collect(alert: object, out: Optional[List] = None) -> List:
    if out is None:
        out = []
    out.append(alert)
    return out


@dataclasses.dataclass
class Bucket:
    members: List = dataclasses.field(default_factory=list)
    labels: Dict = dataclasses.field(default_factory=dict)
