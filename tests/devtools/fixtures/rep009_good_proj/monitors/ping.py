"""Fixture monitors emitting only registered (or waived) raw types."""


class Monitor:
    def _alert(self, raw_type, t, **kwargs):
        return (self.name, raw_type, t)


class PingMonitor(Monitor):
    name = "ping"

    def observe(self, t):
        return [self._alert("end_to_end_icmp_loss", t)]


class SyslogMonitor(Monitor):
    name = "syslog"

    def observe(self, t):
        # raw carrier: classified into a registered key downstream
        return [self._alert("log", t)]  # lint: allow REP009
