"""Fixture consumers referencing only registered keys (or variables)."""

from .core.alert_types import ALERT_TYPE_LEVELS  # noqa: F401


def level_of(tool, type_name):
    return ALERT_TYPE_LEVELS.get((tool, type_name), "abnormal")


def type_key(tool, type_name):
    return (tool, type_name)


class AlertTypeKey:
    def __init__(self, tool, name):
        self.tool = tool
        self.name = name


def classify(alert):
    # variables are out of scope for the rule -- only literals are checked
    return level_of(alert.tool, alert.raw_type)


def registered_uses():
    return (
        level_of("snmp", "link_down"),
        type_key(tool="syslog", type_name="port_down"),
        AlertTypeKey(tool="ping", name="end_to_end_icmp_loss"),
    )
