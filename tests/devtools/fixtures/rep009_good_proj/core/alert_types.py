"""Fixture registry with consistent level and debounce tables."""

ALERT_TYPE_LEVELS = {
    ("ping", "end_to_end_icmp_loss"): "failure",
    ("snmp", "link_down"): "root_cause",
    ("syslog", "port_down"): "root_cause",
}

SPORADIC_TYPES = frozenset(
    {
        ("ping", "end_to_end_icmp_loss"),
    }
)
