"""Fixture monitors violating REP010 four ways."""


class Monitor:
    pass


class SlowPingMonitor(Monitor):
    """Polls at a period Table 2 does not record for ping."""

    name = "ping"
    period_s = 5.0


class UnchartedMonitor(Monitor):
    """Declares a source with no TABLE2_CADENCE entry at all."""

    name = "syslog"
    period_s = 5.0


class SnmpMonitor(Monitor):
    """Period is right, but the module's delay constant drifted (and so
    the registry's 120 s delay has no backing constant either)."""

    name = "snmp"
    period_s = 30.0


MAX_OLD_DEVICE_DELAY_S = 90.0
