"""Fixture registry: Table-2 cadences for ping and snmp."""

TABLE2_CADENCE = {
    "ping": {"period_s": 2.0},
    "snmp": {"period_s": 30.0, "delivery_delay_s": 120.0},
}
