"""Fixture monitors package whose cadence literals drift from Table 2."""
