"""Negative fixture for REP008: unannotated public API."""


def score(incident, threshold=10):
    return incident.severity >= threshold


class Exporter:
    def export(self, incident):
        return str(incident)

    def render(self, incident) -> str:
        return str(incident)
