"""Positive fixture for REP002: literal paths that fit the hierarchy."""

from repro.topology.hierarchy import LocationPath

CITY = LocationPath.parse("RegionA|CityA")
DEVICE = LocationPath.parse("RegionA|CityA|Logic1|SiteI|Cluster2|spine-1",
                            is_device=True)
SEGMENTS = LocationPath(("RegionA", "CityA", "Logic1"))


def dynamic(text):
    # non-literal arguments are runtime concerns, not lint concerns
    return LocationPath.parse(text)
