"""Positive fixture for REP003: paper constants imported from config."""

from repro.core.config import PRODUCTION_CONFIG, IncidentThresholds

NODE_TIMEOUT_S = PRODUCTION_CONFIG.node_timeout_s
THRESHOLDS = IncidentThresholds()

# unrelated numbers are fine
RETRY_BUDGET = 3
SAMPLE_WINDOW_S = 120.0


def sweep(tree, window_s=PRODUCTION_CONFIG.node_timeout_s):
    return [n for n in tree if n.age < window_s]
