"""Fixture registry: knows only ping."""

from .good import PingMonitor

DATA_SOURCES = {
    "ping": "Periodically records latency and reachability",
}

MONITOR_CLASSES = {
    "ping": PingMonitor,
}
