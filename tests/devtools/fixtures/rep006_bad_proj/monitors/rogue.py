"""Fixture monitors violating REP006 three ways."""

from .good import Monitor


class NamelessMonitor(Monitor):
    """No Table-2 source name declared, and unregistered."""

    period_s = 30.0


class MisnamedMonitor(Monitor):
    """Declares a source the registry inventory does not know."""

    name = "mystery_probes"
