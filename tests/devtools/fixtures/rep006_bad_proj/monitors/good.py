"""A correctly registered fixture monitor."""


class Monitor:
    pass


class PingMonitor(Monitor):
    name = "ping"
