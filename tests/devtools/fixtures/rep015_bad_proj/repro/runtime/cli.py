"""CLI surface with dangling and unmapped flags."""

import argparse

from ..core.config import RuntimeParams


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--shards", type=int)
    parser.add_argument("--ghost", type=int)
    parser.add_argument("--mystery", type=int)
    parser.add_argument("--chaos-fog", type=int)
    return parser


def run(argv):
    args = build_parser().parse_args(argv)
    params = RuntimeParams()
    return (args.shards, args.mystery, args.chaos_fog, params.hidden)
