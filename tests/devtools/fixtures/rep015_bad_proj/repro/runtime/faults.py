"""Chaos plan with a field no --chaos-* flag can set."""


class ChaosPlan:
    outages: int = 0
