"""Config surface with drift in every direction."""


class RuntimeParams:
    shards: int = 2
    dead_knob: int = 0
    hidden: float = 1.0
