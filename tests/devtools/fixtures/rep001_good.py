"""Positive fixture for REP001: levels via the AlertLevel taxonomy."""

from repro.core.alert import AlertLevel


def count_failures(records):
    return sum(1 for r in records if r.level is AlertLevel.FAILURE)


def is_noise(record):
    return record.level in (AlertLevel.ABNORMAL, AlertLevel.INFO)


def display_name(level):
    # mapping enum members *to* strings is fine (viz tables do this)
    return {AlertLevel.FAILURE: "failure"}.get(level, "other")
