"""Negative fixture for REP011: bare excepts and silent Exception swallows."""


def load_checkpoint(path):
    try:
        return open(path, "rb").read()
    except:  # noqa: E722
        return None


def sync_journal(handle):
    try:
        handle.flush()
    except Exception:
        pass


def replay_segment(lines):
    out = []
    for line in lines:
        try:
            out.append(int(line))
        except (ValueError, Exception):
            ...
    return out


def probe(target):
    try:
        return target.ping()
    except:  # noqa: E722
        raise
