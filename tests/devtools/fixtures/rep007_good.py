"""Positive fixture for REP007: order comparisons and isclose."""

import math


def same_onset(a, b):
    return math.isclose(a.first_seen, b.first_seen)


def closed(incident):
    return incident.closed_at is not None


def still_fresh(record, cutoff):
    return record.last_seen >= cutoff
