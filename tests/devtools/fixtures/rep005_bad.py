"""Negative fixture for REP005: mutable default arguments."""


def collect(alert, out=[]):
    out.append(alert)
    return out


def index(records, by={}):
    for r in records:
        by[r.key] = r
    return by


def fresh(seen=set()):
    return seen


def batched(items, buckets=list()):
    return buckets
