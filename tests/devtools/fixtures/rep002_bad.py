"""Negative fixture for REP002: invalid literal location paths."""

from repro.topology.hierarchy import LocationPath

TOO_DEEP = LocationPath.parse("RegionA|CityA|Logic1|SiteI|Cluster2|extra|deeper")
EMPTY_SEGMENT = LocationPath(("RegionA", ""))
