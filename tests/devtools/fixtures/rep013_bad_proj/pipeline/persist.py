"""Checkpoint payloads built from ambient process state."""

import os


def snapshot(store, tree):
    store.write_checkpoint(os.environ.get("RUN_ID"))
