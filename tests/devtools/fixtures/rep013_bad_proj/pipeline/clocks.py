"""Wall-clock reads laundered through two helpers."""

import time


def raw_now():
    return time.time()


def stamp():
    return raw_now()
