"""Sink side: tainted values reaching incident identity fields."""

from .clocks import stamp


def first_member():
    chosen = None
    for device in {"primary", "secondary"}:
        chosen = device
    return chosen


def close(incident):
    incident.created_at = stamp()
    incident.incident_id = first_member()
