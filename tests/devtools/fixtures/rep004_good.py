"""Positive fixture for REP004: explicit timestamps, seeded RNG."""

import random


def stamp(now):
    return now


def jitter(seed):
    rng = random.Random(seed)
    return rng.uniform(0.0, 1.0)


def pick(items, rng):
    return rng.choice(items)
