"""Bad fixture: resource-leak shapes REP019 must catch."""

import socket
import subprocess
from multiprocessing import Pipe


def normal_path_leak(path: str, flush: bool) -> int:
    fh = open(path, "rb")
    if not flush:
        return 0  # REP019: early return skips close
    size = len(fh.read())
    fh.close()
    return size


def exception_path_leak(path: str) -> bytes:
    fh = open(path, "rb")
    data = fh.read()  # raises -> unwind skips the close below
    fh.close()  # REP019: not in a finally
    return data


def never_closed(host: str) -> None:
    sock = socket.create_connection((host, 9))  # REP019: no close at all
    sock.sendall(b"ping")


def one_pipe_end_leaks() -> None:
    recv_end, send_end = Pipe()
    try:
        send_end.send(b"x")
    finally:
        send_end.close()  # REP019: recv_end never closed


def worker_leaks_on_spawn_error(cmd: list) -> int:
    proc = subprocess.Popen(cmd)
    code = proc.wait()  # raises on timeout -> REP019: no finally terminate
    proc.terminate()
    return code
