"""Pipeline layer importing *down* the stack only."""

from ..topology.geo import fabric


def report():
    return sorted(fabric())
