"""Presentation layer: may import core."""

from ..core.pipeline import report


def draw():
    return f"plot of {report()}"
