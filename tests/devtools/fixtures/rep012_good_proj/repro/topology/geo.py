"""Base layer: imports nothing project-internal."""


def fabric():
    return {"dcbr-1": ["dcbr-2"]}
