"""Waiver fixture: a would-be REP003 finding, explicitly allowed."""

PATROL_PERIOD_S = 900.0  # lint: allow REP003 (polling period, not the incident timeout)
