"""Negative fixture for REP004: wall clocks and global RNG."""

import random
import time
from random import choice


def stamp():
    return time.time()


def jitter():
    random.seed(7)
    return random.uniform(0.0, 1.0)


def pick(items):
    return choice(items)


def make_rng():
    return random.Random()
