"""Positive fixture for REP011: explicit, observable fault handling."""

import pickle


def load_checkpoint(path):
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError):
        return None  # corrupt-fallback: caller tries the next checkpoint


def sync_journal(handle, metrics):
    try:
        handle.flush()
    except OSError:
        metrics.count_failure("journal_sync")
        raise


def replay_segment(lines):
    out = []
    for line in lines:
        try:
            out.append(int(line))
        except ValueError:
            break  # corruption stops replay, loudly reported upstream
    return out


def assess(target, log):
    try:
        return target.ping()
    except Exception as exc:  # broad, but observable: logged and re-raised
        log.error("probe failed: %r", exc)
        raise
