"""Fixture consumers hard-coding unregistered alert-type keys."""

from .core.alert_types import ALERT_TYPE_LEVELS  # noqa: F401


def level_of(tool, type_name):
    return ALERT_TYPE_LEVELS.get((tool, type_name), "abnormal")


class AlertTypeKey:
    def __init__(self, tool, name):
        self.tool = tool
        self.name = name


def classify():
    # typo: forever-ABNORMAL instead of raising
    return level_of("snmp", "link_dwon")


def build_key():
    # unregistered pair hard-coded at a call site
    return AlertTypeKey(tool="ping", name="latency_spike")
