"""Fixture monitor emitting a typo'd raw type."""


class Monitor:
    def _alert(self, raw_type, t, **kwargs):
        return (self.name, raw_type, t)


class SnmpMonitor(Monitor):
    name = "snmp"

    def observe(self, t):
        # typo: the registry spells it "link_down"
        return [self._alert("link_dwon", t)]
