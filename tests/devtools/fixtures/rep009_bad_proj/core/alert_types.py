"""Fixture registry whose auxiliary table has drifted."""

ALERT_TYPE_LEVELS = {
    ("ping", "end_to_end_icmp_loss"): "failure",
    ("snmp", "link_down"): "root_cause",
    ("syslog", "port_down"): "root_cause",
}

# ("ping", "high_latency") was renamed away but the debounce table kept it
SPORADIC_TYPES = frozenset(
    {
        ("ping", "end_to_end_icmp_loss"),
        ("ping", "high_latency"),
    }
)
