"""Test helpers: nothing may import these."""


def fake_fabric():
    return {"dcbr-1": []}
