"""Re-exports, so the illegal core import resolves through __init__."""

from .plots import draw

__all__ = ["draw"]
