"""Presentation layer: defines the symbol core illegally pulls in."""


def draw(report):
    return f"plot of {report}"
