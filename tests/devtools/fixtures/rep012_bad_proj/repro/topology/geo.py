"""Base layer leaning on the forbidden tests package."""

from ..tests.helpers import fake_fabric


def fabric():
    return fake_fabric()
