"""Pipeline layer importing *up* the stack: core -> viz is forbidden."""

from ..viz import draw


def report(incidents):
    return draw(incidents)
