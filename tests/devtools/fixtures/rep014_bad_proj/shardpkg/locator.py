"""Shard entry point driving the hazardous tree."""

from .tree import ShardedAlertTree


class ShardedLocator:
    def __init__(self):
        self.tree = ShardedAlertTree()

    def feed(self, key, value):
        self.tree.insert(key, value)
