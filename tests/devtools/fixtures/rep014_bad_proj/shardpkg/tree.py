"""A toy sharded tree exhibiting every shard-safety hazard."""

SEEN = {}


class ShardedAlertTree:
    pending = []

    def __init__(self):
        self.items = {}

    def insert(self, key, value):
        SEEN[key] = value
        self.items[key] = value
