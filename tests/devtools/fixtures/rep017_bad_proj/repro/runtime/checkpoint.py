"""Bad fixture: every checkpoint-symmetry break REP017 must catch."""

from typing import Dict


class Sequencer:
    """Writer drops a key, reader invents one, gated key read unguarded."""

    def __init__(self) -> None:
        self.watermarks: Dict[str, float] = {}
        self.heap: list = []
        self.version = 2

    def state_dict(self) -> Dict[str, object]:
        state: Dict[str, object] = {
            "watermarks": dict(self.watermarks),
            "orphaned": True,  # REP017: never read back
        }
        if self.version >= 2:
            state["heap"] = list(self.heap)  # gated on version
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.watermarks = dict(state["watermarks"])  # type: ignore[arg-type]
        # REP017: gated key hard-read without .get()/membership guard
        self.heap = list(state["heap"])  # type: ignore[arg-type]
        # REP017: reads a key state_dict never writes
        self.version = int(state["epoch"])  # type: ignore[arg-type]


def pipeline_state_dict(net: object) -> Dict[str, object]:
    return {"now": 0.0, "last_sweep": 1.0}


def restore_pipeline_state(net: object, state: Dict[str, object]) -> None:
    # REP017: "last_sweep" written but never read here
    _ = state["now"]
