"""Good fixture: consistent metrics through every handle form."""

import threading

from .metrics import MetricsRegistry


class Window:
    def observe(self, value: float) -> None:  # domain method, not a metric
        self.latest = value


class Service:
    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        self._sweeps = metrics.counter("runtime_sweeps_total")
        self._stopping = threading.Event()
        self.window = Window()

    def sweep(self) -> None:
        self._sweeps.inc()
        self.metrics.gauge("runtime_open_incidents").set(3.0)
        self.window.observe(1.5)  # unresolvable receiver: ignored

    def shed(self, rung: str) -> None:
        # f-string family: registered and updated as one prefix group
        self.metrics.counter(f"runtime_shed_{rung}_total").inc()

    def stop(self) -> None:
        self._stopping.set()  # Event.set(), not a metric update

    def local_form(self, metrics: MetricsRegistry) -> None:
        drained = metrics.counter("runtime_drained_total")
        drained.inc()
