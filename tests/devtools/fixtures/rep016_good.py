"""Positive fixture for REP016: timing knobs flow from params objects."""

import dataclasses
import time


@dataclasses.dataclass(frozen=True)
class Params:
    # dataclass field defaults are where the numbers belong: exempt
    socket_timeout_s: float = 30.0
    backoff_base_s: float = 0.05
    max_attempts: int = 5


POLL_CADENCE_S = 0.25  # module-level constant binding: exempt


def connect(sock, params: Params):
    sock.settimeout(params.socket_timeout_s)
    return sock


def backoff_then_send(client, message, params: Params):
    time.sleep(params.backoff_base_s)
    return client.request(message, timeout=params.socket_timeout_s)


def retry(client, message, params: Params):
    return client.exchange(
        message,
        max_attempts=params.max_attempts,
        backoff_base_s=params.backoff_base_s,
    )


def reap(process):
    # deliberate, reviewed exception: not a serving knob
    process.join(timeout=10.0)  # lint: allow REP016
