"""Good fixture: symmetric, guarded, and dynamic checkpoint pairs."""

from typing import Dict


class Sequencer:
    """Symmetric keys; gated key guarded; back-compat read tolerated."""

    def __init__(self) -> None:
        self.watermarks: Dict[str, float] = {}
        self.heap: list = []
        self.version = 2

    def state_dict(self) -> Dict[str, object]:
        state: Dict[str, object] = {
            "watermarks": dict(self.watermarks),
        }
        if self.version >= 2:
            state["heap"] = list(self.heap)  # version-gated, guarded below
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.watermarks = dict(state["watermarks"])  # type: ignore[arg-type]
        if "heap" in state:
            self.heap = list(state["heap"])  # type: ignore[arg-type]
        # back-compat migration read of a retired key: tolerated
        self.version = int(state.get("epoch", 2))  # type: ignore[arg-type]


class Registry:
    """Dynamic pair (wholesale copy): statically unenumerable, skipped."""

    def __init__(self) -> None:
        self.records: Dict[str, int] = {}

    def state_dict(self) -> Dict[str, int]:
        return {name: seq for name, seq in self.records.items()}

    def load_state_dict(self, state: Dict[str, int]) -> None:
        for name, seq in state.items():
            self.records[name] = seq


def pipeline_state_dict(net: object) -> Dict[str, object]:
    return {"now": 0.0, "last_sweep": 1.0}


def restore_pipeline_state(net: object, state: Dict[str, object]) -> None:
    _ = state["now"]
    _ = state["last_sweep"]
