"""Fixture monitors package whose cadence literals match Table 2."""
