"""Fixture monitors whose literals agree with the cadence registry."""


class Monitor:
    pass


class PingMonitor(Monitor):
    name = "ping"
    period_s = 2.0


class DefaultCadenceMonitor(Monitor):
    """No period_s literal: inherits the base default, nothing to check."""

    name = "snmp"


MAX_OLD_DEVICE_DELAY_S = 120.0
