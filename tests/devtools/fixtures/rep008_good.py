"""Positive fixture for REP008: fully annotated public API."""

from typing import Any


def score(incident: Any, threshold: float = 10.0) -> bool:
    return bool(incident.severity >= threshold)


class Exporter:
    def export(self, incident: Any) -> str:
        return str(incident)

    def _internal(self, blob):  # private helpers are exempt
        return blob
