"""A registered fixture monitor with its Table-2 source name."""

import abc


class Monitor(abc.ABC):
    @abc.abstractmethod
    def observe(self, t):
        ...


class PingMonitor(Monitor):
    name = "ping"

    def observe(self, t):
        return []
