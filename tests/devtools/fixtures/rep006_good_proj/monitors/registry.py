"""Fixture registry covering every fixture monitor."""

from .ping import PingMonitor

DATA_SOURCES = {
    "ping": "Periodically records latency and reachability",
}

MONITOR_CLASSES = {
    "ping": PingMonitor,
}
