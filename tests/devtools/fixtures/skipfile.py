# lint: skip-file
"""Skip-file fixture: full of violations, all suppressed."""

NODE_TIMEOUT_S = 300.0


def collect(alert, out=[]):
    return out
