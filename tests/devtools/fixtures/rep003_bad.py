"""Negative fixture for REP003: shadow copies of paper constants."""

NODE_TIMEOUT_S = 300.0

THRESHOLD_SPEC = "2/1+2/5"


class Grouper:
    idle_close_s = 900


def sweep(tree, window_s=300.0):
    return [n for n in tree if n.age < window_s]
