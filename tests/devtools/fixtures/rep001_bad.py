"""Negative fixture for REP001: raw alert-level strings."""


def count_failures(records):
    return sum(1 for r in records if r.level == "failure")


def is_noise(record):
    return record.level in ("abnormal", "info")


def lookup(AlertLevel):
    return AlertLevel("root_cause")
