"""Negative fixture for REP007: float == on timestamps."""


def same_onset(a, b):
    return a.first_seen == b.first_seen


def closed_now(incident, now):
    return incident.closed_at != now


def still_fresh(record, cutoff):
    return cutoff == record.last_seen
