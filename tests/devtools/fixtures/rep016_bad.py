"""Negative fixture for REP016: hard-coded serving-path timing knobs."""

import time


def connect(sock):
    sock.settimeout(30.0)  # positional delay literal
    return sock


def backoff_then_send(client, message):
    time.sleep(0.05)  # literal backoff
    return client.request(message, timeout=5.0)  # timeout kwarg literal


def retry(client, message):
    return client.exchange(
        message,
        max_attempts=5,  # retry budget literal
        backoff_base_s=0.1,  # backoff kwarg literal
    )
