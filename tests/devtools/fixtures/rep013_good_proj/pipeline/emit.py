"""Sink side done right: injected clock, order-laundered set reads."""


def first_member(members):
    for device in sorted(members):
        return device
    return None


def close(incident, members, now):
    incident.created_at = now
    incident.incident_id = first_member(set(members))
