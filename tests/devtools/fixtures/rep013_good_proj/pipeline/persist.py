"""Checkpoint payloads done right: identity is injected, never ambient."""


def snapshot(store, tree, run_id):
    store.write_checkpoint(run_id)
