"""Minimal metrics registry so the rule anchors on runtime.metrics."""

from typing import Dict


class Counter:
    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class MetricsRegistry:
    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._metrics.setdefault(name, Counter())  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._metrics.setdefault(name, Gauge())  # type: ignore[return-value]
