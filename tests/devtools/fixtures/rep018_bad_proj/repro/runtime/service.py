"""Bad fixture: every metrics-drift shape REP018 must catch."""

from .metrics import MetricsRegistry


class Service:
    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        # REP018: registered but no .inc() site ever resolves to it
        self._dead = metrics.counter("runtime_dead_rows_total")
        self._sweeps = metrics.counter("runtime_sweeps_total")

    def sweep(self) -> None:
        self._sweeps.inc()
        # REP018: same name, different kind than the __init__ counter
        self.metrics.gauge("runtime_sweeps_total").set(1.0)

    def report(self) -> None:
        # REP018: counter updated with .set()
        self.metrics.counter("runtime_open_incidents_total").set(3.0)
