"""Chaos plan fully settable from --chaos-* flags."""


class ChaosPlan:
    outages: int = 0
