"""CLI surface: every flag consumed, every field settable."""

import argparse

from ..core.config import RuntimeParams
from .faults import ChaosPlan


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--shards", type=int)
    parser.add_argument("--chaos-outage", type=int)
    return parser


def run(argv):
    args = build_parser().parse_args(argv)
    params = RuntimeParams()
    params.shards = args.shards
    plan = ChaosPlan()
    plan.outages = args.chaos_outage
    return (params.shards, plan.outages)
