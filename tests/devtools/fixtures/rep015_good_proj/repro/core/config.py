"""Config surface fully wired to the CLI."""


class RuntimeParams:
    shards: int = 2
