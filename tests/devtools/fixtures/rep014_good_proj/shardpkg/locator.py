"""Shard entry point over the safe tree."""

from .tree import ShardedAlertTree


class ShardedLocator:
    def __init__(self):
        self.tree = ShardedAlertTree()

    def feed(self, key):
        return self.tree.lookup(key)
