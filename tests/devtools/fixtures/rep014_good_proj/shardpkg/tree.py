"""Shard-safe tree: read-only globals, state built in __init__ only."""

LIMITS = {"max": 10}


class ShardedAlertTree:
    def __init__(self):
        self.items = {}

    def lookup(self, key):
        return self.items.get(key, LIMITS["max"])
