"""Good fixture: every accepted ownership/cleanup shape for REP019."""

import socket
import subprocess
import threading
from multiprocessing import Pipe
from typing import Iterator, Optional


def with_managed(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def finally_closed(path: str) -> bytes:
    fh = open(path, "rb")
    try:
        return fh.read()
    finally:
        fh.close()


def ownership_returned(path: str):
    fh = open(path, "rb")
    return fh  # caller owns it now


class Journal:
    def __init__(self, path: str) -> None:
        self._fh = open(path, "ab")  # attribute target: owner is self

    def reopen(self, path: str) -> None:
        fh = open(path, "ab")
        self._fh = fh  # escapes to an attribute

    def close(self) -> None:
        self._fh.close()


def handed_to_thread(host: str) -> threading.Thread:
    sock = socket.create_connection((host, 9))
    worker = threading.Thread(target=_serve, args=(sock,))
    worker.start()
    return worker


def _serve(sock: socket.socket) -> None:
    try:
        sock.sendall(b"ping")
    finally:
        sock.close()


def both_pipe_ends_closed() -> None:
    recv_end, send_end = Pipe()
    try:
        send_end.send(b"x")
    finally:
        send_end.close()
        recv_end.close()


def generator_yields(path: str) -> Iterator[bytes]:
    fh = open(path, "rb")  # finalisation is the consumer's problem
    for line in fh:
        yield line
    fh.close()


def process_reaped(cmd: list) -> Optional[int]:
    proc = subprocess.Popen(cmd)
    try:
        return proc.wait()
    finally:
        proc.terminate()
