"""The flow-sensitive analysis layer: CFG construction unit tests plus
Hypothesis batteries for the graph invariants and the worklist solver."""

from __future__ import annotations

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.lint.project import (
    CFG,
    blocks_on_all_paths,
    build_cfg,
    live_variables,
    reaching_definitions,
)

# -- helpers ----------------------------------------------------------------


def _build(src: str) -> CFG:
    tree = ast.parse(textwrap.dedent(src))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def _assign_block(cfg: CFG, name: str):
    """The unique block whose statement assigns ``name``."""
    matches = cfg.blocks_of(
        lambda s: isinstance(s, ast.Assign)
        and isinstance(s.targets[0], ast.Name)
        and s.targets[0].id == name
    )
    assert len(matches) == 1, f"expected one assignment to {name!r}"
    return matches[0]


# -- construction unit tests ------------------------------------------------


def test_finally_runs_on_all_paths_including_exceptions():
    cfg = _build(
        """
        def f(p):
            try:
                x = work(p)
            finally:
                done = 1
            return x
        """
    )
    done = _assign_block(cfg, "done")
    must = blocks_on_all_paths(cfg, include_exceptional=True)
    assert done.id in must
    assert cfg.entry in must and cfg.exit in must


def test_early_return_removes_tail_from_all_paths():
    cfg = _build(
        """
        def f(a):
            if a:
                return 1
            x = 2
            return x
        """
    )
    must = blocks_on_all_paths(cfg)
    tail = _assign_block(cfg, "x")
    returns = cfg.blocks_of(lambda s: isinstance(s, ast.Return))
    assert tail.id not in must
    assert all(block.id not in must for block in returns)
    assert cfg.entry in must and cfg.exit in must


def test_break_exits_only_the_inner_loop():
    cfg = _build(
        """
        def f(xs, ys):
            for x in xs:
                for y in ys:
                    if y:
                        break
                tail = 1
            done = 1
        """
    )
    (brk,) = cfg.blocks_of(lambda s: isinstance(s, ast.Break))
    succs = cfg.succs(brk.id, include_exceptional=False)
    assert [e.kind for e in succs] == ["break"]
    tail = _assign_block(cfg, "tail")
    done = _assign_block(cfg, "done")
    assert succs[0].dst == tail.id
    assert succs[0].dst != done.id


def test_for_orelse_runs_on_exhaustion_not_on_break():
    cfg = _build(
        """
        def f(xs):
            for x in xs:
                if x:
                    break
            else:
                fell = 1
            done = 1
        """
    )
    (brk,) = cfg.blocks_of(lambda s: isinstance(s, ast.Break))
    fell = _assign_block(cfg, "fell")
    done = _assign_block(cfg, "done")
    break_dsts = {e.dst for e in cfg.succs(brk.id, include_exceptional=False)}
    assert break_dsts == {done.id}
    # the orelse is still wired in: reachable, via the loop header test
    assert fell.id in cfg.reachable_from_entry()
    assert all(e.src != brk.id for e in cfg.preds(fell.id))


def test_return_unwinds_through_finally():
    cfg = _build(
        """
        def f():
            try:
                return 1
            finally:
                done = 1
        """
    )
    (ret,) = cfg.blocks_of(lambda s: isinstance(s, ast.Return))
    done = _assign_block(cfg, "done")
    # no shortcut past the finally
    normal = cfg.succs(ret.id, include_exceptional=False)
    assert all(e.dst != cfg.exit for e in normal)
    assert done.id in blocks_on_all_paths(cfg)


def test_with_records_managed_names():
    cfg = _build(
        """
        def f(p):
            with open(p) as fh:
                data = fh.read()
            return data
        """
    )
    assert "fh" in cfg.managed_names


def test_except_handler_reachable_only_via_exception_edges():
    cfg = _build(
        """
        def f(p):
            try:
                x = work(p)
            except ValueError:
                x = 0
            return x
        """
    )
    (fallback,) = cfg.blocks_of(
        lambda s: isinstance(s, ast.Assign)
        and isinstance(s.value, ast.Constant)
        and s.value.value == 0
    )
    assert fallback.id not in cfg.reachable_from_entry(include_exceptional=False)
    assert fallback.id in cfg.reachable_from_entry(include_exceptional=True)


# -- canned analyses --------------------------------------------------------


def test_reaching_definitions_merge_at_join():
    cfg = _build(
        """
        def f(a):
            x = 1
            if a:
                x = 2
            y = x
        """
    )
    rd = reaching_definitions(cfg)
    use = _assign_block(cfg, "y")
    x_defs = {fact for fact in rd.inputs[use.id] if fact[0] == "x"}
    assert len(x_defs) == 2  # both arms of the if reach the join


def test_liveness_is_backward():
    cfg = _build(
        """
        def f(a):
            x = 1
            if a:
                return x
            return 0
        """
    )
    lv = live_variables(cfg)
    assign = _assign_block(cfg, "x")
    # inputs hold live-out in the backward orientation; the definition
    # itself kills the variable from its own live-in
    assert "x" in lv.inputs[assign.id]
    assert "x" not in lv.outputs[assign.id]
    assert "a" in lv.outputs[assign.id]


# -- Hypothesis: CFG invariants over generated functions --------------------

_SIMPLE = ("x = 1", "y = x", "pass", "return x", "raise ValueError()")
_LOOP_ONLY = ("break", "continue")


def _render(stmts, indent):
    pad = "    " * indent
    lines = []
    for s in stmts:
        if isinstance(s, str):
            lines.append(pad + s)
            continue
        kind, parts = s
        if kind == "if":
            body, orelse = parts
            lines.append(pad + "if x:")
            lines += _render(body, indent + 1)
            if orelse:
                lines.append(pad + "else:")
                lines += _render(orelse, indent + 1)
        elif kind == "while":
            (body,) = parts
            lines.append(pad + "while x:")
            lines += _render(body, indent + 1)
        elif kind == "for":
            body, orelse = parts
            lines.append(pad + "for i in x:")
            lines += _render(body, indent + 1)
            if orelse:
                lines.append(pad + "else:")
                lines += _render(orelse, indent + 1)
        elif kind == "try":
            body, handler, final = parts
            lines.append(pad + "try:")
            lines += _render(body, indent + 1)
            if handler:
                lines.append(pad + "except ValueError:")
                lines += _render(handler, indent + 1)
            if final or not handler:
                lines.append(pad + "finally:")
                lines += _render(final or ["pass"], indent + 1)
        else:  # with
            (body,) = parts
            lines.append(pad + "with open('p') as fh:")
            lines += _render(body, indent + 1)
    return lines


def _block_strategy(depth, in_loop):
    return st.lists(_stmt_strategy(depth, in_loop), min_size=1, max_size=3)


def _stmt_strategy(depth, in_loop):
    leaves = _SIMPLE + (_LOOP_ONLY if in_loop else ())
    options = [st.sampled_from(leaves)]
    if depth > 0:
        maybe = lambda strat: st.one_of(st.just([]), strat)  # noqa: E731
        sub = _block_strategy(depth - 1, in_loop)
        loop_sub = _block_strategy(depth - 1, True)
        # break/continue inside a finally is excluded: legal only on
        # newer Pythons and not a shape the linted tree uses
        fin_sub = _block_strategy(depth - 1, False)
        options += [
            st.tuples(st.just("if"), st.tuples(sub, maybe(sub))),
            st.tuples(st.just("while"), st.tuples(loop_sub)),
            st.tuples(
                st.just("for"),
                st.tuples(loop_sub, maybe(_block_strategy(depth - 1, False))),
            ),
            st.tuples(
                st.just("try"), st.tuples(sub, maybe(sub), maybe(fin_sub))
            ),
            st.tuples(st.just("with"), st.tuples(sub)),
        ]
    return st.one_of(options)


@settings(max_examples=60, deadline=None)
@given(body=_block_strategy(2, False))
def test_cfg_invariants_on_generated_functions(body):
    src = "def f(x, y):\n" + "\n".join(_render(body, 1))
    cfg = build_cfg(ast.parse(src).body[0])
    reachable = cfg.reachable_from_entry(include_exceptional=True)
    for bid in reachable:
        if bid != cfg.entry:
            assert cfg.preds(bid), (
                f"reachable block {bid} has no predecessor in:\n{src}"
            )
    assert cfg.exit in reachable, f"exit unreachable in:\n{src}"
    assert not cfg.succs(cfg.exit)
    for edge in cfg.edges:
        assert edge.src in cfg.blocks and edge.dst in cfg.blocks
    # every analysis converges and covers every block
    for solution in (reaching_definitions(cfg), live_variables(cfg)):
        assert set(solution.inputs) == set(cfg.blocks)
        assert set(solution.outputs) == set(cfg.blocks)
    must = blocks_on_all_paths(cfg, include_exceptional=True)
    assert cfg.entry in must and cfg.exit in must


# -- Hypothesis: solver fixpoint on random DAGs -----------------------------


def _random_dag(data):
    """A synthetic CFG DAG where every block is reachable from entry and
    at least one path reaches exit; returns (cfg, ordered block ids)."""
    n_mid = data.draw(st.integers(min_value=0, max_value=5), label="middles")
    cfg = CFG()
    middles = [cfg.add_block("synth") for _ in range(n_mid)]
    order = [cfg.entry] + middles + [cfg.exit]
    last = len(order) - 1
    spine_mids = sorted(
        data.draw(
            st.sets(st.sampled_from(range(1, last)), max_size=max(last - 1, 0)),
            label="spine",
        )
        if last > 1
        else set()
    )
    pairs = set(zip([0] + spine_mids, spine_mids + [last]))
    for i in range(last + 1):
        for j in range(i + 1, last + 1):
            if (i, j) not in pairs and data.draw(
                st.booleans(), label=f"edge {i}->{j}"
            ):
                pairs.add((i, j))
    # orphan middles get an entry edge so path-based oracles apply
    for j in range(1, last):
        if not any(jj == j for (_i, jj) in pairs):
            pairs.add((0, j))
    for i, j in sorted(pairs):
        cfg.add_edge(order[i], order[j])
    return cfg, order


def _all_paths(cfg, start, goal):
    """Every start->goal path in a DAG, as lists of block ids."""
    paths = []
    stack = [(start, [start])]
    while stack:
        node, path = stack.pop()
        if node == goal:
            paths.append(path)
            continue
        for edge in cfg.succs(node):
            stack.append((edge.dst, path + [edge.dst]))
    return paths


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_solver_fixpoint_matches_path_oracles_on_random_dags(data):
    from repro.devtools.lint.project import solve

    cfg, order = _random_dag(data)

    # forward-may with gen = {own id}: a fact b reaches x iff some
    # entry->x path passes through b
    sol = solve(
        cfg,
        direction="forward",
        may=True,
        gen=lambda block: {block.id},
        kill=lambda block: (),
    )
    for bid in order:
        on_some_path = set()
        for path in _all_paths(cfg, cfg.entry, bid):
            on_some_path.update(path)
        assert sol.outputs[bid] == frozenset(on_some_path), (
            f"forward-may mismatch at block {bid}"
        )

    # must-analysis: blocks on every entry->exit path
    expected_must = None
    for path in _all_paths(cfg, cfg.entry, cfg.exit):
        expected_must = (
            set(path) if expected_must is None else expected_must & set(path)
        )
    assert expected_must is not None, "spine should guarantee a path"
    assert blocks_on_all_paths(cfg) == frozenset(expected_must)
