"""Shared helpers for the skynet-lint tests."""

from __future__ import annotations

import pathlib

import pytest

from repro.devtools.lint import LintEngine

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
REPO_ROOT = pathlib.Path(__file__).parents[2]


@pytest.fixture
def fixtures_dir() -> pathlib.Path:
    return FIXTURES


def run_rule(rule_id: str, *paths: pathlib.Path):
    """Run exactly one rule over the given paths, return its findings."""
    report = LintEngine(select=[rule_id]).run(list(paths))
    return report.findings


def run_project_rule(rule_id: str, *paths: pathlib.Path):
    """Run one whole-program rule (``--project``), return its findings."""
    report = LintEngine(select=[rule_id], project_mode=True).run(list(paths))
    return report.findings
