"""Differential suite: the ``fast_path`` locator/evaluator must be
behaviourally identical to the reference implementation.

Every scenario here is run twice over the *same* raw alert stream -- once
with the reference pipeline and once with ``config.fast_path=True`` --
and the complete incident output is compared: incident set, scopes,
open/close times, status, alert contents and severity scores.  Incident
ids come from a global counter and legitimately differ between runs, so
renders are compared with ids normalised; every other byte must match.

The scenarios live in a module-level registry (:data:`SCENARIOS`) so the
sharding and multiprocess invariance suites under ``tests/runtime`` can
replay the *same* floods through their backends instead of copying the
definitions (see ``tests/runtime/test_shard_invariance.py``).

This is the gate that lets the fast path exist at all (see
``core/locator.py``): any optimisation that changes output fails here.
"""

from __future__ import annotations

import dataclasses
import random
import re
from typing import Callable, List, Sequence, Tuple

import pytest

from repro.core.config import PRODUCTION_CONFIG, SkyNetConfig
from repro.core.pipeline import SkyNet
from repro.monitors import build_monitors
from repro.monitors.base import RawAlert
from repro.monitors.stream import AlertStream
from repro.simulation import scenarios as sc
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.failures import sample_campaign
from repro.simulation.injector import FailureInjector
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level
from repro.topology.network import Topology

# ---------------------------------------------------------------------------
# harness


def _stream(
    topo: Topology, state: NetworkState, horizon: float, seed: int
) -> List[RawAlert]:
    return AlertStream(state, build_monitors(state, seed=seed)).collect(horizon)


def _fingerprint(net: SkyNet) -> List[Tuple]:
    """Everything observable about a run's incidents, ids normalised."""
    out = []
    for incident in sorted(
        net.incidents(include_superseded=True),
        key=lambda i: (i.start_time, str(i.location)),
    ):
        severity = incident.severity
        out.append(
            (
                str(incident.location),
                incident.status.name,
                incident.start_time,
                incident.end_time,
                incident.total_alert_count(),
                incident.distinct_type_count(),
                sorted(incident.devices_involved()),
                (severity.score, severity.impact_factor, severity.time_factor)
                if severity
                else None,
                re.sub(r"incident-\d+", "incident-N", incident.render()),
            )
        )
    return out


def _assert_equal(reference: List[Tuple], fast: List[Tuple]) -> None:
    assert len(reference) == len(fast), (
        f"incident count differs: reference={len(reference)} fast={len(fast)}"
    )
    for ref_fp, fast_fp in zip(reference, fast):
        assert ref_fp == fast_fp
    assert reference, "scenario produced no incidents -- not a useful gate"


def _device_down(
    devices: Sequence[str], start: float, duration: float
) -> List[Condition]:
    return [
        Condition(
            kind=ConditionKind.DEVICE_DOWN,
            target=name,
            start=start + 5.0 * i,
            end=start + 5.0 * i + duration,
        )
        for i, name in enumerate(devices)
    ]


# ---------------------------------------------------------------------------
# the scenario registry
#
# Each entry is a self-contained flood: building it yields a topology, the
# network state that produced the stream, and the raw alert stream itself.
# Both the fast-path gate below and the runtime invariance suites iterate
# this registry, so adding a scenario here widens every differential gate
# at once.


@dataclasses.dataclass(frozen=True)
class FloodScenario:
    """A named, reproducible flood for differential testing."""

    name: str
    build: Callable[[], Tuple[Topology, NetworkState, List[RawAlert]]]
    #: synthetic floods must produce incidents to be a useful gate; the
    #: paper's named scenarios may legitimately be quiet on the small fabric
    require_incidents: bool = True


def _conditions_scenario(
    name: str,
    conditions_for: Callable[[Topology, random.Random], Sequence[Condition]],
    *,
    spec: Callable[[], TopologySpec] = TopologySpec,
    horizon: float = 600.0,
    seed: int = 0,
    require_incidents: bool = True,
) -> FloodScenario:
    def build() -> Tuple[Topology, NetworkState, List[RawAlert]]:
        topo = build_topology(spec())
        state = NetworkState(topo)
        rng = random.Random(seed)
        for cond in conditions_for(topo, rng):
            state.add_condition(cond)
        return topo, state, _stream(topo, state, horizon, seed)

    return FloodScenario(name=name, build=build, require_incidents=require_incidents)


def _device_down_conditions(n_down: int):
    def conditions(topo: Topology, rng: random.Random) -> List[Condition]:
        devices = sorted(topo.devices)
        rng.shuffle(devices)
        return _device_down(devices[:n_down], start=40.0, duration=400.0)

    return conditions


def _link_failure_conditions(n_sets: int):
    def conditions(topo: Topology, rng: random.Random) -> List[Condition]:
        sets = sorted(topo.circuit_sets)
        rng.shuffle(sets)
        return [
            Condition(
                kind=ConditionKind.CIRCUIT_BREAK,
                target=set_id,
                start=60.0,
                end=500.0,
                params={"broken_circuits": 4.0},
            )
            for set_id in sets[:n_sets]
        ]

    return conditions


def _site_isolation_conditions(topo: Topology, rng: random.Random):
    """Every device of one site down at once: one wide incident scope."""
    sites = sorted(
        (loc for loc in topo.locations() if loc.level is Level.SITE), key=str
    )
    site = sites[rng.randrange(len(sites))]
    names = [d.name for d in topo.devices_at(site)]
    return _device_down(names, start=50.0, duration=420.0)


def _cross_region_conditions(topo: Topology, rng: random.Random):
    """Independent failures in different regions stay separate incidents."""
    by_region: dict = {}
    for name in sorted(topo.devices):
        region = topo.device(name).location.segments[0]
        by_region.setdefault(region, []).append(name)
    out = []
    for names in by_region.values():
        rng.shuffle(names)
        out.extend(_device_down(names[:4], start=45.0, duration=380.0))
    return out


def _mixed_kind_conditions(topo: Topology, rng: random.Random):
    """Loss, flapping, CPU and config faults interleaved."""
    kinds = [
        (ConditionKind.DEVICE_SILENT_LOSS, {"loss_rate": 0.3}),
        (ConditionKind.LINK_FLAPPING, {}),
        (ConditionKind.DEVICE_HIGH_CPU, {"utilization": 0.97}),
        (ConditionKind.CONFIG_ERROR, {}),
        (ConditionKind.DEVICE_HARDWARE_ERROR, {"loss_rate": 0.2}),
    ]
    devices = sorted(topo.devices)
    sets = sorted(topo.circuit_sets)
    out = []
    for i, (kind, params) in enumerate(kinds * 2):
        if kind is ConditionKind.LINK_FLAPPING:
            target = sets[rng.randrange(len(sets))]
        else:
            target = devices[rng.randrange(len(devices))]
        start = 40.0 + 30.0 * i
        out.append(
            Condition(
                kind=kind,
                target=target,
                start=start,
                end=start + 360.0,
                params=dict(params),
            )
        )
    return out


def _benchmark_dense_conditions(topo: Topology, rng: random.Random):
    """The big fabric under a wide failure wave (the bench scenario)."""
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    return [
        Condition(
            kind=ConditionKind.DEVICE_DOWN,
            target=name,
            start=60.0 + rng.uniform(0.0, 240.0),
            end=700.0,
        )
        for name in devices[:50]
    ]


def _campaign_scenario(seed: int) -> FloodScenario:
    """Failures drawn from the paper's root-cause distribution."""

    def build() -> Tuple[Topology, NetworkState, List[RawAlert]]:
        topo = build_topology(TopologySpec())
        state = NetworkState(topo)
        rng = random.Random(seed)
        injector = FailureInjector(state)
        injector.inject_all(
            sample_campaign(topo, rng, 10, 600.0, severe_fraction=0.3)
        )
        return topo, state, _stream(topo, state, 600.0, seed)

    return FloodScenario(name=f"campaign_s{seed}", build=build)


def _named_scenario(name: str, scenario_fn) -> FloodScenario:
    """One of the paper's named failure scenarios (§2/§5 case studies)."""

    def build() -> Tuple[Topology, NetworkState, List[RawAlert]]:
        topo = build_topology(TopologySpec())
        state = NetworkState(topo)
        injector = FailureInjector(state)
        for scenario in scenario_fn(topo):
            injector.inject(scenario)
        return topo, state, _stream(topo, state, 600.0, seed=7)

    # named scenarios are allowed to produce zero incidents on the small
    # fabric; the synthetic floods guarantee non-trivial coverage
    return FloodScenario(name=name, build=build, require_incidents=False)


_NAMED = [
    ("cable_cut", lambda topo: [sc.internet_entrance_cable_cut(topo, start=30.0)]),
    ("known_device", lambda topo: [sc.known_device_failure(topo, start=30.0)]),
    ("multi_ddos", lambda topo: sc.multi_site_ddos(topo, start=30.0, n_sites=3)),
    ("ranking_pair", lambda topo: list(sc.ranking_pair(topo, start=30.0))),
    ("reflector", lambda topo: [sc.reflector_failure(topo, start=30.0)]),
    ("blackhole", lambda topo: [sc.partial_route_blackhole(topo, start=30.0)]),
    ("silent_loss", lambda topo: [sc.silent_backbone_loss(topo, start=30.0)]),
    ("maintenance", lambda topo: [sc.maintenance_break_wave(topo, start=30.0)]),
    ("delayed_root", lambda topo: [sc.delayed_root_cause(topo, start=30.0)]),
]


SCENARIOS: List[FloodScenario] = (
    [
        _conditions_scenario(
            f"device_down_s{seed}_n{n_down}",
            _device_down_conditions(n_down),
            seed=seed,
        )
        for seed, n_down in [(7, 3), (2, 5), (3, 8), (4, 20), (5, 40)]
    ]
    + [
        _conditions_scenario(
            f"link_failure_s{seed}_n{n_sets}",
            _link_failure_conditions(n_sets),
            seed=seed,
        )
        for seed, n_sets in [(11, 2), (12, 6), (13, 15)]
    ]
    + [
        _conditions_scenario(
            f"site_isolation_s{seed}", _site_isolation_conditions, seed=seed
        )
        for seed in (21, 22)
    ]
    + [
        _conditions_scenario(
            f"cross_region_s{seed}", _cross_region_conditions, seed=seed
        )
        for seed in (31, 32)
    ]
    + [
        _conditions_scenario(
            f"mixed_kind_s{seed}", _mixed_kind_conditions, seed=seed
        )
        for seed in (41, 42, 43)
    ]
    + [_campaign_scenario(seed) for seed in (51, 52)]
    + [
        _conditions_scenario(
            "benchmark_dense_flood",
            _benchmark_dense_conditions,
            spec=TopologySpec.benchmark,
            horizon=800.0,
            seed=61,
        )
    ]
    + [_named_scenario(name, fn) for name, fn in _NAMED]
)

SCENARIO_IDS = [scenario.name for scenario in SCENARIOS]

assert len(SCENARIOS) == len(set(SCENARIO_IDS)), "scenario names must be unique"


# ---------------------------------------------------------------------------
# the fast-path gate: every registry scenario, reference vs fast_path


@pytest.mark.parametrize("scenario", SCENARIOS, ids=SCENARIO_IDS)
def test_fast_path_equivalence(scenario: FloodScenario):
    topo, state, raws = scenario.build()
    prints = []
    for fast in (False, True):
        config = dataclasses.replace(PRODUCTION_CONFIG, fast_path=fast)
        net = SkyNet(topo, config=config, state=state)
        net.process(raws)
        prints.append(_fingerprint(net))
    reference, fast_fp = prints
    assert len(reference) == len(fast_fp), (
        f"incident count differs: reference={len(reference)} fast={len(fast_fp)}"
    )
    for ref_item, fast_item in zip(reference, fast_fp):
        assert ref_item == fast_item
    if scenario.require_incidents:
        assert reference, "scenario produced no incidents -- not a useful gate"


# ---------------------------------------------------------------------------
# incremental API equivalence: feed/feed_many/flush interleavings


def test_feed_many_matches_feed():
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    for cond in _device_down(sorted(topo.devices)[:5], 40.0, 300.0):
        state.add_condition(cond)
    raws = _stream(topo, state, 420.0, seed=3)

    config = dataclasses.replace(PRODUCTION_CONFIG, fast_path=True)
    one = SkyNet(topo, config=config, state=state)
    for raw in raws:
        one.feed(raw)
    one.finish()

    many = SkyNet(topo, config=config, state=state)
    batch: List = []
    for raw in raws:
        many._now = max(many._now, raw.delivered_at)
        many.zoom.observe(raw)
        batch.extend(many.preprocessor.feed(raw))
        if len(batch) >= 50:
            many.locator.feed_many(batch)
            batch = []
        if many._now - many._last_sweep >= config.sweep_interval_s:
            many.locator.feed_many(batch)
            batch = []
            many.sweep(many._now)
    many.locator.feed_many(batch)
    many.finish()

    assert _fingerprint(one) == _fingerprint(many)


def test_mid_stream_reads_see_flushed_state():
    """pipeline.incidents() must reflect buffered alerts (flush-on-read)."""
    topo = build_topology(TopologySpec())
    state = NetworkState(topo)
    for cond in _device_down(sorted(topo.devices)[:6], 40.0, 300.0):
        state.add_condition(cond)
    raws = _stream(topo, state, 420.0, seed=5)
    config = dataclasses.replace(PRODUCTION_CONFIG, fast_path=True)
    net = SkyNet(topo, config=config, state=state)
    reference = SkyNet(topo, state=state)
    for i, raw in enumerate(raws):
        net.feed(raw)
        reference.feed(raw)
        if i % 500 == 0:
            # reading mid-stream must not change eventual output, and the
            # flushed view matches the reference incident set
            assert len(net.incidents()) == len(reference.incidents())
    net.finish()
    reference.finish()
    assert _fingerprint(reference) == _fingerprint(net)
