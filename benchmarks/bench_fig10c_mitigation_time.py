"""Figure 10c: mitigation time before vs after deploying SkyNet.

The paper (§6.4): median mitigation time dropped from 736 s to 147 s and
the maximum from 14028 s to 1920 s -- both >80% reductions.  A set of
severe failures is replayed through the operator model under both
workflows (raw-flood triage vs distilled incident reports, see
repro.operators.mitigation for the model and its calibration).
"""

from repro.analysis.experiments import run_campaign
from repro.analysis.metrics import percentile
from repro.operators.mitigation import OperatorModel
from repro.simulation import scenarios as sc
from repro.topology.builder import TopologySpec, build_topology

PAPER_MEDIAN = (736.0, 147.0)
PAPER_MAX = (14028.0, 1920.0)


def _severe_set(seed):
    """A set of distinct severe failures, one campaign each."""
    runs = []
    builders = [
        lambda topo: [sc.internet_entrance_cable_cut(topo, start=60.0)],
        lambda topo: sc.multi_site_ddos(topo, start=60.0, n_sites=2),
        lambda topo: [sc.delayed_root_cause(topo, start=60.0)],
        lambda topo: [sc.reflector_failure(topo, start=60.0)],
        lambda topo: sc.ranking_pair(topo, start=60.0),
    ]
    for i, build in enumerate(builders):
        topo = build_topology(TopologySpec())
        runs.append(
            run_campaign(
                900.0,
                scenarios=build(topo),
                topology=topo,
                n_customers=40,
                seed=seed + i,
            )
        )
    return runs


def test_fig10c_mitigation_time(benchmark, emit, paper_assert):
    model = OperatorModel()

    def measure():
        before, after = [], []
        for result in _severe_set(500):
            raw_count = len(result.raw_alerts)
            for report in result.reports:
                incident = report.incident
                truth = result.injector.matching_truth(
                    incident.root, incident.start_time, incident.end_time,
                    impacting_only=True,
                )
                if truth is None:
                    continue
                before.append(
                    model.mitigation_time_raw(
                        raw_count, len(incident.devices_involved())
                    )
                )
                after.append(model.mitigation_time_skynet(incident))
        return before, after

    before, after = benchmark.pedantic(measure, rounds=1, iterations=1)
    if not (before and after):
        paper_assert(False, "severe set must yield matched incidents")
        return

    med_b, med_a = percentile(before, 50), percentile(after, 50)
    max_b, max_a = max(before), max(after)
    lines = ["Figure 10c: mitigation time before vs after SkyNet (seconds)"]
    lines.append(f"{'':<12}{'before':>10}{'after':>10}{'reduction':>11}")
    lines.append(f"{'median':<12}{med_b:>10.0f}{med_a:>10.0f}"
                 f"{(1 - med_a / med_b) * 100:>10.0f}%")
    lines.append(f"{'max':<12}{max_b:>10.0f}{max_a:>10.0f}"
                 f"{(1 - max_a / max_b) * 100:>10.0f}%")
    lines.append(
        f"(paper: median {PAPER_MEDIAN[0]:.0f} -> {PAPER_MEDIAN[1]:.0f}, "
        f"max {PAPER_MAX[0]:.0f} -> {PAPER_MAX[1]:.0f})"
    )
    emit("fig10c_mitigation_time", "\n".join(lines))

    # paper shape: >80%-class reduction at the median, large cut at the max
    paper_assert(med_a < med_b * 0.35)
    paper_assert(max_a < max_b * 0.5)
