"""Figure 10b: incident count per month before vs after the severity filter.

The paper collected nine months of incidents: filtering at severity 10
cuts the count by ~two orders of magnitude down to under one per day while
keeping every real failure.  We compress each "month" into a simulated
busy hour (incident *ratios*, not absolute counts, are the reproducible
shape).
"""

import dataclasses
import os

from repro.analysis.experiments import run_campaign
from repro.core.config import PRODUCTION_CONFIG
from repro.simulation.noise import NoiseProfile
from repro.topology.builder import TopologySpec

N_MONTHS = 2 if os.environ.get("SKYNET_BENCH_TINY") else 9
THRESHOLD = PRODUCTION_CONFIG.severity.alert_threshold

#: months are dominated by loud-but-harmless events (maintenance waves,
#: probe errors) -- the population the severity filter exists to remove
MONTH_NOISE = dataclasses.replace(
    NoiseProfile.noisy(), maintenance_waves_per_hour=8.0
)


def test_fig10b_severity_filter(benchmark, emit, paper_assert):
    def run_months():
        rows = []
        for month in range(N_MONTHS):
            result = run_campaign(
                1800.0,
                n_random_failures=2 + month % 3,
                spec=TopologySpec.benchmark(),
                noise=MONTH_NOISE,
                n_customers=50,
                seed=400 + month,
                severe_fraction=0.3,
            )
            all_incidents = result.reports
            severe = [r for r in all_incidents if r.score >= THRESHOLD]
            missed = 0
            for truth in result.injector.truths_in_window(0, 1e9):
                hit = any(
                    truth.scope.contains(r.incident.root)
                    or r.incident.root.contains(truth.scope)
                    for r in severe
                )
                if not hit:
                    missed += 1
            rows.append((month + 4, len(all_incidents), len(severe), missed))
        return rows

    rows = benchmark.pedantic(run_months, rounds=1, iterations=1)
    lines = [f"Figure 10b: incidents before/after severity filter (>= {THRESHOLD})"]
    lines.append(f"{'month':>6}{'all':>7}{'severe':>8}{'missed failures':>17}")
    total_all = total_severe = total_missed = 0
    for month, n_all, n_severe, missed in rows:
        lines.append(f"{month:>6}{n_all:>7}{n_severe:>8}{missed:>17}")
        total_all += n_all
        total_severe += n_severe
        total_missed += missed
    reduction = total_all / total_severe if total_severe else float("inf")
    lines.append(f"total: {total_all} -> {total_severe} ({reduction:.1f}x fewer)")
    emit("fig10b_incident_filter", "\n".join(lines))

    # paper shape: the filter removes a large share of incidents at zero FN.
    # (The paper sees ~2 orders of magnitude because production months are
    # dominated by harmless events at O(10^5)-device scale; our compressed
    # synthetic months are far more failure-dense, so the *ratio* is
    # smaller -- see EXPERIMENTS.md.)
    paper_assert(total_severe <= total_all * 0.7)
    paper_assert(total_missed == 0, "severity filtering must keep zero FN")
