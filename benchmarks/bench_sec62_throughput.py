"""§6.2 text numbers: preprocessing is a stream (volume reduction measured
elsewhere); locating runs hourly over the preprocessor's output and takes
well under 10 s even in the worst case.

These are the only true micro-benchmarks: preprocessor feed throughput and
one full locator feed+sweep cycle, timed by pytest-benchmark for real.
"""

import os

from repro.core.locator import Locator
from repro.core.preprocessor import Preprocessor
from repro.monitors.base import RawAlert
from repro.topology.builder import TopologySpec, build_topology

BATCH = 800 if os.environ.get("SKYNET_BENCH_TINY") else 5000


def _raw_batch(topo, n):
    devices = sorted(topo.devices)
    types = ["link_down", "port_down", "rx_errors", "high_cpu"]
    return [
        RawAlert(
            tool="snmp",
            raw_type=types[i % len(types)],
            timestamp=float(i % 600),
            device=devices[i % len(devices)],
        )
        for i in range(n)
    ]


def test_sec62_preprocessor_throughput(benchmark, emit):
    topo = build_topology(TopologySpec.benchmark())
    batch = _raw_batch(topo, BATCH)

    def run():
        prep = Preprocessor(topo)
        out = []
        for raw in batch:
            out.extend(prep.feed(raw))
        return out

    out = benchmark(run)
    rate = len(batch) / benchmark.stats["mean"]
    emit(
        "sec62_throughput",
        f"preprocessor: {len(batch)} raw alerts -> {len(out)} structured, "
        f"{rate:,.0f} alerts/s",
    )
    # production sees ~100k alerts/hour (~28/s); we must be far above that
    assert rate > 1000


def test_sec62_locator_cycle(benchmark, emit):
    topo = build_topology(TopologySpec.benchmark())
    prep = Preprocessor(topo)
    structured = []
    for raw in _raw_batch(topo, BATCH):
        structured.extend(prep.feed(raw))

    def cycle():
        locator = Locator(topo)
        for alert in structured:
            locator.feed(alert)
        locator.sweep(700.0)
        return locator

    locator = benchmark(cycle)
    emit(
        "sec62_throughput",
        f"locator: {len(structured)} structured alerts located in "
        f"{benchmark.stats['mean']:.3f} s "
        f"({len(locator.all_incidents())} incidents)",
    )
    # §6.2: locating takes < 10 s even in the worst case
    assert benchmark.stats["mean"] < 10.0
