"""Ablation: the topological-connectivity restriction in Algorithm 2.

DESIGN.md calls out the connectivity-restricted counting as a key design
decision: alerting locations are partitioned into topology-connected
groups before thresholds apply, so unrelated co-located scenes stay apart
(Figure 5c's device n).  The ablation raises ``connectivity_max_hops`` far
enough that everything merges -- the multi-scene DDoS collapses toward one
blob incident, exactly what the restriction prevents.
"""

from repro.analysis.experiments import run_campaign, replay
from repro.core.config import SkyNetConfig
from repro.simulation import scenarios as sc
from repro.topology.builder import TopologySpec, build_topology


def test_connectivity_restriction_separates_scenes(benchmark, emit, paper_assert):
    topo = build_topology(TopologySpec.benchmark())
    attacks = sc.multi_site_ddos(topo, start=30.0, n_sites=5)

    def run():
        result = run_campaign(
            480.0, scenarios=attacks, topology=topo, noise=None,
            n_customers=60, seed=61,
        )
        merged = replay(result, SkyNetConfig(connectivity_max_hops=64))
        return result.reports, merged

    with_restriction, without_restriction = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = ["Ablation: connectivity restriction (5 concurrent DDoS scenes)"]
    lines.append(
        f"with restriction (2 hops): {len(with_restriction)} incidents"
    )
    for report in with_restriction:
        lines.append(f"  {report.incident.location}")
    lines.append(
        f"without restriction (64 hops): {len(without_restriction)} incidents"
    )
    for report in without_restriction:
        lines.append(f"  {report.incident.location}")
    emit("ablation_connectivity", "\n".join(lines))

    paper_assert(
        len(with_restriction) >= 5, "restricted grouping keeps scenes apart"
    )
    paper_assert(
        len(without_restriction) < len(with_restriction),
        "removing the restriction merges unrelated scenes",
    )


def test_uniform_thresholds_across_layers(benchmark, emit):
    """§4.2's second design call-out: thresholds are uniform across location
    layers because a single root-cause alert can explain a whole outage.
    A cluster-level group and a logic-site-level group with identical type
    counts must trigger identically."""
    from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
    from repro.core.locator import Locator
    from repro.topology.hierarchy import Level

    topo = build_topology(TopologySpec())
    logic_site = next(l for l in topo.locations() if l.level is Level.LOGIC_SITE)
    cluster = next(l for l in topo.locations() if l.level is Level.CLUSTER)

    def trigger_at(location):
        locator = Locator(topo)
        for i in range(5):
            locator.feed(
                StructuredAlert(
                    type_key=AlertTypeKey("snmp", f"type{i}"),
                    level=AlertLevel.ABNORMAL,
                    location=location,
                    first_seen=1.0,
                    last_seen=1.0,
                )
            )
        return len(locator.sweep(2.0).opened)

    results = benchmark.pedantic(
        lambda: (trigger_at(cluster), trigger_at(logic_site)),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_connectivity",
        f"uniform thresholds: cluster-level trigger={results[0]}, "
        f"logic-site-level trigger={results[1]}",
    )
    assert results[0] == results[1] == 1
