"""Figure 3: network-failure coverage of each monitoring tool.

The paper measured 3%-84% per-tool coverage -- no single source sees every
failure.  The bench injects two failures of every root-cause category and
asks each tool's single-source detector which it caught.
"""

from repro.baselines.single_source import coverage_by_tool
from repro.monitors.registry import DATA_SOURCES


def test_fig3_per_tool_coverage(benchmark, coverage_campaign, emit, paper_assert):
    result = coverage_campaign
    truths = result.injector.ground_truths

    coverage = benchmark.pedantic(
        lambda: coverage_by_tool(
            result.topology, result.raw_alerts, truths, list(DATA_SOURCES)
        ),
        rounds=1,
        iterations=1,
    )
    lines = [f"Figure 3: failure coverage per tool ({len(truths)} failures)"]
    for tool, fraction in sorted(coverage.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(fraction * 40)
        lines.append(f"{tool:<22}{fraction * 100:>6.1f}%  {bar}")
    emit("fig3_coverage", "\n".join(lines))

    values = list(coverage.values())
    # paper shape: wide spread, nobody complete, best tools dominate
    paper_assert(max(values) < 1.0, "no single tool may cover every failure")
    paper_assert(max(values) >= 0.5, "the strongest sources cover most failures")
    paper_assert(min(values) <= 0.25, "narrow sources cover only a thin slice")
    paper_assert(
        max(values) - min(values) >= 0.4, "coverage must span a wide range"
    )
