"""Baseline comparison: SkyNet vs Alertmanager-style window grouping.

Not a paper figure, but the obvious prior-art question: how much of
SkyNet's value is just 'group by label and time window'?  On the §2.2
flood, window grouping either floods the operator with per-site buckets
or loses the scene structure -- and it has no severity to rank by.
"""

from repro.baselines.window_grouping import WindowGroupingDetector
from repro.core.preprocessor import Preprocessor
from repro.topology.hierarchy import Level


def test_window_grouping_baseline(benchmark, flood_campaign, emit, paper_assert):
    result, scenario = flood_campaign

    def run():
        prep = Preprocessor(result.topology)
        structured = prep.process(result.raw_alerts)
        fine = WindowGroupingDetector(group_level=Level.SITE, window_s=300.0)
        coarse = WindowGroupingDetector(group_level=Level.REGION, window_s=300.0)
        return structured, fine.group(structured), coarse.group(structured)

    structured, fine_groups, coarse_groups = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    skynet_incidents = len(result.reports)
    lines = ["Baseline: Alertmanager-style grouping vs SkyNet (§2.2 flood)"]
    lines.append(f"{'system':<34}{'notifications':>14}")
    lines.append(f"{'window grouping (site, 5 min)':<34}{len(fine_groups):>14}")
    lines.append(f"{'window grouping (region, 5 min)':<34}{len(coarse_groups):>14}")
    lines.append(f"{'SkyNet incidents':<34}{skynet_incidents:>14}")
    lines.append(
        "window grouping has no alert levels, no topology, no severity: "
        "the operator still reads every bucket"
    )
    emit("baseline_window_grouping", "\n".join(lines))

    # fine-grained grouping floods the operator relative to SkyNet
    paper_assert(len(fine_groups) > skynet_incidents)
    # coarse grouping collapses structure but still cannot rank anything
    assert all(not hasattr(g, "severity") for g in coarse_groups)
