"""Figure 7: the reachability-matrix example.

A cluster-level packet-loss hot spot produces a dark row and column; the
zoom-in reads that focal point as the incident location.
"""

from repro.core.zoom_in import PingWindow
from repro.monitors.ping import PingMonitor
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.hierarchy import Level
from repro.topology.network import DeviceRole
from repro.topology.traffic import generate_traffic
from repro.viz.render import render_matrix_heatmap


def test_fig7_reachability_matrix(benchmark, emit):
    topo = build_topology(TopologySpec())
    state = NetworkState(topo, generate_traffic(topo, n_customers=30, seed=71))
    # break both switches of one cluster: its row+column go dark
    victim = next(l for l in topo.locations() if l.level is Level.CLUSTER)
    for device in topo.devices_at(victim):
        if device.role is DeviceRole.CLUSTER_SWITCH:
            state.add_condition(
                Condition(
                    ConditionKind.DEVICE_SILENT_LOSS, device.name, 0.0,
                    params={"loss_rate": 0.12},
                )
            )
    state.set_time(10.0)

    def build_matrix():
        window = PingWindow(topo)
        monitor = PingMonitor(state)
        for alert in monitor.observe(10.0):
            window.observe(alert)
        return window.matrix(now=20.0, level=Level.CLUSTER)

    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)
    lines = ["Figure 7: reachability matrix (percent loss; '#' dark cell)"]
    lines.append(render_matrix_heatmap(matrix))
    focal = matrix.focal_point()
    lines.append(f"\nfocal point -> {focal}")
    emit("fig7_reachability_matrix", "\n".join(lines))

    assert focal == victim, "the dark row+column must name the victim cluster"
    # dark row/column vs light background
    assert matrix.row_col_mean(victim) > 0.05
    others = [l for l in matrix.locations if l != victim]
    for a in others:
        for b in others:
            if a < b:
                assert matrix.cell(a, b) < 0.05
