"""Tables 1 and 2: monitoring tool inventory and SkyNet's data sources.

Table 1 lists prior single-source tools; Table 2 the twelve sources SkyNet
ingests.  The bench regenerates Table 2 from the live registry (every entry
must have a working monitor class) and prints Table 1's catalogue.
"""

from repro.monitors.registry import DATA_SOURCES, MONITOR_CLASSES, build_monitors
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology

#: Table 1 of the paper: prior tools, production status, data source.
TABLE1 = [
    ("RD-Probe", True, "Ping"),
    ("Pingmesh", True, "Ping"),
    ("NetNORAD", True, "Ping"),
    ("deTector", False, "Ping"),
    ("Dynamic mining", True, "Syslog"),
    ("007", True, "traceroute"),
    ("Roy et al.", True, "INT"),
    ("Netbouncer", True, "INT"),
    ("PTPMesh", False, "PTP"),
    ("Shin et al.", False, "SNMP"),
    ("Redfish-Nagios", True, "Out-of-band"),
]


def test_table1_prior_tools(benchmark, emit):
    rows = benchmark.pedantic(lambda: list(TABLE1), rounds=1, iterations=1)
    lines = ["Table 1: existing tools and their (single) data sources"]
    lines.append(f"{'tool':<18}{'in production':<15}{'data source'}")
    for tool, production, source in rows:
        lines.append(f"{tool:<18}{str(production):<15}{source}")
    emit("table1_prior_tools", "\n".join(lines))
    assert len({source for _, _, source in rows}) >= 5


def test_table2_skynet_data_sources(benchmark, emit):
    topo = build_topology(TopologySpec.tiny())
    state = NetworkState(topo)

    monitors = benchmark.pedantic(
        lambda: build_monitors(state), rounds=1, iterations=1
    )
    lines = ["Table 2: network monitoring tools used by SkyNet"]
    lines.append(f"{'data source':<22}{'period':>8}  description")
    by_name = {m.name: m for m in monitors}
    for name, description in DATA_SOURCES.items():
        monitor = by_name[name]
        lines.append(f"{name:<22}{monitor.period_s:>6.0f}s  {description}")
    emit("table2_data_sources", "\n".join(lines))
    assert len(monitors) == 12
    assert set(MONITOR_CLASSES) == set(DATA_SOURCES)
