"""Figure 5d: correlation between incidents and the three alert levels.

The paper's bars: nearly 100% of *failure incidents* contain failure
alerts, a lower share of *all incidents* do, and among all alerts the
failure level is a small minority -- which is exactly why failure alerts
are authoritative for detection (§4.2).
"""

from repro.core.alert import AlertLevel


def _contains_failure_alert(incident):
    return any(r.level is AlertLevel.FAILURE for r in incident.records())


def test_fig5d_alert_level_correlation(benchmark, mixed_campaign, emit, paper_assert):
    result = mixed_campaign

    def compute():
        incidents = result.incidents
        failure_incidents = [
            i
            for i in incidents
            if result.injector.matching_truth(
                i.root, i.start_time, i.end_time, impacting_only=True
            )
            is not None
        ]
        # share per level over distinct (type, location) records -- the
        # frequency-normalised view (§4.1): a ping type probing every 2 s
        # must not outweigh a one-shot syslog line
        level_counts = {level: 0 for level in AlertLevel}
        for incident in incidents:
            for record in incident.records():
                level_counts[record.level] += 1
        return incidents, failure_incidents, level_counts

    incidents, failure_incidents, level_counts = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    if not (incidents and failure_incidents):
        paper_assert(False, "campaign must produce failure incidents")
        return

    failure_inc_ratio = sum(
        1 for i in failure_incidents if _contains_failure_alert(i)
    ) / len(failure_incidents)
    all_inc_ratio = sum(1 for i in incidents if _contains_failure_alert(i)) / len(
        incidents
    )
    total_alerts = sum(level_counts.values())
    shares = {
        level: level_counts[level] / total_alerts if total_alerts else 0.0
        for level in AlertLevel
    }

    lines = ["Figure 5d: correlation between incidents and alert levels"]
    lines.append(
        f"failure incidents containing failure alerts: {failure_inc_ratio * 100:5.1f}%"
    )
    lines.append(
        f"all incidents containing failure alerts:     {all_inc_ratio * 100:5.1f}%"
    )
    lines.append(
        f"failure alerts share of all alerts:          {shares[AlertLevel.FAILURE] * 100:5.1f}%"
    )
    lines.append(
        f"behavior (abnormal) alerts share:            {shares[AlertLevel.ABNORMAL] * 100:5.1f}%"
    )
    lines.append(
        f"root cause alerts share:                     {shares[AlertLevel.ROOT_CAUSE] * 100:5.1f}%"
    )
    emit("fig5d_alert_correlation", "\n".join(lines))

    # paper shape: failure incidents virtually always carry failure alerts,
    # even though failure-level records are a minority of everything seen
    paper_assert(failure_inc_ratio >= 0.9)
    paper_assert(failure_inc_ratio >= all_inc_ratio)
    paper_assert(shares[AlertLevel.FAILURE] < 0.5)
