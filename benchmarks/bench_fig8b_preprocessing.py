"""Figure 8b: alert volume before vs after preprocessing.

The paper's scatter: ~100k raw alerts/hour reduce to <10k normally and
stay <50k even in extreme floods -- roughly an order of magnitude.  The
bench sweeps flood intensity and reports (before, after) pairs.
"""

from repro.analysis.experiments import run_campaign
from repro.simulation import scenarios as sc
from repro.simulation.noise import NoiseProfile
from repro.topology.builder import TopologySpec, build_topology

#: flood intensities: (label, number of severe scenarios, noise profile)
SWEEP = [
    ("quiet", 0, NoiseProfile.quiet()),
    ("normal", 0, NoiseProfile()),
    ("busy", 1, NoiseProfile()),
    ("flood", 2, NoiseProfile.noisy()),
]


def test_fig8b_volume_reduction(benchmark, emit, paper_assert):
    def sweep():
        rows = []
        for label, n_severe, noise in SWEEP:
            topo = build_topology(TopologySpec())
            scenarios = []
            if n_severe >= 1:
                scenarios.append(sc.internet_entrance_cable_cut(topo, start=60.0))
            if n_severe >= 2:
                scenarios.extend(sc.multi_site_ddos(topo, start=120.0, n_sites=3))
            result = run_campaign(
                900.0, scenarios=scenarios, topology=topo, noise=noise,
                n_customers=40, seed=81,
            )
            stats = result.skynet.preprocess_stats
            rows.append((label, stats.raw_in, stats.emitted))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Figure 8b: alert count before vs after preprocessing (15 min)"]
    lines.append(f"{'load':<10}{'before':>10}{'after':>10}{'reduction':>11}")
    for label, before, after in rows:
        factor = before / after if after else float("inf")
        lines.append(f"{label:<10}{before:>10}{after:>10}{factor:>10.1f}x")
    emit("fig8b_preprocessing", "\n".join(lines))

    # paper shape: volume grows monotonically with load, and preprocessing
    # cuts it by several-fold at every point
    befores = [b for _, b, _ in rows]
    paper_assert(befores == sorted(befores))
    for _, before, after in rows:
        if before >= 100:
            paper_assert(after <= before / 3)
    # the extreme case stays bounded relative to its input
    flood_before, flood_after = rows[-1][1], rows[-1][2]
    paper_assert(flood_after < flood_before / 2)
