"""Figure 8a: locating accuracy vs. number of data sources.

The paper removes data sources starting from the lowest-coverage ones and
measures SkyNet's false positives/negatives with All/6/4/3 sources left:
fewer sources barely move FP but drive FN up -- the argument for
integrating everything.

Removing a source from a recorded run is equivalent to filtering its
alerts out of the stream before replaying SkyNet.
"""

from repro.analysis.metrics import score_incidents
from repro.core.pipeline import SkyNet
from repro.monitors.registry import COVERAGE_ORDER

SOURCE_COUNTS = [12, 6, 4, 3]


def _replay_with_sources(result, kept_sources):
    alerts = [a for a in result.raw_alerts if a.tool in kept_sources]
    skynet = SkyNet(result.topology, state=result.state, traffic=result.traffic)
    reports = skynet.process(alerts)
    return [r.incident for r in reports]


def test_fig8a_accuracy_vs_source_count(
    benchmark, coverage_campaign, emit, paper_assert
):
    result = coverage_campaign

    def sweep():
        rows = []
        for n in SOURCE_COUNTS:
            kept = COVERAGE_ORDER[-n:]  # drop low-coverage sources first
            incidents = _replay_with_sources(result, kept)
            rows.append((n, score_incidents(incidents, result.injector)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Figure 8a: locating accuracy vs data source count"]
    lines.append(f"{'sources':>8}{'FP %':>8}{'FN %':>8}")
    for n, report in rows:
        label = "All" if n == len(COVERAGE_ORDER) else str(n)
        lines.append(
            f"{label:>8}{report.false_positive_ratio * 100:>7.1f}%"
            f"{report.false_negative_ratio * 100:>7.1f}%"
        )
    emit("fig8a_source_ablation", "\n".join(lines))

    by_n = dict(rows)
    # paper shape: full sources have zero FN; ablation raises FN
    paper_assert(by_n[12].false_negative_ratio == 0.0)
    paper_assert(by_n[3].false_negative_ratio > by_n[12].false_negative_ratio)
    # FP stays comparatively flat (within 25 points across the sweep)
    fps = [r.false_positive_ratio for _, r in rows]
    paper_assert(max(fps) - min(fps) <= 0.25)
