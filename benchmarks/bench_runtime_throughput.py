"""Runtime sharding benchmark: locate-stage throughput vs shard count
and execution backend.

Replays a seeded *rolling* severe-failure storm (continuous failures
and recoveries, ~20% of the fabric down at any instant) through the
sharded locator at shard counts {1, 2, 4}, on both the reference and
``fast_path`` grouping rules, on both execution backends -- ``inproc``
(:class:`repro.runtime.ShardedLocator`, all shards on one thread) and
``mp`` (:class:`repro.runtime.MPShardedLocator`, one spawned worker
process per shard) -- and reports alerts/sec through the locate stage.
Output identity across every (shards, backend) cell is asserted on
every tier (the differential gate of
``tests/runtime/test_shard_invariance.py``, re-checked here at flood
scale), so the throughput numbers are for *exactly equivalent* work.

The committed ``BENCH_runtime_throughput.json`` documents the payoff the
runtime's shard router buys on the reference rules, where grouping cost
is quadratic in live tree locations: partitioning the benchmark fabric's
regions over shards divides that quadratic term even on a single core.
The ``mp`` rows add what worker processes buy on top: on a multi-core
host the per-shard partition work runs concurrently, so the report
asserts >=1.5x mp-over-inproc at 4 shards on the 50k tier *when the
host has >=2 cores* (``cpu_count`` is recorded in the JSON; on a
single-core host mp can only measure its IPC overhead, so the assert is
skipped and the honest slowdown is committed instead).

Environment knobs (same contract as bench_perf_flood):

* ``SKYNET_BENCH_TIERS`` -- comma list of tiers (``1k,10k,50k`` or
  ``all``; default ``1k,10k``).  CI's runtime-smoke job runs ``1k``.
* ``SKYNET_BENCH_TINY`` -- miniature tier on the tiny topology for
  tests/test_bench_smoke.py.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import random
import re
import time
from typing import Dict, List, Tuple

from repro.core.config import PRODUCTION_CONFIG
from repro.core.preprocessor import Preprocessor
from repro.monitors import build_monitors
from repro.monitors.stream import AlertStream
from repro.runtime.sharding import ShardedLocator
from repro.runtime.workers import MPShardedLocator
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology

if os.environ.get("SKYNET_BENCH_TINY"):
    JSON_PATH = (
        pathlib.Path(__file__).parent
        / "results-tiny"
        / "BENCH_runtime_throughput.json"
    )
else:
    JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_runtime_throughput.json"

_TIERS = {"1k": 1_000, "10k": 10_000, "50k": 50_000}
SHARD_COUNTS = (1, 2, 4)
BACKENDS = ("inproc", "mp")


def _selected_tiers() -> List[Tuple[str, int]]:
    if os.environ.get("SKYNET_BENCH_TINY"):
        return [("tiny", 200)]
    raw = os.environ.get("SKYNET_BENCH_TIERS", "1k,10k")
    if raw.strip().lower() == "all":
        return list(_TIERS.items())
    out = []
    for token in raw.split(","):
        token = token.strip()
        if token in _TIERS:
            out.append((token, _TIERS[token]))
    return out or [("1k", _TIERS["1k"])]


def _topology():
    if os.environ.get("SKYNET_BENCH_TINY"):
        return build_topology(TopologySpec.tiny())
    return build_topology(TopologySpec.benchmark())


def _flood(topo, n: int, seed: int) -> List[Tuple[float, object]]:
    """Rolling severe-failure storm, pre-preprocessed to ``n`` structured
    alerts -- the locate stage's input unit.

    Unlike ``bench_perf_flood``'s one permanent wave, devices here fail
    *and recover* continuously (each outage 10-20 min, ~20% of the fabric
    down at any instant over a 2 h horizon).  That is the Sec. 2.2 regime
    the runtime targets: the alerting-location set keeps churning, so the
    quadratic grouping term keeps being paid -- which is exactly the work
    the shard router divides.
    """
    rng = random.Random(seed)
    state = NetworkState(topo)
    devices = sorted(topo.devices)
    horizon = 7_200.0
    mean_outage = 900.0
    target_down = max(3, len(devices) // 5)
    for _ in range(int(target_down * horizon / mean_outage)):
        start = 60.0 + rng.uniform(0.0, horizon)
        state.add_condition(
            Condition(
                kind=ConditionKind.DEVICE_DOWN,
                target=rng.choice(devices),
                start=start,
                end=start + rng.uniform(600.0, 1_200.0),
            )
        )
    prep = Preprocessor(topo, PRODUCTION_CONFIG)
    structured: List[Tuple[float, object]] = []
    for raw in AlertStream(state, build_monitors(state, seed=seed)).run(86_400.0):
        for alert in prep.feed(raw):
            structured.append((raw.delivered_at, alert))
        if len(structured) >= n:
            break
    return structured


def _locate(
    topo, structured, shards: int, fast: bool, backend: str
) -> Tuple[float, ShardedLocator]:
    config = dataclasses.replace(
        PRODUCTION_CONFIG,
        fast_path=fast,
        runtime=dataclasses.replace(
            PRODUCTION_CONFIG.runtime, shards=shards, backend=backend
        ),
    )
    # workers are leased from the long-lived pool *before* the clock
    # starts: process spawn is a once-per-service cost, not per-alert
    if backend == "mp":
        locator: ShardedLocator = MPShardedLocator(topo, config)
    else:
        locator = ShardedLocator(topo, config)
    interval = config.sweep_interval_s
    start = time.perf_counter()
    last_sweep = float("-inf")
    now = float("-inf")
    for t, alert in structured:
        now = max(now, t)
        locator.feed(alert)
        if now - last_sweep >= interval:
            locator.sweep(now)
            last_sweep = now
    locator.sweep(now + 2 * PRODUCTION_CONFIG.incident_timeout_s)
    return time.perf_counter() - start, locator


def _fingerprint(locator: ShardedLocator) -> List[str]:
    return sorted(
        re.sub(r"incident-\d+", "incident-N", incident.render())
        for incident in locator.all_incidents()
    )


def test_runtime_throughput(emit):
    topo = _topology()
    seed = 2025
    cpu_count = os.cpu_count() or 1
    report: Dict = {
        "bench": "runtime_throughput",
        "seed": seed,
        "cpu_count": cpu_count,
        "topology": topo.stats(),
        "shard_counts": list(SHARD_COUNTS),
        "backends": list(BACKENDS),
        "tiers": [],
    }
    for name, n in _selected_tiers():
        structured = _flood(topo, n, seed)
        tier: Dict = {
            "name": name,
            "structured_alerts": len(structured),
            "rows": [],
        }
        expected = None
        speedup_at = {}  # (backend, rules, shards) -> x over 1 shard
        seconds_at = {}  # (backend, rules, shards) -> locate seconds
        for backend in BACKENDS:
            for fast in (False, True):
                rules = "fast" if fast else "reference"
                base_s = None
                for shards in SHARD_COUNTS:
                    seconds, locator = _locate(
                        topo, structured, shards, fast, backend
                    )
                    fp = _fingerprint(locator)
                    if isinstance(locator, MPShardedLocator):
                        locator.close()
                    if expected is None:
                        expected = fp
                        tier["incidents"] = len(fp)
                    assert fp == expected, (
                        f"tier {name}: {backend} backend, {rules} rules at "
                        f"{shards} shard(s) diverged from the reference output"
                    )
                    if base_s is None:
                        base_s = seconds
                    speedup = base_s / seconds if seconds > 0 else float("inf")
                    speedup_at[(backend, rules, shards)] = speedup
                    seconds_at[(backend, rules, shards)] = seconds
                    throughput = (
                        len(structured) / seconds if seconds > 0 else 0.0
                    )
                    row = {
                        "backend": backend,
                        "rules": rules,
                        "shards": shards,
                        "locate_s": round(seconds, 4),
                        "alerts_per_s": round(throughput, 1),
                        "speedup_vs_1_shard": round(speedup, 2),
                    }
                    inproc_s = seconds_at.get(("inproc", rules, shards))
                    if backend == "mp" and inproc_s:
                        row["speedup_vs_inproc"] = round(inproc_s / seconds, 2)
                    tier["rows"].append(row)
                    emit(
                        "runtime_throughput",
                        f"{name} {backend:6s} {rules:9s} shards={shards}: "
                        f"{seconds:.3f}s locate, {throughput:,.0f} alerts/s "
                        f"({speedup:.2f}x vs 1 shard)",
                    )
        report["tiers"].append(tier)
        # the tentpole target: sharding pays for itself where grouping is
        # quadratic -- >=2x locate throughput at 4 shards on the 50k tier
        if name == "50k":
            assert speedup_at[("inproc", "reference", 4)] >= 2.0, (
                f"50k reference 4-shard speedup "
                f"{speedup_at[('inproc', 'reference', 4)]:.2f}x below the "
                f"2x target"
            )
            # worker processes must beat the in-process backend where there
            # are cores to run them on; a single-core host can only measure
            # mp's IPC overhead, so the honest numbers are committed but
            # the parallel-speedup target is not asserted
            mp_gain = (
                seconds_at[("inproc", "reference", 4)]
                / seconds_at[("mp", "reference", 4)]
            )
            if cpu_count >= 2:
                assert mp_gain >= 1.5, (
                    f"50k reference 4-shard mp-over-inproc speedup "
                    f"{mp_gain:.2f}x below the 1.5x target "
                    f"({cpu_count} cores)"
                )
            else:
                emit(
                    "runtime_throughput",
                    f"50k mp-over-inproc {mp_gain:.2f}x on a single core; "
                    f">=1.5x target needs >=2 cores, skipping assert",
                )

    JSON_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    emit("runtime_throughput", f"wrote {JSON_PATH.name}")
