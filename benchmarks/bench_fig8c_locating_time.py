"""Figure 8c: the time cost of locating vs alert count.

The paper: locating failures takes <10 s even in the worst case, with a
positive correlation between alert volume and locating time.  The bench
feeds the locator growing synthetic alert batches and wall-clocks a full
feed+sweep cycle.
"""

import os
import time

from repro.core.alert import AlertLevel, AlertTypeKey, StructuredAlert
from repro.core.locator import Locator
from repro.topology.builder import TopologySpec, build_topology

if os.environ.get("SKYNET_BENCH_TINY"):
    BATCH_SIZES = [100, 400, 1500]
else:
    BATCH_SIZES = [500, 2000, 8000, 20000]


def _make_alerts(topo, n):
    """n alerts spread across devices with a handful of types."""
    devices = sorted(topo.devices)
    types = ["link_down", "port_down", "rx_errors", "traffic_congestion",
             "high_cpu"]
    alerts = []
    for i in range(n):
        device = topo.device(devices[i % len(devices)])
        alerts.append(
            StructuredAlert(
                type_key=AlertTypeKey("snmp", types[i % len(types)]),
                level=AlertLevel.ROOT_CAUSE if i % 3 else AlertLevel.FAILURE,
                location=device.location,
                first_seen=float(i % 200),
                last_seen=float(i % 200),
                device=device.name,
            )
        )
    return alerts


def test_fig8c_locating_time(benchmark, emit, paper_assert):
    topo = build_topology(TopologySpec.benchmark())

    def sweep():
        rows = []
        for n in BATCH_SIZES:
            alerts = _make_alerts(topo, n)
            locator = Locator(topo)
            t0 = time.perf_counter()
            for alert in alerts:
                locator.feed(alert)
            locator.sweep(300.0)
            elapsed = time.perf_counter() - t0
            rows.append((n, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Figure 8c: locating time vs alert count"]
    lines.append(f"{'alerts':>8}{'time (s)':>10}")
    for n, elapsed in rows:
        lines.append(f"{n:>8}{elapsed:>10.3f}")
    emit("fig8c_locating_time", "\n".join(lines))

    # paper shape: worst case well under 10 s, positively correlated
    assert all(elapsed < 10.0 for _, elapsed in rows)
    # (correlation is timing-noise-sensitive at smoke scale)
    paper_assert(rows[-1][1] > rows[0][1])
