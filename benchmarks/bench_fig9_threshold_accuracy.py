"""Figure 9: accuracy with different incident-generation parameters.

The x-axis format ``A/B+C/D`` means "A failure alerts", "B failure + C
other", or "D any alerts"; 0 disables a clause.  The paper also shows the
"type+location" variant (duplicate types at different locations counted
separately), which avoids FN but explodes FP to ~70%.

Production runs ``2/1+2/5``: the lowest FP among the zero-FN settings.
"""

from repro.analysis.experiments import replay
from repro.analysis.metrics import score_incidents
from repro.core.config import IncidentThresholds, SkyNetConfig

#: Figure 9's x axis, in order.
PARAMETER_POINTS = [
    "type+location",
    "0/1+2/5",
    "2/0+0/5",
    "2/1+2/0",
    "1/1+2/5",
    "2/1+2/4",
    "2/1+1/5",
    "2/1+2/5",  # production
    "2/1+3/5",
    "2/1+2/6",
]


def _config_for(point: str) -> SkyNetConfig:
    if point == "type+location":
        return SkyNetConfig(count_by_type=False)
    return SkyNetConfig(thresholds=IncidentThresholds.parse(point))


def test_fig9_threshold_sweep(benchmark, threshold_campaign, emit, paper_assert):
    result = threshold_campaign

    def sweep():
        rows = []
        for point in PARAMETER_POINTS:
            reports = replay(result, _config_for(point))
            accuracy = score_incidents(
                [r.incident for r in reports], result.injector
            )
            rows.append((point, accuracy))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Figure 9: accuracy with different parameters (A/B+C/D)"]
    lines.append(f"{'threshold':<16}{'FP %':>8}{'FN %':>8}{'incidents':>11}")
    for point, accuracy in rows:
        lines.append(
            f"{point:<16}{accuracy.false_positive_ratio * 100:>7.1f}%"
            f"{accuracy.false_negative_ratio * 100:>7.1f}%"
            f"{accuracy.incident_count:>11}"
        )
    emit("fig9_threshold_accuracy", "\n".join(lines))

    by_point = dict(rows)
    production = by_point["2/1+2/5"]
    # paper shape 1: production settings reach zero false negatives
    paper_assert(production.false_negative_ratio == 0.0)
    # paper shape 2: per-(type, location) counting floods false positives
    paper_assert(
        by_point["type+location"].false_positive_ratio
        > production.false_positive_ratio
    )
    paper_assert(by_point["type+location"].false_negative_ratio == 0.0)
    # paper shape 3: production has the lowest FP among zero-FN settings
    zero_fn = [a for _, a in rows if a.false_negative_ratio == 0.0]
    if zero_fn:
        paper_assert(
            production.false_positive_ratio
            <= min(a.false_positive_ratio for a in zero_fn) + 1e-9
        )
    # paper shape 4: deviating from production causes misses -- disabling
    # the combo clause loses the thin-corroboration failure, and so does
    # tightening it; at least two non-production settings pay in FN
    paper_assert(by_point["2/0+0/5"].false_negative_ratio > 0.0)
    fn_settings = [
        point
        for point, accuracy in rows
        if point != "2/1+2/5" and accuracy.false_negative_ratio > 0.0
    ]
    paper_assert(
        len(fn_settings) >= 2, f"expected >=2 lossy settings, got {fn_settings}"
    )
    # paper shape 5: looser settings pay in false positives
    paper_assert(
        by_point["1/1+2/5"].false_positive_ratio
        > production.false_positive_ratio
    )
