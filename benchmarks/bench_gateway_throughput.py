"""Gateway serving benchmark: end-to-end ingestion throughput by
transport, execution backend and shard count -- with the identity gate
asserted on every cell.

Replays a seeded rolling severe-failure storm as *raw* alerts through a
full :class:`repro.gateway.GatewayService` -- registry validation,
deterministic sequencing, admission, journal-less runtime pipeline --
over both carriers (``loopback``: in-process, through the real frame
codec; ``socket``: framed JSONL over TCP with one request/reply
round-trip per alert), on both locator backends (``inproc``/``mp``) at
shard counts {1, 2, 4}.  Every cell's served incident reports are
asserted **byte-identical, incident ids included**, to an offline
:class:`repro.runtime.service.RuntimeService` replay of the same admitted
stream -- the ISSUE's signature property, re-checked at flood scale on
every tier -- so the alerts/sec numbers are for exactly equivalent work.

The committed ``BENCH_gateway_throughput.json`` documents what serving
costs on top of the bare pipeline: the loopback rows price the gateway
machinery itself (sequencer + registry + event log), the socket rows add
the wire (codec + TCP round-trip per alert), and the per-cell
``vs_loopback`` ratio isolates the transport tax from the pipeline work.

Environment knobs (same contract as bench_runtime_throughput):

* ``SKYNET_BENCH_TIERS`` -- comma list of tiers (``1k,10k`` or ``all``;
  default ``1k,10k``).  CI's gateway-smoke job runs ``1k``.
* ``SKYNET_BENCH_TINY`` -- miniature tier on the tiny topology for
  tests/test_bench_smoke.py.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import os
import pathlib
import random
import time
from typing import Dict, List, Tuple

from repro.core.config import PRODUCTION_CONFIG
from repro.gateway import (
    GatewayClient,
    GatewayParams,
    GatewayService,
    GatewaySocketServer,
    LoopbackTransport,
    SOURCE_PRIORITY,
)
from repro.gateway.cli import _substreams
from repro.monitors import build_monitors
from repro.monitors.base import RawAlert
from repro.monitors.stream import AlertStream
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.journal import raw_to_json
from repro.runtime.service import RuntimeService
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology

if os.environ.get("SKYNET_BENCH_TINY"):
    JSON_PATH = (
        pathlib.Path(__file__).parent
        / "results-tiny"
        / "BENCH_gateway_throughput.json"
    )
else:
    JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_gateway_throughput.json"

_TIERS = {"1k": 1_000, "10k": 10_000}
SHARD_COUNTS = (1, 2, 4)
BACKENDS = ("inproc", "mp")
TRANSPORTS = ("loopback", "socket")

#: identity requires zero queue sheds; the bench prices ordering, not loss
PARAMS = GatewayParams(queue_limit=10**9)


def _selected_tiers() -> List[Tuple[str, int]]:
    if os.environ.get("SKYNET_BENCH_TINY"):
        return [("tiny", 300)]
    raw = os.environ.get("SKYNET_BENCH_TIERS", "1k,10k")
    if raw.strip().lower() == "all":
        return list(_TIERS.items())
    out = []
    for token in raw.split(","):
        token = token.strip()
        if token in _TIERS:
            out.append((token, _TIERS[token]))
    return out or [("1k", _TIERS["1k"])]


def _topology():
    if os.environ.get("SKYNET_BENCH_TINY"):
        return build_topology(TopologySpec.tiny())
    return build_topology(TopologySpec.benchmark())


def _flood(topo, n: int, seed: int):
    """Rolling severe-failure storm, capped at ``n`` raw alerts, split
    into per-source substreams plus their deterministic merged order."""
    rng = random.Random(seed)
    state = NetworkState(topo)
    devices = sorted(topo.devices)
    horizon = 7_200.0
    mean_outage = 900.0
    target_down = max(3, len(devices) // 5)
    for _ in range(int(target_down * horizon / mean_outage)):
        start = 60.0 + rng.uniform(0.0, horizon)
        state.add_condition(
            Condition(
                kind=ConditionKind.DEVICE_DOWN,
                target=rng.choice(devices),
                start=start,
                end=start + rng.uniform(600.0, 1_200.0),
            )
        )
    raws: List[RawAlert] = []
    for raw in AlertStream(state, build_monitors(state, seed=seed)).run(86_400.0):
        raws.append(raw)
        if len(raws) >= n:
            break
    split = _substreams(raws)
    merged = [
        raw
        for _t, _p, raw in heapq.merge(
            *(
                ((r.timestamp, SOURCE_PRIORITY[tool], r) for r in substream)
                for tool, substream in sorted(split.items())
            )
        )
    ]
    return state, split, merged


def _config(shards: int, backend: str):
    return dataclasses.replace(
        PRODUCTION_CONFIG,
        fast_path=True,
        runtime=dataclasses.replace(
            PRODUCTION_CONFIG.runtime, shards=shards, backend=backend
        ),
    )


def _offline_reference(topo, state, merged) -> List[Tuple[str, str]]:
    set_incident_counter(1)
    runtime = RuntimeService(
        topo,
        config=dataclasses.replace(PRODUCTION_CONFIG, fast_path=True),
        state=state,
    )
    for raw in merged:
        runtime.ingest(raw)
    runtime.pipeline.finish()
    return [
        (r.incident.incident_id, r.render()) for r in runtime.reports()
    ]


def _serve_flood(
    topo, state, split, merged, shards: int, backend: str, transport: str
) -> Tuple[float, List[Tuple[str, str]]]:
    """One timed run: submit the whole storm, eof, finish, fetch reports.

    The clock covers the full served path -- idle-source eofs, every
    submit round-trip, closing eofs and the finish flush -- because that
    is what a monitor fleet pays end to end.
    """
    set_incident_counter(1)
    service = GatewayService(
        topo, config=_config(shards, backend), state=state, params=PARAMS
    )
    server = None
    try:
        if transport == "socket":
            server = GatewaySocketServer(service.handle, PARAMS)
            server.start()
            host, port = server.address
            carrier = GatewayClient(host, port, timeout_s=60.0)
        else:
            carrier = LoopbackTransport(service.handle)
        start = time.perf_counter()
        for tool in sorted(SOURCE_PRIORITY):
            if tool not in split:
                carrier.request({"op": "eof", "source": tool})
        for raw in merged:
            reply = carrier.request({"op": "submit", "raw": raw_to_json(raw)})
            assert reply["ok"] and reply["admitted"], reply
        for tool in sorted(split):
            carrier.request({"op": "eof", "source": tool})
        assert carrier.request({"op": "finish"})["ok"]
        seconds = time.perf_counter() - start
        reports = carrier.request({"op": "reports"})["reports"]
        if transport == "socket":
            carrier.close()  # type: ignore[union-attr]
        return seconds, [
            (r["incident_id"], r["render"]) for r in reports  # type: ignore[union-attr]
        ]
    finally:
        if server is not None:
            server.stop()
        service.shutdown()


def test_gateway_throughput(emit):
    topo = _topology()
    seed = 2025
    report: Dict = {
        "bench": "gateway_throughput",
        "seed": seed,
        "cpu_count": os.cpu_count() or 1,
        "topology": topo.stats(),
        "shard_counts": list(SHARD_COUNTS),
        "backends": list(BACKENDS),
        "transports": list(TRANSPORTS),
        "tiers": [],
    }
    for name, n in _selected_tiers():
        state, split, merged = _flood(topo, n, seed)
        reference = _offline_reference(topo, state, merged)
        tier: Dict = {
            "name": name,
            "raw_alerts": len(merged),
            "sources": len(split),
            "incidents": len(reference),
            "rows": [],
        }
        loopback_s: Dict[Tuple[str, int], float] = {}
        for transport in TRANSPORTS:
            for backend in BACKENDS:
                for shards in SHARD_COUNTS:
                    seconds, served = _serve_flood(
                        topo, state, split, merged, shards, backend, transport
                    )
                    # the identity gate, ids included, on every cell
                    assert served == reference, (
                        f"tier {name}: {transport}/{backend} at {shards} "
                        f"shard(s) served a different incident stream than "
                        f"the offline replay"
                    )
                    throughput = len(merged) / seconds if seconds > 0 else 0.0
                    row = {
                        "transport": transport,
                        "backend": backend,
                        "shards": shards,
                        "serve_s": round(seconds, 4),
                        "alerts_per_s": round(throughput, 1),
                    }
                    if transport == "loopback":
                        loopback_s[(backend, shards)] = seconds
                    else:
                        base = loopback_s.get((backend, shards))
                        if base and seconds > 0:
                            row["vs_loopback"] = round(base / seconds, 2)
                    tier["rows"].append(row)
                    emit(
                        "gateway_throughput",
                        f"{name} {transport:8s} {backend:6s} shards={shards}: "
                        f"{seconds:.3f}s serve, {throughput:,.0f} alerts/s",
                    )
        report["tiers"].append(tier)

    JSON_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    emit("gateway_throughput", f"wrote {JSON_PATH.name}")
