"""Figure 10a: severity score distribution, all incidents vs failure
incidents.

The paper's boxplot (scores capped at 100): incidents attributable to real
network failures score markedly higher than the general population, which
is what justifies the severity threshold of 10 (§6.4).
"""

from repro.analysis.metrics import percentile


def _capped_scores(reports):
    return [min(r.score, 100.0) for r in reports]


def test_fig10a_severity_distribution(benchmark, mixed_campaign, emit, paper_assert):
    result = mixed_campaign

    def split():
        failure, everything = [], []
        for report in result.reports:
            everything.append(report)
            incident = report.incident
            if result.injector.matching_truth(
                incident.root, incident.start_time, incident.end_time,
                impacting_only=True,
            ):
                failure.append(report)
        return everything, failure

    everything, failure = benchmark.pedantic(split, rounds=1, iterations=1)
    if not (everything and failure):
        paper_assert(False, "campaign must produce failure incidents")
        return

    all_scores = _capped_scores(everything)
    failure_scores = _capped_scores(failure)

    def stats(scores):
        return (
            min(scores),
            percentile(scores, 25),
            percentile(scores, 50),
            percentile(scores, 75),
            max(scores),
        )

    lines = ["Figure 10a: severity scores (capped at 100)"]
    lines.append(f"{'population':<20}{'min':>7}{'p25':>7}{'med':>7}{'p75':>7}{'max':>7}{'n':>5}")
    for label, scores in (("all incidents", all_scores),
                          ("failure incidents", failure_scores)):
        s = stats(scores)
        lines.append(
            f"{label:<20}" + "".join(f"{v:>7.1f}" for v in s) + f"{len(scores):>5}"
        )
    emit("fig10a_severity_scores", "\n".join(lines))

    # paper shape: failure incidents score higher than the population
    paper_assert(percentile(failure_scores, 50) >= percentile(all_scores, 50))
    # and the threshold of 10 keeps every failure incident (zero FN, §6.4)
    paper_assert(all(s >= 10.0 for s in failure_scores))
