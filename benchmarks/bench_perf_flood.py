"""Flood-scale hot-path benchmark: reference vs ``fast_path`` pipelines.

Replays seeded severe-failure floods (1k / 10k / 50k structured alerts
into the locate stage by default; see ``SKYNET_BENCH_TIERS``) through the
preprocess, locate and evaluate stages, timing each stage for the
reference and the fast implementation and checking the incident output is
identical.  The flood is the §2.2 shape: a wave of device failures takes
out ~20% of the benchmark fabric and every monitoring tool floods at
once.  Results are printed, persisted via ``emit`` and written as
machine-readable JSON to ``BENCH_perf_flood.json`` at the repository
root -- the committed copy documents the speedup the ``config.fast_path``
toggle buys.

Environment knobs:

* ``SKYNET_BENCH_TIERS`` -- comma list of tiers to run (``1k,10k,50k``
  or ``all``; default ``1k,10k``).  CI's bench-smoke job runs ``1k``.
* ``SKYNET_BENCH_TINY`` -- run one miniature tier on the tiny topology
  (the tests/test_bench_smoke.py mode).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import random
import re
import time
from typing import Dict, List, Tuple

from repro.core.config import PRODUCTION_CONFIG
from repro.core.evaluator import Evaluator
from repro.core.locator import Locator
from repro.core.preprocessor import Preprocessor
from repro.monitors import build_monitors
from repro.monitors.stream import AlertStream
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology

if os.environ.get("SKYNET_BENCH_TINY"):
    # smoke mode exercises the write path without clobbering the
    # committed full-scale numbers
    JSON_PATH = pathlib.Path(__file__).parent / "results-tiny" / "BENCH_perf_flood.json"
else:
    JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_perf_flood.json"

_TIERS = {"1k": 1_000, "10k": 10_000, "50k": 50_000}


def _selected_tiers() -> List[Tuple[str, int]]:
    if os.environ.get("SKYNET_BENCH_TINY"):
        return [("tiny", 200)]
    raw = os.environ.get("SKYNET_BENCH_TIERS", "1k,10k")
    if raw.strip().lower() == "all":
        return list(_TIERS.items())
    out = []
    for token in raw.split(","):
        token = token.strip()
        if token in _TIERS:
            out.append((token, _TIERS[token]))
    return out or [("1k", _TIERS["1k"])]


def _topology():
    if os.environ.get("SKYNET_BENCH_TINY"):
        return build_topology(TopologySpec.tiny())
    return build_topology(TopologySpec.benchmark())


def _flood(topo, n: int, seed: int) -> List:
    """A seeded severe-failure storm, sized in *structured* alerts.

    A wave of DEVICE_DOWN faults rolls over ~20% of the fabric inside
    four minutes and stays down; all twelve monitors flood in response.
    Raw alerts are drawn from the stream until the preprocessor has
    emitted ``n`` structured alerts -- the locate stage's actual input
    unit -- so every tier measures the same flood shape at a different
    sustained length."""
    rng = random.Random(seed)
    state = NetworkState(topo)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    n_down = max(3, len(devices) // 5)
    for name in devices[:n_down]:
        start = 60.0 + rng.uniform(0.0, 240.0)
        state.add_condition(
            Condition(
                kind=ConditionKind.DEVICE_DOWN,
                target=name,
                start=start,
                end=start + 86_400.0,
            )
        )
    prep = Preprocessor(topo, PRODUCTION_CONFIG)
    raws = []
    count = 0
    for raw in AlertStream(state, build_monitors(state, seed=seed)).run(86_400.0):
        raws.append(raw)
        count += len(prep.feed(raw))
        if count >= n:
            break
    return raws


def _preprocess(topo, raws) -> Tuple[float, List[Tuple[float, object]]]:
    prep = Preprocessor(topo, PRODUCTION_CONFIG)
    structured: List[Tuple[float, object]] = []
    start = time.perf_counter()
    for raw in raws:
        for alert in prep.feed(raw):
            structured.append((raw.delivered_at, alert))
    return time.perf_counter() - start, structured


def _locate(topo, structured, fast: bool) -> Tuple[float, Locator]:
    config = dataclasses.replace(PRODUCTION_CONFIG, fast_path=fast)
    locator = Locator(topo, config)
    interval = config.sweep_interval_s
    start = time.perf_counter()
    last_sweep = float("-inf")
    now = float("-inf")
    for t, alert in structured:
        now = max(now, t)
        locator.feed(alert)
        if now - last_sweep >= interval:
            locator.sweep(now)
            last_sweep = now
    locator.sweep(now + 2 * PRODUCTION_CONFIG.incident_timeout_s)
    return time.perf_counter() - start, locator


def _evaluate(topo, incidents, fast: bool, rounds: int = 25) -> float:
    """Periodic re-assessment of open incidents (what every sweep does)."""
    config = dataclasses.replace(PRODUCTION_CONFIG, fast_path=fast)
    evaluator = Evaluator(topo, config)
    start = time.perf_counter()
    for _ in range(rounds):
        for incident in incidents:
            evaluator.evaluate(incident, incident.end_time)
    return time.perf_counter() - start


def _fingerprint(locator: Locator) -> List[str]:
    return sorted(
        re.sub(r"incident-\d+", "incident-N", incident.render())
        for incident in locator.all_incidents()
    )


def test_perf_flood(emit):
    topo = _topology()
    seed = 2025
    report: Dict = {
        "bench": "perf_flood",
        "seed": seed,
        "topology": topo.stats(),
        "tiers": [],
    }
    for name, n in _selected_tiers():
        raws = _flood(topo, n, seed)
        preprocess_s, structured = _preprocess(topo, raws)

        ref_s, ref_locator = _locate(topo, structured, fast=False)
        fast_s, fast_locator = _locate(topo, structured, fast=True)
        identical = _fingerprint(ref_locator) == _fingerprint(fast_locator)
        assert identical, f"tier {name}: fast path diverged from reference"

        incidents = fast_locator.all_incidents()
        eval_ref_s = _evaluate(topo, incidents, fast=False)
        eval_fast_s = _evaluate(topo, incidents, fast=True)

        locate_speedup = ref_s / fast_s if fast_s > 0 else float("inf")
        eval_speedup = eval_ref_s / eval_fast_s if eval_fast_s > 0 else float("inf")
        tier = {
            "name": name,
            "raw_alerts": len(raws),
            "structured_alerts": len(structured),
            "incidents": len(incidents),
            "outputs_identical": identical,
            "stages": {
                "preprocess_s": round(preprocess_s, 4),
                "locate_reference_s": round(ref_s, 4),
                "locate_fast_s": round(fast_s, 4),
                "locate_speedup": round(locate_speedup, 2),
                "evaluate_reference_s": round(eval_ref_s, 4),
                "evaluate_fast_s": round(eval_fast_s, 4),
                "evaluate_speedup": round(eval_speedup, 2),
            },
        }
        report["tiers"].append(tier)
        emit(
            "perf_flood",
            f"{name}: {len(raws)} raw -> {len(structured)} structured, "
            f"{len(incidents)} incidents | preprocess {preprocess_s:.3f}s | "
            f"locate ref {ref_s:.3f}s fast {fast_s:.3f}s "
            f"({locate_speedup:.1f}x) | evaluate ref {eval_ref_s:.3f}s "
            f"fast {eval_fast_s:.3f}s ({eval_speedup:.1f}x)",
        )
        # the tentpole target: >=5x on the 10k-flood locate stage, with
        # identical output (asserted above)
        if name == "10k":
            assert locate_speedup >= 5.0, (
                f"10k locate speedup {locate_speedup:.2f}x below the 5x target"
            )

    JSON_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    emit("perf_flood", f"wrote {JSON_PATH.name}")
