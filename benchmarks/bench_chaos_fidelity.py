"""Chaos fidelity benchmark: incident-stream fidelity per fault class.

Runs one seeded severe-failure flood through the runtime once fault-free
and once per chaos fault class (source outage, source brownout,
transient I/O faults, exhausted I/O budget, shard crashes, everything
combined), and reports how much of the fault-free incident stream
survives each:

* ``exact`` -- the recovered incident stream is byte-identical to the
  fault-free one (ids normalised).  This is the *contract* for shard
  crashes and for I/O faults below the retry budget, so those rows are
  hard-asserted, at every scale.
* ``device_recall`` -- fraction of the fault-free run's implicated
  devices still implicated.  Stream-degrading faults (outage, brownout,
  permanent I/O loss) may only lose information, never invent it.

The committed ``BENCH_chaos_fidelity.json`` is the EXPERIMENTS.md
robustness table's source.  Environment: ``SKYNET_BENCH_TINY`` runs the
tiny fabric for tests/test_bench_smoke.py and CI's chaos-smoke job.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import random
import re
from typing import Dict, List, Optional, Set

from repro.core.config import PRODUCTION_CONFIG
from repro.monitors import build_monitors
from repro.monitors.stream import AlertStream
from repro.runtime import RuntimeService
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.faults import (
    ChaosPlan,
    IOFault,
    ShardCrash,
    SourceBrownout,
    SourceOutage,
)
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology

TINY = bool(os.environ.get("SKYNET_BENCH_TINY"))

if TINY:
    JSON_PATH = (
        pathlib.Path(__file__).parent
        / "results-tiny"
        / "BENCH_chaos_fidelity.json"
    )
else:
    JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_chaos_fidelity.json"

SEED = 7
HORIZON = 600.0


def _flood():
    topo = build_topology(TopologySpec.tiny() if TINY else TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(SEED)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    n_down = 2 if TINY else 4
    for i, name in enumerate(devices[:n_down]):
        state.add_condition(
            Condition(
                kind=ConditionKind.DEVICE_DOWN,
                target=name,
                start=40.0 + 5.0 * i,
                end=440.0 + 5.0 * i,
            )
        )
    raws = AlertStream(state, build_monitors(state, seed=SEED)).collect(HORIZON)
    return topo, state, raws


def _config():
    return dataclasses.replace(
        PRODUCTION_CONFIG,
        runtime=dataclasses.replace(
            PRODUCTION_CONFIG.runtime, shards=2, checkpoint_interval_s=60.0
        ),
    )


#: name -> (plan builder, must the incident stream stay exact?)
FAULT_CLASSES = {
    "none": (lambda: None, True),
    "source_outage": (
        lambda: ChaosPlan(
            outages=(SourceOutage("ping", 0.0, HORIZON + 100.0),)
        ),
        False,
    ),
    "source_brownout": (
        lambda: ChaosPlan(
            brownouts=(
                SourceBrownout(
                    "syslog", 60.0, 400.0,
                    delay_s=5.0, delay_jitter_s=20.0,
                    duplicate_rate=0.2, drop_rate=0.1,
                ),
            ),
            seed=3,
        ),
        False,
    ),
    "io_transient": (
        lambda: ChaosPlan(
            io_faults=(
                IOFault("journal_append", 100.0, 200.0, fail_count=2),
                IOFault("checkpoint_save", 0.0, HORIZON, fail_count=1),
            ),
        ),
        True,
    ),
    "io_exhausted": (
        lambda: ChaosPlan(
            io_faults=(
                IOFault("journal_append", 100.0, 200.0, permanent=True),
            ),
        ),
        False,
    ),
    "shard_crash": (
        lambda: ChaosPlan(
            shard_crashes=(
                ShardCrash(at=200.0, shard=0),
                ShardCrash(at=300.0, shard=1),
            ),
        ),
        True,
    ),
    "combined": (
        lambda: ChaosPlan(
            brownouts=(
                SourceBrownout(
                    "syslog", 60.0, 400.0, delay_s=5.0, delay_jitter_s=20.0
                ),
            ),
            shard_crashes=(ShardCrash(at=250.0, shard=1),),
            io_faults=(
                IOFault("journal_append", 100.0, 180.0, fail_count=2),
            ),
            seed=3,
        ),
        False,
    ),
}


def _run(topo, state, raws, plan: Optional[ChaosPlan], directory):
    set_incident_counter(1)
    service = RuntimeService(
        topo, config=_config(), state=state, directory=directory,
        chaos=plan, run_seed=SEED,
    )
    stream = raws
    perturb_counts = {"dropped": 0, "delayed": 0, "duplicated": 0}
    if plan is not None and plan.perturbs_stream():
        perturbed = plan.perturb(raws, run_seed=SEED)
        stream = perturbed.raws
        perturb_counts = perturbed.counts()
    service.run(stream)
    service.finish()
    return service, perturb_counts


def _fingerprint(service: RuntimeService) -> List[str]:
    return sorted(
        re.sub(r"incident-\d+", "incident-N", incident.render())
        for incident in service.pipeline.incidents(include_superseded=True)
    )


def _devices(service: RuntimeService) -> Set[str]:
    out: Set[str] = set()
    for incident in service.pipeline.incidents(include_superseded=True):
        out |= set(incident.devices_involved())
    return out


def test_chaos_fidelity(emit, paper_assert, tmp_path):
    topo, state, raws = _flood()
    report: Dict = {
        "bench": "chaos_fidelity",
        "seed": SEED,
        "topology": topo.stats(),
        "raw_alerts": len(raws),
        "rows": [],
    }

    baseline_fp: List[str] = []
    baseline_devices: Set[str] = set()
    for name, (build, must_be_exact) in FAULT_CLASSES.items():
        plan = build()
        service, perturb_counts = _run(
            topo, state, raws, plan, tmp_path / name
        )
        fp = _fingerprint(service)
        devices = _devices(service)
        if name == "none":
            baseline_fp, baseline_devices = fp, devices
        exact = fp == baseline_fp
        recall = (
            len(devices & baseline_devices) / len(baseline_devices)
            if baseline_devices
            else 0.0
        )
        counters = {
            key: service.metrics.counter_value(key)
            for key in (
                "runtime_io_retries_total",
                "runtime_io_shed_journal_append_total",
                "runtime_shard_crashes_total",
                "runtime_shard_restores_total",
            )
        }
        row = {
            "fault_class": name,
            "incidents": len(fp),
            "exact": exact,
            "device_recall": round(recall, 3),
            **perturb_counts,
            **counters,
        }
        report["rows"].append(row)
        emit(
            "chaos_fidelity",
            f"{name:15s} incidents={len(fp):3d} exact={str(exact):5s} "
            f"device_recall={recall:.2f} "
            f"retries={counters['runtime_io_retries_total']} "
            f"shed={counters['runtime_io_shed_journal_append_total']} "
            f"crashes={counters['runtime_shard_crashes_total']}",
        )
        if must_be_exact:
            assert exact, (
                f"{name}: recovery contract broken -- incident stream "
                f"diverged from the fault-free run"
            )
        # degradation may lose information, never invent devices
        assert not (devices - baseline_devices), (
            f"{name}: chaos implicated devices the fault-free run did not: "
            f"{sorted(devices - baseline_devices)}"
        )

    assert report["rows"][0]["exact"], "baseline must match itself"
    by_name = {row["fault_class"]: row for row in report["rows"]}
    assert by_name["io_transient"]["runtime_io_retries_total"] > 0
    assert by_name["io_exhausted"]["runtime_io_shed_journal_append_total"] > 0
    assert by_name["shard_crash"]["runtime_shard_crashes_total"] == 2
    # figure-shaped claims need flood scale; relaxed in tiny mode
    paper_assert(
        by_name["source_outage"]["device_recall"] <= 1.0
        and by_name["source_outage"]["incidents"] > 0,
        "a ping outage must degrade, not erase, detection",
    )
    paper_assert(
        by_name["io_exhausted"]["device_recall"] >= 0.5,
        "a 100s journal blackout must not erase most of the storm",
    )

    JSON_PATH.parent.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
