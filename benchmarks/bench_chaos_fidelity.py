"""Chaos fidelity benchmark: incident-stream fidelity per fault class.

Runs one seeded severe-failure flood through the runtime once fault-free
and once per chaos fault class (source outage, source brownout,
transient I/O faults, exhausted I/O budget, shard crashes, everything
combined), and reports how much of the fault-free incident stream
survives each:

* ``exact`` -- the recovered incident stream is byte-identical to the
  fault-free one (ids normalised).  This is the *contract* for shard
  crashes and for I/O faults below the retry budget, so those rows are
  hard-asserted, at every scale.
* ``device_recall`` -- fraction of the fault-free run's implicated
  devices still implicated.  Stream-degrading faults (outage, brownout,
  permanent I/O loss) may only lose information, never invent it.

The committed ``BENCH_chaos_fidelity.json`` is the EXPERIMENTS.md
robustness table's source.  Environment: ``SKYNET_BENCH_TINY`` runs the
tiny fabric for tests/test_bench_smoke.py and CI's chaos-smoke job.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import os
import pathlib
import random
import re
from typing import Dict, List, Optional, Set

from repro.core.config import PRODUCTION_CONFIG
from repro.gateway import (
    ChaosTransport,
    GatewayClient,
    GatewayIngestSession,
    GatewayParams,
    GatewayService,
    GatewaySocketServer,
    NetChaosPlan,
    SOURCE_PRIORITY,
)
from repro.monitors import build_monitors
from repro.monitors.stream import AlertStream
from repro.runtime import RuntimeService
from repro.runtime.checkpoint import set_incident_counter
from repro.runtime.faults import (
    ChaosPlan,
    CorrelatedCrash,
    IOFault,
    ShardCrash,
    SourceBrownout,
    SourceOutage,
)
from repro.simulation.conditions import Condition, ConditionKind
from repro.simulation.state import NetworkState
from repro.topology.builder import TopologySpec, build_topology

TINY = bool(os.environ.get("SKYNET_BENCH_TINY"))

if TINY:
    JSON_PATH = (
        pathlib.Path(__file__).parent
        / "results-tiny"
        / "BENCH_chaos_fidelity.json"
    )
else:
    JSON_PATH = pathlib.Path(__file__).parent.parent / "BENCH_chaos_fidelity.json"

SEED = 7
HORIZON = 600.0


def _flood():
    topo = build_topology(TopologySpec.tiny() if TINY else TopologySpec())
    state = NetworkState(topo)
    rng = random.Random(SEED)
    devices = sorted(topo.devices)
    rng.shuffle(devices)
    n_down = 2 if TINY else 4
    for i, name in enumerate(devices[:n_down]):
        state.add_condition(
            Condition(
                kind=ConditionKind.DEVICE_DOWN,
                target=name,
                start=40.0 + 5.0 * i,
                end=440.0 + 5.0 * i,
            )
        )
    raws = AlertStream(state, build_monitors(state, seed=SEED)).collect(HORIZON)
    return topo, state, raws


def _config():
    return dataclasses.replace(
        PRODUCTION_CONFIG,
        runtime=dataclasses.replace(
            PRODUCTION_CONFIG.runtime, shards=2, checkpoint_interval_s=60.0
        ),
    )


#: name -> (plan builder, must the incident stream stay exact?)
FAULT_CLASSES = {
    "none": (lambda: None, True),
    "source_outage": (
        lambda: ChaosPlan(
            outages=(SourceOutage("ping", 0.0, HORIZON + 100.0),)
        ),
        False,
    ),
    "source_brownout": (
        lambda: ChaosPlan(
            brownouts=(
                SourceBrownout(
                    "syslog", 60.0, 400.0,
                    delay_s=5.0, delay_jitter_s=20.0,
                    duplicate_rate=0.2, drop_rate=0.1,
                ),
            ),
            seed=3,
        ),
        False,
    ),
    "io_transient": (
        lambda: ChaosPlan(
            io_faults=(
                IOFault("journal_append", 100.0, 200.0, fail_count=2),
                IOFault("checkpoint_save", 0.0, HORIZON, fail_count=1),
            ),
        ),
        True,
    ),
    "io_exhausted": (
        lambda: ChaosPlan(
            io_faults=(
                IOFault("journal_append", 100.0, 200.0, permanent=True),
            ),
        ),
        False,
    ),
    "shard_crash": (
        lambda: ChaosPlan(
            shard_crashes=(
                ShardCrash(at=200.0, shard=0),
                ShardCrash(at=300.0, shard=1),
            ),
        ),
        True,
    ),
    "correlated_crash": (
        # both shards die together and both recovery snapshots are
        # destroyed: the lost shards must be rebuilt from the durable
        # checkpoint + journal tail, exactly
        lambda: ChaosPlan(
            correlated_crashes=(
                CorrelatedCrash(
                    at=250.0, shards=(0, 1), lose_snapshots=(0, 1)
                ),
            ),
        ),
        True,
    ),
    "combined": (
        lambda: ChaosPlan(
            brownouts=(
                SourceBrownout(
                    "syslog", 60.0, 400.0, delay_s=5.0, delay_jitter_s=20.0
                ),
            ),
            shard_crashes=(ShardCrash(at=250.0, shard=1),),
            io_faults=(
                IOFault("journal_append", 100.0, 180.0, fail_count=2),
            ),
            seed=3,
        ),
        False,
    ),
}


#: Every wire fault class at once, below the client's retry budget.
NET_PLAN = NetChaosPlan(
    reset_rate=0.02,
    stall_rate=0.02,
    torn_rate=0.02,
    stale_rate=0.04,
    duplicate_rate=0.04,
    drop_reply_rate=0.02,
    seed=13,
)

#: Unbounded queues (identity needs zero sheds) + near-zero wall-clock
#: backoff so injected wire faults cost microseconds.
GATEWAY_PARAMS = GatewayParams(
    queue_limit=10**9,
    client_backoff_base_s=0.0005,
    client_backoff_max_s=0.005,
)


def _gateway_run(topo, state, raws, net_plan: Optional[NetChaosPlan], directory):
    """Serve the flood through the real socket transport; return the
    normalised incident fingerprint, implicated devices and telemetry."""
    split: Dict[str, List] = {}
    for raw in raws:
        split.setdefault(raw.tool, []).append(raw)
    for substream in split.values():
        substream.sort(key=lambda r: r.timestamp)
    merged = [
        raw
        for _t, _p, raw in heapq.merge(
            *(
                ((r.timestamp, SOURCE_PRIORITY[tool], r) for r in substream)
                for tool, substream in sorted(split.items())
            )
        )
    ]
    set_incident_counter(1)
    service = GatewayService(
        topo, config=_config(), state=state, directory=directory,
        run_seed=SEED, params=GATEWAY_PARAMS,
    )
    server = GatewaySocketServer(service.handle, GATEWAY_PARAMS)
    server.start()
    wire = ChaosTransport(net_plan, run_seed=SEED) if net_plan else None
    try:
        host, port = server.address
        with GatewayClient(
            host, port, timeout_s=10.0, params=GATEWAY_PARAMS,
            run_seed=SEED, net_chaos=wire,
        ) as client:
            session = GatewayIngestSession(client)
            for tool in sorted(SOURCE_PRIORITY):
                if tool not in split:
                    session.eof(tool)
            for raw in merged:
                reply = session.submit(raw)
                assert reply.get("ok") and reply.get("admitted"), reply
            for tool in sorted(split):
                session.eof(tool)
            session.finish()
            fp = _fingerprint(service.runtime)
            devices = _devices(service.runtime)
            telemetry = {
                "client_retries": client.retries,
                "client_reconnects": client.reconnects,
                "duplicates_deduped": session.duplicates,
                "wire_faults_injected": wire.injected() if wire else 0,
            }
    finally:
        server.stop()
        service.shutdown()
    return fp, devices, telemetry


def _run(topo, state, raws, plan: Optional[ChaosPlan], directory):
    set_incident_counter(1)
    service = RuntimeService(
        topo, config=_config(), state=state, directory=directory,
        chaos=plan, run_seed=SEED,
    )
    stream = raws
    perturb_counts = {"dropped": 0, "delayed": 0, "duplicated": 0}
    if plan is not None and plan.perturbs_stream():
        perturbed = plan.perturb(raws, run_seed=SEED)
        stream = perturbed.raws
        perturb_counts = perturbed.counts()
    service.run(stream)
    service.finish()
    return service, perturb_counts


def _fingerprint(service: RuntimeService) -> List[str]:
    return sorted(
        re.sub(r"incident-\d+", "incident-N", incident.render())
        for incident in service.pipeline.incidents(include_superseded=True)
    )


def _devices(service: RuntimeService) -> Set[str]:
    out: Set[str] = set()
    for incident in service.pipeline.incidents(include_superseded=True):
        out |= set(incident.devices_involved())
    return out


def test_chaos_fidelity(emit, paper_assert, tmp_path):
    topo, state, raws = _flood()
    report: Dict = {
        "bench": "chaos_fidelity",
        "seed": SEED,
        "topology": topo.stats(),
        "raw_alerts": len(raws),
        "rows": [],
    }

    baseline_fp: List[str] = []
    baseline_devices: Set[str] = set()
    for name, (build, must_be_exact) in FAULT_CLASSES.items():
        plan = build()
        service, perturb_counts = _run(
            topo, state, raws, plan, tmp_path / name
        )
        fp = _fingerprint(service)
        devices = _devices(service)
        if name == "none":
            baseline_fp, baseline_devices = fp, devices
        exact = fp == baseline_fp
        recall = (
            len(devices & baseline_devices) / len(baseline_devices)
            if baseline_devices
            else 0.0
        )
        counters = {
            key: service.metrics.counter_value(key)
            for key in (
                "runtime_io_retries_total",
                "runtime_io_shed_journal_append_total",
                "runtime_shard_crashes_total",
                "runtime_shard_restores_total",
                "runtime_shard_snapshots_lost_total",
                "runtime_shard_rebuilds_total",
                "runtime_shard_degraded_heals_total",
            )
        }
        row = {
            "fault_class": name,
            "incidents": len(fp),
            "exact": exact,
            "device_recall": round(recall, 3),
            **perturb_counts,
            **counters,
        }
        report["rows"].append(row)
        emit(
            "chaos_fidelity",
            f"{name:15s} incidents={len(fp):3d} exact={str(exact):5s} "
            f"device_recall={recall:.2f} "
            f"retries={counters['runtime_io_retries_total']} "
            f"shed={counters['runtime_io_shed_journal_append_total']} "
            f"crashes={counters['runtime_shard_crashes_total']}",
        )
        if must_be_exact:
            assert exact, (
                f"{name}: recovery contract broken -- incident stream "
                f"diverged from the fault-free run"
            )
        # degradation may lose information, never invent devices
        assert not (devices - baseline_devices), (
            f"{name}: chaos implicated devices the fault-free run did not: "
            f"{sorted(devices - baseline_devices)}"
        )

    # -- network fault class: same flood through the real socket
    # transport, once clean and once with every wire fault injected.
    # Wire chaos sits below the pipeline, so the contract is identity,
    # not recall: the chaos run must be byte-identical to the clean
    # gateway run (ids included via normalisation).
    clean_fp, clean_devices, _clean_tel = _gateway_run(
        topo, state, raws, None, tmp_path / "net_clean"
    )
    net_fp, net_devices, net_tel = _gateway_run(
        topo, state, raws, NET_PLAN, tmp_path / "net_chaos"
    )
    net_exact = net_fp == clean_fp and net_devices == clean_devices
    net_row = {
        "fault_class": "network_faults",
        "incidents": len(net_fp),
        "exact": net_exact,
        "device_recall": 1.0 if net_exact else (
            round(
                len(net_devices & clean_devices) / len(clean_devices), 3
            ) if clean_devices else 0.0
        ),
        **net_tel,
    }
    report["rows"].append(net_row)
    emit(
        "chaos_fidelity",
        f"{'network_faults':15s} incidents={len(net_fp):3d} "
        f"exact={str(net_exact):5s} device_recall={net_row['device_recall']:.2f} "
        f"wire_faults={net_tel['wire_faults_injected']} "
        f"retries={net_tel['client_retries']} "
        f"reconnects={net_tel['client_reconnects']} "
        f"deduped={net_tel['duplicates_deduped']}",
    )
    assert net_exact, (
        "network_faults: wire chaos leaked into the incident stream -- "
        "the gateway's exactly-once contract is broken"
    )
    assert net_tel["wire_faults_injected"] > 0, (
        "network_faults row proved nothing: the chaos transport never fired"
    )
    assert net_tel["client_retries"] > 0, (
        "network_faults row proved nothing: the client never had to retry"
    )

    assert report["rows"][0]["exact"], "baseline must match itself"
    by_name = {row["fault_class"]: row for row in report["rows"]}
    assert by_name["io_transient"]["runtime_io_retries_total"] > 0
    assert by_name["io_exhausted"]["runtime_io_shed_journal_append_total"] > 0
    assert by_name["shard_crash"]["runtime_shard_crashes_total"] == 2
    assert by_name["correlated_crash"]["runtime_shard_snapshots_lost_total"] == 2
    assert by_name["correlated_crash"]["runtime_shard_rebuilds_total"] == 2
    assert by_name["correlated_crash"]["runtime_shard_degraded_heals_total"] == 0
    # figure-shaped claims need flood scale; relaxed in tiny mode
    paper_assert(
        by_name["source_outage"]["device_recall"] <= 1.0
        and by_name["source_outage"]["incidents"] > 0,
        "a ping outage must degrade, not erase, detection",
    )
    paper_assert(
        by_name["io_exhausted"]["device_recall"] >= 0.5,
        "a 100s journal blackout must not erase most of the storm",
    )

    JSON_PATH.parent.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
