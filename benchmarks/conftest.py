"""Shared fixtures for the evaluation benchmarks.

Each bench regenerates one table or figure from the paper's §6 (see
DESIGN.md's per-experiment index).  Campaigns are expensive, so they are
session-scoped and shared; every bench prints its paper-shaped rows to
stdout *and* appends them to ``benchmarks/results/<bench>.txt`` so the
regenerated "figures" survive pytest's output capture.
"""

from __future__ import annotations

import os
import pathlib
import random

import pytest

from repro.analysis.experiments import run_campaign
from repro.simulation import scenarios as sc
from repro.simulation.failures import FailureCategory, sample_failure
from repro.simulation.noise import NoiseProfile
from repro.topology.builder import TopologySpec, build_topology

#: Smoke mode (tests/test_bench_smoke.py and CI): every bench runs its
#: full code path end to end, but on the small default fabric with capped
#: campaigns.  Figure-shaped numbers need benchmark scale, so benches
#: route those assertions through the ``paper_assert`` fixture, which is
#: relaxed here; everything structural stays asserted.
TINY = bool(os.environ.get("SKYNET_BENCH_TINY"))

#: tiny-mode numbers must never clobber the committed full-scale results
RESULTS_DIR = pathlib.Path(__file__).parent / (
    "results-tiny" if TINY else "results"
)

if TINY:
    import repro.analysis.experiments as _experiments

    # benches that build the big evaluation fabric get the default
    # small-but-complete one instead (same shape: two regions, full
    # hierarchy), so region-dependent scenario builders keep working
    TopologySpec.benchmark = classmethod(lambda cls: cls())  # type: ignore[method-assign]

    _real_run_campaign = _experiments.run_campaign

    def _tiny_run_campaign(duration_s, *args, **kwargs):
        kwargs["n_customers"] = min(kwargs.get("n_customers", 40), 20)
        return _real_run_campaign(min(duration_s, 1200.0), *args, **kwargs)

    # patched before bench modules import it, so their
    # ``from repro.analysis.experiments import run_campaign`` binds this
    _experiments.run_campaign = _tiny_run_campaign
    run_campaign = _tiny_run_campaign


@pytest.fixture(scope="session")
def paper_assert():
    """Assert a paper-shaped result.

    In ``SKYNET_BENCH_TINY`` mode the campaigns are far below the scale
    the figures describe, so these checks become no-ops; the bench still
    exercises its full pipeline.
    """

    def check(condition, message=""):
        if TINY:
            return
        assert condition, message

    return check


@pytest.fixture(scope="session")
def emit():
    """Returns a writer: emit(bench_name, text) -> prints + persists."""
    RESULTS_DIR.mkdir(exist_ok=True)
    written = set()

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        mode = "w" if name not in written else "a"
        written.add(name)
        with open(path, mode) as fh:
            fh.write(text + "\n")
        print(text)

    return _emit


@pytest.fixture(scope="session")
def flood_campaign():
    """The §2.2 severe failure: Internet-entrance cable cut + noise."""
    topo = build_topology(TopologySpec())
    scenario = sc.internet_entrance_cable_cut(topo, start=60.0)
    return run_campaign(
        900.0,
        scenarios=[scenario],
        topology=topo,
        n_customers=40,
        noise=NoiseProfile(),
        seed=101,
    ), scenario


@pytest.fixture(scope="session")
def mixed_campaign():
    """An hour of mixed operations: random failures + background noise.

    Drives the accuracy (Fig 8a/9) and severity (Fig 10a) benches.
    """
    topo = build_topology(TopologySpec.benchmark())
    harmless = [
        sc.maintenance_break_wave(topo, start=300.0 + i * 800.0, site_index=5 + 7 * i)
        for i in range(4)
    ]
    return run_campaign(
        3600.0,
        scenarios=harmless,
        n_random_failures=10,
        topology=topo,
        n_customers=150,
        noise=NoiseProfile(),
        seed=102,
        severe_fraction=0.3,
    )


@pytest.fixture(scope="session")
def threshold_campaign():
    """The Figure 9 probe: five engineered failures spanning the evidence
    spectrum, plus harmless maintenance waves and noise.

    * rich evidence: entrance cable cut, DDoS;
    * medium: a single lossy device;
    * thin, failure-heavy: silent backbone loss (2 failure types, 0 other)
      -- missed when the ``A`` clause is disabled;
    * thin, corroboration-style: partial route blackhole (1 failure + 2
      other types) -- missed by stricter ``B+C`` / disabled-combo settings.
    """
    topo = build_topology(TopologySpec.benchmark())
    from repro.topology.hierarchy import Level
    from repro.topology.network import DeviceRole

    clusters = sorted(
        (l for l in topo.locations() if l.level is Level.CLUSTER), key=str
    )
    # one rich scene per region so scenes never share an incident scope
    rg2_switch = sorted(
        d.name
        for d in topo.devices.values()
        if d.role is DeviceRole.CLUSTER_SWITCH and str(d.location).startswith("RG02")
    )[0]
    scenarios = [
        sc.internet_entrance_cable_cut(topo, start=120.0, duration=1000.0),
        *sc.multi_site_ddos(topo, start=1500.0, n_sites=2, duration=800.0)[1:],
        sc.known_device_failure(topo, start=2600.0, duration=600.0,
                                device_name=rg2_switch),
        sc.partial_route_blackhole(topo, start=400.0, duration=900.0,
                                   victim_index=-1),
        sc.silent_backbone_loss(topo, start=1800.0, duration=900.0,
                                victim_index=11),
    ]
    # maintenance waves arrive as *noise* here: any incident built from one
    # is a false positive, which is the pressure Figure 9's loose settings
    # and the type+location variant must buckle under
    return run_campaign(
        3600.0,
        scenarios=scenarios,
        topology=topo,
        n_customers=150,
        noise=NoiseProfile(maintenance_waves_per_hour=2.0),
        seed=107,
    )


@pytest.fixture(scope="session")
def coverage_campaign():
    """Two failures of every Figure 1 category, well separated in time.

    Drives the per-tool coverage bench (Fig 3) and the source ablation
    (Fig 8a): removing a data source is equivalent to filtering its alerts
    out of this one recorded stream.
    """
    topo = build_topology(TopologySpec())
    rng = random.Random(103)
    scenarios = []
    gap = 700.0
    t = 60.0
    for repeat in range(2):
        for category in FailureCategory:
            scenario = sample_failure(
                topo, rng, start=t, category=category, severe=(repeat == 1)
            )
            # trim long scenarios so campaigns stay disjoint in time
            scenarios.append(scenario)
            t += gap
    duration = t + 300.0
    return run_campaign(
        duration,
        scenarios=scenarios,
        topology=topo,
        noise=NoiseProfile.quiet(),
        n_customers=40,
        seed=104,
    )
