"""Figure 1: the proportion of network failure root causes.

Regenerates the pie-chart slices by sampling the failure generator's
category distribution; the numbers must track the paper's observed shares
(hardware 42.6%, link 18.5%, modification 16.7%, ...).
"""

import random
from collections import Counter

from repro.simulation.failures import (
    FIGURE1_PROPORTIONS,
    FailureCategory,
    sample_category,
)

N_SAMPLES = 5000


def test_fig1_root_cause_proportions(benchmark, emit):
    rng = random.Random(1)

    def draw():
        return Counter(sample_category(rng) for _ in range(N_SAMPLES))

    counts = benchmark.pedantic(draw, rounds=1, iterations=1)
    total_weight = sum(FIGURE1_PROPORTIONS.values())
    lines = ["Figure 1: root-cause proportions (paper vs sampled)"]
    lines.append(f"{'category':<28}{'paper %':>9}{'sampled %':>11}")
    for category in sorted(
        FailureCategory, key=lambda c: -FIGURE1_PROPORTIONS[c]
    ):
        paper = FIGURE1_PROPORTIONS[category] / total_weight * 100
        sampled = counts[category] / N_SAMPLES * 100
        lines.append(f"{category.value:<28}{paper:>8.1f}%{sampled:>10.1f}%")
        assert abs(paper - sampled) < 3.0, f"{category} drifted from Figure 1"
    emit("fig1_root_causes", "\n".join(lines))
