"""Figure 6: the running example -- raw alerts in, grouped and ranked
incidents out, each rendered with failure/abnormal/root-cause sections
and a risk score."""

from repro.core.pipeline import SkyNet


def test_fig6_running_example(benchmark, flood_campaign, emit, paper_assert):
    result, scenario = flood_campaign

    def rerun():
        skynet = SkyNet(result.topology, state=result.state,
                        traffic=result.traffic)
        return skynet.process(result.raw_alerts), skynet

    reports, skynet = benchmark.pedantic(rerun, rounds=1, iterations=1)
    if not reports:
        paper_assert(False, "the flood must produce incident reports")
        return
    lines = ["Figure 6: running example output"]
    lines.append(
        f"raw alerts: {skynet.preprocess_stats.raw_in}  ->  structured: "
        f"{skynet.preprocess_stats.emitted}  ->  incidents: {len(reports)}"
    )
    lines.append("")
    for i, report in enumerate(reports[:3], start=1):
        lines.append(report.render())
        lines.append("")
        lines.append(f"risk score: {report.score:.1f}")
        lines.append("-" * 60)
    emit("fig6_running_example", "\n".join(lines))

    # the flood collapses into a ranked handful of incidents
    top = reports[0].incident
    paper_assert(
        scenario.truth.scope.contains(top.root)
        or top.root.contains(scenario.truth.scope)
    )
    assert reports[0].score >= reports[-1].score
    by_level = top.alert_counts_by_level()
    paper_assert(len(by_level) == 3, "all three alert-level sections must render")
