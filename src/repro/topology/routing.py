"""Hierarchy-aware routing over the synthetic topology.

Traffic between two servers climbs the location hierarchy to the lowest
common aggregation level and descends again, failing over among the
redundant devices and circuit sets at each level.  This is the substrate
behaviour the paper's monitoring tools observe: when a device or circuit
fails, flows shift to redundancy peers (possibly congesting them) or, when
no alternative survives, become unreachable -- which is what Ping, sFlow and
friends then alert on.

Routing consults a :class:`HealthView` so the same topology can be routed
under many simulated failure states without mutation.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .hierarchy import Level, LocationPath
from .network import INTERNET, CircuitSet, DeviceRole, Server, Topology

#: Transit device role expected at each aggregation level.
TRANSIT_ROLES = {
    Level.SITE: DeviceRole.SITE_AGGREGATION,
    Level.LOGIC_SITE: DeviceRole.LOGIC_SITE_ROUTER,
    Level.CITY: DeviceRole.CITY_ROUTER,
    Level.REGION: DeviceRole.REGION_BACKBONE,
}


class HealthView:
    """What the router may ask about current network health.

    The default instance answers "everything is fine"; the simulator's
    :class:`repro.simulation.state.NetworkState` subclasses this to reflect
    injected failures.
    """

    def device_up(self, device_name: str) -> bool:
        return True

    def circuit_set_usable(self, set_id: str) -> bool:
        """True when at least one member circuit is up."""
        return True

    def signature(self) -> Tuple[str, ...]:
        """Cache token identifying the current failure-condition set.

        Routing is a pure function of (topology, health), so any memoised
        route stays valid while this signature is unchanged.  The default
        view never fails anything, hence the constant empty token; stateful
        subclasses return the identifiers of the active routing-affecting
        failure conditions.
        """
        return ()


ALL_HEALTHY = HealthView()


@dataclasses.dataclass(frozen=True)
class RoutePath:
    """A resolved route: alternating devices and the circuit sets hopped.

    ``circuit_sets[i]`` connects ``devices[i]`` to ``devices[i + 1]``; for a
    route to the Internet the final circuit set leads off-net, so
    ``len(circuit_sets)`` is then ``len(devices)`` instead of
    ``len(devices) - 1``.
    """

    src: str
    dst: str
    devices: Sequence[str]
    circuit_sets: Sequence[str]
    reachable: bool
    failure_reason: str = ""

    def __post_init__(self) -> None:
        if self.reachable:
            expected = len(self.devices) - (0 if self.dst == INTERNET else 1)
            if len(self.circuit_sets) != max(expected, 0):
                raise ValueError(
                    f"route {self.src}->{self.dst}: {len(self.devices)} devices "
                    f"with {len(self.circuit_sets)} circuit sets is inconsistent"
                )

    def traverses_device(self, device_name: str) -> bool:
        return device_name in self.devices

    def traverses_circuit_set(self, set_id: str) -> bool:
        return set_id in self.circuit_sets


def _unreachable(src: str, dst: str, reason: str) -> RoutePath:
    return RoutePath(src=src, dst=dst, devices=(), circuit_sets=(), reachable=False,
                     failure_reason=reason)


class HierarchicalRouter:
    """Routes flows through the hierarchy with health-aware failover."""

    def __init__(self, topology: Topology) -> None:
        self._topo = topology
        # circuit-set lookup by endpoint pair
        self._cs_by_pair: Dict[FrozenSet[str], List[CircuitSet]] = {}
        for cs in topology.circuit_sets.values():
            self._cs_by_pair.setdefault(frozenset((cs.device_a, cs.device_b)), []).append(cs)

    # -- public API ----------------------------------------------------------

    def route_servers(
        self, src: Server, dst: Server, health: HealthView = ALL_HEALTHY
    ) -> RoutePath:
        """Route between two servers, failing over across redundant gear."""
        if src.name == dst.name:
            raise ValueError("source and destination servers are identical")
        pref = _preference(src.name, dst.name)

        if src.attached_switch == dst.attached_switch:
            if not health.device_up(src.attached_switch):
                return _unreachable(src.name, dst.name, "shared switch down")
            return RoutePath(src.name, dst.name, (src.attached_switch,), (), True)

        common = src.cluster.common_ancestor(dst.cluster)
        if common.is_root:
            return self._route_cross_region(src, dst, health, pref)
        meet_level = Level(min(common.level.value, Level.SITE.value))
        meet_location = common.truncate(meet_level)

        up_a = self._climb(src, meet_level, health, pref)
        up_b = self._climb(dst, meet_level, health, pref)
        if up_a is None or up_b is None:
            return _unreachable(src.name, dst.name, "no healthy uplink chain")
        return self._join_at_meeting_point(src, dst, up_a, up_b, meet_location,
                                           meet_level, health, pref)

    def route_to_internet(self, src: Server, health: HealthView = ALL_HEALTHY) -> RoutePath:
        """Route from a server out of its logic site's Internet entrance."""
        pref = _preference(src.name, INTERNET)
        logic_site = src.cluster.truncate(Level.LOGIC_SITE)
        up = self._climb(src, Level.LOGIC_SITE, health, pref)
        if up is None:
            return _unreachable(src.name, INTERNET, "no healthy uplink chain")
        devices, sets = up
        gateways = [
            d.name
            for d in self._topo.devices_at(logic_site)
            if d.role is DeviceRole.INTERNET_GATEWAY
        ]
        last = devices[-1]
        for gw in _ordered(gateways, pref):
            if not health.device_up(gw):
                continue
            hop = self._usable_set_between(last, gw, health)
            exit_set = self._usable_set_between(gw, INTERNET, health)
            if hop is not None and exit_set is not None:
                return RoutePath(
                    src.name,
                    INTERNET,
                    tuple(devices) + (gw,),
                    tuple(sets) + (hop.set_id, exit_set.set_id),
                    True,
                )
        return _unreachable(src.name, INTERNET, "internet entrance down")

    def route_clusters(
        self,
        cluster_a: LocationPath,
        cluster_b: LocationPath,
        health: HealthView = ALL_HEALTHY,
    ) -> Optional[RoutePath]:
        """Route between representative servers of two clusters.

        Returns ``None`` when either cluster has no servers (nothing probes
        from there); used by the reachability matrix (§4.3, Figure 7).
        """
        servers_a = self._topo.servers_in(cluster_a)
        servers_b = self._topo.servers_in(cluster_b)
        if not servers_a or not servers_b:
            return None
        return self.route_servers(servers_a[0], servers_b[0], health)

    # -- internals -------------------------------------------------------------

    def _climb(
        self, server: Server, target_level: Level, health: HealthView, pref: int
    ) -> Optional[Tuple[List[str], List[str]]]:
        """Pick healthy devices from the server's switch up to ``target_level``.

        Returns ``(devices, circuit_set_ids)`` ending with the device chosen
        at ``target_level``, or ``None`` when some level has no healthy way up.
        """
        if not health.device_up(server.attached_switch):
            return None
        devices: List[str] = [server.attached_switch]
        sets: List[str] = []
        for level_value in range(Level.SITE.value, target_level.value - 1, -1):
            level = Level(level_value)
            location = server.cluster.truncate(level)
            role = TRANSIT_ROLES[level]
            candidates = [
                d.name for d in self._topo.devices_at(location) if d.role is role
            ]
            chosen = None
            for cand in _ordered(candidates, pref):
                if not health.device_up(cand):
                    continue
                hop = self._usable_set_between(devices[-1], cand, health)
                if hop is not None:
                    chosen = (cand, hop.set_id)
                    break
            if chosen is None:
                return None
            devices.append(chosen[0])
            sets.append(chosen[1])
        return devices, sets

    def _join_at_meeting_point(
        self,
        src: Server,
        dst: Server,
        up_a: Tuple[List[str], List[str]],
        up_b: Tuple[List[str], List[str]],
        meet_location: LocationPath,
        meet_level: Level,
        health: HealthView,
        pref: int,
    ) -> RoutePath:
        devices_a, sets_a = up_a
        devices_b, sets_b = up_b
        # The climbs both end at a device at the meeting location.  If they
        # already agree, splice directly; otherwise hop between the two
        # meeting-level peers is impossible (peers at one level connect only
        # via their parents), so force both sides onto a shared device.
        if devices_a[-1] == devices_b[-1]:
            devices = devices_a + list(reversed(devices_b[:-1]))
            sets = sets_a + list(reversed(sets_b))
            return RoutePath(src.name, dst.name, tuple(devices), tuple(sets), True)
        role = TRANSIT_ROLES[meet_level]
        shared = [
            d.name for d in self._topo.devices_at(meet_location) if d.role is role
        ]
        for cand in _ordered(shared, pref):
            if not health.device_up(cand):
                continue
            hop_a = self._reanchor(devices_a, sets_a, cand, health)
            hop_b = self._reanchor(devices_b, sets_b, cand, health)
            if hop_a is not None and hop_b is not None:
                da, sa = hop_a
                db, sb = hop_b
                devices = da + list(reversed(db[:-1]))
                sets = sa + list(reversed(sb))
                return RoutePath(src.name, dst.name, tuple(devices), tuple(sets), True)
        return _unreachable(src.name, dst.name, "no healthy meeting device")

    def _reanchor(self, devices: List[str], sets: List[str], meeting: str,
                  health: HealthView) -> Optional[Tuple[List[str], List[str]]]:
        """Swap the final climbed device for ``meeting`` if a healthy circuit
        set connects the previous hop to it."""
        if devices[-1] == meeting:
            return devices, sets
        below = devices[-2] if len(devices) >= 2 else None
        if below is None:
            return None
        hop = self._usable_set_between(below, meeting, health)
        if hop is None:
            return None
        return devices[:-1] + [meeting], sets[:-1] + [hop.set_id]

    def _route_cross_region(
        self, src: Server, dst: Server, health: HealthView, pref: int
    ) -> RoutePath:
        up_a = self._climb(src, Level.REGION, health, pref)
        up_b = self._climb(dst, Level.REGION, health, pref)
        if up_a is None or up_b is None:
            return _unreachable(src.name, dst.name, "no healthy uplink chain")
        devices_a, sets_a = up_a
        devices_b, sets_b = up_b
        region_a = src.cluster.truncate(Level.REGION)
        region_b = dst.cluster.truncate(Level.REGION)
        backbones_a = [
            d.name
            for d in self._topo.devices_at(region_a)
            if d.role is DeviceRole.REGION_BACKBONE
        ]
        backbones_b = [
            d.name
            for d in self._topo.devices_at(region_b)
            if d.role is DeviceRole.REGION_BACKBONE
        ]
        for ba in _ordered(backbones_a, pref):
            if not health.device_up(ba):
                continue
            side_a = self._reanchor(devices_a, sets_a, ba, health)
            if side_a is None:
                continue
            for bb in _ordered(backbones_b, pref):
                if not health.device_up(bb):
                    continue
                wan = self._usable_set_between(ba, bb, health)
                if wan is None:
                    continue
                side_b = self._reanchor(devices_b, sets_b, bb, health)
                if side_b is None:
                    continue
                da, sa = side_a
                db, sb = side_b
                devices = da + list(reversed(db))
                sets = sa + [wan.set_id] + list(reversed(sb))
                return RoutePath(src.name, dst.name, tuple(devices), tuple(sets), True)
        return _unreachable(src.name, dst.name, "no healthy WAN path")

    def _usable_set_between(
        self, a: str, b: str, health: HealthView
    ) -> Optional[CircuitSet]:
        for cs in self._cs_by_pair.get(frozenset((a, b)), ()):
            if health.circuit_set_usable(cs.set_id):
                return cs
        return None


class ReachabilityCache:
    """Memoised routing queries, invalidated on failure-condition change.

    The locator's connectivity restriction and the Figure 7 reachability
    matrix ask the same (source, destination) questions over and over
    while the network state is unchanged; under an alert flood that is
    thousands of identical hierarchical-routing walks per sweep.  This
    cache keys every answer on :meth:`HealthView.signature`, so a failure
    condition starting, converging or ending drops the whole memo at
    once and correctness never depends on per-entry invalidation.
    """

    def __init__(self, router: HierarchicalRouter) -> None:
        self._router = router
        self._signature: Optional[Tuple[str, ...]] = None
        self._cluster_routes: Dict[Tuple[LocationPath, LocationPath],
                                   Optional[RoutePath]] = {}

    def _refresh(self, health: HealthView) -> None:
        signature = health.signature()
        if signature != self._signature:
            self._cluster_routes.clear()
            self._signature = signature

    def route_clusters(
        self,
        cluster_a: LocationPath,
        cluster_b: LocationPath,
        health: HealthView = ALL_HEALTHY,
    ) -> Optional[RoutePath]:
        """Cached :meth:`HierarchicalRouter.route_clusters`."""
        self._refresh(health)
        key = (cluster_a, cluster_b)
        if key not in self._cluster_routes:
            self._cluster_routes[key] = self._router.route_clusters(
                cluster_a, cluster_b, health
            )
        return self._cluster_routes[key]


def _preference(src: str, dst: str) -> int:
    """Stable per-flow preference used to spread flows across redundant gear."""
    return zlib.crc32(f"{src}->{dst}".encode("utf-8"))


def _ordered(candidates: Sequence[str], pref: int) -> List[str]:
    """Rotate ``candidates`` by the flow preference -- deterministic spread."""
    if not candidates:
        return []
    ordered = sorted(candidates)
    offset = pref % len(ordered)
    return ordered[offset:] + ordered[:offset]
