"""Customers, SLA flows, and traffic placement.

The evaluator (§4.3, Equations 1-3, Table 3) consumes per-circuit-set
customer data gathered "via Netflow" in production:

* ``g_i`` -- importance factor of customers related to circuit set *i*;
* ``u_i`` -- number of customers related to circuit set *i*;
* ``l_i`` -- ratio of SLA flows beyond limit on circuit set *i*;
* ``U_k`` -- number of important customers affected by incident *k*.

Production NetFlow is proprietary, so this module synthesises customers
with tiered importance and places their flows onto the topology with the
hierarchical router.  Utilisation and congestion are then derived by the
simulator from this placement.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Set

from .hierarchy import LocationPath
from .network import INTERNET, Topology
from .routing import ALL_HEALTHY, HealthView, HierarchicalRouter, RoutePath

#: Importance tiers (the factor ``g`` in Equation 1).
IMPORTANCE_STANDARD = 1.0
IMPORTANCE_PREMIUM = 5.0
IMPORTANCE_CRITICAL = 20.0

#: Customers at or above this importance count as "important" for ``U_k``.
IMPORTANT_CUSTOMER_THRESHOLD = IMPORTANCE_PREMIUM


@dataclasses.dataclass(frozen=True)
class Customer:
    """A cloud customer with an importance tier."""

    customer_id: str
    importance: float = IMPORTANCE_STANDARD

    @property
    def is_important(self) -> bool:
        return self.importance >= IMPORTANT_CUSTOMER_THRESHOLD


@dataclasses.dataclass(frozen=True)
class Flow:
    """A long-lived customer flow between two servers or to the Internet."""

    flow_id: str
    customer_id: str
    src_server: str
    dst: str  # server name, or network.INTERNET
    rate_gbps: float
    sla_limit_gbps: float = 0.0  # committed SLA rate; 0 means best-effort

    @property
    def has_sla(self) -> bool:
        return self.sla_limit_gbps > 0.0


@dataclasses.dataclass
class FlowPlacement:
    """Where every flow landed under one health state."""

    routes: Dict[str, RoutePath]
    flows_by_circuit_set: Dict[str, List[str]]
    unroutable: List[str]

    def flows_on(self, set_id: str) -> List[str]:
        return self.flows_by_circuit_set.get(set_id, [])


class TrafficModel:
    """Customers + flows over a topology, with placement and aggregation."""

    def __init__(self, topology: Topology, customers: Sequence[Customer],
                 flows: Sequence[Flow]) -> None:
        self._topo = topology
        self._router = HierarchicalRouter(topology)
        self._customers = {c.customer_id: c for c in customers}
        if len(self._customers) != len(customers):
            raise ValueError("duplicate customer ids")
        self._flows = {f.flow_id: f for f in flows}
        if len(self._flows) != len(flows):
            raise ValueError("duplicate flow ids")
        for flow in flows:
            if flow.customer_id not in self._customers:
                raise KeyError(f"flow {flow.flow_id} belongs to unknown customer")
            if flow.src_server not in topology.servers:
                raise KeyError(f"flow {flow.flow_id} sources from unknown server")
            if flow.dst != INTERNET and flow.dst not in topology.servers:
                raise KeyError(f"flow {flow.flow_id} targets unknown endpoint")

    # -- accessors -----------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topo

    @property
    def router(self) -> HierarchicalRouter:
        return self._router

    @property
    def customers(self) -> Dict[str, Customer]:
        return dict(self._customers)

    @property
    def flows(self) -> Dict[str, Flow]:
        return dict(self._flows)

    def customer(self, customer_id: str) -> Customer:
        return self._customers[customer_id]

    def flow(self, flow_id: str) -> Flow:
        return self._flows[flow_id]

    # -- placement -------------------------------------------------------------

    def place_flows(self, health: HealthView = ALL_HEALTHY) -> FlowPlacement:
        """Route every flow under ``health`` and index routes by circuit set."""
        routes: Dict[str, RoutePath] = {}
        by_set: Dict[str, List[str]] = {}
        unroutable: List[str] = []
        servers = self._topo.servers
        for flow in self._flows.values():
            src = servers[flow.src_server]
            if flow.dst == INTERNET:
                route = self._router.route_to_internet(src, health)
            else:
                route = self._router.route_servers(src, servers[flow.dst], health)
            routes[flow.flow_id] = route
            if not route.reachable:
                unroutable.append(flow.flow_id)
                continue
            for set_id in route.circuit_sets:
                by_set.setdefault(set_id, []).append(flow.flow_id)
        return FlowPlacement(routes=routes, flows_by_circuit_set=by_set,
                             unroutable=unroutable)

    # -- per-circuit-set aggregates (Equation 1 / Table 3 inputs) ---------------

    def customers_on_circuit_set(
        self, set_id: str, placement: FlowPlacement
    ) -> List[Customer]:
        ids: Set[str] = {
            self._flows[f].customer_id for f in placement.flows_on(set_id)
        }
        return [self._customers[c] for c in sorted(ids)]

    def importance_factor(self, set_id: str, placement: FlowPlacement) -> float:
        """``g_i``: mean importance of customers on the circuit set (0 if none)."""
        customers = self.customers_on_circuit_set(set_id, placement)
        if not customers:
            return 0.0
        return sum(c.importance for c in customers) / len(customers)

    def customer_count(self, set_id: str, placement: FlowPlacement) -> int:
        """``u_i``: number of distinct customers on the circuit set."""
        return len(self.customers_on_circuit_set(set_id, placement))

    def offered_load_gbps(self, set_id: str, placement: FlowPlacement) -> float:
        return sum(self._flows[f].rate_gbps for f in placement.flows_on(set_id))

    def sla_flows_on(self, set_id: str, placement: FlowPlacement) -> List[Flow]:
        return [
            self._flows[f]
            for f in placement.flows_on(set_id)
            if self._flows[f].has_sla
        ]

    def important_customers_in(
        self, location: LocationPath, placement: FlowPlacement
    ) -> Set[str]:
        """Important customers whose flows traverse circuit sets under a
        location -- feeds ``U_k`` for an incident scoped to that location."""
        sets_under = {cs.set_id for cs in self._topo.circuit_sets_under(location)}
        result: Set[str] = set()
        for set_id in sets_under:
            for flow_id in placement.flows_on(set_id):
                customer = self._customers[self._flows[flow_id].customer_id]
                if customer.is_important:
                    result.add(customer.customer_id)
        return result


def generate_traffic(
    topology: Topology,
    n_customers: int = 40,
    flows_per_customer: int = 3,
    premium_fraction: float = 0.2,
    critical_fraction: float = 0.05,
    internet_fraction: float = 0.4,
    mean_rate_gbps: float = 2.0,
    sla_fraction: float = 0.3,
    seed: int = 11,
) -> TrafficModel:
    """Synthesise a customer/flow population over ``topology``.

    Importance tiers follow a skewed distribution (most customers standard,
    a premium slice, a thin critical slice), mirroring the paper's point
    that a *small* incident can outrank a big one because of who it hits
    (§4.3 "Scene ranking" case).
    """
    if n_customers < 1:
        raise ValueError("need at least one customer")
    rng = random.Random(seed)
    server_names = sorted(topology.servers)
    if len(server_names) < 2:
        raise ValueError("topology needs at least two servers to carry traffic")

    customers: List[Customer] = []
    for i in range(n_customers):
        draw = rng.random()
        if draw < critical_fraction:
            importance = IMPORTANCE_CRITICAL
        elif draw < critical_fraction + premium_fraction:
            importance = IMPORTANCE_PREMIUM
        else:
            importance = IMPORTANCE_STANDARD
        customers.append(Customer(customer_id=f"cust-{i + 1:04d}", importance=importance))

    flows: List[Flow] = []
    for customer in customers:
        for j in range(flows_per_customer):
            src = rng.choice(server_names)
            if rng.random() < internet_fraction:
                dst = INTERNET
            else:
                dst = rng.choice([s for s in server_names if s != src])
            rate = max(0.1, rng.expovariate(1.0 / mean_rate_gbps))
            sla = rate * 0.8 if rng.random() < sla_fraction else 0.0
            flows.append(
                Flow(
                    flow_id=f"{customer.customer_id}/f{j + 1}",
                    customer_id=customer.customer_id,
                    src_server=src,
                    dst=dst,
                    rate_gbps=rate,
                    sla_limit_gbps=sla,
                )
            )
    return TrafficModel(topology, customers, flows)
