"""Network topology substrate: hierarchy, devices, circuit sets, routing, traffic.

Synthetic stand-in for the paper's production network (see DESIGN.md §2).
"""

from .hierarchy import Level, LocationPath, lowest_common_ancestor
from .network import (
    INTERNET,
    Circuit,
    CircuitSet,
    Device,
    DeviceRole,
    Server,
    Topology,
)
from .builder import TopologySpec, build_topology
from .routing import (
    ALL_HEALTHY,
    HealthView,
    HierarchicalRouter,
    RoutePath,
)
from .traffic import (
    IMPORTANCE_CRITICAL,
    IMPORTANCE_PREMIUM,
    IMPORTANCE_STANDARD,
    IMPORTANT_CUSTOMER_THRESHOLD,
    Customer,
    Flow,
    FlowPlacement,
    TrafficModel,
    generate_traffic,
)

__all__ = [
    "ALL_HEALTHY",
    "Circuit",
    "CircuitSet",
    "Customer",
    "Device",
    "DeviceRole",
    "Flow",
    "FlowPlacement",
    "HealthView",
    "HierarchicalRouter",
    "IMPORTANCE_CRITICAL",
    "IMPORTANCE_PREMIUM",
    "IMPORTANCE_STANDARD",
    "IMPORTANT_CUSTOMER_THRESHOLD",
    "INTERNET",
    "Level",
    "LocationPath",
    "RoutePath",
    "Server",
    "Topology",
    "TopologySpec",
    "TrafficModel",
    "build_topology",
    "generate_traffic",
    "lowest_common_ancestor",
]
