"""Synthetic hierarchical cloud topology generator.

The paper evaluates SkyNet on Alibaba Cloud's production network
(89 data centers, O(10^5) devices).  That topology is proprietary, so this
module builds a structurally equivalent synthetic one: a strict
Region → City → Logic site → Site → Cluster hierarchy with redundant device
pairs at every aggregation level, redundant circuit sets between adjacent
levels, Internet entrances per logic site, and servers as probe endpoints.

Everything SkyNet's algorithms consume -- the location hierarchy, device
adjacency, circuit-set redundancy, customer traffic placement -- is present;
only the scale knob differs from production.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import Dict, List, Optional

from .hierarchy import LocationPath
from .network import (
    INTERNET,
    Circuit,
    CircuitSet,
    Device,
    DeviceRole,
    Server,
    Topology,
)


@dataclasses.dataclass(frozen=True)
class TopologySpec:
    """Size and redundancy knobs for the synthetic topology.

    Defaults give a small-but-complete fabric (hundreds of devices) suitable
    for tests; :meth:`benchmark` scales to thousands for the evaluation
    benches.  Redundancy (``*_redundancy`` device pairs, ``circuits_per_set``
    parallel circuits) is what makes partial failures degrade bandwidth
    without killing reachability (§4.3 circuit sets).
    """

    regions: int = 2
    cities_per_region: int = 1
    logic_sites_per_city: int = 2
    sites_per_logic_site: int = 2
    clusters_per_site: int = 2
    switches_per_cluster: int = 2
    servers_per_cluster: int = 4
    backbone_redundancy: int = 2
    router_redundancy: int = 2
    circuits_per_set: int = 4
    circuit_capacity_gbps: float = 100.0
    internet_gateways_per_logic_site: int = 2
    internet_circuits_per_gateway: int = 8
    #: Entrance circuits are thin and run hot (realistic for paid transit);
    #: this is what lets the §2.2 cable-cut scenario congest the survivors.
    internet_circuit_capacity_gbps: float = 5.0
    seed: int = 7

    def __post_init__(self) -> None:
        counts = {
            "regions": self.regions,
            "cities_per_region": self.cities_per_region,
            "logic_sites_per_city": self.logic_sites_per_city,
            "sites_per_logic_site": self.sites_per_logic_site,
            "clusters_per_site": self.clusters_per_site,
            "switches_per_cluster": self.switches_per_cluster,
            "backbone_redundancy": self.backbone_redundancy,
            "router_redundancy": self.router_redundancy,
            "circuits_per_set": self.circuits_per_set,
        }
        for field, value in counts.items():
            if value < 1:
                raise ValueError(f"{field} must be >= 1, got {value}")
        if self.servers_per_cluster < 0:
            raise ValueError("servers_per_cluster must be >= 0")

    @classmethod
    def tiny(cls) -> "TopologySpec":
        """Smallest interesting fabric -- fast unit tests."""
        return cls(
            regions=1,
            cities_per_region=1,
            logic_sites_per_city=1,
            sites_per_logic_site=2,
            clusters_per_site=2,
            switches_per_cluster=2,
            servers_per_cluster=2,
            circuits_per_set=2,
            internet_gateways_per_logic_site=1,
        )

    @classmethod
    def benchmark(cls) -> "TopologySpec":
        """Larger fabric for the evaluation benchmarks (thousands of devices)."""
        return cls(
            regions=3,
            cities_per_region=2,
            logic_sites_per_city=2,
            sites_per_logic_site=3,
            clusters_per_site=4,
            switches_per_cluster=4,
            servers_per_cluster=6,
            circuits_per_set=4,
        )


def build_topology(spec: Optional[TopologySpec] = None) -> Topology:
    """Construct a :class:`Topology` according to ``spec``.

    Naming follows the paper's Figure 11 conventions loosely
    (``NA61-MASTER-CSR-G1`` style): the site short-code prefixes the role.
    Deterministic for a given spec (the seed only matters for optional
    jitter-free placement, kept for forward compatibility).
    """
    spec = spec or TopologySpec()
    rng = random.Random(spec.seed)  # reserved for future placement jitter
    del rng
    topo = Topology()

    for r in range(spec.regions):
        region = LocationPath.root().child(f"RG{r + 1:02d}")
        topo.add_location(region)
        _add_device_pairs(
            topo,
            region,
            DeviceRole.REGION_BACKBONE,
            count=spec.backbone_redundancy,
            prefix=f"{region.name}-DCBR",
        )
        for c in range(spec.cities_per_region):
            city = region.child(f"{region.name}-CT{c + 1:02d}")
            topo.add_location(city)
            bsrs = _add_device_pairs(
                topo,
                city,
                DeviceRole.CITY_ROUTER,
                count=spec.router_redundancy,
                prefix=f"{city.name}-BSR",
            )
            _cross_connect(topo, bsrs, _device_names_at(topo, region), spec)
            for ls in range(spec.logic_sites_per_city):
                logic_site = city.child(f"{city.name}-LS{ls + 1:02d}")
                topo.add_location(logic_site)
                isrs = _add_device_pairs(
                    topo,
                    logic_site,
                    DeviceRole.LOGIC_SITE_ROUTER,
                    count=spec.router_redundancy,
                    prefix=f"{logic_site.name}-ISR",
                )
                _cross_connect(topo, isrs, bsrs, spec)
                _add_internet_entrance(topo, logic_site, isrs, spec)
                for s in range(spec.sites_per_logic_site):
                    site = logic_site.child(f"{logic_site.name}-ST{s + 1:02d}")
                    topo.add_location(site)
                    csrs = _add_device_pairs(
                        topo,
                        site,
                        DeviceRole.SITE_AGGREGATION,
                        count=spec.router_redundancy,
                        prefix=f"{site.name}-CSR",
                    )
                    _cross_connect(topo, csrs, isrs, spec)
                    for cl in range(spec.clusters_per_site):
                        cluster = site.child(f"{site.name}-CL{cl + 1:02d}")
                        topo.add_location(cluster)
                        switches = _add_device_pairs(
                            topo,
                            cluster,
                            DeviceRole.CLUSTER_SWITCH,
                            count=spec.switches_per_cluster,
                            prefix=f"{cluster.name}-CSW",
                        )
                        _cross_connect(topo, switches, csrs, spec)
                        for sv in range(spec.servers_per_cluster):
                            switch = switches[sv % len(switches)]
                            topo.add_server(
                                Server(
                                    name=f"{cluster.name}-SRV{sv + 1:02d}",
                                    cluster=cluster,
                                    attached_switch=switch,
                                )
                            )

    _connect_backbone(topo, spec)
    return topo


# -- internal helpers --------------------------------------------------------


def _add_device_pairs(
    topo: Topology,
    location: LocationPath,
    role: DeviceRole,
    count: int,
    prefix: str,
) -> List[str]:
    """Add ``count`` redundant devices of ``role`` at ``location``."""
    names: List[str] = []
    group = f"{location}|{role.value}"
    for i in range(count):
        name = f"{prefix}-G{i + 1}"
        topo.add_device(
            Device(
                name=name,
                role=role,
                location=location.child(name, is_device=True),
                group=group,
            )
        )
        names.append(name)
    return names


def _device_names_at(topo: Topology, location: LocationPath) -> List[str]:
    return [d.name for d in topo.devices_at(location)]


def _new_circuits(
    spec: TopologySpec,
    set_id: str,
    count: Optional[int] = None,
    capacity: Optional[float] = None,
) -> List[Circuit]:
    n = count if count is not None else spec.circuits_per_set
    cap = capacity if capacity is not None else spec.circuit_capacity_gbps
    return [
        Circuit(circuit_id=f"{set_id}/c{i + 1}", capacity_gbps=cap)
        for i in range(n)
    ]


def _connect(
    topo: Topology,
    a: str,
    b: str,
    spec: TopologySpec,
    circuits: Optional[int] = None,
    capacity: Optional[float] = None,
) -> None:
    set_id = f"cs[{a}--{b}]"
    topo.add_circuit_set(
        CircuitSet(
            set_id=set_id,
            device_a=a,
            device_b=b,
            circuits=_new_circuits(spec, set_id, circuits, capacity),
        )
    )


def _cross_connect(topo: Topology, lower: List[str], upper: List[str], spec: TopologySpec) -> None:
    """Full bipartite connection between a level and its parent level."""
    for a in lower:
        for b in upper:
            _connect(topo, a, b, spec)


def _add_internet_entrance(
    topo: Topology, logic_site: LocationPath, isrs: List[str], spec: TopologySpec
) -> None:
    """Internet gateways per logic site, each with a fat circuit set to the
    Internet pseudo-device (the §2.2 severe-failure scenario cuts these)."""
    gateways = _add_device_pairs(
        topo,
        logic_site,
        DeviceRole.INTERNET_GATEWAY,
        count=spec.internet_gateways_per_logic_site,
        prefix=f"{logic_site.name}-IGW",
    )
    _cross_connect(topo, gateways, isrs, spec)
    for gw in gateways:
        _connect(
            topo,
            gw,
            INTERNET,
            spec,
            circuits=spec.internet_circuits_per_gateway,
            capacity=spec.internet_circuit_capacity_gbps,
        )


def _connect_backbone(topo: Topology, spec: TopologySpec) -> None:
    """WAN: connect region backbones pairwise across regions (index-matched)."""
    by_region: Dict[LocationPath, List[str]] = {}
    for dev in topo.devices.values():
        if dev.role is DeviceRole.REGION_BACKBONE:
            by_region.setdefault(dev.parent_location, []).append(dev.name)
    for devs in by_region.values():
        devs.sort()
    for (loc_a, devs_a), (loc_b, devs_b) in itertools.combinations(
        sorted(by_region.items(), key=lambda kv: str(kv[0])), 2
    ):
        for i in range(min(len(devs_a), len(devs_b))):
            _connect(topo, devs_a[i], devs_b[i], spec)
