"""Physical network model: devices, circuits, circuit sets, topology.

Mirrors the paper's description (§2, §4.3):

* devices live at every level of the location hierarchy (Figure 5b);
* "all links connecting network devices consist of multiple circuits, each
  [group] is called a circuit set" (§4.3, Table 3) -- redundancy within a
  circuit set means a partial break lowers bandwidth without necessarily
  losing reachability;
* servers hang off cluster switches and are the endpoints of end-to-end
  probing (Ping, Table 2).

The topology object is pure structure -- *state* (which circuits are broken,
which devices are down, congestion) lives in
:class:`repro.simulation.state.NetworkState` so that one topology can back
many independent simulations.
"""

from __future__ import annotations

import dataclasses
import enum
import types
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .hierarchy import Level, LocationPath


class DeviceRole(enum.Enum):
    """Role of a network device, loosely following the paper's Figure 11."""

    REGION_BACKBONE = "DCBR"  # region backbone router
    CITY_ROUTER = "BSR"  # city/border service router
    LOGIC_SITE_ROUTER = "ISR"  # logic-site interconnect router
    SITE_AGGREGATION = "CSR"  # site aggregation router
    CLUSTER_SWITCH = "CSW"  # top-of-cluster switch
    INTERNET_GATEWAY = "IGW"  # data-center Internet entrance
    REFLECTOR = "RR"  # route reflector (case study §7.1)

    @property
    def level(self) -> Level:
        """Structural level this role normally attaches to."""
        return _ROLE_LEVELS[self]


_ROLE_LEVELS = {
    DeviceRole.REGION_BACKBONE: Level.REGION,
    DeviceRole.CITY_ROUTER: Level.CITY,
    DeviceRole.LOGIC_SITE_ROUTER: Level.LOGIC_SITE,
    DeviceRole.SITE_AGGREGATION: Level.SITE,
    DeviceRole.CLUSTER_SWITCH: Level.CLUSTER,
    DeviceRole.INTERNET_GATEWAY: Level.LOGIC_SITE,
    DeviceRole.REFLECTOR: Level.LOGIC_SITE,
}


@dataclasses.dataclass(frozen=True)
class Device:
    """A network device attached to one node of the location hierarchy."""

    name: str
    role: DeviceRole
    location: LocationPath  # device path: parent location + own name
    group: str = ""  # redundancy group; peers can absorb this device's traffic

    def __post_init__(self) -> None:
        if not self.location.is_device:
            raise ValueError(f"device {self.name} needs a device-flagged path")
        if self.location.name != self.name:
            raise ValueError(
                f"device path {self.location} must end with the device name {self.name!r}"
            )

    @property
    def parent_location(self) -> LocationPath:
        """The structural location the device attaches to."""
        return self.location.parent


@dataclasses.dataclass(frozen=True)
class Server:
    """An end host used as a probe endpoint; not a network device."""

    name: str
    cluster: LocationPath  # structural path of the enclosing cluster
    attached_switch: str  # device name of the cluster switch it uplinks to

    def __post_init__(self) -> None:
        if self.cluster.level is not Level.CLUSTER:
            raise ValueError(f"server {self.name} must live in a cluster")


@dataclasses.dataclass
class Circuit:
    """One physical circuit inside a circuit set."""

    circuit_id: str
    capacity_gbps: float = 100.0


@dataclasses.dataclass
class CircuitSet:
    """A redundant bundle of circuits forming one logical link (§4.3).

    ``d_i`` in Equation 1 -- the break ratio -- is the fraction of member
    circuits currently down, which is state, so it is computed by
    :class:`repro.simulation.state.NetworkState`, not here.
    """

    set_id: str
    device_a: str
    device_b: str
    circuits: List[Circuit]

    def __post_init__(self) -> None:
        if not self.circuits:
            raise ValueError(f"circuit set {self.set_id} needs at least one circuit")
        if self.device_a == self.device_b:
            raise ValueError(f"circuit set {self.set_id} cannot be a self-loop")

    @property
    def endpoints(self) -> FrozenSet[str]:
        return frozenset((self.device_a, self.device_b))

    @property
    def total_capacity_gbps(self) -> float:
        return sum(c.capacity_gbps for c in self.circuits)

    def other_end(self, device: str) -> str:
        if device == self.device_a:
            return self.device_b
        if device == self.device_b:
            return self.device_a
        raise KeyError(f"{device} is not an endpoint of {self.set_id}")


#: Pseudo-device name representing the public Internet outside our network.
INTERNET = "<internet>"


class Topology:
    """The full network: hierarchy tree, devices, servers, circuit sets.

    Provides the structural queries SkyNet's locator and evaluator need:
    which devices live under a location, which devices are adjacent, which
    circuit sets touch a location's subtree.
    """

    def __init__(self) -> None:
        self._devices: Dict[str, Device] = {}
        self._servers: Dict[str, Server] = {}
        self._circuit_sets: Dict[str, CircuitSet] = {}
        self._adjacency: Dict[str, List[str]] = {}  # device -> circuit set ids
        self._children: Dict[LocationPath, List[LocationPath]] = {}
        self._devices_by_location: Dict[LocationPath, List[str]] = {}
        self._servers_by_cluster: Dict[LocationPath, List[str]] = {}
        # caches invalidated on mutation (device graph, hop neighbourhoods)
        self._graph_cache: Optional["nx.Graph"] = None
        self._hood_cache: Dict[int, Dict[str, FrozenSet[str]]] = {}
        # monotone mutation counter; external memoisers (e.g. the
        # evaluator's circuit-set cache) key on it to stay coherent
        self._version = 0
        # zero-copy read-only views handed out by the hot properties
        self._devices_view = types.MappingProxyType(self._devices)
        self._servers_view = types.MappingProxyType(self._servers)
        self._circuit_sets_view = types.MappingProxyType(self._circuit_sets)

    # -- pickling ----------------------------------------------------------
    # The read-only mapping views are unpicklable (and the graph/hood
    # caches are derived state), so pickling -- which the multiprocess
    # shard backend relies on to ship the fabric to worker processes --
    # drops them and rebuilds on load.

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        for key in (
            "_devices_view",
            "_servers_view",
            "_circuit_sets_view",
            "_graph_cache",
            "_hood_cache",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._graph_cache = None
        self._hood_cache = {}
        self._devices_view = types.MappingProxyType(self._devices)
        self._servers_view = types.MappingProxyType(self._servers)
        self._circuit_sets_view = types.MappingProxyType(self._circuit_sets)

    # -- construction ------------------------------------------------------

    def add_location(self, path: LocationPath) -> None:
        """Register a structural location (ancestors are added implicitly)."""
        if path.is_device:
            raise ValueError("use add_device for devices")
        self._version += 1
        node = path
        while not node.is_root:
            siblings = self._children.setdefault(node.parent, [])
            if node not in siblings:
                siblings.append(node)
            node = node.parent
        self._children.setdefault(path, self._children.get(path, []))

    def add_device(self, device: Device) -> None:
        if device.name in self._devices:
            raise ValueError(f"duplicate device {device.name}")
        if device.name == INTERNET:
            raise ValueError(f"{INTERNET!r} is reserved for the Internet pseudo-device")
        self.add_location(device.parent_location)
        self._devices[device.name] = device
        self._adjacency.setdefault(device.name, [])
        self._devices_by_location.setdefault(device.parent_location, []).append(device.name)
        self._graph_cache = None
        self._hood_cache.clear()
        self._version += 1

    def add_server(self, server: Server) -> None:
        if server.name in self._servers:
            raise ValueError(f"duplicate server {server.name}")
        if server.attached_switch not in self._devices:
            raise KeyError(f"server {server.name} uplinks to unknown {server.attached_switch}")
        self.add_location(server.cluster)
        self._servers[server.name] = server
        self._servers_by_cluster.setdefault(server.cluster, []).append(server.name)
        self._version += 1

    def add_circuit_set(self, circuit_set: CircuitSet) -> None:
        if circuit_set.set_id in self._circuit_sets:
            raise ValueError(f"duplicate circuit set {circuit_set.set_id}")
        for end in (circuit_set.device_a, circuit_set.device_b):
            if end != INTERNET and end not in self._devices:
                raise KeyError(f"circuit set {circuit_set.set_id} touches unknown {end}")
        self._circuit_sets[circuit_set.set_id] = circuit_set
        for end in circuit_set.endpoints:
            if end != INTERNET:
                self._adjacency[end].append(circuit_set.set_id)
        self._graph_cache = None
        self._hood_cache.clear()
        self._version += 1

    # -- lookups -----------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter: changes whenever the topology is edited, so
        long-lived memoisers can detect staleness cheaply."""
        return self._version

    @property
    def devices(self) -> "Dict[str, Device]":
        """Read-only live view (hot path: no copying)."""
        return self._devices_view

    @property
    def servers(self) -> "Dict[str, Server]":
        return self._servers_view

    @property
    def circuit_sets(self) -> "Dict[str, CircuitSet]":
        return self._circuit_sets_view

    def device(self, name: str) -> Device:
        return self._devices[name]

    def server(self, name: str) -> Server:
        return self._servers[name]

    def circuit_set(self, set_id: str) -> CircuitSet:
        return self._circuit_sets[set_id]

    def has_device(self, name: str) -> bool:
        return name in self._devices

    def children(self, path: LocationPath) -> List[LocationPath]:
        """Structural children of a location (not devices)."""
        return list(self._children.get(path, []))

    def locations(self) -> Iterator[LocationPath]:
        """All registered structural locations, root included, top-down."""
        seen = {LocationPath.root()}
        yield LocationPath.root()
        stack = list(reversed(self._children.get(LocationPath.root(), [])))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            yield node
            stack.extend(reversed(self._children.get(node, [])))

    def devices_at(self, path: LocationPath) -> List[Device]:
        """Devices attached *directly* to this structural location."""
        return [self._devices[n] for n in self._devices_by_location.get(path, [])]

    def devices_under(self, path: LocationPath) -> List[Device]:
        """All devices whose location lies in the subtree of ``path``."""
        if path.is_device:
            dev = self._devices.get(path.name)
            return [dev] if dev and dev.location == path else []
        return [d for d in self._devices.values() if path.contains(d.location)]

    def servers_in(self, cluster: LocationPath) -> List[Server]:
        return [self._servers[n] for n in self._servers_by_cluster.get(cluster, [])]

    def devices_in_group(self, group: str) -> List[Device]:
        return [d for d in self._devices.values() if d.group == group]

    def circuit_sets_of(self, device_name: str) -> List[CircuitSet]:
        return [self._circuit_sets[s] for s in self._adjacency.get(device_name, [])]

    def circuit_sets_under(self, path: LocationPath) -> List[CircuitSet]:
        """Circuit sets with at least one endpoint inside ``path``'s subtree."""
        names = {d.name for d in self.devices_under(path)}
        found: Dict[str, CircuitSet] = {}
        for name in names:
            for cs in self.circuit_sets_of(name):
                found[cs.set_id] = cs
        return list(found.values())

    def neighbors(self, device_name: str) -> List[str]:
        """Adjacent devices (Internet pseudo-neighbour excluded)."""
        out: List[str] = []
        for cs in self.circuit_sets_of(device_name):
            other = cs.other_end(device_name)
            if other != INTERNET:
                out.append(other)
        return out

    def internet_gateways(self) -> List[Device]:
        """Devices with a circuit set reaching the Internet pseudo-device."""
        names: Set[str] = set()
        for cs in self._circuit_sets.values():
            if INTERNET in cs.endpoints:
                names.add(cs.other_end(INTERNET))
        return [self._devices[n] for n in sorted(names)]

    # -- derived structure ---------------------------------------------------

    def device_graph(self) -> "nx.Graph":
        """Undirected device adjacency graph (for connectivity grouping);
        cached until the topology mutates."""
        if self._graph_cache is None:
            graph = nx.Graph()
            graph.add_nodes_from(self._devices)
            for cs in self._circuit_sets.values():
                if INTERNET not in cs.endpoints:
                    graph.add_edge(cs.device_a, cs.device_b, circuit_set=cs.set_id)
            self._graph_cache = graph
        return self._graph_cache

    def hop_neighbourhood(self, device_name: str, max_hops: int = 2) -> FrozenSet[str]:
        """Devices within ``max_hops`` of ``device_name`` (self excluded);
        computed lazily and cached -- the locator asks constantly."""
        per_hops = self._hood_cache.setdefault(max_hops, {})
        cached = per_hops.get(device_name)
        if cached is None:
            graph = self.device_graph()
            frontier = {device_name}
            seen = {device_name}
            for _ in range(max_hops):
                nxt: Set[str] = set()
                for node in frontier:
                    for nbr in graph.neighbors(node):
                        if nbr not in seen:
                            seen.add(nbr)
                            nxt.add(nbr)
                frontier = nxt
            seen.discard(device_name)
            cached = frozenset(seen)
            per_hops[device_name] = cached
        return cached

    def connected_device_components(
        self, device_names: Iterable[str], max_hops: int = 2
    ) -> List[FrozenSet[str]]:
        """Partition ``device_names`` into topologically connected groups.

        Two alerting devices belong to the same group when they are within
        ``max_hops`` of each other in the device graph ("network alerts often
        propagate through topological links", §4.2).  Used by the locator to
        split unrelated alert clusters that happen to share a location
        subtree (Figure 5c: device n ends up in its own incident tree).
        """
        names = [n for n in dict.fromkeys(device_names) if n in self._devices]
        if not names:
            return []
        union: Dict[str, str] = {n: n for n in names}

        def find(x: str) -> str:
            while union[x] != x:
                union[x] = union[union[x]]
                x = union[x]
            return x

        name_set = set(names)
        for name in names:
            for hit in self.hop_neighbourhood(name, max_hops) & name_set:
                ra, rb = find(name), find(hit)
                if ra != rb:
                    union[ra] = rb
        groups: Dict[str, set] = {}
        for name in names:
            groups.setdefault(find(name), set()).add(name)
        return [frozenset(g) for g in groups.values()]

    # -- summary -------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Size summary used by examples and benchmark headers."""
        return {
            "locations": sum(1 for _ in self.locations()) - 1,
            "devices": len(self._devices),
            "servers": len(self._servers),
            "circuit_sets": len(self._circuit_sets),
            "circuits": sum(len(cs.circuits) for cs in self._circuit_sets.values()),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Topology(devices={s['devices']}, servers={s['servers']}, "
            f"circuit_sets={s['circuit_sets']})"
        )
