"""Location hierarchy of the cloud network (paper Figure 5b).

The whole network -- WAN plus data centers -- is organised as a strict
hierarchy::

    Root -> Region -> City -> Logic site -> Site -> Cluster -> Device

Every alert SkyNet processes is indexed by a :class:`LocationPath`, a path
from the root to some node of this hierarchy.  Devices may be attached at
*any* level (paper Figure 6 attaches Device iii directly to ``Logic site 2``),
so a device path is simply its parent location plus the device name as the
final segment.

Paths are immutable and hashable so they can key dictionaries and populate
sets; the locator's alert tree is indexed entirely by them.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional, Sequence, Tuple


class Level(enum.IntEnum):
    """Depth of a node in the location hierarchy.

    The integer value equals the number of path segments, so ``Level(len(
    segments))`` recovers the level of a pure (device-free) location path.
    """

    ROOT = 0
    REGION = 1
    CITY = 2
    LOGIC_SITE = 3
    SITE = 4
    CLUSTER = 5
    DEVICE = 6

    @property
    def child(self) -> "Level":
        """The next level down; raises ``ValueError`` below DEVICE."""
        if self is Level.DEVICE:
            raise ValueError("DEVICE is the lowest level")
        return Level(self.value + 1)

    @property
    def parent(self) -> "Level":
        """The next level up; raises ``ValueError`` above ROOT."""
        if self is Level.ROOT:
            raise ValueError("ROOT is the highest level")
        return Level(self.value - 1)


#: Maximum number of segments in a structural (non-device) path.
MAX_STRUCTURAL_DEPTH = Level.CLUSTER.value

#: Separator used by the paper's rendering, e.g.
#: ``Region A|City a|Logic site 2|Site I|Cluster ii``.
PATH_SEPARATOR = "|"


class LocationPath:
    """An immutable path from the hierarchy root to one location node.

    ``LocationPath(("RegionA", "CityA"))`` denotes a city; the empty path
    denotes the root.  Device paths carry the device name as their last
    segment and are flagged with ``is_device=True`` because a device may be
    attached at any structural level and depth alone cannot distinguish,
    say, a device attached to a site from a cluster.
    """

    __slots__ = ("_segments", "_is_device", "_hash")

    def __init__(self, segments: Sequence[str] = (), is_device: bool = False) -> None:
        segments = tuple(segments)
        for seg in segments:
            if not seg:
                raise ValueError("location segments must be non-empty strings")
            if PATH_SEPARATOR in seg:
                raise ValueError(
                    f"segment {seg!r} contains the path separator {PATH_SEPARATOR!r}"
                )
        if is_device and not segments:
            raise ValueError("a device path needs at least the device segment")
        structural_depth = len(segments) - (1 if is_device else 0)
        if structural_depth > MAX_STRUCTURAL_DEPTH:
            raise ValueError(
                f"path {segments!r} deeper than the {MAX_STRUCTURAL_DEPTH}-level hierarchy"
            )
        self._segments = segments
        self._is_device = is_device
        self._hash = hash((segments, is_device))

    # -- constructors ------------------------------------------------------

    @classmethod
    def root(cls) -> "LocationPath":
        """The hierarchy root (ancestor of every location)."""
        return _ROOT

    @classmethod
    def parse(cls, text: str, is_device: bool = False) -> "LocationPath":
        """Parse the paper's ``A|B|C`` rendering back into a path."""
        text = text.strip()
        if not text:
            return _ROOT
        return cls(tuple(seg.strip() for seg in text.split(PATH_SEPARATOR)), is_device)

    # -- basic accessors ---------------------------------------------------

    @property
    def segments(self) -> Tuple[str, ...]:
        return self._segments

    @property
    def is_device(self) -> bool:
        return self._is_device

    @property
    def is_root(self) -> bool:
        return not self._segments

    @property
    def name(self) -> str:
        """The final segment (the node's own name); '<root>' for the root."""
        return self._segments[-1] if self._segments else "<root>"

    @property
    def depth(self) -> int:
        return len(self._segments)

    @property
    def level(self) -> Level:
        """Hierarchy level of this node.

        Devices always report :attr:`Level.DEVICE` regardless of where they
        attach, matching the paper's treatment of device-level alerts.
        """
        if self._is_device:
            return Level.DEVICE
        return Level(len(self._segments))

    @property
    def structural_level(self) -> Level:
        """Level of the structural node this path lives under.

        For a device attached to a cluster this is CLUSTER; for a pure
        location it equals :attr:`level`.
        """
        if self._is_device:
            return Level(len(self._segments) - 1)
        return Level(len(self._segments))

    # -- navigation --------------------------------------------------------

    @property
    def parent(self) -> "LocationPath":
        """The immediately enclosing location; the root's parent is itself."""
        if not self._segments:
            return self
        return LocationPath(self._segments[:-1], is_device=False)

    def ancestors(self, include_self: bool = False) -> Iterator["LocationPath"]:
        """Yield enclosing locations from the root down to (optionally) self."""
        for depth in range(len(self._segments)):
            yield LocationPath(self._segments[:depth], is_device=False)
        if include_self:
            yield self

    def child(self, name: str, is_device: bool = False) -> "LocationPath":
        """Extend this path by one segment."""
        if self._is_device:
            raise ValueError("devices have no children in the location hierarchy")
        return LocationPath(self._segments + (name,), is_device=is_device)

    def truncate(self, level: Level) -> "LocationPath":
        """The enclosing location at ``level`` (must not be below this node)."""
        if level.value > self.structural_level.value:
            raise ValueError(f"cannot truncate {self} down to deeper level {level.name}")
        return LocationPath(self._segments[: level.value], is_device=False)

    def contains(self, other: "LocationPath") -> bool:
        """True when ``other`` lies in the subtree rooted at this node.

        A node contains itself.  A device contains only itself.
        """
        if self._is_device:
            return self == other
        if len(other._segments) < len(self._segments):
            return False
        return other._segments[: len(self._segments)] == self._segments

    def common_ancestor(self, other: "LocationPath") -> "LocationPath":
        """Deepest structural location containing both paths."""
        mine = self._segments if not self._is_device else self._segments[:-1]
        theirs = other._segments if not other._is_device else other._segments[:-1]
        common = 0
        for a, b in zip(mine, theirs):
            if a != b:
                break
            common += 1
        return LocationPath(mine[:common], is_device=False)

    # -- dunder protocol ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocationPath):
            return NotImplemented
        return self._segments == other._segments and self._is_device == other._is_device

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "LocationPath") -> bool:
        if not isinstance(other, LocationPath):
            return NotImplemented
        return (self._segments, self._is_device) < (other._segments, other._is_device)

    def __len__(self) -> int:
        return len(self._segments)

    def __str__(self) -> str:
        return PATH_SEPARATOR.join(self._segments) if self._segments else "<root>"

    def __repr__(self) -> str:
        kind = "device" if self._is_device else "location"
        return f"LocationPath({str(self)!r}, {kind})"


_ROOT = LocationPath(())


def lowest_common_ancestor(paths: Sequence[LocationPath]) -> LocationPath:
    """Deepest structural location containing every path in ``paths``."""
    if not paths:
        raise ValueError("need at least one path")
    acc: Optional[LocationPath] = None
    for path in paths:
        acc = path if acc is None else acc.common_ancestor(path)
        if acc.is_root:
            break
    assert acc is not None
    return acc
