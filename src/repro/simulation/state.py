"""Network state: turns active failure conditions into observable behaviour.

This is the substrate the 12 monitoring tools "measure".  Given a topology,
a traffic model, and a set of active :class:`~repro.simulation.conditions.
Condition` objects, it answers the questions a real network would answer:

* is device X reachable?  (OOB monitoring)
* what is the loss rate between servers A and B?  (Ping, sFlow)
* how much traffic crosses circuit set Y right now vs. normally?  (SNMP)
* which syslog-visible faults are active on device X?  (Syslog)

Two views of health exist deliberately:

* the *actual* view (``device_up`` etc.) -- what is really broken;
* the *routing* view (``routing_health``) -- what the control plane has
  already converged around.  A fault is only routed around once it is
  older than ``convergence_s``; before that, flows still traverse the
  broken element and take loss.  This reproduces the paper's alert
  dynamics: an initial reachability-loss burst, then (if redundant
  capacity is insufficient) persistent congestion loss -- exactly the §2.2
  severe-failure story where loss was congestion, not dead cables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..topology.hierarchy import Level, LocationPath
from ..topology.network import INTERNET, Topology
from ..topology.routing import (
    HealthView,
    HierarchicalRouter,
    ReachabilityCache,
    RoutePath,
)
from ..topology.traffic import FlowPlacement, TrafficModel
from .conditions import Condition, ConditionKind

#: Default loss rates at faulty elements, overridable per condition via params.
DEFAULT_LOSS_RATES = {
    ConditionKind.DEVICE_DOWN: 1.0,
    ConditionKind.DEVICE_HARDWARE_ERROR: 0.35,
    ConditionKind.DEVICE_SOFTWARE_ERROR: 0.05,
    ConditionKind.DEVICE_SILENT_LOSS: 0.15,
    ConditionKind.DEVICE_UNBALANCED_HASH: 0.08,
    ConditionKind.CONFIG_ERROR: 0.6,
    ConditionKind.LINK_FLAPPING: 0.10,
}


class _RoutingHealth(HealthView):
    """Health as the converged control plane sees it (see module docstring)."""

    def __init__(self, state: "NetworkState") -> None:
        self._state = state

    def device_up(self, device_name: str) -> bool:
        return not self._state._device_routed_around(device_name)

    def circuit_set_usable(self, set_id: str) -> bool:
        return not self._state._circuit_set_routed_around(set_id)

    def signature(self) -> Tuple[str, ...]:
        # the converged-routing view changes exactly when the set of
        # routing-affecting, converged conditions changes
        return self._state._placement_signature()


class NetworkState(HealthView):
    """Aggregate, time-aware view of the simulated network."""

    def __init__(
        self,
        topology: Topology,
        traffic: Optional[TrafficModel] = None,
        convergence_s: float = 45.0,
    ) -> None:
        self._topo = topology
        self._traffic = traffic
        self._router = HierarchicalRouter(topology)
        self.convergence_s = float(convergence_s)
        self._conditions: List[Condition] = []
        self._now = 0.0
        self._routing_health = _RoutingHealth(self)
        # memoised reachability queries, dropped when the converged
        # routing view (placement signature) changes
        self._reach_cache = ReachabilityCache(self._router)
        # caches, keyed by a signature of routing-visible conditions
        self._placement_key: Optional[Tuple[str, ...]] = None
        self._placement: Optional[FlowPlacement] = None
        self._ddos_routes: Dict[Tuple[str, Tuple[str, ...]], Optional[RoutePath]] = {}
        # baseline loads under full health (for SNMP rate-drop detection)
        self._baseline_placement = traffic.place_flows() if traffic else None
        # per-instant active-condition index (hot path for monitors)
        self._active_dirty = True
        self._active_list: List[Condition] = []
        self._active_by_target: Dict[object, List[Condition]] = {}
        self._active_sig: Tuple[str, ...] = ()
        # per-epoch derived caches
        self._loads_key: Optional[Tuple] = None
        self._offered_cache: Dict[str, float] = {}
        self._route_cache_key: Optional[Tuple] = None
        self._route_cache: Dict[Tuple[str, str], RoutePath] = {}
        # per-instant memos (now + condition set fixed => values fixed)
        self._sig_memo: Optional[Tuple[Tuple[str, ...], float]] = None
        self._break_cache: Dict[str, float] = {}
        self._setloss_cache: Dict[str, float] = {}
        self._util_cache: Dict[str, float] = {}

    # -- wiring ---------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topo

    @property
    def traffic(self) -> Optional[TrafficModel]:
        return self._traffic

    @property
    def router(self) -> HierarchicalRouter:
        return self._router

    @property
    def now(self) -> float:
        return self._now

    def set_time(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"time cannot rewind from {self._now} to {t}")
        if t != self._now:
            self._active_dirty = True
        self._now = t

    # -- condition management ---------------------------------------------------

    def add_condition(self, condition: Condition) -> None:
        self._conditions.append(condition)
        self._active_dirty = True

    def add_conditions(self, conditions: Iterable[Condition]) -> None:
        for cond in conditions:
            self.add_condition(cond)

    def end_condition(self, condition_id: str, at: Optional[float] = None) -> None:
        """Close an open-ended condition (mitigation happened)."""
        at = self._now if at is None else at
        for i, cond in enumerate(self._conditions):
            if cond.condition_id == condition_id:
                if cond.end is not None and cond.end <= at:
                    return
                import dataclasses as _dc

                self._conditions[i] = _dc.replace(cond, end=max(at, cond.start + 1e-9))
                self._active_dirty = True
                return
        raise KeyError(f"no condition {condition_id}")

    def _refresh_active(self) -> None:
        """Rebuild the active-condition index; monitors hit this constantly,
        so it is computed once per (time, condition-set) change."""
        if not self._active_dirty:
            return
        self._active_list = [c for c in self._conditions if c.active_at(self._now)]
        by_target: Dict[object, List[Condition]] = {}
        for cond in self._active_list:
            by_target.setdefault(cond.target, []).append(cond)
        self._active_by_target = by_target
        self._active_sig = tuple(sorted(c.condition_id for c in self._active_list))
        self._active_dirty = False
        # time or condition set moved: per-instant memos are stale
        self._sig_memo = None
        self._break_cache.clear()
        self._setloss_cache.clear()
        self._util_cache.clear()

    def active_conditions(
        self, kind: Optional[ConditionKind] = None
    ) -> List[Condition]:
        self._refresh_active()
        if kind is None:
            return list(self._active_list)
        return [c for c in self._active_list if c.kind is kind]

    def active_signature(self) -> Tuple[str, ...]:
        """Identifier of the exact set of active conditions (cache key)."""
        self._refresh_active()
        return self._active_sig

    def all_conditions(self) -> List[Condition]:
        return list(self._conditions)

    def conditions_on_device(self, device_name: str) -> List[Condition]:
        self._refresh_active()
        return list(self._active_by_target.get(device_name, ()))

    def conditions_on_circuit_set(self, set_id: str) -> List[Condition]:
        self._refresh_active()
        return list(self._active_by_target.get(set_id, ()))

    def conditions_on_location(self, location: LocationPath) -> List[Condition]:
        self._refresh_active()
        return list(self._active_by_target.get(location, ()))

    # -- actual health (HealthView) ----------------------------------------------

    def device_up(self, device_name: str) -> bool:
        for cond in self.conditions_on_device(device_name):
            if cond.kind is ConditionKind.DEVICE_DOWN:
                return False
        return True

    def circuit_set_break_ratio(self, set_id: str) -> float:
        """``d_i`` in Equation 1: fraction of member circuits down."""
        self._refresh_active()
        cached = self._break_cache.get(set_id)
        if cached is not None:
            return cached
        cs = self._topo.circuit_sets.get(set_id)
        if cs is None:
            raise KeyError(f"unknown circuit set {set_id}")
        broken = 0.0
        if set_id in self._active_by_target:
            for cond in self._active_by_target[set_id]:
                if cond.kind is ConditionKind.CIRCUIT_BREAK:
                    broken += cond.param("broken_circuits", len(cs.circuits))
        ratio = min(1.0, broken / len(cs.circuits))
        self._break_cache[set_id] = ratio
        return ratio

    def circuit_set_usable(self, set_id: str) -> bool:
        return self.circuit_set_break_ratio(set_id) < 1.0

    # -- routing view --------------------------------------------------------------

    @property
    def routing_health(self) -> HealthView:
        return self._routing_health

    def _converged(self, cond: Condition) -> bool:
        return cond.age_at(self._now) >= self.convergence_s

    def _device_routed_around(self, device_name: str) -> bool:
        return any(
            c.kind is ConditionKind.DEVICE_DOWN and self._converged(c)
            for c in self.conditions_on_device(device_name)
        )

    def _circuit_set_routed_around(self, set_id: str) -> bool:
        cs = self._topo.circuit_sets.get(set_id)
        if cs is None:
            return False
        broken = 0.0
        for cond in self.conditions_on_circuit_set(set_id):
            if cond.kind is ConditionKind.CIRCUIT_BREAK and self._converged(cond):
                broken += cond.param("broken_circuits", len(cs.circuits))
        return broken >= len(cs.circuits)

    # -- traffic placement & loads ---------------------------------------------------

    def _placement_signature(self) -> Tuple[str, ...]:
        self._refresh_active()
        if self._sig_memo is not None and self._sig_memo[1] == self._now:
            return self._sig_memo[0]
        visible = tuple(
            sorted(
                c.condition_id
                for c in self._active_list
                if c.affects_routing and self._converged(c)
            )
        )
        self._sig_memo = (visible, self._now)
        return visible

    def placement(self) -> Optional[FlowPlacement]:
        """Current flow placement under the routing view (cached)."""
        if self._traffic is None:
            return None
        key = self._placement_signature()
        if key != self._placement_key:
            self._placement = self._traffic.place_flows(self._routing_health)
            self._placement_key = key
            self._ddos_routes.clear()
        return self._placement

    def baseline_placement(self) -> Optional[FlowPlacement]:
        return self._baseline_placement

    def _ddos_route(self, cond: Condition) -> Optional[RoutePath]:
        """Path attack traffic takes from the Internet to the victim cluster."""
        key = (cond.condition_id, self._placement_signature())
        if key not in self._ddos_routes:
            victim: LocationPath = cond.target  # type: ignore[assignment]
            servers = self._topo.servers_in(victim)
            route = None
            if servers:
                route = self._router.route_to_internet(servers[0], self._routing_health)
                if not route.reachable:
                    route = None
            self._ddos_routes[key] = route
        return self._ddos_routes[key]

    def ddos_extra_load_gbps(self, set_id: str) -> float:
        extra = 0.0
        for cond in self.active_conditions(ConditionKind.DDOS_ATTACK):
            route = self._ddos_route(cond)
            if route is not None and route.traverses_circuit_set(set_id):
                extra += cond.param("attack_gbps", 40.0)
        return extra

    def offered_load_gbps(self, set_id: str) -> float:
        key = (self._placement_signature(), self.active_signature())
        if key != self._loads_key:
            self._offered_cache.clear()
            self._loads_key = key
        if set_id not in self._offered_cache:
            load = self.ddos_extra_load_gbps(set_id)
            placement = self.placement()
            if placement is not None and self._traffic is not None:
                load += self._traffic.offered_load_gbps(set_id, placement)
            self._offered_cache[set_id] = load
        return self._offered_cache[set_id]

    def baseline_load_gbps(self, set_id: str) -> float:
        if self._baseline_placement is None or self._traffic is None:
            return 0.0
        cached = getattr(self, "_baseline_loads", None)
        if cached is None:
            cached = {
                sid: self._traffic.offered_load_gbps(sid, self._baseline_placement)
                for sid in self._topo.circuit_sets
            }
            self._baseline_loads = cached
        return cached.get(set_id, 0.0)

    def available_capacity_gbps(self, set_id: str) -> float:
        cs = self._topo.circuit_sets[set_id]
        return cs.total_capacity_gbps * (1.0 - self.circuit_set_break_ratio(set_id))

    def utilization(self, set_id: str) -> float:
        self._refresh_active()
        cached = self._util_cache.get(set_id)
        if cached is not None:
            return cached
        capacity = self.available_capacity_gbps(set_id)
        offered = self.offered_load_gbps(set_id)
        if capacity <= 0.0:
            value = float("inf") if offered > 0 else 0.0
        else:
            value = offered / capacity
        self._util_cache[set_id] = value
        return value

    def congestion_loss(self, set_id: str) -> float:
        """Loss from over-subscription: the excess fraction is dropped."""
        u = self.utilization(set_id)
        if u <= 1.0:
            return 0.0
        if u == float("inf"):
            return 1.0
        return 1.0 - 1.0 / u

    def delivered_rate_gbps(self, set_id: str) -> float:
        """What a traffic counter (SNMP/sFlow) reads on the circuit set."""
        return self.offered_load_gbps(set_id) * (1.0 - self.congestion_loss(set_id))

    # -- loss model -----------------------------------------------------------------

    def device_loss_rate(self, device_name: str, internet_bound: bool = False) -> float:
        """Probability a packet transiting ``device_name`` is dropped."""
        loss_keep = 1.0
        for cond in self.conditions_on_device(device_name):
            rate = 0.0
            if cond.kind in DEFAULT_LOSS_RATES:
                rate = cond.param("loss_rate", DEFAULT_LOSS_RATES[cond.kind])
            elif cond.kind is ConditionKind.ROUTE_LOSS and internet_bound:
                # lost default/aggregate route blackholes Internet-bound traffic
                rate = cond.param("loss_rate", 1.0)
            elif cond.kind in (ConditionKind.ROUTE_LEAK, ConditionKind.ROUTE_HIJACK):
                rate = cond.param("loss_rate", 0.0)  # control-plane only by default
            loss_keep *= 1.0 - min(1.0, max(0.0, rate))
        return 1.0 - loss_keep

    def circuit_set_loss_rate(self, set_id: str) -> float:
        """Loss on a circuit set: full break, flapping, and congestion."""
        self._refresh_active()
        cached = self._setloss_cache.get(set_id)
        if cached is not None:
            return cached
        if not self.circuit_set_usable(set_id):
            self._setloss_cache[set_id] = 1.0
            return 1.0
        keep = 1.0 - self.congestion_loss(set_id)
        if set_id in self._active_by_target:
            for cond in self._active_by_target[set_id]:
                if cond.kind is ConditionKind.LINK_FLAPPING:
                    keep *= 1.0 - cond.param(
                        "loss_rate", DEFAULT_LOSS_RATES[ConditionKind.LINK_FLAPPING]
                    )
        loss = 1.0 - keep
        self._setloss_cache[set_id] = loss
        return loss

    def circuit_set_corruption_rate(self, set_id: str) -> float:
        """Bit-flip / CRC error probability on a circuit set."""
        rate = 0.0
        for cond in self.conditions_on_circuit_set(set_id):
            if cond.kind is ConditionKind.LINK_CRC_ERRORS:
                rate = max(rate, cond.param("corruption_rate", 0.02))
        return rate

    def route_loss_rate(self, route: RoutePath) -> float:
        """End-to-end loss along a resolved route."""
        if not route.reachable:
            return 1.0
        internet_bound = route.dst == INTERNET
        keep = 1.0
        for dev in route.devices:
            keep *= 1.0 - self.device_loss_rate(dev, internet_bound=internet_bound)
        for set_id in route.circuit_sets:
            keep *= 1.0 - self.circuit_set_loss_rate(set_id)
        return 1.0 - keep

    def route_latency_ms(self, route: RoutePath) -> float:
        """Round-trip latency a probe measures: per-hop base plus queueing
        delay that climbs steeply once any traversed set nears saturation."""
        if not route.reachable:
            return float("inf")
        base = 1.0 + 0.2 * len(route.devices)
        queueing = 0.0
        for set_id in route.circuit_sets:
            u = min(self.utilization(set_id), 3.0)
            if u > 0.7:
                queueing += 8.0 * (u - 0.7)
        return base + queueing

    # -- end-to-end observables (what probes measure) ----------------------------------

    def _cached_route(self, server_a: str, server_b: str) -> RoutePath:
        """Route lookup memoised per routing epoch (routes only change when
        the converged-health signature changes)."""
        sig = self._placement_signature()
        if sig != self._route_cache_key:
            self._route_cache.clear()
            self._route_cache_key = sig
        key = (server_a, server_b)
        route = self._route_cache.get(key)
        if route is None:
            servers = self._topo.servers
            if server_b == INTERNET:
                route = self._router.route_to_internet(
                    servers[server_a], self._routing_health
                )
            else:
                route = self._router.route_servers(
                    servers[server_a], servers[server_b], self._routing_health
                )
            self._route_cache[key] = route
        return route

    def pair_loss(self, server_a: str, server_b: str) -> Tuple[RoutePath, float]:
        route = self._cached_route(server_a, server_b)
        return route, self.route_loss_rate(route)

    def internet_loss(self, server: str) -> Tuple[RoutePath, float]:
        route = self._cached_route(server, INTERNET)
        return route, self.route_loss_rate(route)

    def cluster_pair_loss(
        self, cluster_a: LocationPath, cluster_b: LocationPath
    ) -> Optional[float]:
        """Loss between representative servers of two clusters (Figure 7)."""
        route = self._reach_cache.route_clusters(
            cluster_a, cluster_b, self._routing_health
        )
        if route is None:
            return None
        return self.route_loss_rate(route)
