"""Failure injection: loads scenarios and noise into a network state and
keeps the ground-truth ledger the accuracy experiments score against."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..topology.hierarchy import LocationPath
from .conditions import Condition
from .failures import FailureScenario, GroundTruth
from .state import NetworkState


class FailureInjector:
    """Applies failure scenarios and noise conditions to a network state."""

    def __init__(self, state: NetworkState) -> None:
        self._state = state
        self._scenarios: List[FailureScenario] = []
        self._noise: List[Condition] = []

    @property
    def state(self) -> NetworkState:
        return self._state

    @property
    def scenarios(self) -> List[FailureScenario]:
        return list(self._scenarios)

    @property
    def ground_truths(self) -> List[GroundTruth]:
        return [s.truth for s in self._scenarios]

    @property
    def noise_conditions(self) -> List[Condition]:
        return list(self._noise)

    def inject(self, scenario: FailureScenario) -> None:
        self._scenarios.append(scenario)
        self._state.add_conditions(scenario.conditions)

    def inject_all(self, scenarios: Iterable[FailureScenario]) -> None:
        for scenario in scenarios:
            self.inject(scenario)

    def inject_noise(self, conditions: Sequence[Condition]) -> None:
        self._noise.extend(conditions)
        self._state.add_conditions(conditions)

    # -- scoring helpers ---------------------------------------------------------

    def matching_truth(
        self,
        location: LocationPath,
        start: float,
        end: float,
        impacting_only: bool = False,
    ) -> Optional[GroundTruth]:
        """The ground truth (if any) an incident at ``location`` over
        ``[start, end]`` corresponds to.

        A match requires time overlap and location agreement in either
        direction: the incident scope may be an ancestor of the failure
        scope (SkyNet grouped wide) or a descendant (it zoomed in).
        """
        for truth in self.ground_truths:
            if impacting_only and not truth.customer_impacting:
                continue
            if not truth.overlaps_window(start, end):
                continue
            if truth.scope.contains(location) or location.contains(truth.scope):
                return truth
        return None

    def truths_in_window(
        self, start: float, end: float, impacting_only: bool = True
    ) -> List[GroundTruth]:
        return [
            t
            for t in self.ground_truths
            if t.overlaps_window(start, end)
            and (not impacting_only or t.customer_impacting)
        ]
