"""Canned failure scenarios reproducing the paper's named incidents.

Each function returns one or more :class:`~repro.simulation.failures.
FailureScenario` objects wired to a concrete topology:

* :func:`internet_entrance_cable_cut` -- §2.2: half the cables at a data
  center's Internet entry point fail at once; survivors congest, >10k alerts.
* :func:`known_device_failure` -- Figure 2a: one device losing packets with
  its interface down; the automatic-SOP case.
* :func:`multi_site_ddos` -- §5.1 "Multiple scene detection": simultaneous
  DDoS on five unrelated locations.
* :func:`ranking_pair` -- §5.1 "Scene ranking": a geographically larger but
  less important failure next to a small one hitting critical customers.
* :func:`reflector_failure` -- §7.1: a route reflector misbehaving at
  logic-site level.
* :func:`delayed_root_cause` -- §7.3: BGP jitter floods first, the hardware
  error syslog (the true root cause) arrives minutes later.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..topology.hierarchy import Level, LocationPath
from ..topology.network import INTERNET, DeviceRole, Topology
from .conditions import Condition, ConditionKind
from .failures import FailureCategory, FailureScenario, GroundTruth


def _logic_sites(topo: Topology) -> List[LocationPath]:
    return sorted(
        (loc for loc in topo.locations() if loc.level is Level.LOGIC_SITE), key=str
    )


def _clusters(topo: Topology) -> List[LocationPath]:
    return sorted(
        (loc for loc in topo.locations() if loc.level is Level.CLUSTER), key=str
    )


def internet_entrance_cable_cut(
    topo: Topology,
    start: float = 0.0,
    logic_site: Optional[LocationPath] = None,
    duration: float = 3600.0,
) -> FailureScenario:
    """§2.2: simultaneous cut of about half the Internet-entrance cables.

    One gateway loses its entire circuit set; the others lose half their
    circuits.  Surviving capacity is insufficient, so congestion -- not the
    cables themselves -- causes the persistent packet loss, exactly the trap
    the paper's operators fell into.
    """
    logic_site = logic_site or _logic_sites(topo)[0]
    gateways = [
        d
        for d in topo.devices_at(logic_site)
        if d.role is DeviceRole.INTERNET_GATEWAY
    ]
    if not gateways:
        raise ValueError(f"{logic_site} has no Internet gateways")
    conditions: List[Condition] = []
    targets: List[str] = []
    for i, gw in enumerate(gateways):
        entry_sets = [
            cs for cs in topo.circuit_sets_of(gw.name) if INTERNET in cs.endpoints
        ]
        for cs in entry_sets:
            broken = len(cs.circuits) if i == 0 else max(1, len(cs.circuits) // 2)
            conditions.append(
                Condition(
                    ConditionKind.CIRCUIT_BREAK,
                    cs.set_id,
                    start + i * 2.0,
                    start + duration,
                    {"broken_circuits": broken},
                )
            )
            targets.append(cs.set_id)
    return FailureScenario(
        name="internet-entrance-cable-cut",
        conditions=conditions,
        truth=GroundTruth(
            scope=logic_site,
            category=FailureCategory.LINK,
            start=start,
            end=start + duration,
            severe=True,
            customer_impacting=True,
            root_cause_targets=tuple(targets),
        ),
    )


def known_device_failure(
    topo: Topology,
    start: float = 0.0,
    device_name: Optional[str] = None,
    duration: float = 600.0,
) -> FailureScenario:
    """Figure 2a: one cluster switch drops packets and downs an interface.

    Its redundancy-group peers stay silent, so the heuristic SOP matches and
    isolates the device automatically (§5.1 first case study).
    """
    if device_name is None:
        device_name = sorted(
            d.name
            for d in topo.devices.values()
            if d.role is DeviceRole.CLUSTER_SWITCH
        )[0]
    device = topo.device(device_name)
    uplinks = topo.circuit_sets_of(device_name)
    conditions = [
        Condition(
            ConditionKind.DEVICE_HARDWARE_ERROR,
            device_name,
            start,
            start + duration,
            {"loss_rate": 0.4},
        ),
    ]
    if uplinks:
        conditions.append(
            Condition(
                ConditionKind.CIRCUIT_BREAK,
                uplinks[0].set_id,
                start + 1.0,
                start + duration,
                {"broken_circuits": len(uplinks[0].circuits)},
            )
        )
    return FailureScenario(
        name="known-device-failure",
        conditions=conditions,
        truth=GroundTruth(
            scope=device.parent_location,
            category=FailureCategory.DEVICE_HARDWARE,
            start=start,
            end=start + duration,
            severe=False,
            customer_impacting=True,
            root_cause_targets=(device_name,),
        ),
    )


def multi_site_ddos(
    topo: Topology,
    start: float = 0.0,
    n_sites: int = 5,
    duration: float = 1800.0,
    attack_gbps: float = 500.0,
) -> List[FailureScenario]:
    """§5.1: DDoS hitting ``n_sites`` unrelated clusters at once.

    SkyNet must produce *separate* incidents, one per location, instead of
    one blob -- the clusters are chosen maximally far apart.
    """
    clusters = _clusters(topo)
    if len(clusters) < n_sites:
        raise ValueError(
            f"topology has {len(clusters)} clusters, need {n_sites} for the attack"
        )
    step = max(1, len(clusters) // n_sites)
    victims = [clusters[i * step] for i in range(n_sites)]
    scenarios = []
    for idx, victim in enumerate(victims):
        scenarios.append(
            FailureScenario(
                name=f"ddos-{idx + 1}",
                conditions=[
                    Condition(
                        ConditionKind.DDOS_ATTACK,
                        victim,
                        start + idx * 3.0,
                        start + duration,
                        {"attack_gbps": attack_gbps},
                    )
                ],
                truth=GroundTruth(
                    scope=victim,
                    category=FailureCategory.SECURITY,
                    start=start,
                    end=start + duration,
                    severe=True,
                    customer_impacting=True,
                    root_cause_targets=(str(victim),),
                ),
            )
        )
    return scenarios


def ranking_pair(
    topo: Topology, start: float = 0.0, duration: float = 1800.0
) -> List[FailureScenario]:
    """§5.1 "Scene ranking": two concurrent failures.

    The *big* one covers a larger area and floods more alerts -- partial
    circuit breaks plus flapping across a whole site -- but redundancy
    holds, so its loss is mild.  The *urgent* one: a single cluster switch
    blackholing 90% of its traffic in another site; benches pin critical
    customers there so the evaluator must rank it first despite its far
    smaller alert count.
    """
    sites = sorted(
        (loc for loc in topo.locations() if loc.level is Level.SITE), key=str
    )
    clusters = _clusters(topo)
    big_site = sites[0]
    small_cluster = next(
        (c for c in reversed(clusters) if not big_site.contains(c)), clusters[-1]
    )
    big_sets = [
        cs
        for d in topo.devices_at(big_site)
        if d.role is DeviceRole.SITE_AGGREGATION
        for cs in topo.circuit_sets_of(d.name)
    ]
    big_conditions: List[Condition] = []
    for i, cs in enumerate(big_sets):
        big_conditions.append(
            Condition(
                ConditionKind.CIRCUIT_BREAK,
                cs.set_id,
                start + i * 1.0,
                start + duration,
                {"broken_circuits": 1},
            )
        )
        if i % 2 == 0:
            big_conditions.append(
                Condition(
                    ConditionKind.LINK_FLAPPING,
                    cs.set_id,
                    start + i * 1.0,
                    start + duration,
                    {"loss_rate": 0.02},
                )
            )
    big = FailureScenario(
        name="ranking-big-but-mild",
        conditions=big_conditions,
        truth=GroundTruth(
            scope=big_site,
            category=FailureCategory.LINK,
            start=start,
            end=start + duration,
            severe=True,
            customer_impacting=True,
            root_cause_targets=tuple(cs.set_id for cs in big_sets),
        ),
    )
    small_switch = sorted(
        d.name
        for d in topo.devices_under(small_cluster)
        if d.role is DeviceRole.CLUSTER_SWITCH
    )[0]
    small = FailureScenario(
        name="ranking-small-but-critical",
        conditions=[
            Condition(
                ConditionKind.CONFIG_ERROR,
                small_switch,
                start + 5.0,
                start + duration,
                {"loss_rate": 0.9},
            )
        ],
        truth=GroundTruth(
            scope=small_cluster,
            category=FailureCategory.CONFIGURATION,
            start=start + 5.0,
            end=start + duration,
            severe=True,
            customer_impacting=True,
            root_cause_targets=(small_switch,),
        ),
    )
    return [big, small]


def reflector_failure(
    topo: Topology, start: float = 0.0, duration: float = 1200.0
) -> FailureScenario:
    """§7.1: a logic-site route reflector misbehaves; the voting view should
    make the uncommon device stand out.  Adds the reflector on demand."""
    logic_site = _logic_sites(topo)[0]
    name = f"{logic_site.name}-RR-G1"
    if not topo.has_device(name):
        from ..topology.network import Device

        topo.add_device(
            Device(
                name=name,
                role=DeviceRole.REFLECTOR,
                location=logic_site.child(name, is_device=True),
                group=f"{logic_site}|RR",
            )
        )
        isrs = [
            d
            for d in topo.devices_at(logic_site)
            if d.role is DeviceRole.LOGIC_SITE_ROUTER
        ]
        from ..topology.network import Circuit, CircuitSet

        for isr in isrs:
            set_id = f"cs[{name}--{isr.name}]"
            topo.add_circuit_set(
                CircuitSet(
                    set_id=set_id,
                    device_a=name,
                    device_b=isr.name,
                    circuits=[Circuit(f"{set_id}/c1")],
                )
            )
    conditions = [
        Condition(
            ConditionKind.DEVICE_SOFTWARE_ERROR,
            name,
            start,
            start + duration,
            {"loss_rate": 0.0},
        ),
        Condition(
            ConditionKind.ROUTE_LEAK,
            name,
            start + 2.0,
            start + duration,
            {"loss_rate": 0.3},
        ),
    ]
    # the leaked routes blackhole a slice of the traffic transiting the
    # logic-site routers -- the forwarding fallout other tools observe
    isr_names = [
        d.name
        for d in topo.devices_at(logic_site)
        if d.role is DeviceRole.LOGIC_SITE_ROUTER
    ]
    for isr in isr_names:
        conditions.append(
            Condition(
                ConditionKind.DEVICE_SILENT_LOSS,
                isr,
                start + 5.0,
                start + duration,
                {"loss_rate": 0.12},
            )
        )
    return FailureScenario(
        name="reflector-failure",
        conditions=conditions,
        truth=GroundTruth(
            scope=logic_site,
            category=FailureCategory.ROUTE,
            start=start,
            end=start + duration,
            severe=True,
            customer_impacting=True,
            root_cause_targets=(name,),
        ),
    )


def partial_route_blackhole(
    topo: Topology, start: float = 0.0, duration: float = 900.0,
    victim_index: int = -1,
) -> FailureScenario:
    """A thin-evidence severe failure: an aggregate route partially lost.

    A gateway silently blackholes ~a third of Internet-bound traffic.  The
    observable evidence is deliberately sparse -- one failure type
    (internet packet loss) plus two root-cause types (route monitoring and
    patrol) -- so only thresholds at least as permissive as the production
    ``2/1+2/5`` catch it.  This is the Figure 9 sensitivity probe.
    """
    gateways = sorted(
        d.name
        for d in topo.devices.values()
        if d.role is DeviceRole.INTERNET_GATEWAY
    )
    victim = gateways[victim_index % len(gateways)]
    conditions = [
        Condition(
            ConditionKind.ROUTE_LOSS,
            victim,
            start,
            start + duration,
            {"loss_rate": 0.35},
        )
    ]
    return FailureScenario(
        name="partial-route-blackhole",
        conditions=conditions,
        truth=GroundTruth(
            scope=topo.device(victim).parent_location,
            category=FailureCategory.ROUTE,
            start=start,
            end=start + duration,
            severe=True,
            customer_impacting=True,
            root_cause_targets=(victim,),
        ),
    )


def silent_backbone_loss(
    topo: Topology, start: float = 0.0, duration: float = 900.0,
    victim_index: int = -1,
) -> FailureScenario:
    """A gray failure only end-to-end probing can see: a logic-site router
    silently drops a tenth of its traffic.

    No syslog, no SNMP anomaly, no OOB, and the core does not speak INT --
    the evidence is *failure-level types only* (ping flavours and sampled
    sFlow loss).  This probes Figure 9's ``A`` clause: disabling the
    failure-only threshold (``0/1+2/5``) misses exactly this failure.
    """
    routers = sorted(
        d.name
        for d in topo.devices.values()
        if d.role is DeviceRole.LOGIC_SITE_ROUTER
    )
    victim = routers[victim_index % len(routers)]
    conditions = [
        Condition(
            ConditionKind.DEVICE_SILENT_LOSS,
            victim,
            start,
            start + duration,
            {"loss_rate": 0.10},
        )
    ]
    return FailureScenario(
        name="silent-backbone-loss",
        conditions=conditions,
        truth=GroundTruth(
            scope=topo.device(victim).parent_location,
            category=FailureCategory.DEVICE_HARDWARE,
            start=start,
            end=start + duration,
            severe=True,
            customer_impacting=True,
            root_cause_targets=(victim,),
        ),
    )


def maintenance_break_wave(
    topo: Topology,
    start: float = 0.0,
    duration: float = 600.0,
    site_index: int = 0,
) -> FailureScenario:
    """A harmless high-visibility event: planned maintenance takes one
    circuit out of several sets at a site, with a little flapping.

    Redundancy holds, customers feel nothing -- but the port-down burst
    forms an incident.  These populate the paper's "hundreds of network
    events occur monthly, though only a few truly constitute harmful
    network failures" mass that the severity filter (Figure 10b) removes.
    """
    sites = sorted(
        (loc for loc in topo.locations() if loc.level is Level.SITE), key=str
    )
    site = sites[site_index % len(sites)]
    sets = [
        cs
        for d in topo.devices_at(site)
        if d.role is DeviceRole.SITE_AGGREGATION
        for cs in topo.circuit_sets_of(d.name)
    ][:6]
    conditions: List[Condition] = []
    for i, cs in enumerate(sets):
        conditions.append(
            Condition(
                ConditionKind.CIRCUIT_BREAK,
                cs.set_id,
                start + i * 2.0,
                start + duration,
                {"broken_circuits": 1},
            )
        )
    if sets:
        conditions.append(
            Condition(
                ConditionKind.LINK_FLAPPING,
                sets[0].set_id,
                start,
                start + duration / 2,
                {"loss_rate": 0.005},
            )
        )
    return FailureScenario(
        name=f"maintenance-wave-{site_index}",
        conditions=conditions,
        truth=GroundTruth(
            scope=site,
            category=FailureCategory.LINK,
            start=start,
            end=start + duration,
            severe=False,
            customer_impacting=False,
            root_cause_targets=tuple(cs.set_id for cs in sets),
        ),
    )


def delayed_root_cause(
    topo: Topology, start: float = 0.0, duration: float = 1500.0
) -> FailureScenario:
    """§7.3: effects precede causes in the alert stream.

    An unbalanced hash plus a hardware error jointly break the network; the
    first alerts are BGP jitter and packet drops, while the hardware-error
    syslog (the actual root cause) only lands minutes later.
    """
    device = sorted(
        d.name
        for d in topo.devices.values()
        if d.role is DeviceRole.LOGIC_SITE_ROUTER
    )[0]
    conditions = [
        Condition(
            ConditionKind.DEVICE_UNBALANCED_HASH,
            device,
            start,
            start + duration,
            {"loss_rate": 0.12},
        ),
        # the hardware fault is present from the start but its syslog record
        # is only collected after `syslog_delay_s` (monitors honour this)
        Condition(
            ConditionKind.DEVICE_HARDWARE_ERROR,
            device,
            start,
            start + duration,
            {"loss_rate": 0.3, "syslog_delay_s": 300.0},
        ),
    ]
    return FailureScenario(
        name="delayed-root-cause",
        conditions=conditions,
        truth=GroundTruth(
            scope=topo.device(device).parent_location,
            category=FailureCategory.DEVICE_HARDWARE,
            start=start,
            end=start + duration,
            severe=True,
            customer_impacting=True,
            root_cause_targets=(device,),
        ),
    )
