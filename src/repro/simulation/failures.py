"""Failure taxonomy (paper Figure 1) and random failure scenario sampling.

A :class:`FailureScenario` bundles the atomic conditions one root cause
produces plus the ground truth SkyNet should recover (where, when, what,
how severe).  Ground truth drives the accuracy metrics in Figures 8a and 9:
a detected incident is a true positive when it overlaps a scenario in both
location and time.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import random
from typing import Dict, List, Optional, Sequence

from ..topology.hierarchy import Level, LocationPath
from ..topology.network import CircuitSet, Device, DeviceRole, Topology
from .conditions import Condition, ConditionKind


class FailureCategory(enum.Enum):
    """Root-cause categories with Figure 1's observed shares."""

    DEVICE_HARDWARE = "device_hardware_error"
    LINK = "link_error"
    MODIFICATION = "network_modification_error"
    DEVICE_SOFTWARE = "device_software_error"
    INFRASTRUCTURE = "infrastructure_error"
    ROUTE = "route_error"
    SECURITY = "security_error"
    CONFIGURATION = "configuration_error"


#: Figure 1 proportions (the paper's slices sum to ~102% from rounding;
#: normalised on use).
FIGURE1_PROPORTIONS: Dict[FailureCategory, float] = {
    FailureCategory.DEVICE_HARDWARE: 42.6,
    FailureCategory.LINK: 18.5,
    FailureCategory.MODIFICATION: 16.7,
    FailureCategory.DEVICE_SOFTWARE: 9.3,
    FailureCategory.INFRASTRUCTURE: 9.3,
    FailureCategory.ROUTE: 1.9,
    FailureCategory.SECURITY: 1.9,
    FailureCategory.CONFIGURATION: 1.9,
}

_scenario_counter = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class GroundTruth:
    """What actually happened -- the oracle SkyNet is scored against."""

    scope: LocationPath  # smallest location containing the whole failure
    category: FailureCategory
    start: float
    end: float
    severe: bool  # extensive-impact failure (§2.2) vs a minor glitch
    customer_impacting: bool  # causes sustained loss customers can feel
    root_cause_targets: Sequence[str]  # device names / circuit-set ids

    def overlaps_window(self, start: float, end: float) -> bool:
        return self.start < end and start < self.end


@dataclasses.dataclass(frozen=True)
class FailureScenario:
    """A named failure: its conditions plus ground truth."""

    name: str
    conditions: Sequence[Condition]
    truth: GroundTruth

    def shifted(self, dt: float) -> "FailureScenario":
        return FailureScenario(
            name=self.name,
            conditions=[c.shifted(dt) for c in self.conditions],
            truth=dataclasses.replace(
                self.truth, start=self.truth.start + dt, end=self.truth.end + dt
            ),
        )


def _name(category: FailureCategory) -> str:
    return f"{category.value}-{next(_scenario_counter):05d}"


def _pick_device(
    topo: Topology, rng: random.Random, roles: Sequence[DeviceRole]
) -> Device:
    candidates = sorted(
        (d for d in topo.devices.values() if d.role in roles), key=lambda d: d.name
    )
    if not candidates:
        raise ValueError(f"topology has no devices with roles {roles}")
    return rng.choice(candidates)

def _pick_circuit_set(
    topo: Topology, rng: random.Random, internal_only: bool = True
) -> CircuitSet:
    from ..topology.network import INTERNET

    candidates = sorted(
        (
            cs
            for cs in topo.circuit_sets.values()
            if not internal_only or INTERNET not in cs.endpoints
        ),
        key=lambda cs: cs.set_id,
    )
    return rng.choice(candidates)


def _scope_of_device(topo: Topology, device_name: str) -> LocationPath:
    return topo.device(device_name).parent_location


def _scope_of_circuit_set(topo: Topology, set_id: str) -> LocationPath:
    from ..topology.network import INTERNET

    cs = topo.circuit_set(set_id)
    ends = [e for e in cs.endpoints if e != INTERNET]
    locs = [topo.device(e).location for e in ends]
    if len(locs) == 1:
        return locs[0].parent
    return locs[0].common_ancestor(locs[1])


# -- per-category scenario builders -------------------------------------------


def device_hardware_failure(
    topo: Topology,
    rng: random.Random,
    start: float,
    severe: bool,
) -> FailureScenario:
    """Forwarding-chip fault; severe variant takes an aggregation router down."""
    if severe:
        device = _pick_device(
            topo, rng, (DeviceRole.LOGIC_SITE_ROUTER, DeviceRole.CITY_ROUTER)
        )
        duration = rng.uniform(1200, 2400)
        conditions = [
            Condition(
                ConditionKind.DEVICE_HARDWARE_ERROR,
                device.name,
                start,
                start + duration,
                {"loss_rate": rng.uniform(0.3, 0.6)},
            ),
            Condition(
                ConditionKind.DEVICE_DOWN,
                device.name,
                start + rng.uniform(60, 180),
                start + duration,
            ),
        ]
    else:
        device = _pick_device(topo, rng, (DeviceRole.CLUSTER_SWITCH,))
        duration = rng.uniform(300, 900)
        conditions = [
            Condition(
                ConditionKind.DEVICE_HARDWARE_ERROR,
                device.name,
                start,
                start + duration,
                {"loss_rate": rng.uniform(0.05, 0.2)},
            )
        ]
    return FailureScenario(
        name=_name(FailureCategory.DEVICE_HARDWARE),
        conditions=conditions,
        truth=GroundTruth(
            scope=_scope_of_device(topo, device.name),
            category=FailureCategory.DEVICE_HARDWARE,
            start=start,
            end=start + duration,
            severe=severe,
            customer_impacting=True,
            root_cause_targets=(device.name,),
        ),
    )


def link_failure(
    topo: Topology, rng: random.Random, start: float, severe: bool
) -> FailureScenario:
    """Circuit cuts; severe variant breaks most circuits of several sets at
    one location (the §2.2 Internet-entrance pattern lives in scenarios.py)."""
    duration = rng.uniform(1200, 3600) if severe else rng.uniform(300, 900)
    if severe:
        # a dug-up cable bundle: every circuit of several co-routed sets cut
        anchor = _pick_device(
            topo, rng, (DeviceRole.SITE_AGGREGATION, DeviceRole.LOGIC_SITE_ROUTER)
        )
        sets = topo.circuit_sets_of(anchor.name)[:3]
        conditions = [
            Condition(
                ConditionKind.CIRCUIT_BREAK,
                cs.set_id,
                start + i * rng.uniform(0.5, 5.0),
                start + duration,
                {"broken_circuits": len(cs.circuits)},
            )
            for i, cs in enumerate(sets)
        ]
        targets = tuple(cs.set_id for cs in sets)
        scope = _scope_of_device(topo, anchor.name)
        impacting = True
    else:
        cs = _pick_circuit_set(topo, rng)
        conditions = [
            Condition(
                ConditionKind.CIRCUIT_BREAK,
                cs.set_id,
                start,
                start + duration,
                {"broken_circuits": 1},
            )
        ]
        targets = (cs.set_id,)
        scope = _scope_of_circuit_set(topo, cs.set_id)
        # one broken circuit in a redundant set: bandwidth dip, no loss
        impacting = False
    return FailureScenario(
        name=_name(FailureCategory.LINK),
        conditions=conditions,
        truth=GroundTruth(
            scope=scope,
            category=FailureCategory.LINK,
            start=start,
            end=start + duration,
            severe=severe,
            customer_impacting=impacting,
            root_cause_targets=targets,
        ),
    )


def modification_failure(
    topo: Topology, rng: random.Random, start: float, severe: bool
) -> FailureScenario:
    """A network change gone wrong: failed-modification event + blackhole."""
    roles = (
        (DeviceRole.LOGIC_SITE_ROUTER, DeviceRole.CITY_ROUTER)
        if severe
        else (DeviceRole.SITE_AGGREGATION, DeviceRole.CLUSTER_SWITCH)
    )
    device = _pick_device(topo, rng, roles)
    duration = rng.uniform(900, 1800) if severe else rng.uniform(240, 600)
    conditions = [
        Condition(ConditionKind.MODIFICATION_FAILED, device.name, start, start + 60),
        Condition(
            ConditionKind.CONFIG_ERROR,
            device.name,
            start + rng.uniform(5, 30),
            start + duration,
            {"loss_rate": rng.uniform(0.4, 0.9) if severe else rng.uniform(0.1, 0.3)},
        ),
    ]
    return FailureScenario(
        name=_name(FailureCategory.MODIFICATION),
        conditions=conditions,
        truth=GroundTruth(
            scope=_scope_of_device(topo, device.name),
            category=FailureCategory.MODIFICATION,
            start=start,
            end=start + duration,
            severe=severe,
            customer_impacting=True,
            root_cause_targets=(device.name,),
        ),
    )


def device_software_failure(
    topo: Topology, rng: random.Random, start: float, severe: bool
) -> FailureScenario:
    """Process crash / OOM: syslog software errors, BGP churn, light loss."""
    roles = (
        (DeviceRole.LOGIC_SITE_ROUTER, DeviceRole.INTERNET_GATEWAY)
        if severe
        else (DeviceRole.CLUSTER_SWITCH, DeviceRole.SITE_AGGREGATION)
    )
    device = _pick_device(topo, rng, roles)
    duration = rng.uniform(900, 2400) if severe else rng.uniform(300, 900)
    conditions = [
        Condition(
            ConditionKind.DEVICE_SOFTWARE_ERROR,
            device.name,
            start,
            start + duration,
            {"loss_rate": 0.25 if severe else 0.04},
        ),
        Condition(
            ConditionKind.DEVICE_HIGH_MEM,
            device.name,
            start,
            start + duration,
            {"utilization": rng.uniform(0.92, 0.99)},
        ),
    ]
    return FailureScenario(
        name=_name(FailureCategory.DEVICE_SOFTWARE),
        conditions=conditions,
        truth=GroundTruth(
            scope=_scope_of_device(topo, device.name),
            category=FailureCategory.DEVICE_SOFTWARE,
            start=start,
            end=start + duration,
            severe=severe,
            customer_impacting=severe,
            root_cause_targets=(device.name,),
        ),
    )


def infrastructure_failure(
    topo: Topology, rng: random.Random, start: float, severe: bool
) -> FailureScenario:
    """Power/cooling fault taking whole devices off the air (OOB flags them)."""
    device = _pick_device(
        topo,
        rng,
        (DeviceRole.CLUSTER_SWITCH, DeviceRole.SITE_AGGREGATION),
    )
    peers = (
        [d for d in topo.devices_at(device.parent_location) if d.role is device.role]
        if severe
        else [device]
    )
    duration = rng.uniform(1800, 3600) if severe else rng.uniform(300, 1200)
    conditions = [
        Condition(ConditionKind.DEVICE_DOWN, peer.name, start, start + duration)
        for peer in peers
    ]
    return FailureScenario(
        name=_name(FailureCategory.INFRASTRUCTURE),
        conditions=conditions,
        truth=GroundTruth(
            scope=device.parent_location,
            category=FailureCategory.INFRASTRUCTURE,
            start=start,
            end=start + duration,
            severe=severe,
            customer_impacting=severe,
            root_cause_targets=tuple(p.name for p in peers),
        ),
    )


def route_failure(
    topo: Topology, rng: random.Random, start: float, severe: bool
) -> FailureScenario:
    """Control-plane fault: lost default route (severe) or a route leak."""
    device = _pick_device(
        topo, rng, (DeviceRole.INTERNET_GATEWAY, DeviceRole.LOGIC_SITE_ROUTER)
    )
    duration = rng.uniform(600, 1800) if severe else rng.uniform(300, 600)
    if severe:
        conditions = [
            Condition(
                ConditionKind.ROUTE_LOSS,
                device.name,
                start,
                start + duration,
                {"loss_rate": 1.0},
            )
        ]
    else:
        conditions = [
            Condition(ConditionKind.ROUTE_LEAK, device.name, start, start + duration)
        ]
    return FailureScenario(
        name=_name(FailureCategory.ROUTE),
        conditions=conditions,
        truth=GroundTruth(
            scope=_scope_of_device(topo, device.name),
            category=FailureCategory.ROUTE,
            start=start,
            end=start + duration,
            severe=severe,
            customer_impacting=severe,
            root_cause_targets=(device.name,),
        ),
    )


def security_failure(
    topo: Topology, rng: random.Random, start: float, severe: bool
) -> FailureScenario:
    """DDoS attack congesting the path into a victim cluster."""
    clusters = sorted(
        (loc for loc in topo.locations() if loc.level is Level.CLUSTER),
        key=str,
    )
    victim = rng.choice(clusters)
    duration = rng.uniform(900, 2400) if severe else rng.uniform(300, 600)
    attack = rng.uniform(300, 800) if severe else rng.uniform(50, 120)
    conditions = [
        Condition(
            ConditionKind.DDOS_ATTACK,
            victim,
            start,
            start + duration,
            {"attack_gbps": attack},
        )
    ]
    return FailureScenario(
        name=_name(FailureCategory.SECURITY),
        conditions=conditions,
        truth=GroundTruth(
            scope=victim,
            category=FailureCategory.SECURITY,
            start=start,
            end=start + duration,
            severe=severe,
            customer_impacting=severe,
            root_cause_targets=(str(victim),),
        ),
    )


def configuration_failure(
    topo: Topology, rng: random.Random, start: float, severe: bool
) -> FailureScenario:
    """Standalone misconfiguration (no modification event trail)."""
    device = _pick_device(
        topo,
        rng,
        (DeviceRole.SITE_AGGREGATION,) if severe else (DeviceRole.CLUSTER_SWITCH,),
    )
    duration = rng.uniform(900, 1800) if severe else rng.uniform(300, 900)
    conditions = [
        Condition(
            ConditionKind.CONFIG_ERROR,
            device.name,
            start,
            start + duration,
            {"loss_rate": rng.uniform(0.5, 0.9) if severe else rng.uniform(0.05, 0.2)},
        )
    ]
    return FailureScenario(
        name=_name(FailureCategory.CONFIGURATION),
        conditions=conditions,
        truth=GroundTruth(
            scope=_scope_of_device(topo, device.name),
            category=FailureCategory.CONFIGURATION,
            start=start,
            end=start + duration,
            severe=severe,
            customer_impacting=True,
            root_cause_targets=(device.name,),
        ),
    )


_BUILDERS = {
    FailureCategory.DEVICE_HARDWARE: device_hardware_failure,
    FailureCategory.LINK: link_failure,
    FailureCategory.MODIFICATION: modification_failure,
    FailureCategory.DEVICE_SOFTWARE: device_software_failure,
    FailureCategory.INFRASTRUCTURE: infrastructure_failure,
    FailureCategory.ROUTE: route_failure,
    FailureCategory.SECURITY: security_failure,
    FailureCategory.CONFIGURATION: configuration_failure,
}


def sample_category(rng: random.Random) -> FailureCategory:
    """Draw a root-cause category from the Figure 1 distribution."""
    cats = list(FIGURE1_PROPORTIONS)
    weights = [FIGURE1_PROPORTIONS[c] for c in cats]
    return rng.choices(cats, weights=weights, k=1)[0]


def sample_failure(
    topo: Topology,
    rng: random.Random,
    start: float = 0.0,
    category: Optional[FailureCategory] = None,
    severe: Optional[bool] = None,
) -> FailureScenario:
    """Sample one failure scenario.

    ``severe=None`` draws severity with the paper's skew: severe failures are
    rare ("only a few times globally each year", §1), so ~15% of draws.
    """
    if category is None:
        category = sample_category(rng)
    if severe is None:
        severe = rng.random() < 0.15
    return _BUILDERS[category](topo, rng, start, severe)


def sample_campaign(
    topo: Topology,
    rng: random.Random,
    n_failures: int,
    horizon_s: float,
    severe_fraction: float = 0.15,
) -> List[FailureScenario]:
    """A batch of failures spread uniformly over ``[0, horizon_s)``."""
    if n_failures < 0:
        raise ValueError("n_failures must be non-negative")
    scenarios = []
    # leave room before the horizon so every failure is observable for at
    # least a few polling rounds of the slowest tools
    latest_start = max(horizon_s * 0.5, horizon_s - 900.0)
    for _ in range(n_failures):
        scenarios.append(
            sample_failure(
                topo,
                rng,
                start=rng.uniform(0.0, latest_start) if latest_start else 0.0,
                severe=rng.random() < severe_fraction,
            )
        )
    return sorted(scenarios, key=lambda s: s.truth.start)
