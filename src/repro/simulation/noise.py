"""Background noise: the harmless chatter real networks never stop producing.

§2.2: "unrelated glitches continued to produce alerts, further complicating
the task"; §4.2: faulty probes spam identical device-down alerts.  Noise
conditions carry no ground truth -- any incident SkyNet builds purely out of
them counts as a false positive in the accuracy experiments (Figures 8a, 9).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Tuple

from ..topology.network import Topology
from .conditions import Condition, ConditionKind


@dataclasses.dataclass(frozen=True)
class NoiseProfile:
    """Mean event rates, per hour across the whole network."""

    cpu_blips_per_hour: float = 6.0
    mem_blips_per_hour: float = 3.0
    benign_modifications_per_hour: float = 4.0
    probe_errors_per_hour: float = 1.0
    sporadic_loss_per_hour: float = 5.0
    clock_drifts_per_hour: float = 1.0
    flap_blips_per_hour: float = 2.0
    #: correlated waves: one random event (faulty OOB probe, maintenance
    #: sweep) hitting several devices of one site at once -- the §4.2
    #: false-alarm generator that per-(type,location) counting trips over
    probe_error_waves_per_hour: float = 0.7
    cpu_waves_per_hour: float = 0.5
    devices_per_wave: int = 6
    #: planned-maintenance waves: one circuit out of several sets at a
    #: site plus some flapping; redundancy holds, nothing is broken, but
    #: the port-down burst is loud
    maintenance_waves_per_hour: float = 0.0

    @classmethod
    def quiet(cls) -> "NoiseProfile":
        return cls(
            cpu_blips_per_hour=1.0,
            mem_blips_per_hour=0.5,
            benign_modifications_per_hour=1.0,
            probe_errors_per_hour=0.2,
            sporadic_loss_per_hour=1.0,
            clock_drifts_per_hour=0.2,
            flap_blips_per_hour=0.5,
        )

    @classmethod
    def noisy(cls) -> "NoiseProfile":
        return cls(
            cpu_blips_per_hour=20.0,
            mem_blips_per_hour=10.0,
            benign_modifications_per_hour=12.0,
            probe_errors_per_hour=4.0,
            sporadic_loss_per_hour=15.0,
            clock_drifts_per_hour=3.0,
            flap_blips_per_hour=8.0,
        )


class BackgroundNoise:
    """Samples harmless glitch conditions over a time horizon."""

    def __init__(self, topology: Topology, profile: NoiseProfile = NoiseProfile(),
                 seed: int = 23) -> None:
        self._topo = topology
        self._profile = profile
        self._rng = random.Random(seed)
        self._device_names = sorted(topology.devices)
        self._set_ids = sorted(topology.circuit_sets)

    def generate(self, horizon_s: float, start: float = 0.0) -> List[Condition]:
        """All noise conditions in ``[start, start + horizon_s)``."""
        if horizon_s < 0:
            raise ValueError("horizon must be non-negative")
        out: List[Condition] = []
        hours = horizon_s / 3600.0
        p = self._profile
        out += self._device_events(
            ConditionKind.DEVICE_HIGH_CPU, p.cpu_blips_per_hour * hours,
            start, horizon_s, (60, 240), {"utilization": 0.95},
        )
        out += self._device_events(
            ConditionKind.DEVICE_HIGH_MEM, p.mem_blips_per_hour * hours,
            start, horizon_s, (60, 240), {"utilization": 0.93},
        )
        out += self._device_events(
            ConditionKind.MODIFICATION_OK, p.benign_modifications_per_hour * hours,
            start, horizon_s, (30, 90), {},
        )
        out += self._device_events(
            ConditionKind.PROBE_ERROR, p.probe_errors_per_hour * hours,
            start, horizon_s, (60, 300), {},
        )
        out += self._device_events(
            ConditionKind.DEVICE_SILENT_LOSS, p.sporadic_loss_per_hour * hours,
            start, horizon_s, (10, 45), {"loss_rate": 0.01},
        )
        out += self._device_events(
            ConditionKind.DEVICE_CLOCK_DRIFT, p.clock_drifts_per_hour * hours,
            start, horizon_s, (120, 600), {"drift_us": 80.0},
        )
        n_flaps = self._count(p.flap_blips_per_hour * hours)
        for _ in range(n_flaps):
            set_id = self._rng.choice(self._set_ids)
            t0 = start + self._rng.uniform(0, horizon_s)
            out.append(
                Condition(
                    ConditionKind.LINK_FLAPPING,
                    set_id,
                    t0,
                    t0 + self._rng.uniform(15, 60),
                    {"loss_rate": 0.005},
                )
            )
        out += self._waves(
            ConditionKind.PROBE_ERROR, p.probe_error_waves_per_hour * hours,
            start, horizon_s, {},
        )
        out += self._waves(
            ConditionKind.DEVICE_HIGH_CPU, p.cpu_waves_per_hour * hours,
            start, horizon_s, {"utilization": 0.96},
        )
        out += self._maintenance_waves(
            p.maintenance_waves_per_hour * hours, start, horizon_s
        )
        return sorted(out, key=lambda c: c.start)

    def _maintenance_waves(
        self, mean: float, start: float, horizon_s: float
    ) -> List[Condition]:
        from ..topology.hierarchy import Level
        from ..topology.network import DeviceRole

        sites = [
            loc for loc in self._topo.locations() if loc.level is Level.SITE
        ]
        out = []
        for _ in range(self._count(mean)):
            site = self._rng.choice(sites)
            sets = [
                cs
                for d in self._topo.devices_at(site)
                if d.role is DeviceRole.SITE_AGGREGATION
                for cs in self._topo.circuit_sets_of(d.name)
            ][:6]
            t0 = start + self._rng.uniform(0, horizon_s)
            duration = self._rng.uniform(300, 600)
            for i, cs in enumerate(sets):
                out.append(
                    Condition(
                        ConditionKind.CIRCUIT_BREAK, cs.set_id,
                        t0 + i * 2.0, t0 + duration,
                        {"broken_circuits": 1},
                    )
                )
            if sets:
                out.append(
                    Condition(
                        ConditionKind.LINK_FLAPPING, sets[0].set_id,
                        t0, t0 + duration / 2, {"loss_rate": 0.005},
                    )
                )
        return out

    def _waves(
        self,
        kind: ConditionKind,
        mean: float,
        start: float,
        horizon_s: float,
        params: Dict[str, float],
    ) -> List[Condition]:
        """Correlated multi-device events within one site."""
        from ..topology.hierarchy import Level

        sites = [
            loc for loc in self._topo.locations() if loc.level is Level.SITE
        ]
        out = []
        for _ in range(self._count(mean)):
            site = self._rng.choice(sites)
            devices = [d.name for d in self._topo.devices_under(site)]
            self._rng.shuffle(devices)
            t0 = start + self._rng.uniform(0, horizon_s)
            duration = self._rng.uniform(90, 240)
            for device in devices[: self._profile.devices_per_wave]:
                out.append(
                    Condition(kind, device, t0 + self._rng.uniform(0, 5),
                              t0 + duration, dict(params))
                )
        return out

    # -- internals ------------------------------------------------------------

    def _count(self, mean: float) -> int:
        """Poisson draw via inversion (stdlib-only, deterministic w/ seed)."""
        if mean <= 0:
            return 0
        import math

        l = math.exp(-mean)
        k, p = 0, 1.0
        while True:
            p *= self._rng.random()
            if p <= l:
                return k
            k += 1

    def _device_events(
        self,
        kind: ConditionKind,
        mean: float,
        start: float,
        horizon_s: float,
        dur_range: Tuple[float, float],
        params: Dict[str, float],
    ) -> List[Condition]:
        out = []
        for _ in range(self._count(mean)):
            device = self._rng.choice(self._device_names)
            t0 = start + self._rng.uniform(0, horizon_s)
            out.append(
                Condition(
                    kind,
                    device,
                    t0,
                    t0 + self._rng.uniform(*dur_range),
                    dict(params),
                )
            )
        return out
