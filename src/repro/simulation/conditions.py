"""Failure conditions: the atomic faults a simulation injects.

A *condition* is one concrete fault active over a time window -- "device X
is down", "3 of 8 circuits in set Y are broken", "cluster Z is under a
40 Gb/s DDoS".  Failure *scenarios* (``repro.simulation.failures``) bundle
several conditions plus ground truth; :class:`~repro.simulation.state.
NetworkState` turns the active conditions into observable network behaviour
(reachability, loss, counters, logs) that the monitoring tools read.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Dict, Optional, Tuple, Union

from ..topology.hierarchy import LocationPath


class ConditionKind(enum.Enum):
    """Every kind of atomic fault the simulator understands.

    The mapping from the paper's root-cause taxonomy (Figure 1) to these
    kinds lives in ``repro.simulation.failures``.
    """

    # device-scoped
    DEVICE_DOWN = "device_down"  # total failure: unreachable, drops traffic
    DEVICE_HARDWARE_ERROR = "device_hardware_error"  # chip fault: loss + syslog
    DEVICE_SOFTWARE_ERROR = "device_software_error"  # crash: syslog + BGP churn
    DEVICE_SILENT_LOSS = "device_silent_loss"  # drops with *no* syslog trace
    DEVICE_HIGH_CPU = "device_high_cpu"
    DEVICE_HIGH_MEM = "device_high_mem"
    DEVICE_CLOCK_DRIFT = "device_clock_drift"  # PTP desynchronisation
    DEVICE_UNBALANCED_HASH = "device_unbalanced_hash"  # §7.3 case: skewed ECMP

    # link / circuit-set scoped
    CIRCUIT_BREAK = "circuit_break"  # some circuits of a set are cut
    LINK_FLAPPING = "link_flapping"  # interface bouncing: bursty loss + logs
    LINK_CRC_ERRORS = "link_crc_errors"  # bit flips / RX errors on a set

    # control plane
    ROUTE_LEAK = "route_leak"
    ROUTE_HIJACK = "route_hijack"
    ROUTE_LOSS = "route_loss"  # loss of default/aggregate route -> blackhole

    # operations
    CONFIG_ERROR = "config_error"  # misconfiguration blackholing traffic
    MODIFICATION_FAILED = "modification_failed"
    MODIFICATION_OK = "modification_ok"  # benign scheduled change (noise)
    PROBE_ERROR = "probe_error"  # faulty OOB probe spamming false down alerts

    # traffic
    DDOS_ATTACK = "ddos_attack"  # extra inbound load aimed at a cluster


#: Kinds whose target is a device name.
DEVICE_KINDS = frozenset(
    {
        ConditionKind.DEVICE_DOWN,
        ConditionKind.DEVICE_HARDWARE_ERROR,
        ConditionKind.DEVICE_SOFTWARE_ERROR,
        ConditionKind.DEVICE_SILENT_LOSS,
        ConditionKind.DEVICE_HIGH_CPU,
        ConditionKind.DEVICE_HIGH_MEM,
        ConditionKind.DEVICE_CLOCK_DRIFT,
        ConditionKind.DEVICE_UNBALANCED_HASH,
        ConditionKind.ROUTE_LEAK,
        ConditionKind.ROUTE_HIJACK,
        ConditionKind.ROUTE_LOSS,
        ConditionKind.CONFIG_ERROR,
        ConditionKind.MODIFICATION_FAILED,
        ConditionKind.MODIFICATION_OK,
        ConditionKind.PROBE_ERROR,
    }
)

#: Kinds whose target is a circuit-set id.
CIRCUIT_SET_KINDS = frozenset(
    {
        ConditionKind.CIRCUIT_BREAK,
        ConditionKind.LINK_FLAPPING,
        ConditionKind.LINK_CRC_ERRORS,
    }
)

#: Kinds whose target is a location (a subtree of the hierarchy).
LOCATION_KINDS = frozenset({ConditionKind.DDOS_ATTACK})

#: Kinds that change how traffic is routed (trigger placement recompute and
#: the routing-convergence grace window).
TOPOLOGY_AFFECTING_KINDS = frozenset(
    {
        ConditionKind.DEVICE_DOWN,
        ConditionKind.CIRCUIT_BREAK,
        ConditionKind.CONFIG_ERROR,
        ConditionKind.ROUTE_LOSS,
    }
)

_condition_counter = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class Condition:
    """One atomic fault, active on ``[start, end)`` (``end=None`` = open).

    ``params`` carry kind-specific knobs:

    * ``loss_rate`` -- packet loss probability at the faulty element;
    * ``broken_circuits`` -- how many member circuits a CIRCUIT_BREAK cuts;
    * ``attack_gbps`` -- DDoS volume;
    * ``drift_us`` -- PTP clock offset;
    * ``utilization`` -- CPU/MEM level for the HIGH_* kinds.
    """

    kind: ConditionKind
    target: Union[str, LocationPath]
    start: float
    end: Optional[float] = None
    params: Dict[str, float] = dataclasses.field(default_factory=dict)
    condition_id: str = dataclasses.field(
        default_factory=lambda: f"cond-{next(_condition_counter):06d}"
    )

    def __post_init__(self) -> None:
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"{self.condition_id}: end {self.end} must be after start {self.start}"
            )
        if self.kind in LOCATION_KINDS and not isinstance(self.target, LocationPath):
            raise TypeError(f"{self.kind} targets a LocationPath")
        if self.kind not in LOCATION_KINDS and not isinstance(self.target, str):
            raise TypeError(f"{self.kind} targets a device/circuit-set name")

    def active_at(self, t: float) -> bool:
        return self.start <= t and (self.end is None or t < self.end)

    def age_at(self, t: float) -> float:
        """Seconds since the condition began (negative before start)."""
        return t - self.start

    @property
    def affects_routing(self) -> bool:
        return self.kind in TOPOLOGY_AFFECTING_KINDS

    def param(self, name: str, default: float = 0.0) -> float:
        return float(self.params.get(name, default))

    def shifted(self, dt: float) -> "Condition":
        """A copy moved ``dt`` seconds later (scenario re-scheduling)."""
        return dataclasses.replace(
            self,
            start=self.start + dt,
            end=None if self.end is None else self.end + dt,
            condition_id=f"cond-{next(_condition_counter):06d}",
        )
