"""Failure-injection simulator: the substrate the monitoring tools observe.

See DESIGN.md §2 for why this substitutes for the paper's production
network and alert corpus.
"""

from .clock import PeriodicSchedule, SimClock
from .conditions import (
    CIRCUIT_SET_KINDS,
    DEVICE_KINDS,
    LOCATION_KINDS,
    TOPOLOGY_AFFECTING_KINDS,
    Condition,
    ConditionKind,
)
from .failures import (
    FIGURE1_PROPORTIONS,
    FailureCategory,
    FailureScenario,
    GroundTruth,
    sample_campaign,
    sample_category,
    sample_failure,
)
from .injector import FailureInjector
from .noise import BackgroundNoise, NoiseProfile
from .state import DEFAULT_LOSS_RATES, NetworkState
from . import scenarios

__all__ = [
    "BackgroundNoise",
    "CIRCUIT_SET_KINDS",
    "Condition",
    "ConditionKind",
    "DEFAULT_LOSS_RATES",
    "DEVICE_KINDS",
    "FIGURE1_PROPORTIONS",
    "FailureCategory",
    "FailureInjector",
    "FailureScenario",
    "GroundTruth",
    "LOCATION_KINDS",
    "NetworkState",
    "NoiseProfile",
    "PeriodicSchedule",
    "SimClock",
    "TOPOLOGY_AFFECTING_KINDS",
    "sample_campaign",
    "sample_category",
    "sample_failure",
    "scenarios",
]
