"""Simulated time.

SkyNet's core never reads the wall clock -- every component takes explicit
timestamps (simulated seconds) so that runs are deterministic and
property-testable.  :class:`SimClock` is the single source of "now" for a
simulation, and :class:`PeriodicSchedule` tells a monitor when its next
polling round is due.
"""

from __future__ import annotations


class SimClock:
    """Monotonically advancing simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rejects negative steps."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time at or after now."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"


class PeriodicSchedule:
    """Fires at ``offset, offset + period, offset + 2*period, ...``.

    Monitors poll at wildly different frequencies (Ping every 2 s, patrol
    inspection every 15 min -- §4.1), so each owns one of these.  ``due``
    returns every firing time that has elapsed, which keeps monitors correct
    even when the simulation advances in coarse steps.
    """

    def __init__(self, period: float, offset: float = 0.0) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.period = float(period)
        self._next = float(offset)

    def due(self, now: float) -> list:
        """All firing instants with ``t <= now`` not yet consumed."""
        fired = []
        while self._next <= now:
            fired.append(self._next)
            self._next += self.period
        return fired

    def peek_next(self) -> float:
        return self._next
