"""FT-tree template extraction (Zhang et al. [56], used by §4.1).

An FT-tree (Frequent-Template tree) turns a corpus of log lines into a
small set of templates:

1. count corpus-wide frequencies of the constant (non-variable) words;
2. for each message, order its distinct constant words by descending
   frequency -- frequent words sit near the root, rare (more variable-ish)
   words near the leaves;
3. insert that ordered word sequence as a root-to-leaf path;
4. prune: a node that accumulates more than ``max_children`` children is
   treated as preceding a *variable* position, and its subtree is collapsed.

Matching walks the same ordering, so a new line with unseen variable values
lands on the template of its constant skeleton.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .tokenize import constant_words

Template = Tuple[str, ...]


class _Node:
    __slots__ = ("word", "children", "terminal", "collapsed", "count")

    def __init__(self, word: str = "") -> None:
        self.word = word
        self.children: Dict[str, _Node] = {}
        self.terminal = False
        self.collapsed = False  # fan-out exceeded: variable position
        self.count = 0


class FtTree:
    """Learns templates from a corpus and matches new lines onto them."""

    def __init__(self, max_children: int = 24, min_word_count: int = 1) -> None:
        if max_children < 1:
            raise ValueError("max_children must be >= 1")
        if min_word_count < 1:
            raise ValueError("min_word_count must be >= 1")
        self.max_children = max_children
        self.min_word_count = min_word_count
        self._freq: Counter[str] = Counter()
        self._root = _Node()
        self._fitted = False

    # -- construction --------------------------------------------------------

    def fit(self, lines: Iterable[str]) -> "FtTree":
        """Build the tree from a corpus; replaces any previous fit."""
        corpus = [constant_words(line) for line in lines]
        self._freq = Counter(w for words in corpus for w in set(words))
        self._root = _Node()
        for words in corpus:
            self._insert(self._ordered(words))
        self._prune(self._root)
        self._fitted = True
        return self

    def extend(self, lines: Iterable[str]) -> "FtTree":
        """Fold additional lines into an already-fitted tree.

        Frequencies learned at fit time keep the ordering stable, so new
        lines slot in without re-shuffling existing templates.
        """
        if not self._fitted:
            return self.fit(lines)
        for line in lines:
            words = constant_words(line)
            self._freq.update(set(words))
            self._insert(self._ordered(words))
        self._prune(self._root)
        return self

    def _ordered(self, words: Sequence[str]) -> List[str]:
        """Distinct words by (frequency desc, word) -- the FT-tree path order."""
        distinct = sorted(set(words), key=lambda w: (-self._freq[w], w))
        return [w for w in distinct if self._freq[w] >= self.min_word_count]

    def _insert(self, path: Sequence[str]) -> None:
        node = self._root
        node.count += 1
        for word in path:
            if node.collapsed:
                break
            child = node.children.get(word)
            if child is None:
                child = _Node(word)
                node.children[word] = child
            node = child
            node.count += 1
        node.terminal = True

    def _prune(self, node: _Node) -> None:
        if len(node.children) > self.max_children:
            # too many alternatives at this position: it is a variable slot
            node.children.clear()
            node.collapsed = True
            node.terminal = True
            return
        for child in node.children.values():
            self._prune(child)

    # -- queries ----------------------------------------------------------------

    def match(self, line: str) -> Optional[Template]:
        """Deepest learned template the line's constant skeleton reaches.

        Returns ``None`` for a line sharing no learned prefix (fully novel).
        """
        if not self._fitted:
            raise RuntimeError("FtTree.match called before fit")
        node = self._root
        matched: List[str] = []
        for word in self._ordered(constant_words(line)):
            child = node.children.get(word)
            if child is None:
                break
            node = child
            matched.append(word)
        if not matched:
            return None
        return tuple(matched)

    def templates(self) -> List[Template]:
        """All learned templates (terminal root-to-node paths)."""
        out: List[Template] = []

        def walk(node: _Node, path: Tuple[str, ...]) -> None:
            if node.terminal and path:
                out.append(path)
            for word in sorted(node.children):
                walk(node.children[word], path + (word,))

        walk(self._root, ())
        return out

    def template_count(self) -> int:
        return len(self.templates())

    def word_frequency(self, word: str) -> int:
        return self._freq[word]
