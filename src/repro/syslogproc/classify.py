"""Syslog alert-type classification on top of FT-tree templates (§4.1).

"The classification process starts with manually assigning types to
existing alerts.  With hundreds of alert types to consider, we prioritize
the most critical and complete the manual classification over several
months."  The keyword rules below stand in for those months of operator
labelling: each *template* gets a type the first time it is seen, and every
later line matching that template inherits it regardless of its variable
fields.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from .fttree import FtTree, Template

#: Fallback type for lines whose template carries no known signal word.
UNCLASSIFIED = "unclassified"

#: Manual labelling rules: ordered (keywords, type).  A template is labelled
#: with the first rule all of whose keywords appear among template words.
#: These model the operators' critical-first manual pass.
LABEL_RULES: Tuple[Tuple[Tuple[str, ...], str], ...] = (
    (("%PLATFORM-2-HARDWARE_FAULT:",), "hardware_error"),
    (("%SYS-2-MALLOCFAIL:",), "out_of_memory"),
    (("%OS-2-PROCESS_CRASH:",), "software_error"),
    (("%BGP-4-SESSION_JITTER:",), "bgp_link_jitter"),
    (("%PKT_INFRA-3-CRC_ERROR:",), "crc_errors"),
    (("%PORT-5-IF_DOWN_LINK_FAILURE:",), "port_down"),
    (("%BGP-5-ADJCHANGE:", "Down"), "bgp_peer_down"),
    (("%LINEPROTO-5-UPDOWN:", "down"), "link_down"),
    (("%LINK-3-UPDOWN:", "down"), "link_down"),
    (("%LINK-3-UPDOWN:", "up"), "link_up"),
    (("%ROUTING-3-BLACKHOLE:",), "traffic_blackhole"),
    (("%SEC_LOGIN-6-LOGIN_SUCCESS:",), "login"),
    (("%SYS-5-CONFIG_I:",), "config_session"),
    (("%SSH-6-SESSION:",), "ssh_session"),
)


def label_template(template: Template) -> str:
    """Assign an alert type to a template via the manual-labelling rules."""
    words = set(template)
    for keywords, type_name in LABEL_RULES:
        if all(k in words for k in keywords):
            return type_name
    return UNCLASSIFIED


class TemplateClassifier:
    """FT-tree-backed syslog line -> alert type mapping."""

    def __init__(self, max_children: int = 24) -> None:
        self._tree = FtTree(max_children=max_children)
        self._labels: Dict[Template, str] = {}
        self._fitted = False

    @property
    def tree(self) -> FtTree:
        return self._tree

    def fit(self, corpus: Iterable[str]) -> "TemplateClassifier":
        """Learn templates from a historical corpus and label them."""
        self._tree.fit(corpus)
        self._labels = {t: label_template(t) for t in self._tree.templates()}
        self._fitted = True
        return self

    def classify(self, line: str) -> str:
        """Alert type of one log line.

        Unseen lines fall back to direct rule labelling on their own words
        (in practice severe-failure lines match learned templates, §4.1:
        "although severe failures are rare and unprecedented, these
        templates account for Syslog alerts during such events").
        """
        if not self._fitted:
            raise RuntimeError("classifier used before fit")
        template = self._tree.match(line)
        if template is not None:
            cached = self._labels.get(template)
            if cached is None:
                cached = label_template(template)
                self._labels[template] = cached  # memoise
            if cached != UNCLASSIFIED:
                return cached
        from .tokenize import constant_words

        return label_template(tuple(constant_words(line)))

    def known_types(self) -> Sequence[str]:
        return sorted({v for v in self._labels.values()})

    def template_count(self) -> int:
        return self._tree.template_count()


def bootstrap_corpus() -> Tuple[str, ...]:
    """A small historical corpus covering every vendor message family the
    simulated devices emit -- the 'existing alerts' operators had already
    classified before SkyNet went live."""
    lines = []
    for i in range(3):
        lines += [
            f"%LINEPROTO-5-UPDOWN: Line protocol on Interface TenGigE0/{i}/0/{i + 1}, "
            f"changed state to down",
            f"%LINK-3-UPDOWN: Interface TenGigE0/{i}/0/{i + 2}, changed state to down",
            f"%LINK-3-UPDOWN: Interface TenGigE0/{i}/0/{i + 2}, changed state to up",
            f"%BGP-5-ADJCHANGE: neighbor 10.0.{i}.1 Down - holdtimer expired",
            f"%BGP-5-ADJCHANGE: neighbor 10.0.{i}.2 Down - peer closed the session",
            f"%BGP-5-ADJCHANGE: neighbor 10.0.{i}.3 Down - interface flap",
            f"%PORT-5-IF_DOWN_LINK_FAILURE: Interface TenGigE0/{i}/0/{i} is down "
            f"(Link failure)",
            f"%PLATFORM-2-HARDWARE_FAULT: ASIC {i} parity error detected, "
            f"packets may be dropped",
            f"%OS-2-PROCESS_CRASH: Process bgpd exited unexpectedly, restart scheduled",
            f"%SYS-2-MALLOCFAIL: Memory allocation of {4096 + i} bytes failed, "
            f"out of memory",
            f"%BGP-4-SESSION_JITTER: BGP link jitter detected on session eBGP-{i}",
            f"%PKT_INFRA-3-CRC_ERROR: {17 + i} CRC errors detected on interface "
            f"TenGigE0/{i}/0/{i}",
            f"%SEC_LOGIN-6-LOGIN_SUCCESS: Login Success [user: ops{i}] at vty0",
            f"%SYS-5-CONFIG_I: Configured from console by ops{i} on vty1",
            f"%SSH-6-SESSION: SSH session from 172.16.{i}.7 established",
        ]
    return tuple(lines)
