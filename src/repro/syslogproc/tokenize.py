"""Syslog tokenisation and variable stripping (§4.1).

"initially, it gathers command-line outputs from all devices and breaks
them down into individual words.  Variable words, such as addresses,
interfaces, and numbers, are then removed using predefined regular
expressions.  The remaining words create templates for alert
classification."
"""

from __future__ import annotations

import re
from typing import List, Tuple

#: Predefined regular expressions matching variable words.  Order matters:
#: the first match wins, and broader numeric patterns come last.
VARIABLE_PATTERNS: Tuple["re.Pattern[str]", ...] = (
    re.compile(r"^\d{1,3}(\.\d{1,3}){3}(/\d+)?$"),  # IPv4, optional prefix
    re.compile(r"^[0-9a-fA-F:]+::[0-9a-fA-F:]*$"),  # IPv6-ish
    re.compile(r"^(Ten|Forty|Hundred)?Gig[A-Za-z]*\d+(/\d+)*$"),  # interfaces
    re.compile(r"^(Eth|Et|Po|Vlan|Lo|Tunnel)\d+(/\d+)*$", re.IGNORECASE),
    re.compile(r"^e?BGP-\d+$"),  # session handles
    re.compile(r"^vty\d+$"),
    re.compile(r"^ops\d+\]?$"),  # usernames in our corpus
    re.compile(r"^0x[0-9a-fA-F]+$"),  # hex literals
    re.compile(r"^\d+(\.\d+)?%?$"),  # plain numbers / percentages
    re.compile(r"^[A-Z]{2}\d{2}[-A-Za-z0-9]*$"),  # device names (RG01-...)
)

_SPLIT = re.compile(r"[ \t,]+")


def tokenize(line: str) -> List[str]:
    """Split a log line into words, keeping punctuation that carries meaning
    (the ``%FACILITY-SEV-MNEMONIC:`` head is a single, highly-selective word).
    """
    return [w for w in _SPLIT.split(line.strip()) if w]


def is_variable(word: str) -> bool:
    """True when the word matches one of the predefined variable patterns."""
    stripped = word.strip("()[],:;")
    if not stripped:
        return True
    return any(p.match(stripped) for p in VARIABLE_PATTERNS)


def constant_words(line: str) -> List[str]:
    """The template-forming words of a line: tokens minus variables."""
    return [w for w in tokenize(line) if not is_variable(w)]
