"""Syslog template processing: tokenisation, FT-tree, classification (§4.1)."""

from .classify import (
    LABEL_RULES,
    UNCLASSIFIED,
    TemplateClassifier,
    bootstrap_corpus,
    label_template,
)
from .fttree import FtTree, Template
from .tokenize import VARIABLE_PATTERNS, constant_words, is_variable, tokenize

__all__ = [
    "FtTree",
    "LABEL_RULES",
    "Template",
    "TemplateClassifier",
    "UNCLASSIFIED",
    "VARIABLE_PATTERNS",
    "bootstrap_corpus",
    "constant_words",
    "is_variable",
    "label_template",
    "tokenize",
]
