"""Incidents: alert clusters sharing a time window and location (§3, §4.2).

An incident tree is a replicated subtree of the main tree, rooted at the
location whose alert group crossed the generation thresholds.  Its report
(Figure 6) lists the grouped alerts by level -- failure / abnormal /
root-cause -- which is the distilled view operators actually read.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..topology.hierarchy import LocationPath
from .alert import AlertLevel, AlertTypeKey, StructuredAlert
from .alert_tree import TreeRecord, record_from

# Process-global by design: incident ids must be dense and stable across
# checkpoint/resume, so the counter is checkpointed (set_incident_counter)
# and rebound on restore.  The multiprocess-shard port must replace this
# with ids minted by the owning shard (ROADMAP "multiprocess shards").
_incident_counter = itertools.count(1)  # lint: allow REP014

#: Report ordering of levels, matching Figure 6's sections.
LEVEL_ORDER = (AlertLevel.FAILURE, AlertLevel.ABNORMAL, AlertLevel.ROOT_CAUSE)


class IncidentStatus(enum.Enum):
    OPEN = "open"
    CLOSED = "closed"  # idle past the incident timeout (Algorithm 3)
    SUPERSEDED = "superseded"  # absorbed into a wider incident (Algorithm 2)


@dataclasses.dataclass
class SeverityBreakdown:
    """The evaluator's output for one incident (Equations 1-3)."""

    impact_factor: float  # I_k
    time_factor: float  # T_k
    score: float  # y_k = I_k * T_k
    capped_score: float  # min(score, cap) -- what reports display
    ping_loss_rate: float  # R_k
    sla_excess_rate: float  # L_k
    duration_s: float  # ΔT_k
    important_customers: int  # U_k
    circuit_sets_considered: int

    def exceeds(self, threshold: float) -> bool:
        return self.score >= threshold


class Incident:
    """One alert cluster: a replicated location subtree plus its records."""

    def __init__(self, root: LocationPath, created_at: float,
                 seed_nodes: Dict[LocationPath, List[TreeRecord]]) -> None:
        self.incident_id = f"incident-{next(_incident_counter):05d}"
        self.root = root
        self.created_at = created_at
        self.update_time = created_at
        self.status = IncidentStatus.OPEN
        self.closed_at: Optional[float] = None
        self.refined_location: Optional[LocationPath] = None  # zoom-in result
        self.severity: Optional[SeverityBreakdown] = None
        #: assessment confidence in [0, 1]; None until a degraded data
        #: source touches this incident (the evaluator stamps it), so
        #: healthy runs carry -- and render -- no confidence annotation
        self.confidence: Optional[float] = None
        #: degraded sources that affected this incident's assessment
        self.degraded_sources: Tuple[str, ...] = ()
        self._nodes: Dict[LocationPath, Dict[AlertTypeKey, TreeRecord]] = {}
        for location, records in seed_nodes.items():
            node = self._nodes.setdefault(location, {})
            for record in records:
                existing = node.get(record.type_key)
                if existing is None:
                    node[record.type_key] = record
                else:
                    _merge_records(existing, record)
        if seed_nodes:
            self.update_time = max(
                r.last_seen for recs in seed_nodes.values() for r in recs
            )

    # -- growth --------------------------------------------------------------

    def covers(self, location: LocationPath) -> bool:
        return self.root.contains(location)

    def add(self, alert: StructuredAlert) -> None:
        """Algorithm 1 lines 2-9: attach an alert inside the incident scope."""
        if not self.covers(alert.location):
            raise ValueError(
                f"{alert.location} is outside incident root {self.root}"
            )
        node = self._nodes.setdefault(alert.location, {})
        record = node.get(alert.type_key)
        if record is None:
            node[alert.type_key] = record_from(alert)
        else:
            record.absorb(alert)
        self.update_time = max(self.update_time, alert.last_seen)

    def absorb_incident(self, other: "Incident") -> None:
        """Merge a narrower incident this one supersedes (Algorithm 2 l.7-9)."""
        for location, node in other._nodes.items():
            mine = self._nodes.setdefault(location, {})
            for key, record in node.items():
                if key in mine:
                    _merge_records(mine[key], record)
                else:
                    mine[key] = record.clone()
        self.created_at = min(self.created_at, other.created_at)
        self.update_time = max(self.update_time, other.update_time)

    def close(self, now: float, status: IncidentStatus = IncidentStatus.CLOSED) -> None:
        self.status = status
        self.closed_at = now

    def note_degradation(
        self, confidence: float, degraded: Iterable[str]
    ) -> None:
        """Record that degraded sources touched this assessment.

        Confidence keeps its in-flight *minimum* (mirroring how severity
        keeps its peak: the report must not forget how blind the system
        was at the worst moment) and the degraded-source list is the
        union over the incident's lifetime."""
        if self.confidence is None or confidence < self.confidence:
            self.confidence = confidence
        self.degraded_sources = tuple(
            sorted(set(self.degraded_sources) | set(degraded))
        )

    # -- queries ----------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self.status is IncidentStatus.OPEN

    @property
    def location(self) -> LocationPath:
        """Most precise known location (zoom-in result when available)."""
        return self.refined_location or self.root

    @property
    def start_time(self) -> float:
        records = list(self.records())
        if not records:
            return self.created_at
        return min(r.first_seen for r in records)

    @property
    def end_time(self) -> float:
        return self.update_time

    def records(self) -> Iterator[TreeRecord]:
        for node in self._nodes.values():
            yield from node.values()

    def nodes(self) -> Dict[LocationPath, List[TreeRecord]]:
        return {loc: list(n.values()) for loc, n in self._nodes.items()}

    def alert_counts_by_level(self) -> Dict[AlertLevel, List[Tuple[AlertTypeKey, int]]]:
        """Per level: the distinct alert types present with raw counts
        (Figure 6's per-incident listing)."""
        buckets: Dict[AlertLevel, Dict[AlertTypeKey, int]] = {}
        for record in self.records():
            buckets.setdefault(record.level, {})
            buckets[record.level][record.type_key] = (
                buckets[record.level].get(record.type_key, 0) + record.count
            )
        return {
            level: sorted(types.items(), key=lambda kv: str(kv[0]))
            for level, types in buckets.items()
        }

    def distinct_type_count(self, level: Optional[AlertLevel] = None) -> int:
        keys = {
            r.type_key for r in self.records() if level is None or r.level is level
        }
        return len(keys)

    def total_alert_count(self) -> int:
        return sum(r.count for r in self.records())

    def devices_involved(self) -> List[str]:
        return sorted({r.device for r in self.records() if r.device})

    def max_metric(self, name: str, level: Optional[AlertLevel] = None) -> float:
        values = [
            r.worst_metrics.get(name, 0.0)
            for r in self.records()
            if level is None or r.level is level
        ]
        return max(values, default=0.0)

    def mean_metric(self, name: str, level: Optional[AlertLevel] = None) -> float:
        values = [
            r.worst_metrics[name]
            for r in self.records()
            if name in r.worst_metrics and (level is None or r.level is level)
        ]
        return sum(values) / len(values) if values else 0.0

    # -- rendering -----------------------------------------------------------------

    def render(self) -> str:
        """Figure 6-style incident report."""
        lines = [f"{self.incident_id}:"]
        score = f"  severity {self.severity.capped_score:.1f}" if self.severity else ""
        lines.append(
            f"[{self.location}][{self.start_time:.0f}s - {self.end_time:.0f}s]"
            f"{score}"
        )
        # only degraded runs annotate confidence: healthy renders stay
        # byte-identical to the pre-chaos report format
        if self.degraded_sources:
            assert self.confidence is not None
            lines.append(
                f"confidence {self.confidence:.2f}"
                f" (degraded: {', '.join(self.degraded_sources)})"
            )
        by_level = self.alert_counts_by_level()
        titles = {
            AlertLevel.FAILURE: "Failure alerts",
            AlertLevel.ABNORMAL: "Abnormal alerts",
            AlertLevel.ROOT_CAUSE: "Root cause alerts",
        }
        for level in LEVEL_ORDER:
            types = by_level.get(level)
            if not types:
                continue
            lines.append(titles[level])
            by_tool: Dict[str, List[Tuple[str, int]]] = {}
            for key, count in types:
                by_tool.setdefault(key.tool, []).append((key.name, count))
            for tool in sorted(by_tool):
                lines.append(f"  {tool}")
                entries = by_tool[tool]
                for i, (name, count) in enumerate(entries):
                    branch = "└-" if i == len(entries) - 1 else "|-"
                    lines.append(f"  {branch} {name} ({count})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Incident({self.incident_id}, root={self.root}, "
            f"types={self.distinct_type_count()}, status={self.status.value})"
        )


def _merge_records(into: TreeRecord, other: TreeRecord) -> None:
    """Merge two *overlapping views* of the same (location, type) record --
    e.g. a superseded incident's copy and the fresh main-tree snapshot.
    Counts are cumulative totals in both views, so take the larger rather
    than summing."""
    into.first_seen = min(into.first_seen, other.first_seen)
    into.last_seen = max(into.last_seen, other.last_seen)
    into.count = max(into.count, other.count)
    for key, value in other.worst_metrics.items():
        into.worst_metrics[key] = max(into.worst_metrics.get(key, value), value)
