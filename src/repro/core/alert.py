"""Structured alerts: SkyNet's uniform input format (§4.1).

A structured alert is "characterized by timestamp, location, and type".
Types additionally carry one of the paper's three importance levels
(§4.2) -- *failure*, *abnormal*, *root cause* -- plus an *info* level for
benign chatter the preprocessor filters out entirely.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Tuple

from ..topology.hierarchy import LocationPath


class AlertLevel(enum.Enum):
    """Importance levels of §4.2 (plus INFO for filtered benign alerts)."""

    INFO = "info"  # benign; dropped by the preprocessor
    FAILURE = "failure"  # network behaviour definitively abnormal
    ABNORMAL = "abnormal"  # irregular but possibly expected behaviour
    ROOT_CAUSE = "root_cause"  # failure of a network entity

    @property
    def counts_for_incidents(self) -> bool:
        return self is not AlertLevel.INFO


@dataclasses.dataclass(frozen=True)
class AlertTypeKey:
    """Identity of an alert type: the producing tool plus its type name."""

    tool: str
    name: str

    def __str__(self) -> str:
        return f"{self.tool}/{self.name}"


@dataclasses.dataclass
class StructuredAlert:
    """One preprocessed alert: type + level + location + time span.

    ``first_seen``/``last_seen`` implement §4.1's duration attribute
    ("SkyNet uses the start time of packet loss detected by ping as the
    alert timestamp, with subsequent alerts contributing to a 'duration'
    attribute"); ``count`` is how many raw alerts were consolidated in.
    """

    type_key: AlertTypeKey
    level: AlertLevel
    location: LocationPath
    first_seen: float
    last_seen: float
    count: int = 1
    message: str = ""
    metrics: Dict[str, float] = dataclasses.field(default_factory=dict)
    device: Optional[str] = None

    def __post_init__(self) -> None:
        if self.last_seen < self.first_seen:
            raise ValueError("last_seen before first_seen")
        if self.count < 1:
            raise ValueError("count must be positive")

    @property
    def duration_s(self) -> float:
        return self.last_seen - self.first_seen

    def metric(self, name: str, default: float = 0.0) -> float:
        return float(self.metrics.get(name, default))

    def merged_with(self, timestamp: float, metrics: Optional[Dict[str, float]] = None
                    ) -> "StructuredAlert":
        """A copy extended by one more raw occurrence at ``timestamp``."""
        new_metrics = dict(self.metrics)
        for key, value in (metrics or {}).items():
            # keep the worst observation (max) for rate-like metrics
            new_metrics[key] = max(new_metrics.get(key, value), value)
        return dataclasses.replace(
            self,
            last_seen=max(self.last_seen, timestamp),
            count=self.count + 1,
            metrics=new_metrics,
        )

    def render(self) -> str:
        """Human-readable one-liner, Figure 6 style."""
        return (
            f"[{self.type_key}] [{self.level.value}] {self.location} "
            f"({self.first_seen:.0f}s - {self.last_seen:.0f}s, x{self.count})"
        )
