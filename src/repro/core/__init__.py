"""SkyNet core: preprocessor, locator, evaluator, zoom-in, pipeline (§4)."""

from .alert import AlertLevel, AlertTypeKey, StructuredAlert
from .alert_tree import AlertTree, TreeRecord, record_from
from .alert_types import (
    ALERT_TYPE_LEVELS,
    CONDITIONAL_TYPES,
    SPORADIC_TYPES,
    level_of,
    registered_types,
    type_key,
)
from .config import (
    PRODUCTION_CONFIG,
    IncidentThresholds,
    SeverityParams,
    SkyNetConfig,
)
from .evaluator import Evaluator
from .llm_export import ContextPackage, IncidentContextExporter
from .incident import (
    Incident,
    IncidentStatus,
    SeverityBreakdown,
)
from .locator import Locator, SweepResult
from .pipeline import IncidentReport, SkyNet
from .preprocessor import PreprocessStats, Preprocessor
from .voting import VotingGraph
from .zoom_in import LocationZoomIn, PingWindow, ReachabilityMatrix

__all__ = [
    "ALERT_TYPE_LEVELS",
    "AlertLevel",
    "AlertTree",
    "AlertTypeKey",
    "CONDITIONAL_TYPES",
    "ContextPackage",
    "Evaluator",
    "IncidentContextExporter",
    "Incident",
    "IncidentReport",
    "IncidentStatus",
    "IncidentThresholds",
    "Locator",
    "LocationZoomIn",
    "PRODUCTION_CONFIG",
    "PingWindow",
    "PreprocessStats",
    "Preprocessor",
    "ReachabilityMatrix",
    "SPORADIC_TYPES",
    "SeverityBreakdown",
    "SeverityParams",
    "SkyNet",
    "SkyNetConfig",
    "StructuredAlert",
    "SweepResult",
    "TreeRecord",
    "VotingGraph",
    "level_of",
    "record_from",
    "registered_types",
    "type_key",
]
