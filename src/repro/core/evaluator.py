"""The evaluator (§4.3): quantitative incident severity, Equations 1-3.

.. math::

    I_k = \\max\\Big(1, \\sum_i d_i g_i u_i + \\sum_j l_j g_j u_j\\Big)

    T_k = \\max\\big(\\log_{1/R_k}(\\Delta T_k + Sig(U_k)),\\;
                      \\log_{1/L_k}(\\Delta T_k + Sig(U_k))\\big)

    y_k = I_k \\cdot T_k

Symbols (Table 3): over the circuit sets related to the incident,
``d_i`` is the break ratio, ``l_i`` the ratio of SLA flows beyond limit,
``g_i`` the importance factor of the customers on the set, ``u_i`` their
count; ``R_k`` is the average ping packet-loss rate, ``L_k`` the max
average SLA excess rate, ``ΔT_k`` the alert lasting time, and ``U_k`` the
number of important customers affected.

Log bases ``1/R`` and ``1/L`` make severity grow *faster in time* the worse
the loss is; the sigmoid keeps a handful of key customers influential while
saturating for large counts (§4.3).  Without traffic/state wiring the
evaluator degrades to the alert-derived terms only (R and ΔT).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..simulation.state import NetworkState
from ..topology.hierarchy import LocationPath
from ..topology.network import Topology
from ..topology.traffic import FlowPlacement, TrafficModel
from .alert import AlertLevel
from .config import SeverityParams, SkyNetConfig
from .incident import Incident, SeverityBreakdown

#: Alert metrics treated as observed packet-loss rates for ``R_k``.
_LOSS_METRICS = ("loss_rate", "loss_ratio", "mismatch")


class Evaluator:
    """Computes severity scores and ranks concurrent incidents."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[SkyNetConfig] = None,
        state: Optional[NetworkState] = None,
        traffic: Optional[TrafficModel] = None,
    ) -> None:
        self._topo = topology
        self._config = config or SkyNetConfig()
        self._state = state
        self._traffic = traffic or (state.traffic if state else None)
        # fast path: related circuit sets per incident scope; the lookup
        # walks every device under the scope, and open incidents are
        # re-assessed every sweep, so the memo turns a per-sweep topology
        # scan into a dict hit.  Keyed on the topology mutation counter.
        self._cs_memo: Dict[LocationPath, List[str]] = {}
        self._cs_memo_version = -1

    @property
    def params(self) -> SeverityParams:
        return self._config.severity

    # -- public API -----------------------------------------------------------

    def evaluate(
        self,
        incident: Incident,
        now: Optional[float] = None,
        degraded: FrozenSet[str] = frozenset(),
    ) -> SeverityBreakdown:
        """Score one incident and attach the breakdown to it.

        ``degraded`` names data sources currently unusable; their
        records are excluded from ``R_k`` while healthy evidence exists
        (falling back to the degraded records rather than pretending
        zero loss), and the incident is stamped with a ``confidence``
        annotation: the fraction of its relevant sources still healthy.
        An empty set -- the only case without a chaos plan -- leaves
        every computation byte-identical to the degradation-unaware
        evaluator."""
        now = incident.end_time if now is None else now
        duration = max(
            self.params.min_duration_s, incident.end_time - incident.start_time
        )
        ping_loss = self._ping_loss_rate(incident, degraded)
        impact, sla_excess, important = self._traffic_terms(incident)
        time_factor = self._time_factor(ping_loss, sla_excess, duration, important)
        score = impact * time_factor
        breakdown = SeverityBreakdown(
            impact_factor=impact,
            time_factor=time_factor,
            score=score,
            capped_score=min(score, self.params.score_cap),
            ping_loss_rate=ping_loss,
            sla_excess_rate=sla_excess,
            duration_s=duration,
            important_customers=important,
            circuit_sets_considered=self._related_set_count(incident),
        )
        # an incident's severity is its in-flight peak: re-assessing after
        # mitigation (breaks repaired, SLA flows healthy again) must not
        # erase how bad it got while live
        if incident.severity is None or breakdown.score >= incident.severity.score:
            incident.severity = breakdown
        if degraded:
            relevant = self._relevant_sources(incident)
            unusable = relevant & degraded
            if unusable:
                incident.note_degradation(
                    confidence=1.0 - len(unusable) / len(relevant),
                    degraded=unusable,
                )
        return breakdown

    def rank(self, incidents: List[Incident], now: Optional[float] = None
             ) -> List[Incident]:
        """Incidents ordered most-severe-first (the §5.1 'scene ranking')."""
        for incident in incidents:
            if incident.severity is None:
                self.evaluate(incident, now)
        return sorted(
            incidents, key=lambda i: i.severity.score, reverse=True  # type: ignore
        )

    def urgent(self, incidents: List[Incident], now: Optional[float] = None
               ) -> List[Incident]:
        """Incidents above the severity alerting threshold (§6.4)."""
        ranked = self.rank(incidents, now)
        return [
            i
            for i in ranked
            if i.severity is not None
            and i.severity.exceeds(self.params.alert_threshold)
        ]

    # -- equation terms -----------------------------------------------------------

    def _ping_loss_rate(
        self, incident: Incident, degraded: FrozenSet[str] = frozenset()
    ) -> float:
        """``R_k``: mean observed loss over the incident's failure alerts.

        Records from degraded sources are set aside and only used when
        *no* healthy failure evidence carries a loss metric -- stale loss
        numbers are better than inventing a zero rate, but must never
        outvote live ones."""
        values: List[float] = []
        sidelined: List[float] = []
        for record in incident.records():
            if record.level is not AlertLevel.FAILURE:
                continue
            for metric in _LOSS_METRICS:
                if metric in record.worst_metrics:
                    if degraded and record.type_key.tool in degraded:
                        sidelined.append(record.worst_metrics[metric])
                    else:
                        values.append(record.worst_metrics[metric])
                    break
        if not values:
            values = sidelined
        return sum(values) / len(values) if values else 0.0

    def _relevant_sources(self, incident: Incident) -> FrozenSet[str]:
        """Sources whose health bears on this incident's assessment: every
        tool that contributed a record, plus the three §4.3 zoom-in feeds
        the refinement would have consulted."""
        tools = {record.type_key.tool for record in incident.records()}
        tools.update(("ping", "traffic_statistics", "in_band_telemetry"))
        return frozenset(tools)

    def _related_circuit_sets(self, incident: Incident) -> List[str]:
        root = incident.location
        if not self._config.fast_path:
            return self._lookup_circuit_sets(root)
        version = self._topo.version
        if version != self._cs_memo_version:
            self._cs_memo.clear()
            self._cs_memo_version = version
        sets = self._cs_memo.get(root)
        if sets is None:
            sets = self._cs_memo[root] = self._lookup_circuit_sets(root)
        return sets

    def _lookup_circuit_sets(self, root: LocationPath) -> List[str]:
        if root.is_device:
            return [cs.set_id for cs in self._topo.circuit_sets_of(root.name)]
        return [cs.set_id for cs in self._topo.circuit_sets_under(root)]

    def _related_set_count(self, incident: Incident) -> int:
        return len(self._related_circuit_sets(incident))

    def _traffic_terms(self, incident: Incident) -> Tuple[float, float, int]:
        """``(I_k, L_k, U_k)`` from circuit-set, SLA and customer data."""
        if self._state is None or self._traffic is None:
            return 1.0, 0.0, 0
        placement = self._state.placement()
        if placement is None:
            return 1.0, 0.0, 0
        impact_sum = 0.0
        max_excess = 0.0
        affected_important: Set[str] = set()
        for set_id in self._related_circuit_sets(incident):
            d = self._state.circuit_set_break_ratio(set_id)
            customers = self._traffic.customers_on_circuit_set(set_id, placement)
            u = len(customers)
            g = (
                sum(c.importance for c in customers) / u
                if u
                else 0.0
            )
            l, excess = self._sla_terms(set_id, placement)
            impact_sum += d * g * u + l * g * u
            max_excess = max(max_excess, excess)
            if d > 0.0 or l > 0.0 or self._set_lossy(set_id):
                for customer in customers:
                    if customer.is_important:
                        affected_important.add(customer.customer_id)
        return max(1.0, impact_sum), max_excess, len(affected_important)

    def _set_lossy(self, set_id: str) -> bool:
        assert self._state is not None
        return self._state.circuit_set_loss_rate(set_id) > 0.01

    def _sla_terms(self, set_id: str, placement: FlowPlacement) -> Tuple[float, float]:
        """``(l_i, avg relative SLA shortfall)`` for one circuit set."""
        assert self._state is not None and self._traffic is not None
        sla_flows = self._traffic.sla_flows_on(set_id, placement)
        if not sla_flows:
            return 0.0, 0.0
        violated = 0
        shortfalls: List[float] = []
        for flow in sla_flows:
            route = placement.routes.get(flow.flow_id)
            if route is None:
                continue
            delivered = flow.rate_gbps * (1.0 - self._state.route_loss_rate(route))
            if delivered < flow.sla_limit_gbps:
                violated += 1
                shortfalls.append(
                    (flow.sla_limit_gbps - delivered) / flow.sla_limit_gbps
                )
        ratio = violated / len(sla_flows)
        excess = sum(shortfalls) / len(shortfalls) if shortfalls else 0.0
        return ratio, excess

    # -- time factor -----------------------------------------------------------------

    def _sigmoid(self, important_customers: int) -> float:
        p = self.params
        return p.sig_scale / (
            1.0 + math.exp(-(important_customers - p.sig_midpoint) / p.sig_steepness)
        )

    def _log_base_inverse(self, rate: float, argument: float) -> float:
        """``log_{1/rate}(argument)`` with the paper-safe clamps.

        A zero rate means the term contributes nothing; a rate at/above 1
        is clamped just below 1 so the base stays above 1 and the log
        finite (severity then grows very fast, as intended).
        """
        p = self.params
        if rate <= 0.0 or argument <= 1.0:
            return 0.0
        clamped = min(max(rate, p.min_rate), p.max_rate)
        return math.log(argument) / math.log(1.0 / clamped)

    def _time_factor(
        self, ping_loss: float, sla_excess: float, duration: float, important: int
    ) -> float:
        argument = duration + self._sigmoid(important)
        return self.params.time_factor_scale * max(
            self._log_base_inverse(ping_loss, argument),
            self._log_base_inverse(sla_excess, argument),
        )
