"""Location zoom-in (§4.3): refining an incident to its precise location.

Three triggers, tried in order:

1. **Reachability matrix** -- end-to-end ping results are arranged as a
   loss matrix between locations (Figure 7); a location whose row *and*
   column are dark is the focal point.
2. **sFlow traceback** -- sampled-loss alerts name devices; when they all
   trace back to one node inside the incident tree, that node is the spot.
3. **INT rate comparison** -- test-flow in/out mismatches name the exact
   device.

When nothing refines, "emergency procedures revert to the general location
of the incident".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..monitors.base import RawAlert
from ..topology.hierarchy import Level, LocationPath, lowest_common_ancestor
from ..topology.network import Topology
from .config import PRODUCTION_CONFIG
from .incident import Incident

#: A matrix cell above this loss is a "dark" cell.
DARK_CELL_LOSS = 0.05
#: Row+column mean loss above this marks a focal location.
FOCAL_MEAN_LOSS = 0.04


@dataclasses.dataclass
class ReachabilityMatrix:
    """Pairwise loss between sibling locations (Figure 7)."""

    locations: List[LocationPath]
    loss: Dict[Tuple[LocationPath, LocationPath], float]

    def cell(self, a: LocationPath, b: LocationPath) -> float:
        return self.loss.get((a, b), self.loss.get((b, a), 0.0))

    def row_col_mean(self, loc: LocationPath) -> float:
        others = [o for o in self.locations if o != loc]
        if not others:
            return 0.0
        return sum(self.cell(loc, o) for o in others) / len(others)

    def focal_point(self) -> Optional[LocationPath]:
        """The location whose row and column are dark while the rest of the
        matrix stays light; ``None`` when no single hot spot stands out."""
        if len(self.locations) < 2:
            return None
        means = {loc: self.row_col_mean(loc) for loc in self.locations}
        hot = max(means, key=lambda loc: means[loc])
        if means[hot] < FOCAL_MEAN_LOSS:
            return None
        # the rest of the matrix (cells not touching `hot`) must be light
        background = [
            self.cell(a, b)
            for i, a in enumerate(self.locations)
            for b in self.locations[i + 1 :]
            if hot not in (a, b)
        ]
        if background and max(background) > DARK_CELL_LOSS:
            return None
        return hot

    def render(self) -> str:
        """ASCII rendering of the matrix (percent loss)."""
        names = [loc.name for loc in self.locations]
        width = max((len(n) for n in names), default=4) + 1
        head = " " * width + "".join(f"{n:>{width}}" for n in names)
        rows = [head]
        for a in self.locations:
            cells = "".join(
                f"{self.cell(a, b) * 100:>{width}.1f}" for b in self.locations
            )
            rows.append(f"{a.name:>{width}}" + cells)
        return "\n".join(rows)


class PingWindow:
    """Sliding window over recent end-to-end probe results.

    Feeds the reachability matrix from the same telemetry the Ping and
    Internet monitors emit, remembering the latest loss per cluster pair.
    """

    # probe recency horizon = the §4.2 node timeout: the matrix considers
    # the same window the main tree keeps alert nodes alive for
    def __init__(self, topology: Topology,
                 window_s: float = PRODUCTION_CONFIG.node_timeout_s) -> None:
        self._topo = topology
        self.window_s = window_s
        self._latest: Dict[Tuple[LocationPath, LocationPath], Tuple[float, float]] = {}

    def observe(self, raw: RawAlert) -> None:
        """Feed one raw alert; non-probe alerts are ignored."""
        if raw.tool not in ("ping", "traceroute") or raw.endpoints is None:
            return
        clusters: List[LocationPath] = []
        for end in raw.endpoints:
            server = self._topo.servers.get(end)
            if server is not None:
                clusters.append(server.cluster)
        if len(clusters) != 2:
            return
        a, b = sorted(clusters, key=str)
        loss = raw.metric("loss_rate", 0.0)
        self._latest[(a, b)] = (raw.timestamp, loss)

    def matrix(
        self, now: float, scope: Optional[LocationPath] = None,
        level: Level = Level.CLUSTER,
    ) -> ReachabilityMatrix:
        """Build the matrix at ``level`` granularity from fresh samples."""
        cells: Dict[Tuple[LocationPath, LocationPath], List[float]] = {}
        locations: Set[LocationPath] = set()
        for (a, b), (ts, loss) in self._latest.items():
            if now - ts > self.window_s:
                continue
            if scope is not None and not (scope.contains(a) or scope.contains(b)):
                continue
            ka = a.truncate(level) if a.depth >= level.value else a
            kb = b.truncate(level) if b.depth >= level.value else b
            if ka == kb:
                continue
            locations.update((ka, kb))
            cells.setdefault(tuple(sorted((ka, kb), key=str)), []).append(loss)
        loss = {pair: sum(v) / len(v) for pair, v in cells.items()}
        return ReachabilityMatrix(sorted(locations, key=str), loss)


class LocationZoomIn:
    """Applies the three §4.3 zoom-in triggers to an incident."""

    def __init__(self, topology: Topology, ping_window: Optional[PingWindow] = None) -> None:
        self._topo = topology
        self.ping_window = ping_window or PingWindow(topology)

    def observe(self, raw: RawAlert) -> None:
        self.ping_window.observe(raw)

    def refine(
        self,
        incident: Incident,
        now: float,
        degraded: FrozenSet[str] = frozenset(),
    ) -> Optional[LocationPath]:
        """Most precise location the telemetry supports; sets
        ``incident.refined_location`` when something sticks.

        ``degraded`` names data sources currently unusable (outage or
        severe brownout): a degraded source's trigger is skipped and the
        next one in §4.3's ping -> sFlow -> INT order takes over, so a
        dark ping mesh falls back to traceback instead of refining from
        stale loss samples."""
        refined = (
            (None if "ping" in degraded else self._matrix_focal(incident, now))
            or (
                None
                if "traffic_statistics" in degraded
                else self._sflow_traceback(incident)
            )
            or (
                None
                if "in_band_telemetry" in degraded
                else self._int_device(incident)
            )
        )
        if refined is not None and incident.root.contains(refined):
            incident.refined_location = refined
            return refined
        return None

    # -- triggers -----------------------------------------------------------------

    def _matrix_focal(self, incident: Incident, now: float) -> Optional[LocationPath]:
        root_level = incident.root.structural_level
        if root_level.value >= Level.CLUSTER.value:
            return None  # already precise
        child_level = Level(root_level.value + 1)
        matrix = self.ping_window.matrix(now, scope=None, level=child_level)
        focal = matrix.focal_point()
        if focal is not None and incident.root.contains(focal):
            return focal
        return None

    def _sflow_traceback(self, incident: Incident) -> Optional[LocationPath]:
        devices = [
            r.device
            for r in incident.records()
            if r.device
            and r.type_key.tool == "traffic_statistics"
            and r.type_key.name == "packet_loss"
        ]
        return self._device_lca(devices, incident)

    def _int_device(self, incident: Incident) -> Optional[LocationPath]:
        devices = [
            r.device
            for r in incident.records()
            if r.device
            and r.type_key.tool == "in_band_telemetry"
            and r.type_key.name == "rate_mismatch"
        ]
        return self._device_lca(devices, incident)

    def _device_lca(
        self, devices: Sequence[str], incident: Incident
    ) -> Optional[LocationPath]:
        paths = [
            self._topo.device(d).location
            for d in dict.fromkeys(devices)
            if self._topo.has_device(d)
        ]
        paths = [p for p in paths if incident.root.contains(p)]
        if not paths:
            return None
        if len(paths) == 1:
            return paths[0]
        lca = lowest_common_ancestor(paths)
        # only a refinement if strictly inside the incident scope
        if incident.root.contains(lca) and lca != incident.root:
            return lca
        return None
