"""The locator (§4.2): incident discovery over the hierarchical alert tree.

Implements the paper's Algorithms 1-3:

* **Algorithm 1** (:meth:`Locator.feed`): every structured alert is added
  to the main tree, and to any open incident whose scope contains it.
* **Algorithm 2** (:meth:`Locator.sweep`): candidate alert groups are
  formed from the live main-tree nodes, restricted by topological
  connectivity ("the algorithm only considers alerts within the area
  connected to the root node"); a group crossing the ``A/B+C/D``
  thresholds spawns an incident tree replicated from the main tree, and
  narrower incidents inside the new scope are superseded.
* **Algorithm 3** (also in :meth:`sweep`): main-tree records expire after
  the 5-minute node timeout; incident trees close after 15 idle minutes.

Counting semantics (§4.2): duplicate alert *types* inside one group count
once ("we consolidate alarms of the same type from different devices into
a single alert"), unless ``config.count_by_type`` is off -- that is the
Figure 9 "type+location" ablation, which explodes false positives.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..topology.hierarchy import LocationPath, lowest_common_ancestor
from ..topology.network import Topology
from .alert import AlertLevel, StructuredAlert
from .alert_tree import AlertTree, TreeRecord
from .config import SkyNetConfig
from .incident import Incident, IncidentStatus


@dataclasses.dataclass
class SweepResult:
    """What one locator sweep changed."""

    opened: List[Incident]
    closed: List[Incident]
    expired_records: int


class Locator:
    """Streaming incident discovery (main tree + incident trees)."""

    def __init__(self, topology: Topology, config: Optional[SkyNetConfig] = None) -> None:
        self._topo = topology
        self._config = config or SkyNetConfig()
        self.main_tree = AlertTree()
        self._open: List[Incident] = []
        self._finished: List[Incident] = []

    @property
    def config(self) -> SkyNetConfig:
        return self._config

    @property
    def open_incidents(self) -> List[Incident]:
        return list(self._open)

    @property
    def finished_incidents(self) -> List[Incident]:
        return list(self._finished)

    def all_incidents(self) -> List[Incident]:
        return self._finished + self._open

    # -- Algorithm 1: alert insertion ------------------------------------------------

    def feed(self, alert: StructuredAlert) -> None:
        """Insert one structured alert into the main and incident trees."""
        for incident in self._open:
            if incident.covers(alert.location):
                incident.add(alert)
        self.main_tree.insert(alert)

    # -- Algorithms 2 + 3: sweep --------------------------------------------------------

    def sweep(self, now: float) -> SweepResult:
        """Expire stale state, then try to generate new incident trees."""
        expired = self.main_tree.expire(now, self._config.node_timeout_s)
        closed = self._close_idle(now)
        opened = self._generate(now)
        return SweepResult(opened=opened, closed=closed, expired_records=expired)

    def _close_idle(self, now: float) -> List[Incident]:
        closed: List[Incident] = []
        still_open: List[Incident] = []
        for incident in self._open:
            if now > incident.update_time + self._config.incident_timeout_s:
                incident.close(now)
                self._finished.append(incident)
                closed.append(incident)
            else:
                still_open.append(incident)
        self._open = still_open
        return closed

    def _generate(self, now: float) -> List[Incident]:
        opened: List[Incident] = []
        components = self._connected_components()
        # widest groups first so a broad incident supersedes narrow ones
        components.sort(key=lambda comp: len(_lca(comp).segments))
        for component in components:
            root = _lca(component)
            if self._inside_open_incident(root):
                continue  # an incident tree for this area already exists
            failure_types, other_types = self._count_types(component)
            if not self._config.thresholds.triggered(failure_types, other_types):
                continue
            incident = Incident(
                root=root,
                created_at=now,
                seed_nodes=self.main_tree.snapshot_under(root),
            )
            # Algorithm 2 lines 7-9: swallow narrower incidents in scope
            for old in list(self._open):
                if root.contains(old.root):
                    incident.absorb_incident(old)
                    old.close(now, IncidentStatus.SUPERSEDED)
                    self._open.remove(old)
                    self._finished.append(old)
            self._open.append(incident)
            opened.append(incident)
        return opened

    def _inside_open_incident(self, root: LocationPath) -> bool:
        return any(inc.covers(root) for inc in self._open)

    # -- connectivity grouping ------------------------------------------------------------

    def _connected_components(self) -> List[List[LocationPath]]:
        """Partition alerting locations into topology-connected groups.

        Rules (see DESIGN.md):
        * two alerting *devices* join when within ``connectivity_max_hops``
          of each other in the device graph;
        * two structural locations join on containment;
        * a device joins a structural location when it sits inside it, or
          when the structural location sits inside the device's parent
          (an aggregation device glues the area it serves).  The downward
          glue only applies to devices attached at logic-site level or
          deeper: a backbone router's alert must not claim every alert in
          its region, or concurrent scenes would merge into one blob.
        """
        locations = self.main_tree.locations()
        if not locations:
            return []
        parent: Dict[LocationPath, LocationPath] = {loc: loc for loc in locations}

        def find(x: LocationPath) -> LocationPath:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: LocationPath, b: LocationPath) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        device_locs = [loc for loc in locations if loc.is_device]
        struct_locs = [loc for loc in locations if not loc.is_device]

        by_name = {loc.name: loc for loc in device_locs}
        for group in self._topo.connected_device_components(
            list(by_name), max_hops=self._config.connectivity_max_hops
        ):
            members = [by_name[n] for n in group if n in by_name]
            for other in members[1:]:
                union(members[0], other)

        for i, a in enumerate(struct_locs):
            for b in struct_locs[i + 1 :]:
                if a.contains(b) or b.contains(a):
                    union(a, b)

        from ..topology.hierarchy import Level

        for dev in device_locs:
            dev_parent = dev.parent
            glues_down = dev_parent.level.value >= Level.LOGIC_SITE.value
            for struct in struct_locs:
                if struct.contains(dev) or (
                    glues_down and dev_parent.contains(struct)
                ):
                    union(dev, struct)

        groups: Dict[LocationPath, List[LocationPath]] = {}
        for loc in locations:
            groups.setdefault(find(loc), []).append(loc)
        return list(groups.values())

    # -- counting ------------------------------------------------------------------

    def _count_types(self, component: Sequence[LocationPath]) -> Tuple[int, int]:
        """Distinct (or per-location, in the ablation) type counts by level."""
        failure_keys: Set = set()
        other_keys: Set = set()
        for location in component:
            for record in self.main_tree.records_at(location):
                if self._config.count_by_type:
                    key = record.type_key
                else:
                    key = (record.type_key, location)
                if record.level is AlertLevel.FAILURE:
                    failure_keys.add(key)
                else:
                    other_keys.add(key)
        return len(failure_keys), len(other_keys)


def _lca(component: Sequence[LocationPath]) -> LocationPath:
    if len(component) == 1:
        return component[0]
    return lowest_common_ancestor(list(component))
