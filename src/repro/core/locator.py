"""The locator (§4.2): incident discovery over the hierarchical alert tree.

Implements the paper's Algorithms 1-3:

* **Algorithm 1** (:meth:`Locator.feed`): every structured alert is added
  to the main tree, and to any open incident whose scope contains it.
* **Algorithm 2** (:meth:`Locator.sweep`): candidate alert groups are
  formed from the live main-tree nodes, restricted by topological
  connectivity ("the algorithm only considers alerts within the area
  connected to the root node"); a group crossing the ``A/B+C/D``
  thresholds spawns an incident tree replicated from the main tree, and
  narrower incidents inside the new scope are superseded.
* **Algorithm 3** (also in :meth:`sweep`): main-tree records expire after
  the 5-minute node timeout; incident trees close after 15 idle minutes.

Counting semantics (§4.2): duplicate alert *types* inside one group count
once ("we consolidate alarms of the same type from different devices into
a single alert"), unless ``config.count_by_type`` is off -- that is the
Figure 9 "type+location" ablation, which explodes false positives.

Flood-scale fast path (``config.fast_path``): §6.2 promises end-to-end
locating in seconds under production floods.  The reference
implementation above is quadratic in alerting locations per sweep (the
pairwise containment scans in :meth:`Locator._component_partition`), so
the opt-in fast path batches :meth:`Locator.feed` into a pending buffer
drained at sweep time, expires main-tree records through a freshness
heap, and replaces the pairwise scans with prefix-indexed union-find
(every containment edge runs through a registered ancestor prefix, so
walking each location's ancestor prefixes finds exactly the same edges).
Candidate groups are memoised on the tree's structure version between
sweeps.  Outputs are identical to the reference path --
``tests/test_equivalence_flood.py`` holds the two implementations
bit-for-bit equal over a battery of seeded failure floods.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..topology.hierarchy import Level, LocationPath, lowest_common_ancestor
from ..topology.network import Topology
from .alert import AlertLevel, StructuredAlert
from .alert_tree import AlertTree, TreeRecord
from .config import SkyNetConfig
from .incident import Incident, IncidentStatus

#: One candidate alert group: (root = the group's LCA, member locations).
CandidateGroup = Tuple[LocationPath, List[LocationPath]]


@dataclasses.dataclass
class SweepResult:
    """What one locator sweep changed."""

    opened: List[Incident]
    closed: List[Incident]
    expired_records: int


class Locator:
    """Streaming incident discovery (main tree + incident trees)."""

    def __init__(self, topology: Topology, config: Optional[SkyNetConfig] = None) -> None:
        self._topo = topology
        self._config = config or SkyNetConfig()
        self._fast = self._config.fast_path
        self.main_tree = AlertTree(fast=self._fast)
        self._open: List[Incident] = []
        self._finished: List[Incident] = []
        # fast path: alerts buffered between sweeps (drained by flush())
        self._pending: List[StructuredAlert] = []
        # fast path: candidate groups memoised on the tree structure version
        self._groups_cache: Optional[List[CandidateGroup]] = None
        self._groups_version = -1

    @property
    def config(self) -> SkyNetConfig:
        return self._config

    @property
    def open_incidents(self) -> List[Incident]:
        return list(self._open)

    @property
    def finished_incidents(self) -> List[Incident]:
        return list(self._finished)

    def all_incidents(self) -> List[Incident]:
        return self._finished + self._open

    # -- checkpoint hooks --------------------------------------------------------------

    def checkpoint_tree(self) -> AlertTree:
        """The main tree as a picklable checkpoint artefact.

        Subclasses whose live tree is not directly picklable (the
        multiprocess sharded locator owns its shard trees in worker
        processes) override this to materialise an equivalent plain
        tree; the base class just hands out the live one, which the
        checkpoint store pickles at save time."""
        return self.main_tree

    def restore_tree(self, tree: AlertTree) -> None:
        """Load a :meth:`checkpoint_tree` artefact back into this locator.

        Resets the derived grouping memos; subclasses extend this to
        rebuild whatever execution state (shard memos, worker-process
        trees) hangs off the main tree."""
        self.main_tree = tree
        self._groups_cache = None
        self._groups_version = -1

    # -- Algorithm 1: alert insertion ------------------------------------------------

    def feed(self, alert: StructuredAlert) -> None:
        """Insert one structured alert into the main and incident trees.

        On the fast path the alert is buffered instead and applied by
        :meth:`flush` (called at sweep time): the open-incident set only
        changes at sweeps, so batching a sweep-interval's worth of alerts
        reaches exactly the same tree and incident state."""
        if self._fast:
            self._pending.append(alert)
            return
        for incident in self._open:
            if incident.covers(alert.location):
                incident.add(alert)
        self.main_tree.insert(alert)

    def feed_many(self, alerts: Iterable[StructuredAlert]) -> None:
        """Feed a batch of structured alerts (order within the batch is
        preserved, matching repeated :meth:`feed` calls)."""
        if self._fast:
            self._pending.extend(alerts)
            return
        for alert in alerts:
            self.feed(alert)

    def flush(self) -> None:
        """Drain buffered alerts into the main tree and open incidents.

        A no-op on the reference path (nothing is ever buffered).  Alerts
        are applied in arrival order; incident-coverage checks collapse to
        one containment test per (incident, location) pair."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        if self._open:
            covered: Dict[Tuple[int, LocationPath], bool] = {}
            for alert in pending:
                for incident in self._open:
                    key = (id(incident), alert.location)
                    hit = covered.get(key)
                    if hit is None:
                        hit = covered[key] = incident.covers(alert.location)
                    if hit:
                        incident.add(alert)
        self.main_tree.insert_batch(pending)

    # -- Algorithms 2 + 3: sweep --------------------------------------------------------

    def sweep(self, now: float) -> SweepResult:
        """Expire stale state, then try to generate new incident trees."""
        if self._fast:
            self.flush()
        expired = self.main_tree.expire(now, self._config.node_timeout_s)
        closed = self._close_idle(now)
        opened = self._generate(now)
        return SweepResult(opened=opened, closed=closed, expired_records=expired)

    def _close_idle(self, now: float) -> List[Incident]:
        closed: List[Incident] = []
        still_open: List[Incident] = []
        for incident in self._open:
            if now > incident.update_time + self._config.incident_timeout_s:
                incident.close(now)
                self._finished.append(incident)
                closed.append(incident)
            else:
                still_open.append(incident)
        self._open = still_open
        return closed

    def _generate(self, now: float) -> List[Incident]:
        opened: List[Incident] = []
        for root, component in self._candidate_groups():
            if self._inside_open_incident(root):
                continue  # an incident tree for this area already exists
            failure_types, other_types = self._count_types(component)
            if not self._config.thresholds.triggered(failure_types, other_types):
                continue
            incident = Incident(
                root=root,
                created_at=now,
                seed_nodes=self.main_tree.snapshot_under(root),
            )
            # Algorithm 2 lines 7-9: swallow narrower incidents in scope
            for old in list(self._open):
                if root.contains(old.root):
                    incident.absorb_incident(old)
                    old.close(now, IncidentStatus.SUPERSEDED)
                    self._open.remove(old)
                    self._finished.append(old)
            self._open.append(incident)
            opened.append(incident)
        return opened

    def _inside_open_incident(self, root: LocationPath) -> bool:
        return any(inc.covers(root) for inc in self._open)

    # -- connectivity grouping ------------------------------------------------------------

    def _candidate_groups(self) -> List[CandidateGroup]:
        """Rooted candidate groups for this sweep, widest first.

        The extension hook for alternative grouping engines (the sharded
        locator in ``repro.runtime`` overrides this with a per-shard
        partition plus an exact cross-shard merge); the base class picks
        the reference pairwise scan or the prefix-indexed fast path."""
        if self._fast:
            return self._indexed_groups()
        components = self._component_partition(self.main_tree.locations())
        # widest groups first so a broad incident supersedes narrow ones
        components.sort(key=lambda comp: len(_lca(comp).segments))
        return [(_lca(comp), comp) for comp in components]

    def _component_partition(
        self, locations: List[LocationPath]
    ) -> List[List[LocationPath]]:
        """Partition alerting locations into topology-connected groups.

        Rules (see DESIGN.md):
        * two alerting *devices* join when within ``connectivity_max_hops``
          of each other in the device graph;
        * two structural locations join on containment;
        * a device joins a structural location when it sits inside it, or
          when the structural location sits inside the device's parent
          (an aggregation device glues the area it serves).  The downward
          glue only applies to devices attached at logic-site level or
          deeper: a backbone router's alert must not claim every alert in
          its region, or concurrent scenes would merge into one blob.
        """
        if not locations:
            return []
        parent: Dict[LocationPath, LocationPath] = {loc: loc for loc in locations}

        def find(x: LocationPath) -> LocationPath:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: LocationPath, b: LocationPath) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        device_locs = [loc for loc in locations if loc.is_device]
        struct_locs = [loc for loc in locations if not loc.is_device]

        by_name = {loc.name: loc for loc in device_locs}
        for group in self._topo.connected_device_components(
            list(by_name), max_hops=self._config.connectivity_max_hops
        ):
            members = [by_name[n] for n in group if n in by_name]
            for other in members[1:]:
                union(members[0], other)

        for i, a in enumerate(struct_locs):
            for b in struct_locs[i + 1 :]:
                if a.contains(b) or b.contains(a):
                    union(a, b)

        for dev in device_locs:
            dev_parent = dev.parent
            glues_down = dev_parent.level.value >= Level.LOGIC_SITE.value
            for struct in struct_locs:
                if struct.contains(dev) or (
                    glues_down and dev_parent.contains(struct)
                ):
                    union(dev, struct)

        groups: Dict[LocationPath, List[LocationPath]] = {}
        for loc in locations:
            groups.setdefault(find(loc), []).append(loc)
        return list(groups.values())

    # -- connectivity grouping, fast path ------------------------------------------------

    def _indexed_groups(self) -> List[CandidateGroup]:
        """Candidate groups via prefix indices, memoised between sweeps.

        The partition only depends on the *set* of alerting locations, so
        the memo stays valid until the tree gains or loses a node
        (``structure_version``).  The grouping rules are those of
        :meth:`_component_partition`; only the edge discovery differs --
        every containment edge there joins a location to one of its
        ancestor prefixes, so an ancestor-prefix walk over a segments
        index finds the same edge set in O(locations x depth) instead of
        O(locations^2) pairwise containment tests."""
        version = self.main_tree.structure_version
        if self._groups_cache is not None and self._groups_version == version:
            return self._groups_cache
        groups = self._compute_indexed_groups()
        self._groups_cache, self._groups_version = groups, version
        return groups

    def _device_components(
        self, device_names: Tuple[str, ...]
    ) -> List[List[str]]:
        """Hop-connectivity device partition, computed via ball midpoints.

        Same partition as :meth:`Topology.connected_device_components`
        over the same name set (the edge relation -- graph distance
        ``<= connectivity_max_hops`` -- is identical), computed without
        materialising the max_hops fan-out per device."""
        max_hops = self._config.connectivity_max_hops
        current = [n for n in device_names if n in self._topo.devices]
        parent = {n: n for n in current}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        if max_hops > 0 and max_hops % 2 == 0:
            # midpoint decomposition: dist(a, b) <= 2k iff some device c
            # (a shortest-path midpoint) has dist(a, c) <= k and
            # dist(c, b) <= k, so devices sharing any radius-k ball are
            # unioned through that ball's anchor.  Cost is sum of
            # radius-k ball sizes -- for the default max_hops=2 that is
            # the plain adjacency degree, not the 2-hop fan-out.
            half = max_hops // 2
            anchor: Dict[str, str] = {}
            for name in current:
                mine = anchor.setdefault(name, name)
                if mine != name:
                    union(name, mine)
                for center in self._topo.hop_neighbourhood(name, half):
                    other = anchor.setdefault(center, name)
                    if other != name:
                        union(name, other)
        else:
            name_set = set(current)
            for name in current:
                for hit in self._topo.hop_neighbourhood(name, max_hops) & name_set:
                    union(name, hit)
        groups: Dict[str, List[str]] = {}
        for name in current:
            groups.setdefault(find(name), []).append(name)
        return list(groups.values())

    def _compute_indexed_groups(self) -> List[CandidateGroup]:
        components = self._indexed_partition(self.main_tree.locations())
        out = [(_lca_prefix(comp), comp) for comp in components]
        # widest groups first (stable, matching the reference sort order)
        out.sort(key=lambda pair: len(pair[0].segments))
        return out

    def _indexed_partition(
        self, locations: List[LocationPath]
    ) -> List[List[LocationPath]]:
        """:meth:`_component_partition` via prefix indices (same output)."""
        if not locations:
            return []
        # integer-indexed union-find: find/union are pure list ops, no
        # LocationPath hashing on the O(n alpha(n)) inner loops
        index = {loc: i for i, loc in enumerate(locations)}
        parent = list(range(len(locations)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        device_locs = [loc for loc in locations if loc.is_device]
        struct_locs = [loc for loc in locations if not loc.is_device]

        # alerting devices within connectivity_max_hops share a group
        by_name = {loc.name: index[loc] for loc in device_locs}
        for group in self._device_components(tuple(by_name)):
            members = [by_name[n] for n in group if n in by_name]
            for other in members[1:]:
                union(members[0], other)

        # structural containment: every contained pair meets at a
        # registered ancestor prefix of the deeper location
        by_segments = {loc.segments: index[loc] for loc in struct_locs}
        for loc in struct_locs:
            segments = loc.segments
            own = index[loc]
            for depth in range(len(segments)):
                ancestor = by_segments.get(segments[:depth])
                if ancestor is not None:
                    union(ancestor, own)

        # device-structure glue: enclosing structural prefixes upward, and
        # (for devices attached at logic-site level or deeper) the
        # structural locations inside the device's parent downward
        glue_parents: Dict[Tuple[str, ...], List[int]] = {}
        min_glue_depth = Level.LOGIC_SITE.value  # parent level as a depth check
        for dev in device_locs:
            dev_segments = dev.segments
            own = index[dev]
            for depth in range(len(dev_segments) + 1):
                struct = by_segments.get(dev_segments[:depth])
                if struct is not None:
                    union(own, struct)
            if len(dev_segments) - 1 >= min_glue_depth:
                glue_parents.setdefault(dev_segments[:-1], []).append(own)
        if glue_parents:
            min_depth = min(len(segs) for segs in glue_parents)
            for struct in struct_locs:
                segments = struct.segments
                own = index[struct]
                for depth in range(min_depth, len(segments) + 1):
                    for dev in glue_parents.get(segments[:depth], ()):
                        union(dev, own)

        grouped: Dict[int, List[LocationPath]] = {}
        for i, loc in enumerate(locations):
            grouped.setdefault(find(i), []).append(loc)
        return list(grouped.values())

    # -- counting ------------------------------------------------------------------

    def _count_types(self, component: Sequence[LocationPath]) -> Tuple[int, int]:
        """Distinct (or per-location, in the ablation) type counts by level."""
        failure_keys: Set = set()
        other_keys: Set = set()
        for location in component:
            for record in self.main_tree.iter_records_at(location):
                if self._config.count_by_type:
                    key = record.type_key
                else:
                    key = (record.type_key, location)
                if record.level is AlertLevel.FAILURE:
                    failure_keys.add(key)
                else:
                    other_keys.add(key)
        return len(failure_keys), len(other_keys)


def _lca(component: Sequence[LocationPath]) -> LocationPath:
    if len(component) == 1:
        return component[0]
    return lowest_common_ancestor(list(component))


def _lca_prefix(component: Sequence[LocationPath]) -> LocationPath:
    """Same result as :func:`_lca` via one common-prefix computation.

    The structural LCA is the longest common prefix of all members'
    structural segments, and the common prefix of a set of tuples equals
    the common prefix of its lexicographic min and max."""
    if len(component) == 1:
        return component[0]
    seglists = [
        loc.segments[:-1] if loc.is_device else loc.segments for loc in component
    ]
    lo, hi = min(seglists), max(seglists)
    common = 0
    for a, b in zip(lo, hi):
        if a != b:
            break
        common += 1
    return LocationPath(lo[:common])
