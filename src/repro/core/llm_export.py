"""Incident context export for LLM-assisted diagnosis: §9, implemented.

"the time and location data extracted from incidents identified by SkyNet
can serve as valuable inputs for LLMs.  In theory, SkyNet truncates the
monitoring results to maintain compliance with the LLM input length
constraints without sacrificing valuable information."

The exporter turns one incident into a bounded-size plain-text context
package: scope and window first, then the alert summary by level
(root-cause alerts in full -- they name the fix), the top voted suspects,
and only then sample raw messages, dropped first when the budget bites.
SkyNet does the flood-to-context truncation; whatever model consumes the
package is out of scope here (§2.3: LLMs remain assistive, not
authoritative).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..topology.network import Topology
from .voting import VotingGraph
from .alert import AlertLevel
from .incident import Incident, LEVEL_ORDER

#: crude budget accounting: ~4 characters per token, the usual heuristic
CHARS_PER_TOKEN = 4


@dataclasses.dataclass
class ContextPackage:
    """A rendered, budget-compliant diagnosis context."""

    text: str
    sections_included: List[str]
    truncated: bool

    @property
    def approx_tokens(self) -> int:
        return len(self.text) // CHARS_PER_TOKEN


class IncidentContextExporter:
    """Builds LLM-ready context from an incident, most valuable data first."""

    def __init__(self, topology: Topology, max_tokens: int = 2000) -> None:
        if max_tokens < 50:
            raise ValueError("budget too small to carry even the header")
        self._topo = topology
        self.max_tokens = max_tokens

    def export(self, incident: Incident) -> ContextPackage:
        """Render the incident, dropping the least valuable sections to fit."""
        sections = [
            ("header", self._header(incident)),
            ("root_causes", self._root_causes(incident)),
            ("suspects", self._suspects(incident)),
            ("alert_summary", self._alert_summary(incident)),
            ("sample_messages", self._samples(incident)),
        ]
        budget = self.max_tokens * CHARS_PER_TOKEN
        included: List[str] = []
        parts: List[str] = []
        used = 0
        truncated = False
        for name, text in sections:
            if not text:
                continue
            if used + len(text) + 1 > budget:
                truncated = True
                continue  # keep trying later (smaller) sections
            parts.append(text)
            included.append(name)
            used += len(text) + 1
        return ContextPackage(
            text="\n".join(parts), sections_included=included, truncated=truncated
        )

    # -- sections, in descending diagnostic value ------------------------------

    def _header(self, incident: Incident) -> str:
        severity = (
            f"severity {incident.severity.capped_score:.1f}"
            if incident.severity
            else "severity unknown"
        )
        return (
            f"NETWORK INCIDENT {incident.incident_id}\n"
            f"location: {incident.location}\n"
            f"window: {incident.start_time:.0f}s - {incident.end_time:.0f}s "
            f"({severity})\n"
            f"task: identify the root cause and propose a mitigation."
        )

    def _root_causes(self, incident: Incident) -> str:
        records = [
            r for r in incident.records() if r.level is AlertLevel.ROOT_CAUSE
        ]
        if not records:
            return "root-cause alerts: none collected (gray failure?)"
        lines = ["root-cause alerts (full):"]
        for record in sorted(records, key=lambda r: r.first_seen):
            lines.append(
                f"- [{record.type_key}] x{record.count} at {record.location} "
                f"(first {record.first_seen:.0f}s)"
            )
        return "\n".join(lines)

    def _suspects(self, incident: Incident) -> str:
        graph = VotingGraph.from_incident(incident, self._topo)
        top = graph.top_devices(5)
        if not top:
            return ""
        lines = ["top voted suspect devices:"]
        lines += [f"- {name} ({votes} votes)" for name, votes in top if votes]
        return "\n".join(lines) if len(lines) > 1 else ""

    def _alert_summary(self, incident: Incident) -> str:
        by_level = incident.alert_counts_by_level()
        lines = ["alert summary by level:"]
        for level in LEVEL_ORDER:
            entries = by_level.get(level)
            if not entries:
                continue
            rendered = ", ".join(f"{key} x{count}" for key, count in entries)
            lines.append(f"- {level.value}: {rendered}")
        return "\n".join(lines)

    def _samples(self, incident: Incident, per_level: int = 3) -> str:
        lines = ["sample raw messages:"]
        for level in LEVEL_ORDER:
            picked = [
                r for r in incident.records() if r.level is level
            ][:per_level]
            for record in picked:
                lines.append(f"- {record.type_key}: seen x{record.count}")
        return "\n".join(lines) if len(lines) > 1 else ""
