"""SkyNet: the end-to-end pipeline facade (Figure 5a).

Wires preprocessor -> locator -> evaluator (+ zoom-in) into a single
streaming object.  Feed it raw alerts in delivery order; it sweeps the
trees on the configured cadence using *alert time* (the core never reads a
wall clock) and produces ranked, severity-scored incident reports.

Typical use::

    skynet = SkyNet(topology, state=state)
    reports = skynet.process(alert_stream.run(3600))
    for report in reports:
        print(report.incident.render())

Flood-scale runs should enable ``config.fast_path`` (see
``core/locator.py``): the locator then batches feeds between sweeps and
uses index-backed grouping/expiry, producing identical incident output
several times faster (benchmarks/bench_perf_flood.py tracks the ratio).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, List, Optional, Protocol

from ..monitors.base import RawAlert
from ..simulation.state import NetworkState
from ..syslogproc import TemplateClassifier
from ..topology.network import Topology
from ..topology.traffic import TrafficModel
from .alert import StructuredAlert
from .config import PRODUCTION_CONFIG, SkyNetConfig
from .evaluator import Evaluator
from .incident import Incident, SeverityBreakdown
from .locator import Locator, SweepResult
from .preprocessor import PreprocessStats, Preprocessor
from .zoom_in import LocationZoomIn


class SourceHealth(Protocol):
    """What the pipeline needs from a per-source health tracker.

    Structural only: ``repro.runtime.health.SourceHealthTracker``
    satisfies it without the core ever importing the runtime package.
    """

    def observe(self, raw: RawAlert) -> None:
        """Note one raw alert reaching the pipeline."""

    def degraded_sources(self, now: float) -> FrozenSet[str]:
        """Tools considered degraded at alert time ``now``."""


class PipelineObserver:
    """No-op observation hooks on the streaming pipeline.

    ``repro.runtime`` subclasses this to thread its metrics registry
    through the preprocess/locate/evaluate stages without the core ever
    importing the runtime package (or a clock -- observers see only alert
    time).  Every hook defaults to a no-op so the batch facade stays
    zero-overhead when nothing is observing.
    """

    def on_raw(self, raw: RawAlert, emitted: List[StructuredAlert]) -> None:
        """One raw alert was preprocessed into ``emitted`` structured alerts."""

    def on_sweep(self, now: float, result: SweepResult) -> None:
        """One locator sweep ran (incidents opened/closed, records expired)."""


@dataclasses.dataclass
class IncidentReport:
    """One incident as presented to operators: scored and localised."""

    incident: Incident

    @property
    def severity(self) -> Optional[SeverityBreakdown]:
        return self.incident.severity

    @property
    def score(self) -> float:
        return self.incident.severity.score if self.incident.severity else 0.0

    @property
    def urgent(self) -> bool:
        return self.incident.severity is not None and self.incident.severity.exceeds(
            PRODUCTION_CONFIG.severity.alert_threshold
        )

    def render(self) -> str:
        return self.incident.render()


class SkyNet:
    """The complete analysis system of Figure 5a."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[SkyNetConfig] = None,
        state: Optional[NetworkState] = None,
        traffic: Optional[TrafficModel] = None,
        classifier: Optional[TemplateClassifier] = None,
        locator: Optional[Locator] = None,
        observer: Optional[PipelineObserver] = None,
    ) -> None:
        self._topo = topology
        self._config = config or PRODUCTION_CONFIG
        self.preprocessor = Preprocessor(topology, self._config, classifier)
        # the runtime service passes a ShardedLocator here; any Locator
        # subclass must keep output byte-identical (tests/runtime pins it)
        self.locator = locator if locator is not None else Locator(topology, self._config)
        self.evaluator = Evaluator(topology, self._config, state=state, traffic=traffic)
        self.zoom = LocationZoomIn(topology)
        self.observer = observer
        #: optional per-source health tracker (duck-typed: ``observe(raw)``
        #: + ``degraded_sources(now)``).  ``repro.runtime`` installs one
        #: when a chaos plan degrades sources; left ``None``, every
        #: degradation branch below is skipped and the pipeline is
        #: byte-identical to a health-unaware run.
        self.health: Optional[SourceHealth] = None
        self._last_sweep = float("-inf")
        self._now = float("-inf")

    @property
    def config(self) -> SkyNetConfig:
        return self._config

    @property
    def now(self) -> float:
        return self._now

    @property
    def preprocess_stats(self) -> PreprocessStats:
        return self.preprocessor.stats

    # -- streaming API ------------------------------------------------------------

    def feed(self, raw: RawAlert) -> List[StructuredAlert]:
        """Feed one raw alert; sweeps are driven by alert delivery time."""
        self._now = max(self._now, raw.delivered_at)
        if self.health is not None:
            self.health.observe(raw)
        self.zoom.observe(raw)
        emitted = self.preprocessor.feed(raw)
        for alert in emitted:
            self.locator.feed(alert)
        if self.observer is not None:
            self.observer.on_raw(raw, emitted)
        if self._now - self._last_sweep >= self._config.sweep_interval_s:
            self.sweep(self._now)
        return emitted

    def sweep(self, now: float) -> None:
        """Run one locator sweep and refresh open-incident assessments."""
        self._last_sweep = now
        self._now = max(self._now, now)
        result = self.locator.sweep(now)
        degraded = (
            self.health.degraded_sources(now)
            if self.health is not None
            else frozenset()
        )
        for incident in result.opened:
            self.zoom.refine(incident, now, degraded=degraded)
            self.evaluator.evaluate(incident, now, degraded=degraded)
        for incident in result.closed:
            self.zoom.refine(incident, now, degraded=degraded)
            self.evaluator.evaluate(incident, now, degraded=degraded)
        # keep open-incident scores fresh for live ranking
        for incident in self.locator.open_incidents:
            self.evaluator.evaluate(incident, now, degraded=degraded)
        if self.observer is not None:
            self.observer.on_sweep(now, result)

    def finish(self, now: Optional[float] = None) -> None:
        """Close out a run: generate from whatever is live, then advance far
        enough to expire the trees and close every incident."""
        now = self._now if now is None else now
        if now > float("-inf"):
            self.sweep(now)
            horizon = now + max(
                self._config.node_timeout_s, self._config.incident_timeout_s
            ) + self._config.sweep_interval_s
            self.sweep(horizon)

    def process(
        self, raw_alerts: Iterable[RawAlert], finish: bool = True
    ) -> List[IncidentReport]:
        """Batch mode: run a whole alert stream and return ranked reports."""
        for raw in raw_alerts:
            self.feed(raw)
        if finish:
            self.finish()
        return self.reports()

    # -- results -----------------------------------------------------------------

    def incidents(self, include_superseded: bool = False) -> List[Incident]:
        from .incident import IncidentStatus

        # fast path: apply any alerts still buffered since the last sweep
        # so readers see the same records the reference path would
        self.locator.flush()
        items = self.locator.all_incidents()
        if not include_superseded:
            items = [i for i in items if i.status is not IncidentStatus.SUPERSEDED]
        return items

    def reports(self) -> List[IncidentReport]:
        """All incidents, most severe first."""
        incidents = self.incidents()
        ranked = self.evaluator.rank(incidents, self._now)
        return [IncidentReport(incident=i) for i in ranked]

    def urgent_reports(self) -> List[IncidentReport]:
        """Incidents above the severity threshold -- what operators see."""
        return [r for r in self.reports() if r.urgent]
