"""The hierarchical alert tree ("main tree") of §4.2 / Figure 5c.

Nodes are location paths; each node holds the alert types currently alive
there.  Alerts expire ``node_timeout_s`` after their last occurrence
(Algorithm 3 line 2), a threshold sized so delayed SNMP counters from
CPU-starved devices still join their incident.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..topology.hierarchy import LocationPath
from .alert import AlertLevel, AlertTypeKey, StructuredAlert


@dataclasses.dataclass
class TreeRecord:
    """One alert type alive at one tree node."""

    type_key: AlertTypeKey
    level: AlertLevel
    location: LocationPath
    first_seen: float
    last_seen: float
    count: int
    device: Optional[str] = None
    worst_metrics: Dict[str, float] = dataclasses.field(default_factory=dict)

    def absorb(self, alert: StructuredAlert) -> None:
        """Fold a new emission of the same (type, location) into the record."""
        self.first_seen = min(self.first_seen, alert.first_seen)
        self.last_seen = max(self.last_seen, alert.last_seen)
        self.count += alert.count
        for key, value in alert.metrics.items():
            self.worst_metrics[key] = max(self.worst_metrics.get(key, value), value)

    def expired(self, now: float, timeout_s: float) -> bool:
        return now > self.last_seen + timeout_s

    def clone(self) -> "TreeRecord":
        return dataclasses.replace(self, worst_metrics=dict(self.worst_metrics))


def record_from(alert: StructuredAlert) -> TreeRecord:
    return TreeRecord(
        type_key=alert.type_key,
        level=alert.level,
        location=alert.location,
        first_seen=alert.first_seen,
        last_seen=alert.last_seen,
        count=alert.count,
        device=alert.device,
        worst_metrics=dict(alert.metrics),
    )


class AlertTree:
    """Location-indexed alert storage with expiry (the "main tree").

    ``nodes`` maps each alerting location to its live records by type;
    structural bookkeeping is implicit in the location paths, so subtree
    queries are containment scans over the (small) set of alerting nodes.

    With ``fast=True`` the tree additionally maintains a lazy min-heap
    over record freshness so :meth:`expire` visits only the records that
    are actually due, instead of walking the whole tree every sweep.
    The removal set is identical either way (the flood equivalence suite
    pins this); the reference walk stays the default.

    Two cheap indices are maintained in both modes for incremental
    consumers: :attr:`structure_version` changes whenever the *set of
    live locations* changes (node created or dropped), and
    :meth:`consume_dirty` drains the locations touched since last asked.
    """

    def __init__(self, fast: bool = False) -> None:
        self._nodes: Dict[LocationPath, Dict[AlertTypeKey, TreeRecord]] = {}
        self._fast = fast
        #: bumped whenever a location node appears or disappears
        self.structure_version = 0
        self._dirty: Set[LocationPath] = set()
        # lazy expiry heap: (last_seen at push time, tiebreak, location, type)
        self._expiry_heap: List[Tuple[float, int, LocationPath, AlertTypeKey]] = []
        self._heap_seq = itertools.count()

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, location: LocationPath) -> bool:
        return location in self._nodes

    def consume_dirty(self) -> Set[LocationPath]:
        """Locations touched since the previous call (then reset)."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def insert(self, alert: StructuredAlert) -> TreeRecord:
        """Algorithm 1's node insertion: create-or-update the record for the
        alert's (location, type)."""
        record = self._insert_one(alert)
        if self._fast:
            self._push_expiry(alert.location, alert.type_key, record.last_seen)
        return record

    def insert_batch(self, alerts: Iterable[StructuredAlert]) -> int:
        """Insert a sweep-interval's worth of alerts in one pass.

        State-equivalent to calling :meth:`insert` per alert in the same
        order, but pushes at most one expiry-heap entry per touched
        (location, type) pair -- under a flood most alerts refresh the
        same few records, so this keeps the heap near the live-record
        count instead of the alert count."""
        touched: Dict[Tuple[LocationPath, AlertTypeKey], TreeRecord] = {}
        count = 0
        for alert in alerts:
            record = self._insert_one(alert)
            touched[(alert.location, alert.type_key)] = record
            count += 1
        if self._fast:
            for (location, key), record in touched.items():
                self._push_expiry(location, key, record.last_seen)
        return count

    def _insert_one(self, alert: StructuredAlert) -> TreeRecord:
        node = self._nodes.get(alert.location)
        if node is None:
            node = self._nodes[alert.location] = {}
            self.structure_version += 1
        self._dirty.add(alert.location)
        record = node.get(alert.type_key)
        if record is None:
            record = record_from(alert)
            node[alert.type_key] = record
        else:
            record.absorb(alert)
        return record

    def _push_expiry(
        self, location: LocationPath, key: AlertTypeKey, last_seen: float
    ) -> None:
        heapq.heappush(
            self._expiry_heap, (last_seen, next(self._heap_seq), location, key)
        )

    def expire(self, now: float, timeout_s: float) -> int:
        """Algorithm 3 lines 1-3: drop stale records and empty nodes."""
        if self._fast:
            return self._expire_fast(now, timeout_s)
        removed = 0
        for location in list(self._nodes):
            node = self._nodes[location]
            for key in list(node):
                if node[key].expired(now, timeout_s):
                    del node[key]
                    removed += 1
            if not node:
                del self._nodes[location]
                self.structure_version += 1
                self._dirty.discard(location)
        return removed

    def _expire_fast(self, now: float, timeout_s: float) -> int:
        """Heap-backed expiry: pop entries whose pushed freshness is past
        the timeout; a record refreshed since its entry was pushed fails
        the live ``expired`` re-check and survives (its refresh pushed a
        newer entry, so it will be revisited when that one is due)."""
        removed = 0
        heap = self._expiry_heap
        while heap and now > heap[0][0] + timeout_s:
            _, _, location, key = heapq.heappop(heap)
            node = self._nodes.get(location)
            if node is None:
                continue
            record = node.get(key)
            if record is None or not record.expired(now, timeout_s):
                continue
            del node[key]
            removed += 1
            if not node:
                del self._nodes[location]
                self.structure_version += 1
                self._dirty.discard(location)
        return removed

    # -- queries ---------------------------------------------------------------

    def locations(self) -> List[LocationPath]:
        return list(self._nodes)

    def records_at(self, location: LocationPath) -> List[TreeRecord]:
        return list(self._nodes.get(location, {}).values())

    def iter_records_at(self, location: LocationPath) -> Iterator[TreeRecord]:
        """Like :meth:`records_at` without the defensive copy (hot path)."""
        node = self._nodes.get(location)
        if node is not None:
            yield from node.values()

    def records_under(self, root: LocationPath) -> Iterator[TreeRecord]:
        """All live records in the subtree of ``root`` (root included)."""
        for location, node in self._nodes.items():
            if root.contains(location):
                yield from node.values()

    def locations_under(self, root: LocationPath) -> List[LocationPath]:
        return [loc for loc in self._nodes if root.contains(loc)]

    def total_records(self) -> int:
        return sum(len(node) for node in self._nodes.values())

    def snapshot_under(
        self, root: LocationPath
    ) -> Dict[LocationPath, List[TreeRecord]]:
        """Deep-copied subtree, used when an incident tree is replicated
        from the main tree (§4.2)."""
        out: Dict[LocationPath, List[TreeRecord]] = {}
        for location, node in self._nodes.items():
            if root.contains(location):
                out[location] = [r.clone() for r in node.values()]
        return out
