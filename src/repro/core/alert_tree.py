"""The hierarchical alert tree ("main tree") of §4.2 / Figure 5c.

Nodes are location paths; each node holds the alert types currently alive
there.  Alerts expire ``node_timeout_s`` after their last occurrence
(Algorithm 3 line 2), a threshold sized so delayed SNMP counters from
CPU-starved devices still join their incident.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..topology.hierarchy import LocationPath
from .alert import AlertLevel, AlertTypeKey, StructuredAlert


@dataclasses.dataclass
class TreeRecord:
    """One alert type alive at one tree node."""

    type_key: AlertTypeKey
    level: AlertLevel
    location: LocationPath
    first_seen: float
    last_seen: float
    count: int
    device: Optional[str] = None
    worst_metrics: Dict[str, float] = dataclasses.field(default_factory=dict)

    def absorb(self, alert: StructuredAlert) -> None:
        """Fold a new emission of the same (type, location) into the record."""
        self.first_seen = min(self.first_seen, alert.first_seen)
        self.last_seen = max(self.last_seen, alert.last_seen)
        self.count += alert.count
        for key, value in alert.metrics.items():
            self.worst_metrics[key] = max(self.worst_metrics.get(key, value), value)

    def expired(self, now: float, timeout_s: float) -> bool:
        return now > self.last_seen + timeout_s

    def clone(self) -> "TreeRecord":
        return dataclasses.replace(self, worst_metrics=dict(self.worst_metrics))


def record_from(alert: StructuredAlert) -> TreeRecord:
    return TreeRecord(
        type_key=alert.type_key,
        level=alert.level,
        location=alert.location,
        first_seen=alert.first_seen,
        last_seen=alert.last_seen,
        count=alert.count,
        device=alert.device,
        worst_metrics=dict(alert.metrics),
    )


class AlertTree:
    """Location-indexed alert storage with expiry (the "main tree").

    ``nodes`` maps each alerting location to its live records by type;
    structural bookkeeping is implicit in the location paths, so subtree
    queries are containment scans over the (small) set of alerting nodes.
    """

    def __init__(self) -> None:
        self._nodes: Dict[LocationPath, Dict[AlertTypeKey, TreeRecord]] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, location: LocationPath) -> bool:
        return location in self._nodes

    def insert(self, alert: StructuredAlert) -> TreeRecord:
        """Algorithm 1's node insertion: create-or-update the record for the
        alert's (location, type)."""
        node = self._nodes.setdefault(alert.location, {})
        record = node.get(alert.type_key)
        if record is None:
            record = record_from(alert)
            node[alert.type_key] = record
        else:
            record.absorb(alert)
        return record

    def expire(self, now: float, timeout_s: float) -> int:
        """Algorithm 3 lines 1-3: drop stale records and empty nodes."""
        removed = 0
        for location in list(self._nodes):
            node = self._nodes[location]
            for key in list(node):
                if node[key].expired(now, timeout_s):
                    del node[key]
                    removed += 1
            if not node:
                del self._nodes[location]
        return removed

    # -- queries ---------------------------------------------------------------

    def locations(self) -> List[LocationPath]:
        return list(self._nodes)

    def records_at(self, location: LocationPath) -> List[TreeRecord]:
        return list(self._nodes.get(location, {}).values())

    def records_under(self, root: LocationPath) -> Iterator[TreeRecord]:
        """All live records in the subtree of ``root`` (root included)."""
        for location, node in self._nodes.items():
            if root.contains(location):
                yield from node.values()

    def locations_under(self, root: LocationPath) -> List[LocationPath]:
        return [loc for loc in self._nodes if root.contains(loc)]

    def total_records(self) -> int:
        return sum(len(node) for node in self._nodes.values())

    def snapshot_under(
        self, root: LocationPath
    ) -> Dict[LocationPath, List[TreeRecord]]:
        """Deep-copied subtree, used when an incident tree is replicated
        from the main tree (§4.2)."""
        out: Dict[LocationPath, List[TreeRecord]] = {}
        for location, node in self._nodes.items():
            if root.contains(location):
                out[location] = [r.clone() for r in node.values()]
        return out
