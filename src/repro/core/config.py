"""SkyNet configuration: every tunable the paper names, in one place.

The incident thresholds use the Figure 9 ``A/B+C/D`` convention:
an incident fires for a candidate alert group when

* distinct **failure**-level alert types ``>= A``, or
* failure types ``>= B`` **and** other types ``>= C``, or
* distinct alert types of **any** level ``>= D``;

a clause with any member set to ``0`` is disabled.  Production runs
``2/1+2/5`` (§4.2, §6.3).
"""

from __future__ import annotations

import dataclasses
from typing import Any


@dataclasses.dataclass(frozen=True)
class IncidentThresholds:
    """The A/B+C/D incident-generation thresholds."""

    failure_only: int = 2  # A
    failure_combo: int = 1  # B
    other_combo: int = 2  # C
    any_level: int = 5  # D

    @classmethod
    def parse(cls, text: str) -> "IncidentThresholds":
        """Parse Figure 9's ``A/B+C/D`` label, e.g. ``"2/1+2/5"``."""
        try:
            a, rest = text.split("/", 1)
            bc, d = rest.rsplit("/", 1)
            b, c = bc.split("+")
            return cls(int(a), int(b), int(c), int(d))
        except ValueError as exc:
            raise ValueError(f"bad threshold spec {text!r}, want 'A/B+C/D'") from exc

    def label(self) -> str:
        return (
            f"{self.failure_only}/{self.failure_combo}"
            f"+{self.other_combo}/{self.any_level}"
        )

    def triggered(self, failure_types: int, other_types: int) -> bool:
        """Apply the three clauses to per-level distinct type counts."""
        total = failure_types + other_types
        if self.failure_only > 0 and failure_types >= self.failure_only:
            return True
        if (
            self.failure_combo > 0
            and self.other_combo > 0
            and failure_types >= self.failure_combo
            and other_types >= self.other_combo
        ):
            return True
        if self.any_level > 0 and total >= self.any_level:
            return True
        return False


@dataclasses.dataclass(frozen=True)
class SeverityParams:
    """Constants of Equations 1-3 (§4.3, Table 3).

    ``Sig`` is the logistic ``sig_scale / (1 + exp(-(U - sig_midpoint) /
    sig_steepness))``: a handful of important customers moves severity a
    lot, large counts saturate ("significantly influences severity when
    only a few key users are affected but stabilizes when many important
    users are impacted").
    """

    sig_scale: float = 600.0
    sig_midpoint: float = 3.0
    sig_steepness: float = 1.0
    #: overall gain on the time factor, calibrated so customer-impacting
    #: failures clear the alerting threshold while short noise blips do not
    time_factor_scale: float = 5.5
    #: loss-rate clamps keeping log_{1/R} finite
    min_rate: float = 1e-4
    max_rate: float = 0.99
    #: minimum ΔT so the log argument stays above 1
    min_duration_s: float = 2.0
    #: reporting cap (Figure 10a caps displayed scores at 100)
    score_cap: float = 100.0
    #: evaluator alerting threshold (§6.4: "we set the severity threshold
    #: score to 10")
    alert_threshold: float = 10.0


@dataclasses.dataclass(frozen=True)
class RuntimeParams:
    """Knobs for the ``repro.runtime`` online service (sharding, journal,
    checkpoints, admission control).

    These govern *how* the pipeline is hosted, never *what* it computes:
    any shard count and any checkpoint cadence must produce byte-identical
    incident reports (pinned by ``tests/runtime/``), and admission-control
    shedding is off unless ``backpressure`` is set.
    """

    #: locator shards the alert tree is partitioned over (by Region
    #: subtree; cross-region alert groups are merged exactly, see
    #: ``repro.runtime.sharding``)
    shards: int = 1
    #: journal segment rotation threshold (records per JSONL segment)
    journal_segment_records: int = 2000
    #: sim-time seconds between snapshot checkpoints (0 disables)
    checkpoint_interval_s: float = 600.0
    #: admission-control backpressure: when the ingest window overflows,
    #: shed load along the §4.1 consolidation ladder (dedup -> single-source
    #: suppression -> cross-source combination), counting every shed
    backpressure: bool = False
    #: rolling window the admission controller measures inflow over
    admission_window_s: float = 10.0
    #: raw alerts per window above which shedding starts (ladder rung 1);
    #: rungs 2 and 3 engage at 2x and 4x the watermark
    admission_watermark: int = 400
    #: opt-in journal segment compaction: at checkpoint time, delete
    #: closed segments fully covered by the oldest retained checkpoint
    #: (bounds disk across long runs; default off keeps journals strictly
    #: append-only so crashed-run evidence is never destroyed)
    journal_compaction: bool = False
    #: locator execution backend: ``"inproc"`` runs every shard on the
    #: service thread; ``"mp"`` runs each shard in a long-lived spawned
    #: worker process (``repro.runtime.workers``) fed alert batches over
    #: pickled pipes, with the cross-shard merge and incident-id
    #: assignment staying in the parent.  Both backends are byte-identical
    #: to the unsharded reference (pinned by
    #: ``tests/runtime/test_shard_invariance.py``).
    backend: str = "inproc"
    #: bounded retry budget for journal/checkpoint I/O failures; attempt
    #: counts above this shed the write (visible in metrics, never silent)
    io_max_attempts: int = 4
    #: first-retry backoff (sim-clock accounting, doubled per attempt and
    #: capped at ``io_max_backoff_s``; jittered from the run seed)
    io_base_backoff_s: float = 0.5
    io_max_backoff_s: float = 30.0


@dataclasses.dataclass(frozen=True)
class SkyNetConfig:
    """Top-level configuration for the whole pipeline."""

    thresholds: IncidentThresholds = IncidentThresholds()
    severity: SeverityParams = SeverityParams()
    runtime: RuntimeParams = RuntimeParams()
    #: main-tree alert timeout (§4.2: 5 minutes, sized by SNMP delays)
    node_timeout_s: float = 300.0
    #: incident-tree idle timeout (§4.2: "the threshold is set to 15 minutes")
    incident_timeout_s: float = 900.0
    #: count duplicate alert types once (False = Figure 9's "type+location")
    count_by_type: bool = True
    #: opt-in flood-scale hot path: batched locator feeds, heap-based
    #: node expiry and index-backed connectivity grouping.  Output is
    #: equivalent to the reference implementation (the
    #: tests/test_equivalence_flood.py differential suite pins this); the
    #: toggle exists so the straight-from-the-paper reference code stays
    #: runnable for differential testing and debugging.
    fast_path: bool = False
    #: device-graph hops within which alerting devices share a root cause
    connectivity_max_hops: int = 2
    #: how often the locator sweeps trees for generation/expiry
    sweep_interval_s: float = 10.0
    # -- preprocessor knobs (§4.1) --
    #: identical alerts arriving within this window merge into one
    merge_window_s: float = 300.0
    #: re-emit an ongoing aggregated alert at most this often
    refresh_interval_s: float = 60.0
    #: occurrences before a sporadic-prone alert type is believed
    persistence_occurrences: int = 2
    #: ...and the occurrences must span at least this long: "sporadic packet
    #: loss is ignored, while persistent packet loss is recorded" (§4.1)
    persistence_min_span_s: float = 60.0
    #: window for persistence counting and cross-source correlation
    correlation_window_s: float = 120.0

    def replace(self, **kwargs: Any) -> "SkyNetConfig":
        return dataclasses.replace(self, **kwargs)


#: The settings SkyNet runs with in production.
PRODUCTION_CONFIG = SkyNetConfig()
