"""The alert-type registry: every (tool, type) SkyNet knows, with its level.

Levels follow §4.2's definitions and Figure 6's concrete assignments:

* **failure** -- behaviour is definitively broken: packet loss, bit flips,
  high transmission latency;
* **abnormal** -- irregular but possibly benign: jitter, latency bumps,
  traffic swings, unreachability of a management plane;
* **root cause** -- a network *entity* failed: device/NIC faults, link
  outages, CRC errors, risky routes, congestion on a named link;
* **info** -- operational chatter, filtered before the locator.

"For tools with limited alert content, such as Ping ... alert types are
manually defined" -- this module is that manual definition.  Syslog types
are produced by ``repro.syslogproc`` templates and looked up here too.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .alert import AlertLevel, AlertTypeKey

_F = AlertLevel.FAILURE
_A = AlertLevel.ABNORMAL
_R = AlertLevel.ROOT_CAUSE
_I = AlertLevel.INFO

#: (tool, type name) -> level.
ALERT_TYPE_LEVELS: Dict[Tuple[str, str], AlertLevel] = {
    # Ping -- manually defined types (§4.1); all loss/latency is failure-level
    ("ping", "end_to_end_icmp_loss"): _F,
    ("ping", "end_to_end_tcp_loss"): _F,
    ("ping", "end_to_end_source_loss"): _F,
    ("ping", "high_latency"): _F,
    # Traceroute: only hop-attributed loss is actionable; an unattributed
    # path alert is the tool's §2.1 blind spot (asymmetric paths, SRTE
    # tunnels) and would otherwise glue unrelated scenes together
    ("traceroute", "hop_loss"): _F,
    ("traceroute", "path_loss"): _I,
    # Out-of-band (Figure 6 lists "Inaccessable" under abnormal alerts)
    ("out_of_band", "inaccessible"): _A,
    ("out_of_band", "high_cpu"): _A,
    ("out_of_band", "high_mem"): _A,
    # Traffic statistics (sFlow/NetFlow)
    ("traffic_statistics", "packet_loss"): _F,
    ("traffic_statistics", "flow_rate_drop"): _A,
    ("traffic_statistics", "flow_rate_surge"): _A,
    # Internet telemetry
    ("internet_telemetry", "internet_unreachable"): _F,
    ("internet_telemetry", "internet_packet_loss"): _F,
    # Syslog (classified via FT-tree templates; Figure 6 assignments)
    ("syslog", "traffic_blackhole"): _A,
    ("syslog", "link_flapping"): _A,
    ("syslog", "port_flapping"): _A,
    ("syslog", "bgp_peer_down"): _A,
    ("syslog", "bgp_link_jitter"): _R,
    ("syslog", "hardware_error"): _R,
    ("syslog", "out_of_memory"): _R,
    ("syslog", "software_error"): _R,
    ("syslog", "port_down"): _R,
    ("syslog", "link_down"): _R,
    ("syslog", "crc_errors"): _R,
    ("syslog", "link_up"): _I,
    ("syslog", "login"): _I,
    ("syslog", "config_session"): _I,
    ("syslog", "ssh_session"): _I,
    ("syslog", "unclassified"): _I,
    # SNMP & GRPC (Figure 6: congestion and link down are root-cause)
    ("snmp", "traffic_congestion"): _R,
    ("snmp", "link_down"): _R,
    ("snmp", "port_down"): _R,
    ("snmp", "rx_errors"): _R,
    ("snmp", "traffic_drop"): _A,
    ("snmp", "traffic_surge"): _A,
    ("snmp", "high_cpu"): _A,
    ("snmp", "high_mem"): _A,
    ("snmp", "snmp_timeout"): _A,
    # In-band telemetry (measured loss at a device = failure behaviour)
    ("in_band_telemetry", "rate_mismatch"): _F,
    # PTP (desynchronised clock is an entity fault)
    ("ptp", "clock_unsync"): _R,
    # Route monitoring ("risky routing paths" are root-cause alerts, §4.2)
    ("route_monitoring", "default_route_loss"): _R,
    ("route_monitoring", "route_leak"): _R,
    ("route_monitoring", "route_hijack"): _R,
    # Modification events
    ("modification_events", "modification_failed"): _R,
    ("modification_events", "modification_event"): _I,
    # Patrol inspection
    ("patrol_inspection", "patrol_anomaly"): _R,
    # §9 future-work sources (registering levels here is the only step a
    # new data source needs -- §5.2)
    ("user_telemetry", "user_unreachable"): _F,
    ("user_telemetry", "user_packet_loss"): _F,
    ("srte_probe", "label_path_broken"): _R,
    ("srte_probe", "label_path_loss"): _R,
}

#: Alert types prone to sporadic one-off occurrences; the preprocessor
#: requires persistence before believing them (§4.1: "sporadic packet loss
#: is ignored, while persistent packet loss is recorded").
SPORADIC_TYPES: frozenset = frozenset(
    {
        ("ping", "end_to_end_icmp_loss"),
        ("ping", "end_to_end_tcp_loss"),
        ("ping", "end_to_end_source_loss"),
        ("ping", "high_latency"),
        ("internet_telemetry", "internet_packet_loss"),
        ("in_band_telemetry", "rate_mismatch"),
        ("traceroute", "hop_loss"),
        ("traffic_statistics", "packet_loss"),
        ("user_telemetry", "user_packet_loss"),
    }
)

#: Abnormal rate-swing types that only matter alongside other evidence
#: (§4.1 cross-source consolidation).
CONDITIONAL_TYPES: frozenset = frozenset(
    {
        ("snmp", "traffic_drop"),
        ("snmp", "traffic_surge"),
        ("traffic_statistics", "flow_rate_drop"),
        ("traffic_statistics", "flow_rate_surge"),
    }
)


def level_of(tool: str, type_name: str) -> AlertLevel:
    """Level of a (tool, type); unknown types default to ABNORMAL so a new
    data source degrades gracefully instead of being dropped (§5.2
    extensibility)."""
    return ALERT_TYPE_LEVELS.get((tool, type_name), AlertLevel.ABNORMAL)


def type_key(tool: str, type_name: str) -> AlertTypeKey:
    return AlertTypeKey(tool=tool, name=type_name)


def registered_types(tool: Optional[str] = None) -> List[Tuple[str, str]]:
    keys = sorted(ALERT_TYPE_LEVELS)
    if tool is None:
        return keys
    return [k for k in keys if k[0] == tool]
