"""The preprocessor (§4.1): raw tool output -> filtered structured alerts.

Responsibilities, in order:

1. **Classify** -- map each raw alert to a known (tool, type); syslog lines
   go through the FT-tree template classifier.
2. **Filter** -- drop INFO-level chatter outright.
3. **Locate** -- normalise location: device alerts use the device's path in
   the hierarchy; endpoint-pair alerts (Ping) are *split into two alerts*,
   one per endpoint's cluster ("An alert related to a link is split into
   two alerts corresponding to the devices it connects").
4. **Consolidate** three ways:
   a. *identical alerts*: same (type, location) within the merge window
      update one aggregate instead of multiplying;
   b. *single data source*: sporadic-prone types need ``k`` occurrences
      before being believed; traffic surges on adjacent devices collapse
      into the originating one;
   c. *diverse data sources*: rate-drop/surge alerts only pass when a
      failure or root-cause alert corroborates them nearby -- alone, "a
      sudden decrease in port traffic is typically expected".

Ongoing aggregates re-emit a refreshed snapshot at most every
``refresh_interval_s`` so long-lived faults keep their locator nodes alive.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from ..monitors.base import RawAlert
from ..syslogproc import TemplateClassifier, bootstrap_corpus
from ..topology.hierarchy import Level, LocationPath
from ..topology.network import INTERNET, Topology
from .alert import AlertLevel, AlertTypeKey, StructuredAlert
from .alert_types import CONDITIONAL_TYPES, SPORADIC_TYPES, level_of
from .config import SkyNetConfig


@dataclasses.dataclass
class PreprocessStats:
    """Bookkeeping for the Figure 8b volume-reduction experiment."""

    raw_in: int = 0
    filtered_info: int = 0
    unlocatable: int = 0
    suppressed_sporadic: int = 0
    suppressed_related: int = 0
    suppressed_unconfirmed: int = 0
    merged: int = 0
    emitted: int = 0

    @property
    def reduction_factor(self) -> float:
        return self.raw_in / self.emitted if self.emitted else float("inf")


@dataclasses.dataclass
class _Aggregate:
    alert: StructuredAlert
    last_emit: float
    pending_since: float  # persistence accounting for sporadic types
    pending_count: int
    unreported: int  # raw occurrences not yet carried by an emission


class Preprocessor:
    """Streaming raw-alert normaliser and reducer."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[SkyNetConfig] = None,
        classifier: Optional[TemplateClassifier] = None,
    ) -> None:
        self._topo = topology
        self._config = config or SkyNetConfig()
        self._classifier = classifier or TemplateClassifier().fit(bootstrap_corpus())
        self._aggregates: Dict[Tuple[AlertTypeKey, LocationPath], _Aggregate] = {}
        #: corroborating evidence per site-scope: last time a failure or
        #: root-cause alert was seen there (cross-source consolidation)
        self._corroboration: Dict[LocationPath, float] = {}
        self.stats = PreprocessStats()

    @property
    def config(self) -> SkyNetConfig:
        return self._config

    @property
    def classifier(self) -> TemplateClassifier:
        return self._classifier

    # -- public API -------------------------------------------------------------

    def feed(self, raw: RawAlert) -> List[StructuredAlert]:
        """Process one raw alert; returns zero or more structured emissions."""
        self.stats.raw_in += 1
        tool = raw.tool
        type_name = (
            self._classifier.classify(raw.message) if tool == "syslog" else raw.raw_type
        )
        level = level_of(tool, type_name)
        if not level.counts_for_incidents:
            self.stats.filtered_info += 1
            return []
        key = AlertTypeKey(tool=tool, name=type_name)
        locations = self._locate(raw)
        if not locations:
            self.stats.unlocatable += 1
            return []
        out: List[StructuredAlert] = []
        for location in locations:
            out.extend(self._consolidate(raw, key, level, location))
        return out

    def process(self, raws: Iterable[RawAlert]) -> List[StructuredAlert]:
        """Batch convenience wrapper around :meth:`feed`."""
        out: List[StructuredAlert] = []
        for raw in raws:
            out.extend(self.feed(raw))
        return out

    # -- location normalisation ------------------------------------------------------

    def _locate(self, raw: RawAlert) -> List[LocationPath]:
        if raw.device is not None and self._topo.has_device(raw.device):
            return [self._topo.device(raw.device).location]
        if raw.location_hint is not None:
            # an explicit hint outranks endpoint splitting (e.g. traceroute
            # path alerts that deliberately blame neither endpoint)
            return [raw.location_hint]
        if raw.endpoints is not None:
            locations: List[LocationPath] = []
            for end in raw.endpoints:
                if end == INTERNET:
                    continue
                server = self._topo.servers.get(end)
                if server is not None:
                    locations.append(server.cluster)
            return locations
        if raw.location_hint is not None:
            return [raw.location_hint]
        return []

    # -- consolidation -------------------------------------------------------------

    def _consolidate(
        self,
        raw: RawAlert,
        key: AlertTypeKey,
        level: AlertLevel,
        location: LocationPath,
    ) -> List[StructuredAlert]:
        now = raw.delivered_at
        cfg = self._config
        self._note_corroboration(level, location, now)

        # cross-source rule: rate swings need nearby independent evidence
        if (key.tool, key.name) in CONDITIONAL_TYPES and not self._corroborated(
            location, now
        ):
            self.stats.suppressed_unconfirmed += 1
            return []

        # single-source rule: adjacent surge alerts fold into the first
        if key.name.endswith("surge") and raw.device is not None:
            if self._adjacent_aggregate_exists(key, raw.device, now):
                self.stats.suppressed_related += 1
                return []

        agg_key = (key, location)
        agg = self._aggregates.get(agg_key)
        if agg is not None and now - agg.alert.last_seen > cfg.merge_window_s:
            del self._aggregates[agg_key]
            agg = None

        if agg is None:
            alert = StructuredAlert(
                type_key=key,
                level=level,
                location=location,
                first_seen=raw.timestamp,
                last_seen=raw.timestamp,
                message=raw.message,
                metrics=dict(raw.metrics),
                device=raw.device,
            )
            sporadic = (key.tool, key.name) in SPORADIC_TYPES
            agg = _Aggregate(
                alert=alert,
                last_emit=float("-inf"),
                pending_since=now,
                pending_count=1,
                unreported=1,
            )
            self._aggregates[agg_key] = agg
            if sporadic and cfg.persistence_occurrences > 1:
                self.stats.suppressed_sporadic += 1
                return []
            return [self._emit(agg, now)]

        # an existing aggregate absorbs this occurrence
        gap = now - agg.alert.last_seen
        agg.alert = agg.alert.merged_with(raw.timestamp, raw.metrics)
        agg.pending_count += 1
        agg.unreported += 1
        self.stats.merged += 1

        sporadic = (key.tool, key.name) in SPORADIC_TYPES
        if sporadic and agg.last_emit == float("-inf"):
            # persistence check: enough occurrences, over a long enough
            # span, without the trail having gone cold in between
            if gap > cfg.correlation_window_s:
                agg.pending_since = now
                agg.pending_count = 1
                self.stats.suppressed_sporadic += 1
                return []
            if (
                agg.pending_count < cfg.persistence_occurrences
                or now - agg.pending_since < cfg.persistence_min_span_s
            ):
                self.stats.suppressed_sporadic += 1
                return []

        if now - agg.last_emit >= cfg.refresh_interval_s:
            return [self._emit(agg, now)]
        return []

    def _emit(self, agg: _Aggregate, now: float) -> StructuredAlert:
        """Snapshot an aggregate, carrying only the not-yet-reported raw
        occurrences so downstream counts stay exact across refreshes."""
        agg.last_emit = now
        snapshot = dataclasses.replace(agg.alert, count=max(1, agg.unreported))
        agg.unreported = 0
        self.stats.emitted += 1
        return snapshot

    # -- cross/related-source helpers -----------------------------------------------

    def _scope_of(self, location: LocationPath) -> LocationPath:
        """Corroboration scope: the enclosing site (or the location itself
        when it is higher than site level)."""
        if location.structural_level.value >= Level.SITE.value:
            return location.truncate(Level.SITE)
        return location if not location.is_device else location.parent

    def _note_corroboration(
        self, level: AlertLevel, location: LocationPath, now: float
    ) -> None:
        if level in (AlertLevel.FAILURE, AlertLevel.ROOT_CAUSE):
            scope = self._scope_of(location)
            self._corroboration[scope] = max(
                self._corroboration.get(scope, float("-inf")), now
            )

    def _corroborated(self, location: LocationPath, now: float) -> bool:
        scope = self._scope_of(location)
        window = self._config.correlation_window_s
        for candidate in list(scope.ancestors(include_self=True)):
            seen = self._corroboration.get(candidate)
            if seen is not None and now - seen <= window:
                return True
        return False

    def _adjacent_aggregate_exists(
        self, key: AlertTypeKey, device: str, now: float
    ) -> bool:
        window = self._config.correlation_window_s
        for neighbour in self._topo.neighbors(device):
            if not self._topo.has_device(neighbour):
                continue
            agg = self._aggregates.get(
                (key, self._topo.device(neighbour).location)
            )
            if agg is not None and now - agg.alert.last_seen <= window:
                return True
        return False
