"""Operator model: how long failure mitigation takes (Figure 10c).

The paper's headline claim -- >80% lower median and maximum mitigation
time -- is about *human* work: before SkyNet, on-call operators sifted a
raw flood, inspected devices one by one, and sometimes chased the wrong
hypothesis (§2.2: devices were isolated first, cables suspected next,
congestion found last).  With SkyNet they read ~10 distilled messages with
the root-cause alerts called out (§2.4).

Production mitigation logs are proprietary, so this is a parametrised
cognitive model whose inputs are exactly what each workflow presents:

* **without SkyNet** -- the raw alert count (triage scales with it, capped
  by attention), the candidate devices mentioned (each inspected in turn
  until the root cause is hit), plus a wrong-hypothesis penalty when the
  flood hides the root-cause alert;
* **with SkyNet** -- the incident report's message count, whether a
  root-cause alert is present, and how precise the (zoomed-in) location is.

Defaults are calibrated so median/max land near the paper's 736s -> 147s /
14028s -> 1920s (§6.4); the *shape* (>80% drop at both ends) is robust to
the constants.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..core.alert import AlertLevel
from ..core.incident import Incident


@dataclasses.dataclass(frozen=True)
class OperatorParams:
    """Tunable constants of the cognitive model."""

    raw_read_s: float = 0.35  # scanning one raw alert line
    raw_attention_cap: int = 1500  # alerts an operator will actually scan
    message_read_s: float = 4.0  # one distilled incident message
    device_inspect_s: float = 110.0  # log in, run show commands, read logs
    max_inspected_devices: int = 40
    rootcause_confirm_s: float = 45.0  # verify an explicitly named root cause
    fix_s: float = 60.0  # execute the mitigation itself
    wrong_hypothesis_s: float = 900.0  # lint: allow REP003 (§2.2 mis-diagnosis round trip, not the incident timeout)
    flood_threshold: int = 2000  # raw alerts beyond this guarantee confusion


class OperatorModel:
    """Deterministic mitigation-time estimates for both workflows."""

    def __init__(self, params: Optional[OperatorParams] = None) -> None:
        self.params = params or OperatorParams()

    # -- without SkyNet ------------------------------------------------------------

    def mitigation_time_raw(
        self,
        n_raw_alerts: int,
        candidate_devices: int,
        rootcause_alert_buried: bool = True,
    ) -> float:
        """Manual workflow over the raw flood.

        ``candidate_devices`` is how many devices the alerts implicate; the
        operator inspects them sequentially and on average finds the culprit
        halfway through.  When the flood buries the root-cause alert, one
        wrong-hypothesis round trip is paid too (the §2.2 story).
        """
        p = self.params
        triage = p.raw_read_s * min(max(n_raw_alerts, 0), p.raw_attention_cap)
        inspected = min(max(candidate_devices, 1), p.max_inspected_devices)
        diagnose = p.device_inspect_s * max(1.0, inspected / 2.0)
        penalty = 0.0
        if rootcause_alert_buried and n_raw_alerts > p.flood_threshold:
            penalty = p.wrong_hypothesis_s
        return triage + diagnose + penalty + p.fix_s

    # -- with SkyNet ------------------------------------------------------------------

    def mitigation_time_skynet(self, incident: Incident) -> float:
        """Workflow over one distilled incident report."""
        p = self.params
        messages = max(1, incident.distinct_type_count())
        triage = p.message_read_s * messages
        has_root_cause = any(
            r.level is AlertLevel.ROOT_CAUSE for r in incident.records()
        )
        if has_root_cause:
            diagnose = p.rootcause_confirm_s
        else:
            # no named root cause: inspect the (zoomed-in) scope's devices
            scope_devices = max(1, len(incident.devices_involved()))
            diagnose = p.device_inspect_s * min(
                scope_devices, p.max_inspected_devices
            ) / 2.0
        return triage + diagnose + p.fix_s

    # -- concurrent incidents -------------------------------------------------------------

    def queue_delay(
        self, incidents: Sequence[Incident], target: Incident,
        ranked: bool = True,
    ) -> float:
        """Time spent on other incidents before reaching ``target``.

        With severity ranking the operator works most-severe-first; without
        it, most-alerts-first -- the paper's "scene ranking" failure mode
        where the bigger-but-milder incident got handled first (§4.3).
        """
        if ranked:
            order = sorted(
                incidents,
                key=lambda i: i.severity.score if i.severity else 0.0,
                reverse=True,
            )
        else:
            order = sorted(
                incidents, key=lambda i: i.total_alert_count(), reverse=True
            )
        delay = 0.0
        for incident in order:
            if incident is target:
                return delay
            delay += self.mitigation_time_skynet(incident)
        return delay
