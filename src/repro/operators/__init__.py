"""Operator mitigation-time model (the Figure 10c substitute, DESIGN.md §2)."""

from .mitigation import OperatorModel, OperatorParams

__all__ = ["OperatorModel", "OperatorParams"]
