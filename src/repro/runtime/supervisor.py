"""Shard supervision: detect a crashed locator shard, heal it exactly.

:class:`~repro.runtime.sharding.ShardedLocator` partitions the main tree
over Region-subtree shards; a production deployment runs those shards as
separate workers, and workers die.  This module gives the runtime the
recovery half of that story at the granularity the service already
checkpoints at:

* :class:`SupervisedAlertTree` keeps, per shard, a pickled **base
  snapshot** (refreshed whenever the service writes a checkpoint, so the
  two stay aligned) plus an **op log** of every mutation since -- the
  same write-ahead discipline the alert journal applies to the whole
  service, scoped to one shard.  Emitted structured alerts are never
  mutated after emission (the preprocessor snapshots aggregates on
  emit), so replaying the logged inserts and expiries over the base
  snapshot reconstructs the shard tree *exactly*.
* :class:`SupervisedLocator` swaps that tree in and exposes
  ``crash_shard`` / ``heal_crashed``: a crash wipes one shard's live
  tree (sibling shards, open incidents and the root tree are untouched);
  healing restores the base snapshot and replays the log.  The service
  triggers crashes from the :class:`~repro.runtime.faults.ChaosPlan` and
  runs the supervision check before the pipeline next touches the tree,
  so a healed shard is indistinguishable from one that never died --
  ``tests/runtime/test_chaos.py`` pins the incident stream (ids
  included) against an uncrashed run.

Supervision is only installed when the plan actually schedules shard
crashes; otherwise the service uses the plain :class:`ShardedLocator`
and this module stays out of the way entirely.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Set, Tuple, Union

from ..core.alert import StructuredAlert
from ..core.alert_tree import AlertTree, TreeRecord
from ..core.config import SkyNetConfig
from ..topology.network import Topology
from .sharding import ROOT_SHARD, ShardedAlertTree, ShardedLocator, ShardRouter

#: One logged mutation: ("insert", alert) or ("expire", now, timeout_s).
_Op = Union[Tuple[str, StructuredAlert], Tuple[str, float, float]]


class ShardSupervision:
    """The crash/heal surface the service drives, backend-agnostic.

    Implemented by :class:`SupervisedLocator` (in-process shards: a
    crash wipes one shard's live tree) and by
    :class:`~repro.runtime.workers.MPSupervisedLocator` (multiprocess
    shards: a crash SIGKILLs the real worker process).  Either way the
    contract is the same: ``crash_shard`` loses exactly one shard's live
    state, ``heal_crashed`` rebuilds it from base snapshot + op-log
    replay, and ``snapshot_shards`` refreshes the recovery bases at
    checkpoint time.  The counters let the service meter supervision
    without knowing which backend it is talking to.
    """

    def crash_shard(self, index: int) -> None:
        raise NotImplementedError

    def heal_crashed(self) -> int:
        raise NotImplementedError

    def snapshot_shards(self) -> None:
        raise NotImplementedError

    def invalidate_snapshot(self, index: int) -> None:
        """Destroy shard ``index``'s recovery source (base *and* op log).

        Models partial checkpoint loss in a correlated crash: the shard
        can no longer be healed locally.  The op log must go with the
        base -- a later :meth:`install_base` carries current state, and
        replaying the old log over it would double-apply mutations.
        """
        raise NotImplementedError

    def install_base(self, index: int, blob: bytes) -> None:
        """Install ``blob`` (a pickled shard tree at *current* state) as
        shard ``index``'s recovery base, clearing its op log and lost
        mark.  Used by the service after rebuilding a lost shard from
        the durable checkpoint + journal tail."""
        raise NotImplementedError

    def lost_snapshots(self) -> Set[int]:
        """Shards whose recovery source is currently invalidated."""
        raise NotImplementedError

    @property
    def crashes(self) -> int:
        raise NotImplementedError

    @property
    def restores(self) -> int:
        raise NotImplementedError

    @property
    def replayed_ops(self) -> int:
        raise NotImplementedError

    @property
    def degraded_heals(self) -> int:
        """Heals that fell back to an empty tree (data loss admitted)."""
        raise NotImplementedError


class SupervisedAlertTree(ShardedAlertTree):
    """A :class:`ShardedAlertTree` whose shards can crash and be healed.

    Mutations route through the parent unchanged; per regular shard they
    are additionally appended to that shard's op log.  The root tree is
    deliberately outside the crash model -- it is the cross-shard merge
    anchor, not a worker.
    """

    def __init__(self, router: ShardRouter, fast: bool = False) -> None:
        super().__init__(router, fast)
        self._fast = fast
        self._base: Dict[int, Optional[bytes]] = {
            i: None for i in range(router.shards)
        }
        self._oplog: Dict[int, List[_Op]] = {
            i: [] for i in range(router.shards)
        }
        self._crashed: Set[int] = set()
        self._lost: Set[int] = set()
        self.crashes = 0
        self.restores = 0
        self.replayed_ops = 0
        self.degraded_heals = 0

    # -- logged mutations --------------------------------------------------

    def insert(self, alert: StructuredAlert) -> TreeRecord:
        index = self.router.shard_of(alert.location)
        if index != ROOT_SHARD:
            self._oplog[index].append(("insert", alert))
        return super().insert(alert)

    def insert_batch(self, alerts: List[StructuredAlert]) -> int:
        for alert in alerts:
            index = self.router.shard_of(alert.location)
            if index != ROOT_SHARD:
                self._oplog[index].append(("insert", alert))
        return super().insert_batch(alerts)

    def expire(self, now: float, timeout_s: float) -> int:
        for log in self._oplog.values():
            log.append(("expire", now, timeout_s))
        return super().expire(now, timeout_s)

    # -- supervision -------------------------------------------------------

    def snapshot_shards(self) -> None:
        """Refresh every shard's base snapshot and truncate its op log.

        The service calls this at checkpoint time, so a shard's recovery
        source is never older than the service's own recovery source and
        the op log stays bounded by one checkpoint interval of alerts.
        """
        for index, tree in enumerate(self.shard_trees):
            self._base[index] = pickle.dumps(
                tree, protocol=pickle.HIGHEST_PROTOCOL
            )
            self._oplog[index] = []
        self._lost.clear()

    def invalidate_snapshot(self, index: int) -> None:
        """Partial checkpoint loss: shard ``index`` loses base *and* log."""
        if not 0 <= index < len(self.shard_trees):
            raise IndexError(f"no shard {index} (have {len(self.shard_trees)})")
        self._base[index] = None
        self._oplog[index] = []
        self._lost.add(index)

    def install_base(self, index: int, blob: bytes) -> None:
        """Adopt a rebuilt current-state tree as the recovery base."""
        if not 0 <= index < len(self.shard_trees):
            raise IndexError(f"no shard {index} (have {len(self.shard_trees)})")
        self._base[index] = blob
        self._oplog[index] = []
        self._lost.discard(index)

    def lost_snapshots(self) -> Set[int]:
        return set(self._lost)

    def crash(self, index: int) -> None:
        """Lose shard ``index``'s live tree, as a dead worker would."""
        if not 0 <= index < len(self.shard_trees):
            raise IndexError(f"no shard {index} (have {len(self.shard_trees)})")
        self.shard_trees[index] = AlertTree(fast=self._fast)
        self._crashed.add(index)
        self.crashes += 1

    @property
    def crashed_shards(self) -> Set[int]:
        return set(self._crashed)

    def heal_all(self) -> int:
        """Restore every crashed shard from base snapshot + op-log replay.

        Returns the number of shards healed.  Sibling shards are never
        touched: healing rebuilds one shard's :class:`AlertTree` in
        isolation and swaps it into place.
        """
        healed = 0
        for index in sorted(self._crashed):
            base = self._base[index]
            tree = (
                pickle.loads(base)
                if base is not None
                else AlertTree(fast=self._fast)
            )
            if index in self._lost:
                # recovery source destroyed and no rebuilt base was
                # installed: the heal is empty-tree, data loss admitted
                self.degraded_heals += 1
                self._lost.discard(index)
            for op in self._oplog[index]:
                if op[0] == "insert":
                    tree.insert(op[1])  # type: ignore[arg-type]
                else:
                    tree.expire(op[1], op[2])  # type: ignore[arg-type, misc]
            self.replayed_ops += len(self._oplog[index])
            self.shard_trees[index] = tree
            self.restores += 1
            healed += 1
        self._crashed.clear()
        return healed


class SupervisedLocator(ShardedLocator, ShardSupervision):
    """A :class:`ShardedLocator` running under shard supervision.

    Identical locating behaviour (the supervised tree only *records*
    mutations), plus the crash/heal surface the service drives from its
    chaos plan.
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[SkyNetConfig] = None,
        shards: Optional[int] = None,
    ) -> None:
        super().__init__(topology, config, shards)
        self.main_tree = SupervisedAlertTree(  # type: ignore[assignment]
            self.router, fast=self._fast
        )
        self._partitions = {}

    @property
    def supervised_tree(self) -> SupervisedAlertTree:
        tree: SupervisedAlertTree = self.main_tree  # type: ignore[assignment]
        return tree

    def crash_shard(self, index: int) -> None:
        self.supervised_tree.crash(index)

    def heal_crashed(self) -> int:
        return self.supervised_tree.heal_all()

    def snapshot_shards(self) -> None:
        self.supervised_tree.snapshot_shards()

    def invalidate_snapshot(self, index: int) -> None:
        self.supervised_tree.invalidate_snapshot(index)

    def install_base(self, index: int, blob: bytes) -> None:
        self.supervised_tree.install_base(index, blob)

    def lost_snapshots(self) -> Set[int]:
        return self.supervised_tree.lost_snapshots()

    @property
    def crashes(self) -> int:
        return self.supervised_tree.crashes

    @property
    def restores(self) -> int:
        return self.supervised_tree.restores

    @property
    def replayed_ops(self) -> int:
        return self.supervised_tree.replayed_ops

    @property
    def degraded_heals(self) -> int:
        return self.supervised_tree.degraded_heals

    def restore_tree(self, tree: AlertTree) -> None:
        """Load a checkpointed tree, upgrading it to a supervised one.

        A checkpoint written by a supervised run carries the
        :class:`SupervisedAlertTree` (op logs and bases included) and is
        adopted as-is.  A checkpoint written by another backend (the
        multiprocess locator materialises a plain
        :class:`ShardedAlertTree`) is upgraded: the shard trees are
        adopted and immediately re-snapshotted as the recovery bases,
        which is exact because the checkpoint state *is* the
        at-sequence state."""
        if isinstance(tree, SupervisedAlertTree) or not isinstance(
            tree, ShardedAlertTree
        ):
            super().restore_tree(tree)
            return
        upgraded = SupervisedAlertTree(self.router, fast=self._fast)
        upgraded.shard_trees = tree.shard_trees
        upgraded.root_tree = tree.root_tree
        upgraded._order = tree._order
        upgraded.snapshot_shards()
        super().restore_tree(upgraded)
