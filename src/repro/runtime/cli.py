"""``python -m repro.runtime``: run the online service over a seeded flood.

Simulates a severe-failure scenario on a chosen fabric, streams the raw
alert firehose through the sharded, journaled, admission-controlled
runtime, and prints the ranked incident reports plus the metrics
registry (text or JSON).  With ``--dir`` the run journals and
checkpoints to disk; ``--resume`` rebuilds from that directory first
(replaying the journal tail) and then continues.

Everything is deterministic for a given seed: the simulation drives all
clocks and randomness (REP004), so two invocations with the same flags
print identical bytes.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import random
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.config import PRODUCTION_CONFIG, RuntimeParams, SkyNetConfig
from ..monitors import build_monitors
from ..monitors.base import RawAlert
from ..monitors.stream import AlertStream
from ..simulation.conditions import Condition, ConditionKind
from ..simulation.state import NetworkState
from ..topology.builder import TopologySpec, build_topology
from ..topology.network import Topology
from .faults import (
    ChaosPlan,
    CorrelatedCrash,
    IOFault,
    ShardCrash,
    SourceBrownout,
    SourceClockSkew,
    SourceOutage,
    chaos_or_none,
)
from .service import RuntimeService

SCENARIOS = ("flood", "regional", "quiet")
TOPOLOGIES = ("default", "tiny", "benchmark")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Run the SkyNet pipeline as a sharded, resumable "
        "online service over a simulated alert flood.",
    )
    parser.add_argument(
        "--scenario", choices=SCENARIOS, default="flood",
        help="failure scenario driving the flood (default: %(default)s)",
    )
    parser.add_argument(
        "--duration", type=float, default=900.0,
        help="simulated seconds to stream (default: %(default)s)",
    )
    parser.add_argument(
        "--alerts", type=int, default=None,
        help="stop after this many raw alerts (default: unlimited)",
    )
    add_service_arguments(parser)
    add_chaos_arguments(parser)
    parser.add_argument(
        "--metrics", choices=("text", "json", "none"), default="text",
        help="metrics dump format (default: %(default)s)",
    )
    parser.add_argument(
        "--top", type=int, default=5,
        help="incident reports to print (default: %(default)s)",
    )
    return parser


def add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every front-end that builds a ``RuntimeService``.

    ``repro.gateway``'s CLI reuses this group (and ``_build_config``),
    so the serving layer can never drift from the operator CLI's
    runtime knobs -- REP015 audits this module as the single source.
    """
    parser.add_argument(
        "--topology", choices=TOPOLOGIES, default="default",
        help="fabric to simulate (default: %(default)s)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="locator shards to partition the alert tree over",
    )
    parser.add_argument(
        "--backend", choices=("inproc", "mp"), default=None,
        help="locator execution backend: in-process shards or one "
        "worker process per shard (default: config value)",
    )
    parser.add_argument(
        "--fast-path", action="store_true",
        help="enable the flood-scale hot path (config.fast_path)",
    )
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--dir", type=pathlib.Path, default=None,
        help="journal + checkpoint directory (enables persistence)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from --dir (checkpoint + journal tail) before ingesting",
    )
    parser.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="SIM_S",
        help="sim-time seconds between checkpoints (default: config value)",
    )
    parser.add_argument(
        "--backpressure", action="store_true",
        help="enable admission-control load shedding (§4.1 ladder)",
    )
    parser.add_argument(
        "--watermark", type=int, default=None,
        help="admission window watermark (raw alerts per window)",
    )
    parser.add_argument(
        "--compact-journal", action="store_true",
        help="compact journal segments fully covered by the oldest "
        "retained checkpoint (bounds disk over long runs)",
    )
    parser.add_argument(
        "--journal-segment-records", type=int, default=None, metavar="N",
        help="records per journal segment before rotation (default: "
        "config value)",
    )
    parser.add_argument(
        "--admission-window", type=float, default=None, metavar="SIM_S",
        help="admission-control window length in sim seconds (default: "
        "config value)",
    )
    parser.add_argument(
        "--io-max-attempts", type=int, default=None, metavar="N",
        help="attempts per journal/checkpoint IO op before degrading "
        "(default: config value)",
    )
    parser.add_argument(
        "--io-base-backoff", type=float, default=None, metavar="SIM_S",
        help="first-retry IO backoff in sim seconds (default: config value)",
    )
    parser.add_argument(
        "--io-max-backoff", type=float, default=None, metavar="SIM_S",
        help="IO backoff ceiling in sim seconds (default: config value)",
    )


def add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``--chaos-*`` flag group (shared with the gateway CLI)."""
    chaos = parser.add_argument_group(
        "chaos", "deterministic fault injection (repeat flags to stack faults)"
    )
    chaos.add_argument(
        "--chaos-outage", action="append", default=[], metavar="TOOL:START:END",
        help="silence one monitoring tool for a sim-time window",
    )
    chaos.add_argument(
        "--chaos-brownout", action="append", default=[],
        metavar="TOOL:START:END:DELAY[:JITTER[:DUP[:DROP]]]",
        help="degrade one tool: delivery delay (+jitter), duplicate/drop rates",
    )
    chaos.add_argument(
        "--chaos-shard-crash", action="append", default=[], metavar="AT[:SHARD]",
        help="crash one locator shard at a sim instant (supervisor heals it)",
    )
    chaos.add_argument(
        "--chaos-correlated-crash", action="append", default=[],
        metavar="AT:SHARDS[:LOSE]",
        help="crash several shards together at a sim instant, e.g. "
        "'300:0,2:2' kills shards 0 and 2 and destroys shard 2's "
        "recovery snapshot (rebuilt from checkpoint + journal)",
    )
    chaos.add_argument(
        "--chaos-io", action="append", default=[],
        metavar="OP:START:END[:FAILS|perm]",
        help="fail journal_append/journal_sync/checkpoint_save/"
        "journal_read in a window",
    )
    chaos.add_argument(
        "--chaos-skew", action="append", default=[], metavar="TOOL:SKEW_S",
        help="run one tool's clock a constant offset from true time "
        "(shifts its observation and delivery stamps together)",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed offsetting the chaos RNGs (default: %(default)s)",
    )


def _build_config(args: argparse.Namespace) -> SkyNetConfig:
    base = PRODUCTION_CONFIG.runtime

    def over(value, fallback):
        return value if value is not None else fallback

    runtime = RuntimeParams(
        shards=max(1, args.shards),
        backend=over(args.backend, base.backend),
        journal_segment_records=over(
            args.journal_segment_records, base.journal_segment_records
        ),
        checkpoint_interval_s=over(
            args.checkpoint_every, base.checkpoint_interval_s
        ),
        backpressure=args.backpressure,
        admission_window_s=over(args.admission_window, base.admission_window_s),
        admission_watermark=over(args.watermark, base.admission_watermark),
        journal_compaction=args.compact_journal,
        io_max_attempts=over(args.io_max_attempts, base.io_max_attempts),
        io_base_backoff_s=over(args.io_base_backoff, base.io_base_backoff_s),
        io_max_backoff_s=over(args.io_max_backoff, base.io_max_backoff_s),
    )
    return dataclasses.replace(
        PRODUCTION_CONFIG, fast_path=args.fast_path, runtime=runtime
    )


def _split_fields(spec: str, flag: str, minimum: int, maximum: int) -> List[str]:
    fields = spec.split(":")
    if not minimum <= len(fields) <= maximum:
        raise SystemExit(
            f"error: bad {flag} value {spec!r} "
            f"(want {minimum}-{maximum} ':'-separated fields)"
        )
    return fields


def _build_chaos(args: argparse.Namespace) -> Optional[ChaosPlan]:
    """Assemble the chaos plan from the repeatable CLI flags."""
    outages = tuple(
        SourceOutage(tool=f[0], start=float(f[1]), end=float(f[2]))
        for f in (
            _split_fields(s, "--chaos-outage", 3, 3) for s in args.chaos_outage
        )
    )
    brownouts = []
    for spec in args.chaos_brownout:
        f = _split_fields(spec, "--chaos-brownout", 4, 7)
        brownouts.append(
            SourceBrownout(
                tool=f[0],
                start=float(f[1]),
                end=float(f[2]),
                delay_s=float(f[3]),
                delay_jitter_s=float(f[4]) if len(f) > 4 else 0.0,
                duplicate_rate=float(f[5]) if len(f) > 5 else 0.0,
                drop_rate=float(f[6]) if len(f) > 6 else 0.0,
            )
        )
    crashes = []
    for spec in args.chaos_shard_crash:
        f = _split_fields(spec, "--chaos-shard-crash", 1, 2)
        crashes.append(
            ShardCrash(at=float(f[0]), shard=int(f[1]) if len(f) > 1 else 0)
        )
    correlated = []
    for spec in args.chaos_correlated_crash:
        f = _split_fields(spec, "--chaos-correlated-crash", 2, 3)
        try:
            correlated.append(
                CorrelatedCrash(
                    at=float(f[0]),
                    shards=tuple(int(s) for s in f[1].split(",") if s),
                    lose_snapshots=(
                        tuple(int(s) for s in f[2].split(",") if s)
                        if len(f) > 2
                        else ()
                    ),
                )
            )
        except ValueError as exc:
            raise SystemExit(
                f"error: bad --chaos-correlated-crash value {spec!r}: {exc}"
            )
    io_faults = []
    for spec in args.chaos_io:
        f = _split_fields(spec, "--chaos-io", 3, 4)
        permanent = len(f) > 3 and f[3] == "perm"
        io_faults.append(
            IOFault(
                op=f[0],
                start=float(f[1]),
                end=float(f[2]),
                fail_count=(
                    int(f[3]) if len(f) > 3 and not permanent else 1
                ),
                permanent=permanent,
            )
        )
    skews = tuple(
        SourceClockSkew(tool=f[0], skew_s=float(f[1]))
        for f in (
            _split_fields(s, "--chaos-skew", 2, 2) for s in args.chaos_skew
        )
    )
    return chaos_or_none(
        ChaosPlan(
            outages=outages,
            brownouts=tuple(brownouts),
            shard_crashes=tuple(crashes),
            correlated_crashes=tuple(correlated),
            io_faults=tuple(io_faults),
            clock_skews=skews,
            seed=args.chaos_seed,
        )
    )


def _topology(name: str) -> Topology:
    if name == "tiny":
        return build_topology(TopologySpec.tiny())
    if name == "benchmark":
        return build_topology(TopologySpec.benchmark())
    return build_topology(TopologySpec())


def _conditions(
    topo: Topology, scenario: str, seed: int, duration: float
) -> List[Condition]:
    rng = random.Random(seed)
    if scenario == "quiet":
        return []
    devices = sorted(topo.devices)
    if scenario == "regional":
        region = sorted(
            {topo.device(d).location.segments[0] for d in devices}
        )[0]
        devices = [
            d for d in devices if topo.device(d).location.segments[0] == region
        ]
    rng.shuffle(devices)
    n_down = max(3, len(devices) // 5)
    out: List[Condition] = []
    for name in devices[:n_down]:
        start = 60.0 + rng.uniform(0.0, min(240.0, duration / 2))
        out.append(
            Condition(
                kind=ConditionKind.DEVICE_DOWN,
                target=name,
                start=start,
                end=start + duration,
            )
        )
    return out


def _stream(
    topo: Topology,
    scenario: str,
    seed: int,
    duration: float,
    limit: Optional[int],
) -> Tuple[NetworkState, Iterator[RawAlert]]:
    state = NetworkState(topo)
    for condition in _conditions(topo, scenario, seed, duration):
        state.add_condition(condition)
    stream = AlertStream(state, build_monitors(state, seed=seed))
    return state, stream.run(duration, limit=limit)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.resume and args.dir is None:
        build_parser().error("--resume requires --dir")
    config = _build_config(args)
    chaos = _build_chaos(args)
    topo = _topology(args.topology)
    state, raws = _stream(
        topo, args.scenario, args.seed, args.duration, args.alerts
    )

    if args.resume:
        service = RuntimeService.resume(
            topo, args.dir, config=config, state=state,
            chaos=chaos, run_seed=args.seed,
        )
        if service.recovery is not None:
            print(service.recovery.render())
    else:
        service = RuntimeService(
            topo, config=config, state=state, directory=args.dir,
            chaos=chaos, run_seed=args.seed,
        )

    if chaos is not None and chaos.perturbs_stream():
        perturbed = chaos.perturb(list(raws), run_seed=args.seed)
        for name, value in perturbed.counts().items():
            service.metrics.counter(
                f"runtime_chaos_stream_{name}_total",
                f"raw alerts {name} by the chaos plan's stream faults",
            ).inc(value)
        counts = ", ".join(
            f"{k}={v}" for k, v in perturbed.counts().items()
        )
        print(f"# chaos stream faults: {counts}")
        raws = iter(perturbed.raws)

    service.run(raws)
    service.finish()

    reports = service.reports()
    print(
        f"# {service.shards} shard(s), {len(reports)} incident(s), "
        f"{service.admission.offered} raw alert(s) offered, "
        f"{service.admission.admitted} admitted"
    )
    sheds = service.shed_counts()
    if any(sheds.values()):
        shed_text = ", ".join(f"{k}={v}" for k, v in sheds.items())
        print(f"# load shed per ladder rung: {shed_text}")
    degraded = service.degraded_sources()
    if degraded:
        print(f"# degraded sources at shutdown: {', '.join(sorted(degraded))}")
    for report in reports[: max(0, args.top)]:
        print(report.render())
        print()
    if args.metrics == "text":
        print(service.metrics.render_text())
    elif args.metrics == "json":
        print(service.metrics.render_json())
    return 0


def run_from_raws(
    service: RuntimeService, raws: List[RawAlert]
) -> RuntimeService:
    """Test hook: drive a prepared service over a prepared stream."""
    service.run(raws)
    service.finish()
    return service
