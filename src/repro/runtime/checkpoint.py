"""Snapshot checkpoints for the streaming pipeline.

A checkpoint is a pickle of the pipeline's *mutable* state only: the
preprocessor's aggregation windows, the locator's trees and incidents,
the zoom-in ping window, the admission controller's window, the metrics
registry and the clock fields.  Topology, configuration and the
evaluator's memo caches are deliberately excluded -- they are either
reconstructed from code or rebuilt lazily, and excluding them keeps
checkpoints small and forward-portable.

This module intentionally reaches into the pipeline components' private
attributes (``_aggregates``, ``_open``, ``_latest``, ...): it is the one
sanctioned serialisation point for that state, and keeping the knowledge
here beats scattering ``state_dict`` plumbing through the paper-faithful
core modules.  ``tests/runtime/test_kill_resume.py`` holds the contract:
restore + journal replay must reproduce the uninterrupted run exactly.

Incident identifiers come from a process-global counter, so a restore
also rewinds that counter to just past the highest checkpointed id --
a resumed run then hands out the very same ids the original would have.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import pathlib
import pickle
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core import incident as incident_module
from ..core.pipeline import SkyNet

if TYPE_CHECKING:
    from .sharding import ShardedLocator

CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".pkl"


def pipeline_state_dict(net: SkyNet) -> Dict[str, object]:
    """All mutable pipeline state, as one picklable dict."""
    locator = net.locator
    return {
        "preprocessor": {
            "aggregates": net.preprocessor._aggregates,
            "corroboration": net.preprocessor._corroboration,
            "stats": net.preprocessor.stats,
        },
        "locator": {
            "main_tree": locator.checkpoint_tree(),
            "open": locator._open,
            "finished": locator._finished,
            "pending": locator._pending,
        },
        "zoom_ping_latest": net.zoom.ping_window._latest,
        "now": net._now,
        "last_sweep": net._last_sweep,
        "incident_next_id": _next_incident_id(locator),
    }


def restore_pipeline_state(net: SkyNet, state: Dict[str, object]) -> None:
    """Load a :func:`pipeline_state_dict` back into a fresh pipeline.

    The pipeline must have been built against the same topology and
    configuration (including shard count) as the checkpointed one; the
    caller owns that invariant."""
    prep = state["preprocessor"]
    net.preprocessor._aggregates = prep["aggregates"]  # type: ignore[index]
    net.preprocessor._corroboration = prep["corroboration"]  # type: ignore[index]
    net.preprocessor.stats = prep["stats"]  # type: ignore[index]

    loc_state = state["locator"]
    locator = net.locator
    # restore_tree also drops the derived grouping memos (and, on the
    # multiprocess backend, ships the shard trees back to the workers)
    locator.restore_tree(loc_state["main_tree"])  # type: ignore[index]
    locator._open = loc_state["open"]  # type: ignore[index]
    locator._finished = loc_state["finished"]  # type: ignore[index]
    locator._pending = loc_state["pending"]  # type: ignore[index]

    net.zoom.ping_window._latest = state["zoom_ping_latest"]  # type: ignore[assignment]
    net._now = state["now"]  # type: ignore[assignment]
    net._last_sweep = state["last_sweep"]  # type: ignore[assignment]
    set_incident_counter(int(state["incident_next_id"]))  # type: ignore[arg-type]


def _next_incident_id(locator: "ShardedLocator") -> int:
    highest = 0
    for incident in locator.all_incidents():
        try:
            highest = max(highest, int(incident.incident_id.rsplit("-", 1)[1]))
        except (IndexError, ValueError):
            continue
    return highest + 1


def set_incident_counter(next_value: int) -> None:
    """Rewind/advance the global incident-id counter (resume and tests)."""
    incident_module._incident_counter = itertools.count(next_value)


@dataclasses.dataclass(frozen=True)
class CheckpointInfo:
    seq: int  # journal sequence number the snapshot is consistent with
    path: pathlib.Path


class CheckpointStore:
    """Atomic pickle snapshots named by journal sequence number.

    ``save`` writes to a temporary file and renames into place, so a
    crash mid-write never produces a half checkpoint under the real
    name; ``latest`` walks candidates newest-first and skips any that
    fail to unpickle, so a corrupted newest checkpoint degrades to the
    previous one instead of aborting recovery.
    """

    def __init__(self, directory: pathlib.Path, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    def _path_for(self, seq: int) -> pathlib.Path:
        return self.directory / f"{CHECKPOINT_PREFIX}{seq:010d}{CHECKPOINT_SUFFIX}"

    def list(self) -> List[CheckpointInfo]:
        out: List[CheckpointInfo] = []
        for path in sorted(self.directory.iterdir()):
            name = path.name
            if not (
                name.startswith(CHECKPOINT_PREFIX)
                and name.endswith(CHECKPOINT_SUFFIX)
            ):
                continue
            stem = name[len(CHECKPOINT_PREFIX) : -len(CHECKPOINT_SUFFIX)]
            try:
                out.append(CheckpointInfo(seq=int(stem), path=path))
            except ValueError:
                continue
        return out

    def save(self, seq: int, state: Dict[str, object]) -> pathlib.Path:
        path = self._path_for(seq)
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._prune()
        return path

    def _prune(self) -> None:
        existing = self.list()
        for info in existing[: -self.keep]:
            try:
                info.path.unlink()
            except OSError:
                continue

    def latest(self) -> Optional[Tuple[int, Dict[str, object]]]:
        """Newest loadable checkpoint as ``(seq, state)``, or ``None``."""
        for info in reversed(self.list()):
            try:
                with open(info.path, "rb") as handle:
                    state = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                continue
            if isinstance(state, dict):
                return info.seq, state
        return None
