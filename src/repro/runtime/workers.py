"""Multiprocess shard execution: each locator shard in its own process.

The in-process :class:`~repro.runtime.sharding.ShardedLocator` already
divides per-sweep grouping cost by the shard count, but all shards still
run on one thread.  This module is the next lever the ROADMAP names:
each Region-subtree shard runs in a **long-lived spawned worker
process** that owns its :class:`~repro.core.alert_tree.AlertTree` plus a
partition engine, fed alert batches over pickled pipes, while the parent
keeps everything that decides the output -- the root tree, the global
insertion-order map, the frontier-device cross-shard merge and
incident-id assignment -- exactly as the in-process backend does.

Why this stays byte-identical to the unsharded reference (the
differential battery in ``tests/runtime/test_shard_invariance.py`` pins
it at 1/2/4 shards, incident ids included):

* a worker applies its shard's mutations in the parent's arrival order
  (the outbox preserves per-shard op order; cross-shard interleaving is
  irrelevant because shard trees are independent), so its tree -- and
  its ``locations()`` insertion order -- equals the in-process shard
  tree's at every sweep barrier;
* the per-shard partition is the same pure function either way
  (:func:`~repro.runtime.sharding.partition_locations` over the same
  insertion-ordered location list), memoised worker-side on the tree's
  structure version;
* the cross-shard merge consumes per-shard components in the canonical
  shard order through the same
  :func:`~repro.runtime.sharding.merge_shard_partitions`, and incidents
  (with their process-global ids) are only ever created in the parent.

Protocol: strict request/reply over a ``spawn``-context pipe, except
``insert`` batches which are fire-and-forget (errors are stashed
worker-side and surface at the next reply).  Worker processes are pooled
and re-armed between services via an ``init`` epoch barrier, because a
spawn costs ~0.4s of interpreter+import time.  A worker that dies
(SIGKILL included) surfaces as :exc:`WorkerCrashed` at the next pipe
operation; under supervision (:class:`MPSupervisedLocator`) the parent
heals it -- a fresh worker, the last base snapshot, an op-log replay --
and retries, which is exact for the same reason the in-process
supervisor is: emitted structured alerts are immutable, so replaying
logged inserts and expiries reconstructs the shard tree bit-for-bit.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import pickle
import weakref
from multiprocessing.connection import Connection
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.alert import AlertLevel, StructuredAlert
from ..core.alert_tree import AlertTree, TreeRecord, record_from
from ..core.config import SkyNetConfig
from ..core.locator import CandidateGroup, Locator, SweepResult
from ..topology.hierarchy import LocationPath
from ..topology.network import Topology
from .sharding import (
    ROOT_SHARD,
    ShardedAlertTree,
    ShardedLocator,
    ShardRouter,
    merge_shard_partitions,
    partition_locations,
)
from .supervisor import ShardSupervision

#: Connection failures that mean "the worker process is gone".
_PIPE_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError, OSError)

#: Monotonic counters every worker keeps and ships at sweep barriers.
WORKER_COUNTER_KEYS = (
    "ops_applied",
    "inserts_applied",
    "expires_applied",
    "partitions_computed",
    "partition_cache_hits",
)

#: One logged mutation: ("insert", alert) or ("expire", now, timeout_s).
_Op = Tuple


class WorkerError(RuntimeError):
    """The worker raised inside a command; the process is still healthy."""


class WorkerCrashed(RuntimeError):
    """The worker process died (killed, OOMed, or lost its pipe)."""

    def __init__(self, shard: int, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard} worker process died ({cause!r}); only a "
            "supervised multiprocess locator (chaos plan with shard "
            "crashes) can heal a dead worker"
        )
        self.shard = shard


def _worker_main(conn: Connection) -> None:
    """One shard worker: apply ops to an owned tree, answer queries.

    Runs in a spawned child process.  State is (re)built by ``init`` --
    a pooled worker serves many services over its lifetime -- and every
    reply-bearing command first surfaces any error stashed by an earlier
    fire-and-forget ``insert``, keeping the request/reply protocol in
    lockstep even when a batch fails.
    """
    tree = AlertTree()
    engine: Optional[Locator] = None
    memo: Optional[Tuple[int, List[List[LocationPath]]]] = None
    counters: Dict[str, int] = dict.fromkeys(WORKER_COUNTER_KEYS, 0)
    stashed: Optional[str] = None
    while True:
        try:
            message = conn.recv()
        except _PIPE_ERRORS:
            return
        command = message[0]
        if command == "stop":
            return
        if command == "insert":
            try:
                applied = tree.insert_batch(message[1])
                counters["inserts_applied"] += applied
                counters["ops_applied"] += 1
            except Exception as exc:  # surfaced at the next reply
                stashed = repr(exc)
            continue
        if stashed is not None:
            conn.send(("error", stashed))
            stashed = None
            continue
        try:
            if command == "init":
                _, epoch, topology, config = message
                engine = Locator(topology, config)
                tree = AlertTree(fast=config.fast_path)
                memo = None
                counters = dict.fromkeys(WORKER_COUNTER_KEYS, 0)
                reply = ("ok", epoch)
            elif command == "expire":
                _, now, timeout_s = message
                before = set(tree._nodes)
                removed = tree.expire(now, timeout_s)
                dropped = (
                    [loc for loc in before if loc not in tree]
                    if len(tree) != len(before)
                    else []
                )
                counters["expires_applied"] += 1
                counters["ops_applied"] += 1
                reply = ("ok", removed, dropped, tree.structure_version)
            elif command == "partition":
                known_version = message[1]
                version = tree.structure_version
                if memo is None or memo[0] != version:
                    assert engine is not None, "partition before init"
                    memo = (
                        version,
                        partition_locations(engine, tree.locations()),
                    )
                    counters["partitions_computed"] += 1
                else:
                    counters["partition_cache_hits"] += 1
                types = {
                    loc: tuple(
                        (record.type_key, record.level)
                        for record in tree.iter_records_at(loc)
                    )
                    for loc in tree.locations()
                }
                components = None if version == known_version else memo[1]
                reply = ("ok", version, components, types, dict(counters))
            elif command == "sweep":
                # compound barrier: insert batch + expire + partition in
                # one round-trip, so a sweep costs O(1) frames per shard
                # instead of one per pending alert batch plus two more
                _, batch, now, timeout_s, known_version = message
                if batch:
                    applied = tree.insert_batch(batch)
                    counters["inserts_applied"] += applied
                    counters["ops_applied"] += 1
                before = set(tree._nodes)
                removed = tree.expire(now, timeout_s)
                dropped = (
                    [loc for loc in before if loc not in tree]
                    if len(tree) != len(before)
                    else []
                )
                counters["expires_applied"] += 1
                counters["ops_applied"] += 1
                version = tree.structure_version
                if memo is None or memo[0] != version:
                    assert engine is not None, "sweep before init"
                    memo = (
                        version,
                        partition_locations(engine, tree.locations()),
                    )
                    counters["partitions_computed"] += 1
                else:
                    counters["partition_cache_hits"] += 1
                types = {
                    loc: tuple(
                        (record.type_key, record.level)
                        for record in tree.iter_records_at(loc)
                    )
                    for loc in tree.locations()
                }
                components = None if version == known_version else memo[1]
                reply = (
                    "ok", removed, dropped, version, components, types,
                    dict(counters),
                )
            elif command == "records":
                reply = (
                    "ok",
                    {
                        loc: [r.clone() for r in tree.iter_records_at(loc)]
                        for loc in message[1]
                    },
                )
            elif command == "total":
                reply = ("ok", tree.total_records())
            elif command == "state":
                reply = (
                    "ok",
                    pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL),
                )
            elif command == "load":
                tree = pickle.loads(message[1])
                memo = None
                reply = ("ok", tree.structure_version)
            else:
                reply = ("error", f"unknown command {command!r}")
        except Exception as exc:  # reported to the parent, never silent
            reply = ("error", repr(exc))
        try:
            conn.send(reply)
        except _PIPE_ERRORS:
            return


class _Worker:
    """One pooled worker process plus the parent end of its pipe."""

    def __init__(self, ctx: multiprocessing.context.SpawnContext) -> None:
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the process and reap it; the pipe is closed too."""
        if self.process.is_alive():
            self.process.kill()
        # reap bound for an already-SIGKILLed process, not a serving
        # knob: the pool has no RuntimeParams to draw from by design
        self.process.join(timeout=10.0)  # lint: allow REP016
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPool:
    """Process pool shared by every multiprocess tree in this process.

    Spawning a worker costs a fresh interpreter plus the ``repro``
    import (~0.4s), so leases are returned here instead of killed and
    re-armed by the next ``init``.  The pool grows on demand and never
    shrinks below the high-water mark until :meth:`shutdown` (atexit).
    """

    def __init__(self) -> None:
        self._ctx = multiprocessing.get_context("spawn")
        self._idle: List[_Worker] = []
        self.spawned = 0

    def lease(self) -> _Worker:
        while self._idle:
            worker = self._idle.pop()
            if worker.alive():
                return worker
            worker.kill()
        self.spawned += 1
        return _Worker(self._ctx)

    def release(self, workers: List[_Worker]) -> None:
        """Return leased workers; dead ones are reaped, not pooled."""
        for worker in workers:
            if worker.alive():
                self._idle.append(worker)
            else:
                worker.kill()
        workers.clear()

    def shutdown(self) -> None:
        for worker in self._idle:
            worker.kill()
        self._idle.clear()


_POOL = WorkerPool()
atexit.register(_POOL.shutdown)

#: Init-epoch tokens: protocol hygiene when a pooled worker is re-armed
#: (the barrier reply must echo the epoch of *this* lease).
_EPOCHS = itertools.count(1)  # lint: allow REP014


class MPShardedAlertTree:
    """The :class:`AlertTree` interface over worker-process shard trees.

    The parent owns the root tree and the cross-shard invariants -- the
    global insertion-order map, the dirty set, a structure-version
    mirror -- so order-sensitive queries (``locations``,
    ``snapshot_under``) answer without touching a worker, and queries
    that need record state fetch it over the pipe after flushing the
    per-shard outboxes.  With ``supervised=True`` it also keeps the
    in-process supervisor's recovery discipline parent-side: a pickled
    base snapshot per shard plus an op log since, which heals a dead
    worker *process* exactly.

    Every ``# lint: allow REP014`` below waives a write to **parent-side
    bookkeeping**: this object never crosses the process boundary (each
    worker owns a plain :class:`AlertTree` rebuilt by ``init``/``load``),
    so the mirrors, outboxes and supervision log are single-process
    state, and the request/reply pipe -- serialised by construction --
    is the only state the processes actually share.  ``_EPOCHS``
    likewise only needs uniqueness within the parent, which is the sole
    process that leases and re-arms workers.
    """

    def __init__(
        self,
        router: ShardRouter,
        topology: Topology,
        config: SkyNetConfig,
        supervised: bool = False,
    ) -> None:
        self.router = router
        self.supervised = supervised
        self._topology = topology
        self._config = config
        self._fast = config.fast_path
        self.root_tree = AlertTree(fast=self._fast)
        #: location -> shard index, in global first-insertion order
        self._order: Dict[LocationPath, int] = {}
        #: parent-side mirror of the worker-shard dirty sets
        self._dirty: Set[LocationPath] = set()
        #: parent-side mirror of each worker tree's structure_version
        self._versions: List[int] = [0] * router.shards
        #: alerts routed but not yet shipped, per shard, arrival order
        self._outbox: List[List[StructuredAlert]] = [
            [] for _ in range(router.shards)
        ]
        #: last partition reply per shard: (version, components)
        self._comp_memo: List[Optional[Tuple[int, List[List[LocationPath]]]]]
        self._comp_memo = [None] * router.shards
        #: last counters snapshot shipped by each worker (sweep barrier)
        self._counters: List[Dict[str, int]] = [
            dict.fromkeys(WORKER_COUNTER_KEYS, 0) for _ in range(router.shards)
        ]
        # supervision state (parent-side, mirrors SupervisedAlertTree)
        self._base: Dict[int, Optional[bytes]] = {
            i: None for i in range(router.shards)
        }
        self._oplog: Dict[int, List[_Op]] = {i: [] for i in range(router.shards)}
        self._crashed: Set[int] = set()
        self._lost: Set[int] = set()
        self.crashes = 0
        self.restores = 0
        self.replayed_ops = 0
        self.degraded_heals = 0
        self._workers: List[_Worker] = []
        for index in range(router.shards):
            self._workers.append(_POOL.lease())
            self._init_worker(index)
        # auto-release the leases when the tree is garbage collected;
        # the list object is shared so heals stay visible to the finalizer
        self._finalizer = weakref.finalize(self, _POOL.release, self._workers)

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        """Return the worker leases to the pool (also runs at GC)."""
        self._finalizer()

    def worker_pid(self, index: int) -> Optional[int]:
        """The shard worker's OS pid (tests SIGKILL through this)."""
        return self._workers[index].pid

    def workers_alive(self) -> int:
        return sum(1 for worker in self._workers if worker.alive())

    def worker_counters(self) -> Dict[str, int]:
        """Per-worker counters aggregated at the last sweep barrier."""
        out = dict.fromkeys(WORKER_COUNTER_KEYS, 0)
        for snapshot in self._counters:
            for key, value in snapshot.items():
                out[key] += value
        return out

    def _init_worker(self, index: int) -> None:
        worker = self._workers[index]
        epoch = next(_EPOCHS)
        try:
            worker.conn.send(("init", epoch, self._topology, self._config))
            reply = worker.conn.recv()
        except _PIPE_ERRORS as exc:
            raise WorkerCrashed(index, exc) from exc
        if reply != ("ok", epoch):
            raise WorkerError(f"shard {index} init barrier: {reply!r}")
        self._versions[index] = 0  # lint: allow REP014
        self._comp_memo[index] = None  # lint: allow REP014

    def _send(self, index: int, message: Tuple) -> None:
        """Fire-and-forget send, healing a dead worker if supervised."""
        try:
            self._workers[index].conn.send(message)
        except _PIPE_ERRORS as exc:
            if not self.supervised:
                raise WorkerCrashed(index, exc) from exc
            # the outbox entries this send carried are already in the op
            # log, so healing replays them; nothing to resend
            self._heal_worker(index)

    def _roundtrip(self, index: int, message: Tuple) -> Tuple:
        """One reply-bearing exchange, healing + retrying if supervised.

        Safe for every reply-bearing command: reads are side-effect
        free, ``expire`` is idempotent *and* logged only after its ack,
        so a heal replays the log without it and the retry applies it
        exactly once with authoritative reply values.
        """
        for attempt in (0, 1):
            worker = self._workers[index]
            try:
                worker.conn.send(message)
                reply = worker.conn.recv()
            except _PIPE_ERRORS as exc:
                if self.supervised and attempt == 0:
                    self._heal_worker(index)
                    continue
                raise WorkerCrashed(index, exc) from exc
            if reply[0] == "error":
                raise WorkerError(f"shard {index} worker: {reply[1]}")
            return reply
        raise AssertionError("unreachable")

    def _flush(self) -> None:
        """Ship every pending outbox batch to its worker."""
        for index, batch in enumerate(self._outbox):
            if batch:
                self._outbox[index] = []  # lint: allow REP014
                self._send(index, ("insert", batch))

    def _scatter(self, build_message) -> List[bool]:
        """Send one reply-bearing message to every worker shard.

        ``build_message(index)`` is re-evaluated on retries because a
        heal can reset per-shard state the message encodes (the
        partition memo version).  Returns, per shard, whether the send
        reached a live worker; a shard healed during the scatter has no
        request in flight and is retried as a full roundtrip by
        :meth:`_gather`.
        """
        sent: List[bool] = []
        for index in range(self.router.shards):
            try:
                self._workers[index].conn.send(build_message(index))
                sent.append(True)
            except _PIPE_ERRORS as exc:
                if not self.supervised:
                    raise WorkerCrashed(index, exc) from exc
                self._heal_worker(index)
                sent.append(False)
        return sent

    def _gather(self, index: int, in_flight: bool, build_message) -> Tuple:
        """Collect one shard's :meth:`_scatter` reply (heal + retry)."""
        if in_flight:
            try:
                reply = self._workers[index].conn.recv()
            except _PIPE_ERRORS as exc:
                if not self.supervised:
                    raise WorkerCrashed(index, exc) from exc
                self._heal_worker(index)
                reply = self._roundtrip(index, build_message(index))
        else:
            reply = self._roundtrip(index, build_message(index))
        if reply[0] == "error":
            raise WorkerError(f"shard {index} worker: {reply[1]}")
        return reply

    # -- AlertTree interface: mutation -------------------------------------

    def _note_insert(self, alert: StructuredAlert, index: int) -> None:
        if alert.location not in self._order:
            self._order[alert.location] = index  # lint: allow REP014
            if index != ROOT_SHARD:
                self._versions[index] += 1  # lint: allow REP014
        if index != ROOT_SHARD:
            self._dirty.add(alert.location)  # lint: allow REP014
            self._outbox[index].append(alert)  # lint: allow REP014
            if self.supervised:
                self._oplog[index].append(("insert", alert))  # lint: allow REP014

    def insert(self, alert: StructuredAlert) -> TreeRecord:
        index = self.router.shard_of(alert.location)
        self._note_insert(alert, index)
        if index == ROOT_SHARD:
            return self.root_tree.insert(alert)  # lint: allow REP014
        # the record lives in the worker; hand back a detached rendering
        # (no production caller reads insert()'s return value)
        return record_from(alert)

    def insert_batch(self, alerts: List[StructuredAlert]) -> int:
        for alert in alerts:
            index = self.router.shard_of(alert.location)
            self._note_insert(alert, index)
            if index == ROOT_SHARD:
                self.root_tree.insert(alert)  # lint: allow REP014
        return len(alerts)

    def expire(self, now: float, timeout_s: float) -> int:
        """Expire every shard: flush, scatter, gather, prune the order map.

        The worker replies carry exactly what the parent mirrors need:
        the removed-record count, the locations whose nodes dropped
        (pruned from the order map and dirty set, preserving the order
        of survivors), and the authoritative structure version.
        """
        self._flush()
        message = ("expire", now, timeout_s)
        sent = self._scatter(lambda index: message)
        removed = 0
        root_before = self.root_tree.structure_version
        removed += self.root_tree.expire(now, timeout_s)
        for index in range(self.router.shards):
            # heal-on-crash is exact here: the op log excludes this
            # expire until its ack, so the retry applies it for real
            reply = self._gather(index, sent[index], lambda index: message)
            _, shard_removed, dropped, version = reply
            removed += shard_removed
            self._versions[index] = version  # lint: allow REP014
            for location in dropped:
                self._order.pop(location, None)  # lint: allow REP014
                self._dirty.discard(location)  # lint: allow REP014
            if self.supervised:
                self._oplog[index].append(("expire", now, timeout_s))  # lint: allow REP014
        if self.root_tree.structure_version != root_before:
            for location in [
                loc
                for loc, index in self._order.items()
                if index == ROOT_SHARD and loc not in self.root_tree
            ]:
                del self._order[location]  # lint: allow REP014
        return removed

    # -- AlertTree interface: queries --------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, location: LocationPath) -> bool:
        return location in self._order

    @property
    def structure_version(self) -> int:
        return self.root_tree.structure_version + sum(self._versions)

    def consume_dirty(self) -> Set[LocationPath]:
        dirty = self._dirty | self.root_tree.consume_dirty()
        self._dirty = set()
        return dirty

    def locations(self) -> List[LocationPath]:
        return list(self._order)

    def locations_under(self, root: LocationPath) -> List[LocationPath]:
        return [loc for loc in self._order if root.contains(loc)]

    def _fetch_records(
        self, wanted: List[Tuple[LocationPath, int]]
    ) -> Dict[LocationPath, List[TreeRecord]]:
        """Record lists for (location, shard) pairs, one fetch per shard."""
        self._flush()
        by_shard: Dict[int, List[LocationPath]] = {}
        for location, index in wanted:
            by_shard.setdefault(index, []).append(location)
        out: Dict[LocationPath, List[TreeRecord]] = {}
        for index, locs in by_shard.items():
            if index == ROOT_SHARD:
                for loc in locs:
                    out[loc] = [
                        r.clone() for r in self.root_tree.iter_records_at(loc)
                    ]
            else:
                reply = self._roundtrip(index, ("records", locs))
                out.update(reply[1])
        return out

    def records_at(self, location: LocationPath) -> List[TreeRecord]:
        index = self._order.get(location)
        if index is None:
            return []
        return self._fetch_records([(location, index)]).get(location, [])

    def iter_records_at(self, location: LocationPath) -> Iterator[TreeRecord]:
        return iter(self.records_at(location))

    def records_under(self, root: LocationPath) -> Iterator[TreeRecord]:
        snapshot = self.snapshot_under(root)
        for records in snapshot.values():
            yield from records

    def total_records(self) -> int:
        self._flush()
        total = self.root_tree.total_records()
        for index in range(self.router.shards):
            total += self._roundtrip(index, ("total",))[1]
        return total

    def snapshot_under(
        self, root: LocationPath
    ) -> Dict[LocationPath, List[TreeRecord]]:
        wanted = [
            (loc, index)
            for loc, index in self._order.items()
            if root.contains(loc)
        ]
        fetched = self._fetch_records(wanted)
        # assemble in the global insertion order the order map preserves
        return {loc: fetched[loc] for loc, _ in wanted}

    # -- sweep barrier: partitions + counters ------------------------------

    def partition_all(
        self,
    ) -> Tuple[
        List[Tuple[int, List[List[LocationPath]]]],
        Dict[LocationPath, Tuple],
    ]:
        """Every worker shard's partition plus its per-location types.

        One scatter/gather per sweep: workers partition concurrently
        (memoised on their own structure version; components are only
        shipped when the version moved past the parent's memo) and ship
        the (type_key, level) pairs the parent's type counting needs,
        plus their counters -- this is the sweep barrier the service
        aggregates worker metrics at.
        """
        self._flush()

        def build_message(index: int) -> Tuple:
            memo = self._comp_memo[index]
            return ("partition", memo[0] if memo is not None else -1)

        sent = self._scatter(build_message)
        shard_parts: List[Tuple[int, List[List[LocationPath]]]] = []
        types_map: Dict[LocationPath, Tuple] = {}
        for index in range(self.router.shards):
            reply = self._gather(index, sent[index], build_message)
            _, version, components, types, counters = reply
            if components is None:
                memo = self._comp_memo[index]
                assert memo is not None and memo[0] == version
                components = memo[1]
            else:
                self._comp_memo[index] = (version, components)  # lint: allow REP014
            self._versions[index] = version  # lint: allow REP014
            self._counters[index] = counters  # lint: allow REP014
            shard_parts.append((index, components))
            types_map.update(types)
        return shard_parts, types_map

    def sweep_all(
        self, now: float, timeout_s: float
    ) -> Tuple[
        int,
        List[Tuple[int, List[List[LocationPath]]]],
        Dict[LocationPath, Tuple],
    ]:
        """One compound barrier: outbox batch + expire + partition per shard.

        The pending insert batches ride *inside* the sweep request, so a
        whole sweep costs one request/reply frame per shard -- O(batches)
        -- where the separate ``_flush`` + ``expire`` + ``partition``
        sequence paid up to three requests and two replies.  Replies are
        byte-for-byte the fusion of the individual commands' replies, and
        the heal discipline is unchanged: popped batches are already in
        the op log (logged at ``_note_insert``), so a retried sweep sends
        an empty batch and the replayed log supplies the inserts, while
        the expire is logged only after its ack and therefore applied
        exactly once.
        """

        def build_message(index: int) -> Tuple:
            batch = self._outbox[index]
            if batch:
                self._outbox[index] = []  # lint: allow REP014
            memo = self._comp_memo[index]
            return (
                "sweep", batch, now, timeout_s,
                memo[0] if memo is not None else -1,
            )

        sent = self._scatter(build_message)
        root_before = self.root_tree.structure_version
        removed = self.root_tree.expire(now, timeout_s)
        shard_parts: List[Tuple[int, List[List[LocationPath]]]] = []
        types_map: Dict[LocationPath, Tuple] = {}
        for index in range(self.router.shards):
            reply = self._gather(index, sent[index], build_message)
            _, shard_removed, dropped, version, components, types, counters = reply
            removed += shard_removed
            if components is None:
                memo = self._comp_memo[index]
                assert memo is not None and memo[0] == version
                components = memo[1]
            else:
                self._comp_memo[index] = (version, components)  # lint: allow REP014
            self._versions[index] = version  # lint: allow REP014
            self._counters[index] = counters  # lint: allow REP014
            for location in dropped:
                self._order.pop(location, None)  # lint: allow REP014
                self._dirty.discard(location)  # lint: allow REP014
            if self.supervised:
                self._oplog[index].append(("expire", now, timeout_s))  # lint: allow REP014
            shard_parts.append((index, components))
            types_map.update(types)
        if self.root_tree.structure_version != root_before:
            for location in [
                loc
                for loc, index in self._order.items()
                if index == ROOT_SHARD and loc not in self.root_tree
            ]:
                del self._order[location]  # lint: allow REP014
        return removed, shard_parts, types_map

    # -- checkpoint + restore ----------------------------------------------

    def snapshot_trees(self) -> List[bytes]:
        """Every worker shard's tree, pickled, after an outbox flush."""
        self._flush()
        return [
            self._roundtrip(index, ("state",))[1]
            for index in range(self.router.shards)
        ]

    def materialize(self) -> ShardedAlertTree:
        """An equivalent plain :class:`ShardedAlertTree` for checkpoints.

        Backend-portable by construction: an in-process service can
        restore it directly, and :meth:`load` ships it back into
        workers, so checkpoints cross backends in both directions.
        """
        out = ShardedAlertTree(self.router, fast=self._fast)
        out.shard_trees = [pickle.loads(b) for b in self.snapshot_trees()]
        out.root_tree = pickle.loads(
            pickle.dumps(self.root_tree, protocol=pickle.HIGHEST_PROTOCOL)
        )
        out._order = dict(self._order)
        return out

    def load(self, tree: ShardedAlertTree) -> None:
        """Adopt a checkpointed tree: ship shard trees to the workers.

        Deterministic restore: each worker receives its pickled shard
        tree (insertion order, dirty set and expiry heap included), the
        parent mirrors are rebuilt from the same artefact, and under
        supervision the shipped bytes become the new recovery bases.
        """
        self._outbox = [[] for _ in range(self.router.shards)]  # lint: allow REP014
        shard_blobs = [
            pickle.dumps(t, protocol=pickle.HIGHEST_PROTOCOL)
            for t in tree.shard_trees
        ]
        if self.supervised:
            self._base = dict(enumerate(shard_blobs))  # lint: allow REP014
            self._oplog = {i: [] for i in range(self.router.shards)}  # lint: allow REP014
            self._crashed = set()  # lint: allow REP014
            self._lost = set()  # lint: allow REP014
        for index, blob in enumerate(shard_blobs):
            reply = self._roundtrip(index, ("load", blob))
            self._versions[index] = reply[1]  # lint: allow REP014
            self._comp_memo[index] = None  # lint: allow REP014
        self.root_tree = tree.root_tree  # lint: allow REP014
        self._order = dict(tree._order)  # lint: allow REP014
        self._dirty = set().union(  # lint: allow REP014
            *(shard_tree._dirty for shard_tree in tree.shard_trees)
        ) if tree.shard_trees else set()

    # -- supervision -------------------------------------------------------

    def snapshot_shards(self) -> None:
        """Refresh every shard's recovery base and truncate its op log."""
        for index, blob in enumerate(self.snapshot_trees()):
            self._base[index] = blob  # lint: allow REP014
            self._oplog[index] = []  # lint: allow REP014
        self._lost.clear()  # lint: allow REP014

    def invalidate_snapshot(self, index: int) -> None:
        """Partial checkpoint loss: shard ``index`` loses base *and* log."""
        if not 0 <= index < self.router.shards:
            raise IndexError(
                f"no shard {index} (have {self.router.shards})"
            )
        self._base[index] = None  # lint: allow REP014
        self._oplog[index] = []  # lint: allow REP014
        self._lost.add(index)  # lint: allow REP014

    def install_base(self, index: int, blob: bytes) -> None:
        """Adopt a rebuilt current-state tree as the recovery base."""
        if not 0 <= index < self.router.shards:
            raise IndexError(
                f"no shard {index} (have {self.router.shards})"
            )
        self._base[index] = blob  # lint: allow REP014
        self._oplog[index] = []  # lint: allow REP014
        self._lost.discard(index)  # lint: allow REP014

    def lost_snapshots(self) -> Set[int]:
        return set(self._lost)

    def crash(self, index: int) -> None:
        """Kill shard ``index``'s worker *process* (SIGKILL, reaped)."""
        if not 0 <= index < self.router.shards:
            raise IndexError(
                f"no shard {index} (have {self.router.shards})"
            )
        self._workers[index].kill()
        self._crashed.add(index)  # lint: allow REP014
        self.crashes += 1  # lint: allow REP014

    @property
    def crashed_shards(self) -> Set[int]:
        return set(self._crashed)

    def heal_all(self) -> int:
        """Heal every shard whose planned crash was fired via :meth:`crash`."""
        healed = 0
        for index in sorted(self._crashed):
            self._restore_worker(index)
            healed += 1
        self._crashed.clear()  # lint: allow REP014
        return healed

    def _heal_worker(self, index: int) -> None:
        """Heal a worker found dead mid-operation (unplanned death)."""
        if not self.supervised:
            raise AssertionError("heal on an unsupervised tree")
        self.crashes += 1  # lint: allow REP014
        self._restore_worker(index)
        self._crashed.discard(index)  # lint: allow REP014

    def _restore_worker(self, index: int) -> None:
        """Fresh worker <- base snapshot <- op-log replay, in op order."""
        self._workers[index].kill()
        self._workers[index] = _POOL.lease()  # lint: allow REP014
        self._init_worker(index)
        if index in self._lost:
            # recovery source destroyed and no rebuilt base installed:
            # the heal is empty-worker, data loss admitted
            self.degraded_heals += 1  # lint: allow REP014
            self._lost.discard(index)  # lint: allow REP014
        base = self._base[index]
        if base is not None:
            reply = self._roundtrip(index, ("load", base))
            self._versions[index] = reply[1]  # lint: allow REP014
        # replay preserving insert/expire interleaving
        log = self._oplog[index]
        batch: List[StructuredAlert] = []
        for op in log:
            if op[0] == "insert":
                batch.append(op[1])
            else:
                if batch:
                    self._send(index, ("insert", batch))
                    batch = []
                self._roundtrip(index, ("expire", op[1], op[2]))
        if batch:
            self._send(index, ("insert", batch))
        # the outbox ops (if any) are part of the log: already replayed
        self._outbox[index] = []  # lint: allow REP014
        self.replayed_ops += len(log)  # lint: allow REP014
        self.restores += 1  # lint: allow REP014


class MPShardedLocator(ShardedLocator):
    """§4.2 locating with each shard tree owned by a worker process.

    Inherits feeds, sweeps, thresholds and supersession from
    :class:`Locator` via :class:`ShardedLocator`; overrides the
    candidate-group computation to gather worker partitions at the sweep
    barrier (root-shard partition computed locally, memoised as before)
    and the type counting to read the types each worker shipped with its
    partition.  Incident creation -- and therefore id assignment -- is
    untouched parent-side code.
    """

    backend = "mp"

    def __init__(
        self,
        topology: Topology,
        config: Optional[SkyNetConfig] = None,
        shards: Optional[int] = None,
        supervised: bool = False,
    ) -> None:
        super().__init__(topology, config, shards)
        self.main_tree = MPShardedAlertTree(  # type: ignore[assignment]
            self.router, topology, self._config, supervised=supervised
        )
        self._partitions = {}
        #: location -> ((type_key, level), ...) from the last barrier
        self._types_map: Dict[LocationPath, Tuple] = {}
        #: worker partitions from the last compound sweep barrier,
        #: consumed (and cleared) by the next ``_candidate_groups`` call
        self._barrier_parts: Optional[
            List[Tuple[int, List[List[LocationPath]]]]
        ] = None

    @property
    def mp_tree(self) -> MPShardedAlertTree:
        tree: MPShardedAlertTree = self.main_tree  # type: ignore[assignment]
        return tree

    def sweep(self, now: float) -> SweepResult:
        """The :meth:`Locator.sweep` steps, fused at one worker barrier.

        Mirrors the base implementation line for line -- flush (fast
        path), expire, close-idle, generate -- but ships each shard's
        pending insert batch, its expiry and its partition request in a
        *single* compound frame via :meth:`MPShardedAlertTree.sweep_all`;
        ``_candidate_groups`` then consumes the partitions gathered at
        that barrier instead of paying a second scatter.  ``_close_idle``
        between the barrier and ``_generate`` is pure incident
        bookkeeping (no tree mutation), so the partitions stay valid.
        """
        if self._fast:
            self.flush()  # fills the per-shard outboxes parent-side
        tree = self.mp_tree
        expired, shard_parts, types_map = tree.sweep_all(
            now, self._config.node_timeout_s
        )
        self._types_map = types_map
        self._barrier_parts = shard_parts
        closed = self._close_idle(now)
        opened = self._generate(now)
        return SweepResult(
            opened=opened, closed=closed, expired_records=expired
        )

    def _candidate_groups(self) -> List[CandidateGroup]:
        tree = self.mp_tree
        if self._barrier_parts is not None:
            # partitions gathered at this sweep's compound barrier
            shard_parts = self._barrier_parts
            self._barrier_parts = None
        else:
            # out-of-sweep call (no barrier to consume): pay the scatter
            shard_parts, self._types_map = tree.partition_all()
        version = tree.root_tree.structure_version
        cached = self._partitions.get(ROOT_SHARD)
        if cached is None or cached[0] != version:
            cached = (
                version,
                partition_locations(self, tree.root_tree.locations()),
            )
            self._partitions[ROOT_SHARD] = cached
        shard_parts.append((ROOT_SHARD, cached[1]))
        return merge_shard_partitions(
            self._topo,
            self._config.connectivity_max_hops,
            self._frontier,
            shard_parts,
        )

    def _count_types(self, component: Sequence[LocationPath]) -> Tuple[int, int]:
        """Type counts from the types shipped at the partition barrier.

        Worker locations use the shipped (type_key, level) pairs; root
        locations read the parent-local root tree.  Same set semantics
        (and the same ``count_by_type`` ablation key) as the base class.
        """
        failure_keys: Set = set()
        other_keys: Set = set()
        for location in component:
            pairs = self._types_map.get(location)
            if pairs is None:
                pairs = tuple(
                    (record.type_key, record.level)
                    for record in self.main_tree.iter_records_at(location)
                )
            for type_key, level in pairs:
                if self._config.count_by_type:
                    key = type_key
                else:
                    key = (type_key, location)
                if level is AlertLevel.FAILURE:
                    failure_keys.add(key)
                else:
                    other_keys.add(key)
        return len(failure_keys), len(other_keys)

    # -- checkpoint hooks ---------------------------------------------------

    def checkpoint_tree(self) -> ShardedAlertTree:
        return self.mp_tree.materialize()

    def restore_tree(self, tree: AlertTree) -> None:
        if not isinstance(tree, ShardedAlertTree):
            raise TypeError(
                "multiprocess locator can only restore a ShardedAlertTree "
                f"checkpoint, got {type(tree).__name__}"
            )
        self.mp_tree.load(tree)
        self._groups_cache = None
        self._groups_version = -1
        self._partitions = {}
        self._types_map = {}
        self._barrier_parts = None

    # -- worker surface -----------------------------------------------------

    def worker_counters(self) -> Dict[str, int]:
        return self.mp_tree.worker_counters()

    def workers_alive(self) -> int:
        return self.mp_tree.workers_alive()

    def worker_pid(self, index: int) -> Optional[int]:
        return self.mp_tree.worker_pid(index)

    def close(self) -> None:
        self.mp_tree.close()


class MPSupervisedLocator(MPShardedLocator, ShardSupervision):
    """A :class:`MPShardedLocator` whose dead workers are healed exactly.

    The multiprocess counterpart of
    :class:`~repro.runtime.supervisor.SupervisedLocator`: ``crash_shard``
    SIGKILLs the real worker process, and healing replays base snapshot
    + op log into a fresh worker.  Unplanned deaths (a worker killed
    from outside, mid-sweep) are healed transparently at the next pipe
    operation and counted the same way.
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[SkyNetConfig] = None,
        shards: Optional[int] = None,
    ) -> None:
        super().__init__(topology, config, shards, supervised=True)

    def crash_shard(self, index: int) -> None:
        self.mp_tree.crash(index)

    def heal_crashed(self) -> int:
        return self.mp_tree.heal_all()

    def snapshot_shards(self) -> None:
        self.mp_tree.snapshot_shards()

    def invalidate_snapshot(self, index: int) -> None:
        self.mp_tree.invalidate_snapshot(index)

    def install_base(self, index: int, blob: bytes) -> None:
        self.mp_tree.install_base(index, blob)

    def lost_snapshots(self) -> Set[int]:
        return self.mp_tree.lost_snapshots()

    @property
    def crashes(self) -> int:
        return self.mp_tree.crashes

    @property
    def restores(self) -> int:
        return self.mp_tree.restores

    @property
    def replayed_ops(self) -> int:
        return self.mp_tree.replayed_ops

    @property
    def degraded_heals(self) -> int:
        return self.mp_tree.degraded_heals
