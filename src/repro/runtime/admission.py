"""Admission control: backpressure that degrades along §4.1's ladder.

Under a severe failure the raw firehose can outrun what the pipeline
sustains.  When the rolling ingest window overflows its watermark, the
controller sheds load by climbing the same consolidation ladder the
preprocessor applies semantically (§4.1) -- so the *least informative*
alerts go first, in the order the paper argues they are redundant:

1. **dedup** -- an identical raw alert (same tool, type, device,
   endpoints and location hint) already arrived inside the window; its
   only contribution would be a count bump.
2. **single-source suppression** -- sporadic-prone single-source types
   (``SPORADIC_TYPES``: ping-style loss probes) that the preprocessor
   would demand persistence from anyway.
3. **cross-source combination** -- conditional types
   (``CONDITIONAL_TYPES``: traffic drops/surges) that only matter when
   corroborated by another source.

Rung *k* engages when the window holds more than ``2^(k-1)`` times the
watermark.  Every shed is counted per rung and journaled with the alert
-- nothing is ever dropped silently -- and with ``backpressure`` off the
controller is a pure pass-through: zero sheds, byte-identical pipeline
output (``tests/runtime/test_admission.py`` pins both properties).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, Optional, Tuple

from ..core.alert_types import CONDITIONAL_TYPES, SPORADIC_TYPES
from ..core.config import RuntimeParams
from ..monitors.base import RawAlert
from .metrics import MetricsRegistry

#: Ladder rungs in engagement order (§4.1's consolidation order).
RUNGS: Tuple[str, str, str] = ("dedup", "single_source", "cross_source")

_DedupKey = Tuple[str, str, Optional[str], Optional[Tuple[str, str]], object]


@dataclasses.dataclass(frozen=True)
class AdmissionDecision:
    admit: bool
    rung: Optional[str] = None  # which ladder rung shed it, when not admitted


class AdmissionController:
    """Watermark-based load shedding over a rolling sim-time window."""

    def __init__(
        self,
        params: RuntimeParams,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.params = params
        self.enabled = params.backpressure
        self._metrics = metrics
        #: delivery times of every *offered* alert still inside the window
        self._window: Deque[float] = collections.deque()
        #: last-seen delivery time per dedup key (lazily evicted)
        self._recent: Dict[_DedupKey, float] = {}
        self.offered = 0
        self.admitted = 0
        self.sheds: Dict[str, int] = {rung: 0 for rung in RUNGS}

    # -- decisions ---------------------------------------------------------

    def offer(self, raw: RawAlert) -> AdmissionDecision:
        """Decide admission for one raw alert (and record the outcome)."""
        decision = self.decide(raw)
        self.apply(raw, decision)
        return decision

    def replay(self, raw: RawAlert, admitted: bool, rung: Optional[str]) -> None:
        """Re-apply a *journaled* decision during crash recovery.

        The original decision is replayed rather than re-derived: shed
        alerts are absent from the pipeline but present in the journal,
        and honouring the recorded outcome reproduces window state and
        shed counters exactly."""
        self.apply(raw, AdmissionDecision(admit=admitted, rung=rung))

    def decide(self, raw: RawAlert) -> AdmissionDecision:
        """Pure decision: what would happen to ``raw``, without recording it.

        Split from :meth:`apply` so the service can write the decision to
        the journal *before* mutating any state -- a write-ahead failure
        then leaves the controller exactly as if the alert never arrived.
        Window pruning here is idempotent with the pruning in
        :meth:`apply`."""
        if not self.enabled:
            return AdmissionDecision(admit=True)
        now = raw.delivered_at
        window_s = self.params.admission_window_s
        while self._window and self._window[0] < now - window_s:
            self._window.popleft()
        load = len(self._window) + 1  # counting this alert
        watermark = self.params.admission_watermark
        if watermark < 1 or load <= watermark:
            return AdmissionDecision(admit=True)

        # rung 1: dedup (always on once over the watermark)
        key = self._dedup_key(raw)
        last = self._recent.get(key)
        if last is not None and now - last <= window_s:
            return AdmissionDecision(admit=False, rung="dedup")

        type_pair = (raw.tool, raw.raw_type)
        # rung 2: single-source suppression at 2x the watermark
        if load > 2 * watermark and type_pair in SPORADIC_TYPES:
            return AdmissionDecision(admit=False, rung="single_source")
        # rung 3: cross-source combination at 4x the watermark
        if load > 4 * watermark and type_pair in CONDITIONAL_TYPES:
            return AdmissionDecision(admit=False, rung="cross_source")
        return AdmissionDecision(admit=True)

    def apply(self, raw: RawAlert, decision: AdmissionDecision) -> None:
        """Record one decided alert: window, counters, metrics."""
        now = raw.delivered_at
        window_s = self.params.admission_window_s
        while self._window and self._window[0] < now - window_s:
            self._window.popleft()
        self._window.append(now)
        self.offered += 1
        if decision.admit:
            self.admitted += 1
            self._recent[self._dedup_key(raw)] = now
            if len(self._recent) > 4 * max(len(self._window), 1024):
                self._evict_recent(now - window_s)
        else:
            rung = decision.rung or RUNGS[0]
            self.sheds[rung] = self.sheds.get(rung, 0) + 1
        if self._metrics is not None:
            self._metrics.counter(
                "runtime_admission_offered_total",
                "raw alerts offered to the admission controller",
            ).inc()
            if decision.admit:
                self._metrics.counter(
                    "runtime_admission_admitted_total",
                    "raw alerts admitted into the pipeline",
                ).inc()
            else:
                self._metrics.counter(
                    f"runtime_admission_shed_{decision.rung}_total",
                    f"raw alerts shed at the {decision.rung} ladder rung",
                ).inc()

    def count_shed(self, rung: str) -> None:
        """Account one shed decided *outside* the ladder (gateway queues).

        The gateway's bounded per-source ingest queues refuse alerts
        before they ever reach :meth:`offer`; those refusals still flow
        through this controller's books -- a new ``rung`` key in
        ``sheds`` plus the same per-rung metrics counter -- so one query
        (``shed_counts``) reports every alert the service turned away,
        wherever the decision was made.
        """
        self.offered += 1
        self.sheds[rung] = self.sheds.get(rung, 0) + 1
        if self._metrics is not None:
            self._metrics.counter(
                "runtime_admission_offered_total",
                "raw alerts offered to the admission controller",
            ).inc()
            self._metrics.counter(
                f"runtime_admission_shed_{rung}_total",
                f"raw alerts shed at the {rung} ladder rung",
            ).inc()

    def _evict_recent(self, horizon: float) -> None:
        self._recent = {
            key: seen for key, seen in self._recent.items() if seen >= horizon
        }

    @staticmethod
    def _dedup_key(raw: RawAlert) -> _DedupKey:
        return (raw.tool, raw.raw_type, raw.device, raw.endpoints,
                raw.location_hint)

    # -- checkpoint plumbing -----------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "window": list(self._window),
            "recent": dict(self._recent),
            "offered": self.offered,
            "admitted": self.admitted,
            "sheds": dict(self.sheds),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._window = collections.deque(state["window"])  # type: ignore[arg-type]
        self._recent = dict(state["recent"])  # type: ignore[arg-type]
        self.offered = int(state["offered"])  # type: ignore[arg-type]
        self.admitted = int(state["admitted"])  # type: ignore[arg-type]
        self.sheds = dict(state["sheds"])  # type: ignore[arg-type]
