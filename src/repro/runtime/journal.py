"""Write-ahead alert journal: append-only JSONL segments.

Every raw alert offered to the runtime is journaled *before* it is
processed, together with its sequence number and the admission decision
it received.  A killed run therefore loses nothing: resume loads the
last snapshot checkpoint and replays the journal tail -- re-applying the
*recorded* admission decisions, so even load-shed alerts are accounted
for identically the second time around.

Segments rotate every ``segment_records`` lines and are strictly
append-only; a resuming journal always opens a fresh segment rather than
appending after a possibly torn tail.  Corruption handling is explicit:
a truncated or garbled trailing record stops replay at the last valid
line and surfaces a :class:`JournalCorruption` report (segment, line,
reason, records discarded) instead of crashing -- the §4 requirement
that a flood-scale service degrades loudly, never silently.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

from ..monitors.base import RawAlert
from ..topology.hierarchy import LocationPath

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".jsonl"


@dataclasses.dataclass(frozen=True)
class JournalCorruption:
    """One detected defect in the journal, reported on replay."""

    segment: str
    line_number: int  # 1-based line within the segment
    reason: str
    discarded_records: int  # valid-looking lines skipped after the defect

    def render(self) -> str:
        return (
            f"journal corruption in {self.segment}:{self.line_number}: "
            f"{self.reason} ({self.discarded_records} later record(s) "
            f"discarded; resuming from last valid state)"
        )


@dataclasses.dataclass(frozen=True)
class JournalEntry:
    """One journaled raw alert plus its admission decision."""

    seq: int
    admitted: bool
    rung: Optional[str]  # admission ladder rung that shed it, if any
    raw: RawAlert


def raw_to_json(raw: RawAlert) -> Dict[str, object]:
    """Lossless, schema-stable encoding of a :class:`RawAlert`."""
    out: Dict[str, object] = {
        "tool": raw.tool,
        "raw_type": raw.raw_type,
        "timestamp": raw.timestamp,
        "delivered_at": raw.delivered_at,
    }
    if raw.message:
        out["message"] = raw.message
    if raw.device is not None:
        out["device"] = raw.device
    if raw.endpoints is not None:
        out["endpoints"] = list(raw.endpoints)
    if raw.location_hint is not None:
        # segments + device flag, never the rendered string: "<root>" is a
        # display form, not a parseable path (REP002's whole point)
        out["location"] = {
            "segments": list(raw.location_hint.segments),
            "is_device": raw.location_hint.is_device,
        }
    if raw.metrics:
        out["metrics"] = dict(raw.metrics)
    return out


def raw_from_json(data: Dict[str, object]) -> RawAlert:
    location = None
    loc_data = data.get("location")
    if isinstance(loc_data, dict):
        location = LocationPath(
            tuple(loc_data["segments"]), bool(loc_data["is_device"])
        )
    endpoints = data.get("endpoints")
    return RawAlert(
        tool=str(data["tool"]),
        raw_type=str(data["raw_type"]),
        timestamp=float(data["timestamp"]),  # type: ignore[arg-type]
        message=str(data.get("message", "")),
        device=data.get("device"),  # type: ignore[arg-type]
        endpoints=tuple(endpoints) if endpoints is not None else None,  # type: ignore[arg-type]
        location_hint=location,
        metrics=dict(data.get("metrics", {})),  # type: ignore[arg-type]
        delivered_at=float(data["delivered_at"]),  # type: ignore[arg-type]
    )


class AlertJournal:
    """Append-only JSONL journal over a directory of rotating segments."""

    def __init__(
        self, directory: pathlib.Path, segment_records: int = 2000
    ) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        # never append to an existing segment: a fresh writer starts its
        # own file so a torn tail from a crash stays frozen as evidence
        self._next_segment = self._max_segment_index() + 1
        self._handle: Optional[TextIO] = None
        self._current_path: Optional[pathlib.Path] = None
        self._current_lines = 0
        #: corruption reports collected by the most recent :meth:`replay`
        self.corruptions: List[JournalCorruption] = []

    # -- writing -----------------------------------------------------------

    def append(
        self,
        raw: RawAlert,
        seq: int,
        admitted: bool = True,
        rung: Optional[str] = None,
    ) -> None:
        if self._handle is None or self._current_lines >= self.segment_records:
            self._rotate()
        entry: Dict[str, object] = {"seq": seq, "admitted": admitted}
        if rung is not None:
            entry["rung"] = rung
        entry["raw"] = raw_to_json(raw)
        assert self._handle is not None
        self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._handle.flush()
        self._current_lines += 1

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
        path = self.directory / (
            f"{SEGMENT_PREFIX}{self._next_segment:08d}{SEGMENT_SUFFIX}"
        )
        self._next_segment += 1
        self._handle = open(path, "w", encoding="utf-8")
        self._current_path = path
        self._current_lines = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._current_path = None

    def sync(self) -> None:
        """Force the current segment to stable storage."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    # -- compaction ---------------------------------------------------------

    def compact(self, before_seq: int) -> int:
        """Delete closed segments fully covered by a durable checkpoint.

        A segment may go only when *every* line parses and its highest
        sequence number is below ``before_seq`` (the oldest retained
        checkpoint's position): replay will never need it again.  The
        active segment and any segment containing an unparseable line --
        crash evidence -- are always kept.  Returns the number of
        segments removed.  This is the ROADMAP's segment-compaction item;
        the service only calls it when ``runtime.journal_compaction`` is
        opted into, so default journals remain strictly append-only.
        """
        removed = 0
        for path in self.segments():
            if path == self._current_path:
                continue
            last_seq = self._segment_max_seq(path)
            if last_seq is not None and last_seq < before_seq:
                path.unlink()
                removed += 1
        return removed

    def _segment_max_seq(self, path: pathlib.Path) -> Optional[int]:
        """Highest seq in a fully-parseable segment, else ``None``."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return None
        highest: Optional[int] = None
        for line in lines:
            entry, _ = self._parse_line(line)
            if entry is None:
                return None
            if highest is None or entry.seq > highest:
                highest = entry.seq
        return highest

    # -- reading -----------------------------------------------------------

    def segments(self) -> List[pathlib.Path]:
        return sorted(
            p
            for p in self.directory.iterdir()
            if p.name.startswith(SEGMENT_PREFIX)
            and p.name.endswith(SEGMENT_SUFFIX)
        )

    def _max_segment_index(self) -> int:
        highest = 0
        for path in self.segments():
            stem = path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
            try:
                highest = max(highest, int(stem))
            except ValueError:
                continue
        return highest

    def replay(self, after_seq: int = -1) -> Iterator[JournalEntry]:
        """Yield journal entries with ``seq > after_seq``, in order.

        Stops -- and records a :class:`JournalCorruption` -- at the first
        unparseable line.  Everything after a defect is discarded: entries
        are causally ordered, so replaying past a hole could interleave
        alerts out of sequence and silently diverge from the original run.
        """
        self.corruptions = []
        segments = self.segments()
        for seg_index, path in enumerate(segments):
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
            for line_index, line in enumerate(lines):
                entry, reason = self._parse_line(line)
                if entry is None:
                    discarded = len(lines) - line_index - 1
                    for later in segments[seg_index + 1 :]:
                        with open(later, "r", encoding="utf-8") as handle:
                            discarded += sum(
                                1 for _ in handle
                            )
                    self.corruptions.append(
                        JournalCorruption(
                            segment=path.name,
                            line_number=line_index + 1,
                            reason=reason,
                            discarded_records=discarded,
                        )
                    )
                    return
                if entry.seq > after_seq:
                    yield entry

    @staticmethod
    def _parse_line(line: str) -> Tuple[Optional[JournalEntry], str]:
        stripped = line.strip()
        if not stripped:
            return None, "blank record"
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError as exc:
            return None, f"unparseable JSON ({exc.msg})"
        if not isinstance(data, dict):
            return None, "record is not an object"
        try:
            return (
                JournalEntry(
                    seq=int(data["seq"]),
                    admitted=bool(data["admitted"]),
                    rung=data.get("rung"),
                    raw=raw_from_json(data["raw"]),
                ),
                "",
            )
        except (KeyError, TypeError, ValueError) as exc:
            return None, f"malformed record ({exc!r})"
