"""Per-source health: marking monitors degraded on cadence deadlines.

§4.3's zoom-in is explicitly built for partial blindness -- it falls back
ping -> sFlow -> INT as sources become unusable -- and Figure 8a
quantifies how locating degrades as sources drop out.  This module is
the runtime's awareness of that state: a :class:`SourceHealthTracker`
decides, at any simulated instant, which data sources are *degraded*.

Two signals combine:

* **planned windows** -- the :class:`~repro.runtime.faults.ChaosPlan`'s
  outages, plus brownouts severe enough to matter (a delivery delay
  beyond the tool's staleness deadline, or majority loss).  These are
  exact: the injector knows what it broke.
* **observed staleness** -- a tool that has reported at least once but
  has now been silent for ``stale_after_periods`` of its Table 2 polling
  period (plus its documented delivery-delay bound, i.e. SNMP's §4.2
  lag) is presumed dark.  This signal is scoped to tools the plan
  touches: monitors here only speak when something is wrong, so silence
  from an unperturbed source is indistinguishable from health and must
  never flag it (a storm ending mid-run quiets every feed at once).

The tracker only exists when a chaos plan actually degrades sources
(the service does not construct one otherwise), so a fault-free run
carries no health machinery at all and stays byte-identical to the
pre-chaos runtime.  State is a plain dict and rides along in runtime
checkpoints, keeping kill-and-resume exact.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from ..monitors.base import RawAlert
from ..monitors.registry import TABLE2_CADENCE
from .faults import ChaosPlan, SourceBrownout

#: A tool is presumed dark after this many silent polling periods.
DEFAULT_STALE_PERIODS = 3.0


def _deadline_s(tool: str, stale_after_periods: float) -> float:
    cadence = TABLE2_CADENCE.get(tool, {})
    period = cadence.get("period_s", 60.0)
    delivery = cadence.get("delivery_delay_s", 0.0)
    return stale_after_periods * period + delivery


def _brownout_degrades(brownout: SourceBrownout, deadline_s: float) -> bool:
    """A brownout counts as degradation when its data is unusable: delayed
    past the tool's own staleness deadline, or mostly lost."""
    return brownout.delay_s >= deadline_s or brownout.drop_rate >= 0.5


class SourceHealthTracker:
    """Decides which monitoring tools are degraded at a simulated instant."""

    def __init__(
        self,
        plan: ChaosPlan,
        stale_after_periods: float = DEFAULT_STALE_PERIODS,
        tools: Optional[Iterable[str]] = None,
    ) -> None:
        self.plan = plan
        self.stale_after_periods = stale_after_periods
        names = list(tools) if tools is not None else list(TABLE2_CADENCE)
        self._deadlines: Dict[str, float] = {
            name: _deadline_s(name, stale_after_periods) for name in names
        }
        #: tools the plan perturbs -- the only ones staleness may flag
        self._watched: FrozenSet[str] = frozenset(
            fault.tool for fault in (*plan.outages, *plan.brownouts)
        )
        #: last *observation* timestamp per tool, admitted alerts only
        self._last_seen: Dict[str, float] = {}

    # -- feeding -----------------------------------------------------------

    def observe(self, raw: RawAlert) -> None:
        """Note one admitted raw alert (called from the pipeline's feed)."""
        previous = self._last_seen.get(raw.tool)
        if previous is None or raw.timestamp > previous:
            self._last_seen[raw.tool] = raw.timestamp

    # -- queries -----------------------------------------------------------

    def degraded_sources(self, now: float) -> FrozenSet[str]:
        """Tools considered degraded at sim time ``now``."""
        degraded = set()
        for outage in self.plan.outages:
            if outage.start <= now < outage.end:
                degraded.add(outage.tool)
        for brownout in self.plan.brownouts:
            deadline = self._deadlines.get(
                brownout.tool, _deadline_s(brownout.tool, self.stale_after_periods)
            )
            if brownout.start <= now < brownout.end and _brownout_degrades(
                brownout, deadline
            ):
                degraded.add(brownout.tool)
        # observed staleness is judged against the freshest tool, not raw
        # ``now``: when the whole stream goes quiet (storm over, or the
        # closing sweeps at the horizon) no tool is singled out, but when
        # others are still flooding a silent watched one stands out
        if self._last_seen:
            reference = min(now, max(self._last_seen.values()))
            for tool in self._watched:
                seen = self._last_seen.get(tool)
                if seen is None:
                    continue
                deadline = self._deadlines.get(
                    tool, _deadline_s(tool, self.stale_after_periods)
                )
                if reference - seen > deadline:
                    degraded.add(tool)
        return frozenset(degraded)

    # -- checkpoint plumbing -----------------------------------------------

    def state_dict(self) -> Dict[str, float]:
        return dict(self._last_seen)

    def load_state_dict(self, state: Dict[str, float]) -> None:
        self._last_seen = dict(state)
