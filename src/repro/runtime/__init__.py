"""repro.runtime: the paper's pipeline as a resumable online service.

The reproduction's core (``repro.core``) is a faithful batch rendering of
§4's algorithms; this package is the serving layer a production SkyNet
needs around them (§2's operational setting -- 12+ monitor feeds, severe
floods, no downtime):

* :mod:`sharding` -- the alert tree partitioned over N Region-subtree
  shards with an exact cross-shard merge; byte-identical to the
  unsharded reference at every shard count.
* :mod:`journal` -- write-ahead JSONL alert journal with rotation and
  loud, non-fatal corruption reporting.
* :mod:`checkpoint` -- periodic snapshots of all mutable pipeline state;
  restore + journal replay reproduces the uninterrupted run exactly.
* :mod:`admission` -- watermark backpressure shedding along §4.1's
  consolidation ladder, every shed counted.
* :mod:`metrics` -- sim-clock counters/gauges/histograms threaded
  through the stages via the pipeline observer hook.
* :mod:`faults` / :mod:`health` / :mod:`supervisor` -- the chaos layer:
  seeded :class:`ChaosPlan` fault injection (source outages/brownouts,
  shard crashes, journal/checkpoint I/O faults), per-source staleness
  tracking feeding §4.3 degraded-mode fallback and incident confidence,
  and exact crash-and-heal shard supervision.  Entirely opt-in: with no
  plan the runtime is byte-identical to a chaos-free build.
* :mod:`service` / :mod:`cli` -- composition plus the
  ``python -m repro.runtime`` entry point.
"""

from .admission import AdmissionController, AdmissionDecision
from .checkpoint import CheckpointStore, pipeline_state_dict, restore_pipeline_state
from .faults import (
    ChaosPlan,
    FaultInjectedIOError,
    FaultyIO,
    IOFault,
    PerturbResult,
    RetryPolicy,
    ShardCrash,
    SourceBrownout,
    SourceOutage,
    chaos_or_none,
    empty_plan,
)
from .health import SourceHealthTracker
from .journal import AlertJournal, JournalCorruption, JournalEntry
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .service import RecoveryReport, RuntimeObserver, RuntimeService
from .sharding import ShardedAlertTree, ShardedLocator, ShardRouter, frontier_devices
from .supervisor import SupervisedAlertTree, SupervisedLocator

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AlertJournal",
    "ChaosPlan",
    "CheckpointStore",
    "Counter",
    "FaultInjectedIOError",
    "FaultyIO",
    "Gauge",
    "Histogram",
    "IOFault",
    "JournalCorruption",
    "JournalEntry",
    "MetricsRegistry",
    "PerturbResult",
    "RecoveryReport",
    "RetryPolicy",
    "RuntimeObserver",
    "RuntimeService",
    "ShardCrash",
    "ShardRouter",
    "ShardedAlertTree",
    "ShardedLocator",
    "SourceBrownout",
    "SourceHealthTracker",
    "SourceOutage",
    "SupervisedAlertTree",
    "SupervisedLocator",
    "chaos_or_none",
    "empty_plan",
    "frontier_devices",
    "pipeline_state_dict",
    "restore_pipeline_state",
]
