"""repro.runtime: the paper's pipeline as a resumable online service.

The reproduction's core (``repro.core``) is a faithful batch rendering of
§4's algorithms; this package is the serving layer a production SkyNet
needs around them (§2's operational setting -- 12+ monitor feeds, severe
floods, no downtime):

* :mod:`sharding` -- the alert tree partitioned over N Region-subtree
  shards with an exact cross-shard merge; byte-identical to the
  unsharded reference at every shard count.
* :mod:`journal` -- write-ahead JSONL alert journal with rotation and
  loud, non-fatal corruption reporting.
* :mod:`checkpoint` -- periodic snapshots of all mutable pipeline state;
  restore + journal replay reproduces the uninterrupted run exactly.
* :mod:`admission` -- watermark backpressure shedding along §4.1's
  consolidation ladder, every shed counted.
* :mod:`metrics` -- sim-clock counters/gauges/histograms threaded
  through the stages via the pipeline observer hook.
* :mod:`faults` / :mod:`health` / :mod:`supervisor` -- the chaos layer:
  seeded :class:`ChaosPlan` fault injection (source outages/brownouts,
  shard crashes, journal/checkpoint I/O faults), per-source staleness
  tracking feeding §4.3 degraded-mode fallback and incident confidence,
  and exact crash-and-heal shard supervision.  Entirely opt-in: with no
  plan the runtime is byte-identical to a chaos-free build.
* :mod:`workers` -- the multiprocess execution backend
  (``backend="mp"``): each shard in a long-lived spawned worker process
  owning its tree + partition engine, fed alert batches over pickled
  pipes, with the cross-shard merge, incident-id assignment and
  supervision (real SIGKILLed processes healed from snapshot+oplog)
  staying in the parent.  Byte-identical to ``inproc`` at every shard
  count.
* :mod:`service` / :mod:`cli` -- composition plus the
  ``python -m repro.runtime`` entry point.
"""

from .admission import AdmissionController, AdmissionDecision
from .checkpoint import CheckpointStore, pipeline_state_dict, restore_pipeline_state
from .faults import (
    DATA_LOSS_CONFIDENCE,
    ChaosPlan,
    CorrelatedCrash,
    FaultInjectedIOError,
    FaultyIO,
    IOFault,
    PerturbResult,
    RetryPolicy,
    ShardCrash,
    SourceBrownout,
    SourceOutage,
    chaos_or_none,
    empty_plan,
)
from .health import SourceHealthTracker
from .journal import AlertJournal, JournalCorruption, JournalEntry
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .service import BACKENDS, RecoveryReport, RuntimeObserver, RuntimeService
from .sharding import (
    ShardedAlertTree,
    ShardedLocator,
    ShardRouter,
    frontier_devices,
    merge_shard_partitions,
    partition_locations,
)
from .supervisor import ShardSupervision, SupervisedAlertTree, SupervisedLocator
from .workers import (
    MPShardedAlertTree,
    MPShardedLocator,
    MPSupervisedLocator,
    WorkerCrashed,
    WorkerError,
    WorkerPool,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AlertJournal",
    "BACKENDS",
    "ChaosPlan",
    "CheckpointStore",
    "CorrelatedCrash",
    "Counter",
    "DATA_LOSS_CONFIDENCE",
    "FaultInjectedIOError",
    "FaultyIO",
    "Gauge",
    "Histogram",
    "IOFault",
    "JournalCorruption",
    "JournalEntry",
    "MPShardedAlertTree",
    "MPShardedLocator",
    "MPSupervisedLocator",
    "MetricsRegistry",
    "PerturbResult",
    "RecoveryReport",
    "RetryPolicy",
    "RuntimeObserver",
    "RuntimeService",
    "ShardCrash",
    "ShardRouter",
    "ShardSupervision",
    "ShardedAlertTree",
    "ShardedLocator",
    "SourceBrownout",
    "SourceHealthTracker",
    "SourceOutage",
    "SupervisedAlertTree",
    "SupervisedLocator",
    "WorkerCrashed",
    "WorkerError",
    "WorkerPool",
    "chaos_or_none",
    "empty_plan",
    "frontier_devices",
    "merge_shard_partitions",
    "partition_locations",
    "pipeline_state_dict",
    "restore_pipeline_state",
]
