"""Deterministic fault injection for the runtime: the chaos layer.

Nothing in a reproduction fails on its own, so nothing about recovery is
real until something *makes* monitors go dark, shards die mid-storm and
disks refuse writes.  A :class:`ChaosPlan` is a declarative, seeded,
sim-clock-driven schedule of exactly those events:

* **source outages** -- a monitoring tool is silent for a window (the
  Figure 8a ablation, but mid-run instead of for a whole campaign);
* **source brownouts** -- a tool keeps reporting but degraded: delivery
  delay spikes (which reorder alerts within their delivery bounds),
  seeded duplication, seeded partial loss;
* **shard crashes** -- a :class:`~repro.runtime.supervisor.SupervisedLocator`
  shard loses its in-memory tree at a simulated instant;
* **I/O faults** -- journal appends / syncs or checkpoint saves raise
  ``OSError`` for a window, consulted through the injectable
  :class:`FaultyIO` wrapper.

Everything is driven by simulated time and a seed (REP004: no wall
clocks, no global RNG), so the same plan over the same stream produces
the same perturbed stream, the same retries and the same sheds -- which
is what lets ``tests/runtime/test_chaos.py`` assert *exact* recovery.
An empty plan is inert by construction: :meth:`ChaosPlan.perturb`
returns its input list unchanged (the same object), and the service
skips every chaos code path, keeping output byte-identical to a
chaos-free runtime.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..monitors.base import RawAlert

#: I/O operations :class:`FaultyIO` can be asked about.
#: ``journal_read`` covers the recovery-side scan a correlated-crash
#: rebuild performs; failing it is how a plan makes the journal itself
#: fault-exhausted, forcing the degraded-heal fallback.
IO_OPS: Tuple[str, ...] = (
    "journal_append",
    "journal_sync",
    "checkpoint_save",
    "journal_read",
)

#: Assessment confidence stamped on incidents that lived through a
#: degraded shard heal (recovery snapshot and journal both unavailable):
#: the incident tree is still served, but its evidence base is known to
#: have holes, exactly like an assessment over degraded sources.
DATA_LOSS_CONFIDENCE = 0.5


class FaultInjectedIOError(OSError):
    """An I/O failure manufactured by :class:`FaultyIO`."""


@dataclasses.dataclass(frozen=True)
class SourceOutage:
    """One tool reports nothing observed during ``[start, end)``."""

    tool: str
    start: float
    end: float

    def covers(self, raw: RawAlert) -> bool:
        return raw.tool == self.tool and self.start <= raw.timestamp < self.end


@dataclasses.dataclass(frozen=True)
class SourceBrownout:
    """One tool degrades during ``[start, end)``: late, lossy, chatty.

    ``delay_s`` (+ seeded ``delay_jitter_s``) is added to delivery time,
    never to observation time, so ``delivered_at >= timestamp`` stays
    true and the reordering is exactly the delivery-bound kind the §4.2
    node timeout was sized for.  ``drop_rate`` / ``duplicate_rate`` are
    per-alert probabilities drawn from the plan's seeded RNG.
    """

    tool: str
    start: float
    end: float
    delay_s: float = 0.0
    delay_jitter_s: float = 0.0
    duplicate_rate: float = 0.0
    drop_rate: float = 0.0

    def covers(self, raw: RawAlert) -> bool:
        return raw.tool == self.tool and self.start <= raw.timestamp < self.end


@dataclasses.dataclass(frozen=True)
class SourceClockSkew:
    """One tool's clock runs a constant ``skew_s`` off true time.

    Applied to the *whole* stream (clock error is a property of the
    source, not of a window): every alert from ``tool`` has its
    observation and delivery stamps shifted by the same amount, so
    ``delivered_at >= timestamp`` is preserved and no new RNG draws are
    introduced (a skewed plan perturbs nothing else's seeding).  Skew is
    applied *before* outage/brownout windows are matched -- those windows
    are expressed in the collector's (skewed) timeline, the same one the
    gateway sequencer's per-source watermarks see.
    """

    tool: str
    skew_s: float


@dataclasses.dataclass(frozen=True)
class ShardCrash:
    """Locator shard ``shard`` loses its in-memory tree at sim time ``at``."""

    at: float
    shard: int = 0


@dataclasses.dataclass(frozen=True)
class CorrelatedCrash:
    """Several locator shards die together at sim time ``at``.

    The correlated version of :class:`ShardCrash`: a rack power event or
    a bad rollout takes out ``shards`` in the same instant, and for the
    subset in ``lose_snapshots`` the blast also destroys the per-shard
    recovery snapshot (the supervision base *and* its oplog), modelling
    partial checkpoint loss.  Those shards cannot be healed from local
    state -- recovery must rebuild them from the durable checkpoint plus
    the journal tail, or fall back to a degraded heal when the journal
    itself is fault-exhausted (see
    :data:`DATA_LOSS_CONFIDENCE` and the ``journal_read`` I/O op).
    """

    at: float
    shards: Tuple[int, ...] = (0,)
    lose_snapshots: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a correlated crash needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError(f"duplicate shards in {self.shards}")
        stray = set(self.lose_snapshots) - set(self.shards)
        if stray:
            raise ValueError(
                f"lose_snapshots {sorted(stray)} not among crashed "
                f"shards {self.shards}"
            )


@dataclasses.dataclass(frozen=True)
class IOFault:
    """``op`` fails during ``[start, end)``.

    Each *call* issued inside the window fails its first ``fail_count``
    attempts and then succeeds -- below the retry budget this models a
    transient error; with ``permanent=True`` (or ``fail_count`` at or
    above the budget) every attempt in the window fails and the caller's
    terminal fallback engages.  Failure decisions depend only on
    (op, sim time, attempt index), never on global call counters, so a
    killed-and-resumed run re-derives the same outcomes.
    """

    op: str
    start: float
    end: float
    fail_count: int = 1
    permanent: bool = False

    def __post_init__(self) -> None:
        if self.op not in IO_OPS:
            raise ValueError(f"unknown I/O op {self.op!r}; want one of {IO_OPS}")

    def fails(self, now: float, attempt: int) -> bool:
        if not self.start <= now < self.end:
            return False
        return self.permanent or attempt < self.fail_count


@dataclasses.dataclass(frozen=True)
class PerturbResult:
    """A perturbed stream plus exactly what was done to it."""

    raws: List[RawAlert]
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    skewed: int = 0

    def counts(self) -> Dict[str, int]:
        return {
            "dropped": self.dropped,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "skewed": self.skewed,
        }


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """A seeded, sim-clock schedule of injected failures.

    The plan is pure data; the machinery that executes it lives where
    each fault class bites: :meth:`perturb` (stream faults, applied by
    the caller before ingest so journal and replay see the *perturbed*
    stream), :class:`~repro.runtime.service.RuntimeService` (shard
    crashes and I/O retry/shed), and
    :class:`~repro.runtime.health.SourceHealthTracker` (degradation
    awareness).  ``seed`` offsets every RNG the plan drives so two plans
    over the same run seed stay independent.
    """

    outages: Tuple[SourceOutage, ...] = ()
    brownouts: Tuple[SourceBrownout, ...] = ()
    shard_crashes: Tuple[ShardCrash, ...] = ()
    correlated_crashes: Tuple[CorrelatedCrash, ...] = ()
    io_faults: Tuple[IOFault, ...] = ()
    clock_skews: Tuple[SourceClockSkew, ...] = ()
    seed: int = 0

    def is_empty(self) -> bool:
        return not (
            self.outages
            or self.brownouts
            or self.shard_crashes
            or self.correlated_crashes
            or self.io_faults
            or self.clock_skews
        )

    def crashes_shards(self) -> bool:
        """Does the plan require a supervised (heal-capable) locator?"""
        return bool(self.shard_crashes or self.correlated_crashes)

    def degrades_sources(self) -> bool:
        # skew alone does not make a source *stale* -- it keeps reporting
        # on cadence, just on a shifted clock -- so it is not watched
        return bool(self.outages or self.brownouts)

    def perturbs_stream(self) -> bool:
        return bool(self.outages or self.brownouts or self.clock_skews)

    def rng(self, purpose: str, run_seed: int) -> random.Random:
        """A deterministic RNG namespaced by purpose, plan seed, run seed."""
        return random.Random(f"chaos:{purpose}:{self.seed}:{run_seed}")

    def perturb(self, raws: Sequence[RawAlert], run_seed: int = 0) -> PerturbResult:
        """Apply the stream faults (outages, brownouts) to a raw stream.

        With no stream faults planned this returns the input unchanged --
        when ``raws`` is already a list, literally the same object, so an
        empty plan cannot even reorder equal delivery times.  Otherwise
        alerts observed inside an outage window are dropped, brownout
        windows delay/duplicate/drop per the seeded RNG, and the result
        is re-sorted by delivery time (stable, preserving the original
        relative order of unperturbed equal-time alerts).
        """
        if not self.perturbs_stream():
            out = raws if isinstance(raws, list) else list(raws)
            return PerturbResult(raws=out)
        rng = self.rng("perturb", run_seed)
        skew_by_tool = {
            skew.tool: skew.skew_s
            for skew in self.clock_skews
            if skew.skew_s != 0.0
        }
        out: List[RawAlert] = []
        dropped = delayed = duplicated = skewed = 0
        for raw in raws:
            # clock skew first: outage/brownout windows (and everything
            # downstream) see the source's shifted timeline
            skew_s = skew_by_tool.get(raw.tool)
            if skew_s is not None:
                raw = dataclasses.replace(
                    raw,
                    timestamp=raw.timestamp + skew_s,
                    delivered_at=raw.delivered_at + skew_s,
                )
                skewed += 1
            if any(outage.covers(raw) for outage in self.outages):
                dropped += 1
                continue
            brownout = next(
                (b for b in self.brownouts if b.covers(raw)), None
            )
            if brownout is None:
                out.append(raw)
                continue
            # RNG draws happen in a fixed order per alert so the stream
            # is a pure function of (plan, seeds, input)
            drop_draw = rng.random() if brownout.drop_rate > 0.0 else 1.0
            jitter_draw = (
                rng.random() if brownout.delay_jitter_s > 0.0 else 0.0
            )
            dup_draw = rng.random() if brownout.duplicate_rate > 0.0 else 1.0
            if drop_draw < brownout.drop_rate:
                dropped += 1
                continue
            delay = brownout.delay_s + brownout.delay_jitter_s * jitter_draw
            if delay > 0.0:
                raw = dataclasses.replace(
                    raw, delivered_at=raw.delivered_at + delay
                )
                delayed += 1
            out.append(raw)
            if dup_draw < brownout.duplicate_rate:
                out.append(raw)
                duplicated += 1
        out.sort(key=lambda r: r.delivered_at)
        return PerturbResult(
            raws=out,
            dropped=dropped,
            delayed=delayed,
            duplicated=duplicated,
            skewed=skewed,
        )


class FaultyIO:
    """Injectable I/O fault oracle, consulted before every real I/O call.

    The runtime asks ``check(op, now, attempt)`` immediately before each
    journal append/sync and checkpoint save attempt; a matching
    :class:`IOFault` window answers by raising
    :class:`FaultInjectedIOError`, which the service's retry policy then
    handles exactly like a real ``OSError`` from the filesystem.  Keeping
    the oracle outside the journal/checkpoint classes means the storage
    code under test is the *production* code, not a test double.
    """

    def __init__(self, faults: Sequence[IOFault]) -> None:
        self.faults: Tuple[IOFault, ...] = tuple(faults)

    def check(self, op: str, now: float, attempt: int) -> None:
        """Raise if attempt number ``attempt`` of a call at ``now`` fails."""
        for fault in self.faults:
            if fault.op == op and fault.fails(now, attempt):
                raise FaultInjectedIOError(
                    f"injected {op} failure (attempt {attempt + 1}) at "
                    f"sim t={now:.1f}s in window "
                    f"[{fault.start:.0f}, {fault.end:.0f})"
                )


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with sim-clock exponential backoff.

    Backoff here is *accounting*, not sleeping: the runtime has no wall
    clock (REP004) and must not advance alert time, so each computed
    backoff is recorded in the metrics registry as the simulated delay a
    production deployment would have paid.  Jitter comes from a seeded
    RNG owned by the service, so a full rerun reproduces the same
    histogram.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.5
    multiplier: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff after failed attempt index ``attempt`` (0-based)."""
        base = min(
            self.base_backoff_s * self.multiplier**attempt, self.max_backoff_s
        )
        if self.jitter > 0.0:
            base *= 1.0 + self.jitter * rng.random()
        return base


def empty_plan() -> ChaosPlan:
    """The inert plan: nothing scheduled, every chaos path skipped."""
    return ChaosPlan()


def chaos_or_none(plan: Optional[ChaosPlan]) -> Optional[ChaosPlan]:
    """Normalise: an empty plan is the same as no plan at all."""
    if plan is None or plan.is_empty():
        return None
    return plan
